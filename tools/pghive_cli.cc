// pghive — command-line front end for the PG-HIVE library.
//
// Subcommands:
//   discover  --graph FILE [--method elsh|minhash] [--batches N]
//             [--out PREFIX] [--loose] [--sample-datatypes] [--threads N]
//             [--pipeline-depth D] [--data-plane columnar|row] [--shards N]
//       --threads 0 (default) uses every hardware thread; --threads 1 runs
//       serially. --pipeline-depth D (default 1) overlaps batch i+1's
//       preprocess with batch i's extract during multi-batch ingest; the
//       discovered schema is identical for every threads/depth combination.
//       --data-plane row keeps the row-at-a-time inner loops instead of the
//       columnar ones; the schema is byte-identical either way.
//       --shards N (default 1) partitions every batch by consistent hashing
//       over node ids and runs the per-shard data plane in parallel; the
//       schema is byte-identical to --shards=1 at every shard count.
//       Discovers the schema of a graph file (pg::SaveGraphFile format) and
//       prints it; with --out also writes PREFIX.pgs and PREFIX.xsd.
//   import    --nodes FILE[,FILE...] --edges FILE[,FILE...] --out GRAPH
//       Imports neo4j-admin style CSVs into a graph file.
//   generate  --dataset NAME [--scale S] [--seed N] --out GRAPH
//       Generates one of the paper's synthetic datasets (POLE, MB6, HET.IO,
//       FIB25, ICIJ, CORD19, LDBC, IYP).
//   validate  --graph FILE --schema FILE.pgs [--strict]
//       Validates a graph against a PG-Schema file.
//   client    --graph FILE (--port N | --port-file FILE) [--batches N]
//             [--out PREFIX] [--loose] [discover knobs]
//       Streams a graph file into a running pghived daemon batch by batch
//       and fetches the discovered schema over the wire; with --out also
//       writes PREFIX.pgs and PREFIX.xsd. Discovery knobs (--method,
//       --threads, ...) are forwarded to create-session. The result is
//       byte-identical to a local `discover --batches N` run with the same
//       knobs (pinned by the service e2e tests and the CI smoke step).
//
// Exit code 0 on success (and, for validate, on conformance), 1 otherwise.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/options.h"
#include "core/pghive.h"
#include "core/pgschema_parser.h"
#include "core/serialize.h"
#include "core/validator.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/csv_import.h"
#include "pg/graph_io.h"
#include "service/client.h"
#include "util/parse.h"

namespace {

using namespace pghive;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    std::string value = "true";
    size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.options[key] = value;
  }
  return args;
}

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "pghive: %s\n", message.c_str());
  return 1;
}

/// Collects the discovery knobs the shared core parser understands from the
/// command line. Validation (ranges, enum values) lives in one place —
/// core::ApplyOptionFlags + PgHiveOptions::Validate — shared with pghived's
/// create-session path, so CLI and daemon reject exactly the same inputs.
std::map<std::string, std::string> DiscoveryKnobs(const Args& args) {
  std::map<std::string, std::string> knobs;
  for (const char* key : {"method", "threads", "pipeline-depth", "shards",
                          "data-plane", "seed"}) {
    if (args.Has(key)) knobs[key] = args.Get(key);
  }
  if (args.Has("sample-datatypes")) knobs["sample-datatypes"] = "true";
  return knobs;
}

int CmdDiscover(const Args& args) {
  if (!args.Has("graph")) return Fail("discover needs --graph FILE");
  auto loaded = pg::LoadGraphFile(args.Get("graph"));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  pg::PropertyGraph graph = std::move(loaded).value();
  std::printf("loaded %zu nodes, %zu edges\n", graph.num_nodes(),
              graph.num_edges());

  auto options = core::ParsePgHiveOptions(DiscoveryKnobs(args));
  if (!options.ok()) return Fail(options.status().ToString());
  auto num_batches = util::ParseInt64InRange(args.Get("batches", "1"), 1,
                                             1000000, "--batches");
  if (!num_batches.ok()) return Fail(num_batches.status().ToString());
  auto created = core::PgHive::Create(&graph, *options);
  if (!created.ok()) return Fail(created.status().ToString());
  core::PgHive& pipeline = **created;
  if (*num_batches <= 1) {
    if (options->pipeline_depth > 1) {
      std::fprintf(stderr,
                   "pghive: warning: --pipeline-depth %lld has no effect "
                   "without --batches > 1 (single-batch discovery has "
                   "nothing to overlap)\n",
                   static_cast<long long>(options->pipeline_depth));
    }
    auto status = pipeline.Run();
    if (!status.ok()) return Fail(status.ToString());
  } else {
    std::vector<pg::GraphBatch> batches = pg::SplitIntoBatches(
        graph, static_cast<size_t>(*num_batches), /*seed=*/1);
    core::BatchPipeline executor(&pipeline);
    auto status = executor.Run(batches);
    if (!status.ok()) return Fail(status.ToString());
    status = pipeline.Finish();
    if (!status.ok()) return Fail(status.ToString());
    std::printf("ingested %zu batches (pipeline depth %zu) in %.1f ms\n",
                batches.size(), executor.depth(), executor.wall_ms());
  }

  std::printf("%s", core::DescribeSchema(pipeline.schema(), graph.vocab())
                        .c_str());
  std::printf("discovery took %.1f ms (+%.1f ms post-processing)\n",
              pipeline.total_stats().discovery_ms(),
              pipeline.total_stats().post_process_ms);

  core::SchemaMode mode = args.Has("loose") ? core::SchemaMode::kLoose
                                            : core::SchemaMode::kStrict;
  if (args.Has("out")) {
    std::string prefix = args.Get("out");
    std::ofstream pgs(prefix + ".pgs");
    pgs << core::SerializePgSchema(pipeline.schema(), graph.vocab(), mode);
    std::ofstream xsd(prefix + ".xsd");
    xsd << core::SerializeXsd(pipeline.schema(), graph.vocab());
    std::printf("wrote %s.pgs and %s.xsd\n", prefix.c_str(), prefix.c_str());
  }
  return 0;
}

int CmdImport(const Args& args) {
  if (!args.Has("nodes") || !args.Has("out")) {
    return Fail("import needs --nodes FILES and --out GRAPH");
  }
  pg::CsvGraphImporter importer;
  for (const std::string& path : SplitComma(args.Get("nodes"))) {
    auto status = importer.AddNodeFile(path);
    if (!status.ok()) return Fail(path + ": " + status.ToString());
  }
  for (const std::string& path : SplitComma(args.Get("edges"))) {
    auto status = importer.AddEdgeFile(path);
    if (!status.ok()) return Fail(path + ": " + status.ToString());
  }
  pg::PropertyGraph graph = importer.TakeGraph();
  auto status = pg::SaveGraphFile(graph, args.Get("out"));
  if (!status.ok()) return Fail(status.ToString());
  std::printf("imported %zu nodes, %zu edges -> %s\n", graph.num_nodes(),
              graph.num_edges(), args.Get("out").c_str());
  return 0;
}

int CmdGenerate(const Args& args) {
  if (!args.Has("dataset") || !args.Has("out")) {
    return Fail("generate needs --dataset NAME and --out GRAPH");
  }
  auto spec = datasets::ZooDataset(args.Get("dataset"));
  if (!spec.ok()) return Fail(spec.status().ToString());
  double scale = std::atof(args.Get("scale", "1.0").c_str());
  auto seed = util::ParseInt64InRange(args.Get("seed", "42"), 0,
                                      std::numeric_limits<int64_t>::max(),
                                      "--seed");
  if (!seed.ok()) return Fail(seed.status().ToString());
  datasets::Dataset dataset =
      datasets::Generate(spec.value(), scale, static_cast<uint64_t>(*seed));
  auto status = pg::SaveGraphFile(dataset.graph, args.Get("out"));
  if (!status.ok()) return Fail(status.ToString());
  std::printf("generated %s: %zu nodes, %zu edges -> %s\n",
              spec.value().name.c_str(), dataset.graph.num_nodes(),
              dataset.graph.num_edges(), args.Get("out").c_str());
  return 0;
}

/// Streams a graph into a running pghived, batch by batch, and fetches the
/// final schema — the wire-borne twin of CmdDiscover. The discovered schema
/// is byte-identical to a local `pghive discover` run with the same knobs
/// (pinned by the service e2e tests and the CI smoke step).
int CmdClient(const Args& args) {
  if (!args.Has("graph")) return Fail("client needs --graph FILE");
  uint16_t port = 0;
  if (args.Has("port-file")) {
    std::ifstream in(args.Get("port-file"));
    if (!in) return Fail("cannot open " + args.Get("port-file"));
    std::string text;
    in >> text;
    auto parsed = util::ParseInt64InRange(text, 1, 65535, "port file");
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    port = static_cast<uint16_t>(*parsed);
  } else if (args.Has("port")) {
    auto parsed = util::ParseInt64InRange(args.Get("port"), 1, 65535,
                                          "--port");
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    port = static_cast<uint16_t>(*parsed);
  } else {
    return Fail("client needs --port N or --port-file FILE");
  }
  auto num_batches = util::ParseInt64InRange(args.Get("batches", "1"), 1,
                                             1000000, "--batches");
  if (!num_batches.ok()) return Fail(num_batches.status().ToString());

  auto loaded = pg::LoadGraphFile(args.Get("graph"));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  pg::PropertyGraph graph = std::move(loaded).value();
  std::vector<std::string> payloads = service::BuildIngestPayloads(
      graph, static_cast<size_t>(*num_batches), /*seed=*/1);

  auto client = service::PghivedClient::Connect(port);
  if (!client.ok()) return Fail(client.status().ToString());
  auto session = client->CreateSession(DiscoveryKnobs(args));
  if (!session.ok()) return Fail(session.status().ToString());
  for (const std::string& payload : payloads) {
    auto seq = client->IngestBatch(*session, payload);
    if (!seq.ok()) return Fail(seq.status().ToString());
  }
  std::printf("streamed %zu batches to session %s\n", payloads.size(),
              session->c_str());

  auto describe = client->GetSchema(*session, "describe");
  if (!describe.ok()) return Fail(describe.status().ToString());
  std::printf("%s", describe->c_str());

  if (args.Has("out")) {
    const std::string prefix = args.Get("out");
    auto pgs = client->GetSchema(*session,
                                 args.Has("loose") ? "pgs-loose" : "pgs");
    if (!pgs.ok()) return Fail(pgs.status().ToString());
    auto xsd = client->GetSchema(*session, "xsd");
    if (!xsd.ok()) return Fail(xsd.status().ToString());
    std::ofstream pgs_out(prefix + ".pgs");
    pgs_out << *pgs;
    std::ofstream xsd_out(prefix + ".xsd");
    xsd_out << *xsd;
    if (!pgs_out || !xsd_out) return Fail("cannot write " + prefix + ".*");
    std::printf("wrote %s.pgs and %s.xsd\n", prefix.c_str(), prefix.c_str());
  }
  util::Status closed = client->CloseSession(*session);
  if (!closed.ok()) return Fail(closed.ToString());
  return 0;
}

int CmdValidate(const Args& args) {
  if (!args.Has("graph") || !args.Has("schema")) {
    return Fail("validate needs --graph FILE and --schema FILE.pgs");
  }
  auto loaded = pg::LoadGraphFile(args.Get("graph"));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  pg::PropertyGraph graph = std::move(loaded).value();

  std::ifstream in(args.Get("schema"));
  if (!in) return Fail("cannot open " + args.Get("schema"));
  std::ostringstream buf;
  buf << in.rdbuf();
  auto schema = core::ParsePgSchema(buf.str(), &graph.vocab());
  if (!schema.ok()) return Fail(schema.status().ToString());

  core::ValidatorOptions options;
  options.mode = args.Has("strict") ? core::SchemaMode::kStrict
                                    : core::SchemaMode::kLoose;
  core::SchemaValidator validator(&schema.value(), options);
  core::ValidationReport report = validator.Validate(graph);
  std::printf("%s\n", report.Summary().c_str());
  for (size_t i = 0; i < report.violations.size() && i < 20; ++i) {
    const core::Violation& v = report.violations[i];
    std::printf("  [%s] %s %llu: %s\n", core::ViolationKindName(v.kind),
                v.is_edge ? "edge" : "node",
                static_cast<unsigned long long>(v.element_id),
                v.detail.c_str());
  }
  return report.conforms() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "discover") return CmdDiscover(args);
  if (args.command == "import") return CmdImport(args);
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "validate") return CmdValidate(args);
  if (args.command == "client") return CmdClient(args);
  std::fprintf(stderr,
               "usage: pghive <discover|import|generate|validate|client>"
               " [options]\n"
               "  discover --graph FILE [--method elsh|minhash] [--batches N]"
               " [--out PREFIX] [--loose] [--threads N] [--pipeline-depth D]"
               " [--data-plane columnar|row] [--shards N]\n"
               "  import   --nodes a.csv,b.csv --edges rels.csv --out g.pg\n"
               "  generate --dataset POLE [--scale 1.0] [--seed 42] --out g.pg\n"
               "  validate --graph g.pg --schema s.pgs [--strict]\n"
               "  client   --graph FILE (--port N | --port-file FILE)"
               " [--batches N] [--out PREFIX] [--loose] [discover knobs]\n");
  return args.command.empty() ? 1 : 1;
}
