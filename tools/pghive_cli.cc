// pghive — command-line front end for the PG-HIVE library.
//
// Subcommands:
//   discover  --graph FILE [--method elsh|minhash] [--batches N]
//             [--out PREFIX] [--loose] [--sample-datatypes] [--threads N]
//             [--pipeline-depth D] [--data-plane columnar|row] [--shards N]
//       --threads 0 (default) uses every hardware thread; --threads 1 runs
//       serially. --pipeline-depth D (default 1) overlaps batch i+1's
//       preprocess with batch i's extract during multi-batch ingest; the
//       discovered schema is identical for every threads/depth combination.
//       --data-plane row keeps the row-at-a-time inner loops instead of the
//       columnar ones; the schema is byte-identical either way.
//       --shards N (default 1) partitions every batch by consistent hashing
//       over node ids and runs the per-shard data plane in parallel; the
//       schema is byte-identical to --shards=1 at every shard count.
//       Discovers the schema of a graph file (pg::SaveGraphFile format) and
//       prints it; with --out also writes PREFIX.pgs and PREFIX.xsd.
//       Durability: --checkpoint-to FILE snapshots the full discovery state
//       (PgHive::SaveState) every --checkpoint-every K batches (default 1)
//       and after Finish; --resume-from FILE restores such a snapshot and
//       continues with the remaining batches of the same split — the final
//       schema is byte-identical to the uninterrupted run. --changefeed FILE
//       appends one binary SchemaDiff record per merged batch (plus one for
//       post-processing); `pghive changefeed --feed FILE` prints it.
//   changefeed --feed FILE
//       Renders a --changefeed file as human-readable schema deltas.
//   import    --nodes FILE[,FILE...] --edges FILE[,FILE...] --out GRAPH
//       Imports neo4j-admin style CSVs into a graph file.
//   generate  --dataset NAME [--scale S] [--seed N] --out GRAPH
//       Generates one of the paper's synthetic datasets (POLE, MB6, HET.IO,
//       FIB25, ICIJ, CORD19, LDBC, IYP).
//   validate  --graph FILE --schema FILE.pgs [--strict]
//       Validates a graph against a PG-Schema file.
//   client    --graph FILE (--port N | --port-file FILE) [--batches N]
//             [--out PREFIX] [--loose] [--stop-after K] [--save-state PATH]
//             [--load-state PATH] [--session ID] [--changefeed-out FILE]
//             [discover knobs]
//       Streams a graph file into a running pghived daemon batch by batch
//       and fetches the discovered schema over the wire; with --out also
//       writes PREFIX.pgs and PREFIX.xsd. Discovery knobs (--method,
//       --threads, ...) are forwarded to create-session. The result is
//       byte-identical to a local `discover --batches N` run with the same
//       knobs (pinned by the service e2e tests and the CI smoke step).
//       --stop-after K streams only the first K batches; --save-state asks
//       the server to serialize the session to a server-side file, and
//       --load-state resumes from one (skipping the batches it holds) — the
//       CI crash smoke SIGKILLs pghived between the two. --session ID
//       resumes an EXISTING session instead (one the daemon restored from
//       its --checkpoint-dir after a SIGTERM): the client asks session-info
//       for the batch count and streams the rest, no state file involved.
//       --changefeed-out FILE writes the session's full changefeed (from
//       version 1, served from the daemon's feed segments when older than
//       the in-memory backlog) as raw binary records.
//   drift     (--feed FILE | (--port N | --port-file FILE) --session ID)
//             [--from V] [--timeout-ms T] [--fail-on-alert]
//       Scans a changefeed — a segment/--changefeed file or a live pghived
//       session — and flags schema drift: property retypes and cardinality
//       flips (non-widening transitions, only reachable via instance
//       decay/removal). --fail-on-alert exits 1 when anything was flagged.
//
// Exit code 0 on success (and, for validate, on conformance), 1 otherwise.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/options.h"
#include "core/pghive.h"
#include "core/pgschema_parser.h"
#include "core/schema_diff.h"
#include "core/serialize.h"
#include "core/validator.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/csv_import.h"
#include "pg/graph_io.h"
#include "service/client.h"
#include "util/parse.h"

namespace {

using namespace pghive;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    std::string value = "true";
    size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.options[key] = value;
  }
  return args;
}

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "pghive: %s\n", message.c_str());
  return 1;
}

/// Collects the discovery knobs the shared core parser understands from the
/// command line. Validation (ranges, enum values) lives in one place —
/// core::ApplyOptionFlags + PgHiveOptions::Validate — shared with pghived's
/// create-session path, so CLI and daemon reject exactly the same inputs.
std::map<std::string, std::string> DiscoveryKnobs(const Args& args) {
  std::map<std::string, std::string> knobs;
  for (const char* key : {"method", "threads", "pipeline-depth", "shards",
                          "data-plane", "seed"}) {
    if (args.Has(key)) knobs[key] = args.Get(key);
  }
  if (args.Has("sample-datatypes")) knobs["sample-datatypes"] = "true";
  return knobs;
}

/// Atomically replaces `path` with a fresh SaveState snapshot (write to a
/// temp sibling, then rename), so a crash mid-checkpoint never destroys the
/// previous good checkpoint.
util::Status WriteCheckpoint(const core::PgHive& pipeline,
                             const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IoError("cannot open " + tmp);
    auto status = pipeline.SaveState(out);
    if (!status.ok()) return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return util::Status::Ok();
}

int CmdDiscover(const Args& args) {
  if (!args.Has("graph")) return Fail("discover needs --graph FILE");
  auto loaded = pg::LoadGraphFile(args.Get("graph"));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  pg::PropertyGraph graph = std::move(loaded).value();
  std::printf("loaded %zu nodes, %zu edges\n", graph.num_nodes(),
              graph.num_edges());

  auto options = core::ParsePgHiveOptions(DiscoveryKnobs(args));
  if (!options.ok()) return Fail(options.status().ToString());
  auto num_batches = util::ParseInt64InRange(args.Get("batches", "1"), 1,
                                             1000000, "--batches");
  if (!num_batches.ok()) return Fail(num_batches.status().ToString());
  const std::string checkpoint_to = args.Get("checkpoint-to");
  auto checkpoint_every = util::ParseInt64InRange(
      args.Get("checkpoint-every", "1"), 1, 1000000, "--checkpoint-every");
  if (!checkpoint_every.ok()) return Fail(checkpoint_every.status().ToString());
  const std::string changefeed_path = args.Get("changefeed");
  auto stop_after = util::ParseInt64InRange(args.Get("stop-after", "0"), 0,
                                            1000000, "--stop-after");
  if (!stop_after.ok()) return Fail(stop_after.status().ToString());
  if (*stop_after > 0 && checkpoint_to.empty()) {
    return Fail("--stop-after needs --checkpoint-to (the point is to leave "
                "a resumable snapshot behind)");
  }
  auto created = core::PgHive::Create(&graph, *options);
  if (!created.ok()) return Fail(created.status().ToString());
  core::PgHive& pipeline = **created;

  // Resume: the graph file reload above re-interned every label and key at
  // its original id, so the snapshot's vocabulary is position-consistent
  // and RestoreState reconstructs the mid-stream state exactly.
  uint64_t restored = 0;
  if (args.Has("resume-from")) {
    std::ifstream in(args.Get("resume-from"), std::ios::binary);
    if (!in) return Fail("cannot open " + args.Get("resume-from"));
    auto r = pipeline.RestoreState(in);
    if (!r.ok()) return Fail(r.status().ToString());
    restored = *r;
    std::printf("resumed from %s: %llu batches already merged\n",
                args.Get("resume-from").c_str(),
                static_cast<unsigned long long>(restored));
  }

  std::ofstream feed;
  if (!changefeed_path.empty()) {
    // Fresh runs start a new feed; resumes append to the interrupted one.
    feed.open(changefeed_path,
              std::ios::binary |
                  (restored > 0 ? std::ios::app : std::ios::trunc));
    if (!feed) return Fail("cannot open " + changefeed_path);
  }
  auto emit_diff = [&](const core::SchemaGraph& prev, uint64_t version_from,
                       uint64_t version_to, uint64_t batch) {
    core::SchemaDiff diff =
        core::DiffSchemas(prev, pipeline.schema(), graph.vocab());
    diff.version_from = version_from;
    diff.version_to = version_to;
    diff.batch = batch;
    feed << core::SerializeSchemaDiffBinary(diff);
  };

  const bool stateful = !checkpoint_to.empty() || !changefeed_path.empty() ||
                        restored > 0;
  if (*num_batches <= 1 && !stateful) {
    if (options->pipeline_depth > 1) {
      std::fprintf(stderr,
                   "pghive: warning: --pipeline-depth %lld has no effect "
                   "without --batches > 1 (single-batch discovery has "
                   "nothing to overlap)\n",
                   static_cast<long long>(options->pipeline_depth));
    }
    auto status = pipeline.Run();
    if (!status.ok()) return Fail(status.ToString());
  } else {
    std::vector<pg::GraphBatch> batches = pg::SplitIntoBatches(
        graph, static_cast<size_t>(*num_batches), /*seed=*/1);
    if (restored > batches.size()) {
      return Fail("snapshot has " + std::to_string(restored) +
                  " batches merged but --batches is only " +
                  std::to_string(batches.size()) +
                  "; resume with the original --batches");
    }
    // Checkpoints and feed records are only valid at pipeline barriers, so
    // stateful runs go chunk by chunk: full pipelining within a chunk, a
    // snapshot/diff at each chunk boundary. The changefeed forces chunk
    // size 1 (each merge is one published schema version, and the diff
    // renderer reads the vocabulary, which an overlapped preprocess would
    // be advancing).
    size_t chunk = batches.size();
    if (!changefeed_path.empty()) {
      chunk = 1;
    } else if (!checkpoint_to.empty()) {
      chunk = static_cast<size_t>(*checkpoint_every);
    }
    size_t done = static_cast<size_t>(restored);
    uint64_t version = restored;
    double wall_ms = 0;
    size_t depth = 1;
    // --stop-after simulates an interrupted run deterministically: process
    // that many batches, checkpoint, and exit without finishing.
    const size_t limit = *stop_after > 0
                             ? std::min(batches.size(),
                                        static_cast<size_t>(*stop_after))
                             : batches.size();
    while (done < limit) {
      size_t end = std::min(limit, done + chunk);
      std::vector<pg::GraphBatch> slice(
          std::make_move_iterator(batches.begin() + done),
          std::make_move_iterator(batches.begin() + end));
      core::SchemaGraph prev;
      if (!changefeed_path.empty()) prev = pipeline.schema();
      core::BatchPipeline executor(&pipeline);
      auto status = executor.Run(slice);
      if (!status.ok()) return Fail(status.ToString());
      wall_ms += executor.wall_ms();
      depth = executor.depth();
      done = end;
      if (!changefeed_path.empty()) {
        emit_diff(prev, version, version + 1, done);
        ++version;
      }
      if (!checkpoint_to.empty() &&
          (done % static_cast<size_t>(*checkpoint_every) == 0 ||
           done == limit)) {
        auto saved = WriteCheckpoint(pipeline, checkpoint_to);
        if (!saved.ok()) return Fail(saved.ToString());
      }
    }
    if (done < batches.size()) {
      std::printf("stopped after %zu of %zu batches; resume with "
                  "--resume-from %s\n",
                  done, batches.size(), checkpoint_to.c_str());
      return 0;
    }
    if (pipeline.phase() == core::PgHive::Phase::kIngesting) {
      core::SchemaGraph prev;
      if (!changefeed_path.empty()) prev = pipeline.schema();
      auto status = pipeline.Finish();
      if (!status.ok()) return Fail(status.ToString());
      // Post-processing can retype properties and settle cardinalities, so
      // the feed closes with one record for the finished schema.
      if (!changefeed_path.empty()) {
        emit_diff(prev, version, version + 1, done);
      }
    }
    if (!checkpoint_to.empty()) {
      auto saved = WriteCheckpoint(pipeline, checkpoint_to);
      if (!saved.ok()) return Fail(saved.ToString());
      std::printf("checkpointed state to %s\n", checkpoint_to.c_str());
    }
    if (!changefeed_path.empty() && !feed) {
      return Fail("cannot write " + changefeed_path);
    }
    std::printf("ingested %zu batches (pipeline depth %zu) in %.1f ms\n",
                batches.size() - static_cast<size_t>(restored), depth,
                wall_ms);
  }

  std::printf("%s", core::DescribeSchema(pipeline.schema(), graph.vocab())
                        .c_str());
  std::printf("discovery took %.1f ms (+%.1f ms post-processing)\n",
              pipeline.total_stats().discovery_ms(),
              pipeline.total_stats().post_process_ms);

  core::SchemaMode mode = args.Has("loose") ? core::SchemaMode::kLoose
                                            : core::SchemaMode::kStrict;
  if (args.Has("out")) {
    std::string prefix = args.Get("out");
    std::ofstream pgs(prefix + ".pgs");
    pgs << core::SerializePgSchema(pipeline.schema(), graph.vocab(), mode);
    std::ofstream xsd(prefix + ".xsd");
    xsd << core::SerializeXsd(pipeline.schema(), graph.vocab());
    std::printf("wrote %s.pgs and %s.xsd\n", prefix.c_str(), prefix.c_str());
  }
  return 0;
}

int CmdImport(const Args& args) {
  if (!args.Has("nodes") || !args.Has("out")) {
    return Fail("import needs --nodes FILES and --out GRAPH");
  }
  pg::CsvGraphImporter importer;
  for (const std::string& path : SplitComma(args.Get("nodes"))) {
    auto status = importer.AddNodeFile(path);
    if (!status.ok()) return Fail(path + ": " + status.ToString());
  }
  for (const std::string& path : SplitComma(args.Get("edges"))) {
    auto status = importer.AddEdgeFile(path);
    if (!status.ok()) return Fail(path + ": " + status.ToString());
  }
  pg::PropertyGraph graph = importer.TakeGraph();
  auto status = pg::SaveGraphFile(graph, args.Get("out"));
  if (!status.ok()) return Fail(status.ToString());
  std::printf("imported %zu nodes, %zu edges -> %s\n", graph.num_nodes(),
              graph.num_edges(), args.Get("out").c_str());
  return 0;
}

int CmdGenerate(const Args& args) {
  if (!args.Has("dataset") || !args.Has("out")) {
    return Fail("generate needs --dataset NAME and --out GRAPH");
  }
  auto spec = datasets::ZooDataset(args.Get("dataset"));
  if (!spec.ok()) return Fail(spec.status().ToString());
  double scale = std::atof(args.Get("scale", "1.0").c_str());
  auto seed = util::ParseInt64InRange(args.Get("seed", "42"), 0,
                                      std::numeric_limits<int64_t>::max(),
                                      "--seed");
  if (!seed.ok()) return Fail(seed.status().ToString());
  datasets::Dataset dataset =
      datasets::Generate(spec.value(), scale, static_cast<uint64_t>(*seed));
  auto status = pg::SaveGraphFile(dataset.graph, args.Get("out"));
  if (!status.ok()) return Fail(status.ToString());
  std::printf("generated %s: %zu nodes, %zu edges -> %s\n",
              spec.value().name.c_str(), dataset.graph.num_nodes(),
              dataset.graph.num_edges(), args.Get("out").c_str());
  return 0;
}

/// Resolves --port / --port-file into a port number; 0 when neither flag is
/// present (the caller decides whether that is an error).
util::StatusOr<uint16_t> ResolvePort(const Args& args) {
  if (args.Has("port-file")) {
    std::ifstream in(args.Get("port-file"));
    if (!in) {
      return util::Status::IoError("cannot open " + args.Get("port-file"));
    }
    std::string text;
    in >> text;
    auto parsed = util::ParseInt64InRange(text, 1, 65535, "port file");
    if (!parsed.ok()) return parsed.status();
    return static_cast<uint16_t>(*parsed);
  }
  if (args.Has("port")) {
    auto parsed = util::ParseInt64InRange(args.Get("port"), 1, 65535,
                                          "--port");
    if (!parsed.ok()) return parsed.status();
    return static_cast<uint16_t>(*parsed);
  }
  return static_cast<uint16_t>(0);
}

/// Streams a graph into a running pghived, batch by batch, and fetches the
/// final schema — the wire-borne twin of CmdDiscover. The discovered schema
/// is byte-identical to a local `pghive discover` run with the same knobs
/// (pinned by the service e2e tests and the CI smoke step).
int CmdClient(const Args& args) {
  if (!args.Has("graph")) return Fail("client needs --graph FILE");
  auto resolved_port = ResolvePort(args);
  if (!resolved_port.ok()) return Fail(resolved_port.status().ToString());
  uint16_t port = *resolved_port;
  if (port == 0) return Fail("client needs --port N or --port-file FILE");
  if (args.Has("load-state") && args.Has("session")) {
    return Fail("--load-state and --session are exclusive: one restores a "
                "state file, the other resumes a live (daemon-restored) "
                "session");
  }
  auto num_batches = util::ParseInt64InRange(args.Get("batches", "1"), 1,
                                             1000000, "--batches");
  if (!num_batches.ok()) return Fail(num_batches.status().ToString());

  auto loaded = pg::LoadGraphFile(args.Get("graph"));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  pg::PropertyGraph graph = std::move(loaded).value();
  std::vector<std::string> payloads = service::BuildIngestPayloads(
      graph, static_cast<size_t>(*num_batches), /*seed=*/1);

  auto client = service::PghivedClient::Connect(port);
  if (!client.ok()) return Fail(client.status().ToString());
  std::string session;
  size_t skip = 0;
  if (args.Has("load-state")) {
    // Resume a crashed/saved run: the server restores the snapshot as a new
    // session and tells us how many batches it already holds.
    auto restored = client->LoadState(args.Get("load-state"));
    if (!restored.ok()) return Fail(restored.status().ToString());
    session = restored->id;
    skip = static_cast<size_t>(restored->batches);
    if (skip > payloads.size()) {
      return Fail("restored session already holds " + std::to_string(skip) +
                  " batches but --batches only yields " +
                  std::to_string(payloads.size()));
    }
    std::printf("restored session %s with %zu batches\n", session.c_str(),
                skip);
  } else if (args.Has("session")) {
    // Resume a session the daemon itself restored from --checkpoint-dir:
    // ask how many batches it already holds and stream the remainder.
    auto info = client->SessionInfo(args.Get("session"));
    if (!info.ok()) return Fail(info.status().ToString());
    session = info->id;
    skip = static_cast<size_t>(info->batches);
    if (skip > payloads.size()) {
      return Fail("session " + session + " already holds " +
                  std::to_string(skip) + " batches but --batches only yields " +
                  std::to_string(payloads.size()));
    }
    std::printf("resuming session %s with %zu batches\n", session.c_str(),
                skip);
  } else {
    auto created = client->CreateSession(DiscoveryKnobs(args));
    if (!created.ok()) return Fail(created.status().ToString());
    session = *created;
  }

  size_t limit = payloads.size();
  if (args.Has("stop-after")) {
    auto parsed = util::ParseInt64InRange(
        args.Get("stop-after"), 0, static_cast<int64_t>(payloads.size()),
        "--stop-after");
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    limit = static_cast<size_t>(*parsed);
    if (limit < skip) {
      return Fail("--stop-after " + std::to_string(limit) +
                  " is before the restored batch count " +
                  std::to_string(skip));
    }
  }
  for (size_t i = skip; i < limit; ++i) {
    auto seq = client->IngestBatch(session, payloads[i]);
    if (!seq.ok()) return Fail(seq.status().ToString());
  }
  std::printf("streamed %zu batches to session %s\n", limit - skip,
              session.c_str());

  if (args.Has("save-state")) {
    auto bytes = client->SaveState(session, args.Get("save-state"));
    if (!bytes.ok()) return Fail(bytes.status().ToString());
    std::printf("saved session state to %s (%llu bytes)\n",
                args.Get("save-state").c_str(),
                static_cast<unsigned long long>(*bytes));
  }
  if (limit < payloads.size()) {
    // Partial stream: leave the session open for a later resume (the crash
    // smoke SIGKILLs the server here and restores from --save-state).
    std::printf("stopped after %zu of %zu batches\n", limit, payloads.size());
    return 0;
  }

  auto describe = client->GetSchema(session, "describe");
  if (!describe.ok()) return Fail(describe.status().ToString());
  std::printf("%s", describe->c_str());

  if (args.Has("out")) {
    const std::string prefix = args.Get("out");
    auto pgs = client->GetSchema(session,
                                 args.Has("loose") ? "pgs-loose" : "pgs");
    if (!pgs.ok()) return Fail(pgs.status().ToString());
    auto xsd = client->GetSchema(session, "xsd");
    if (!xsd.ok()) return Fail(xsd.status().ToString());
    std::ofstream pgs_out(prefix + ".pgs");
    pgs_out << *pgs;
    std::ofstream xsd_out(prefix + ".xsd");
    xsd_out << *xsd;
    if (!pgs_out || !xsd_out) return Fail("cannot write " + prefix + ".*");
    std::printf("wrote %s.pgs and %s.xsd\n", prefix.c_str(), prefix.c_str());
  }
  if (args.Has("changefeed-out")) {
    // The full history from version 1. With --checkpoint-dir on the daemon
    // this reaches past the in-memory backlog into the feed segment files;
    // the bytes are the same concatenated records `discover --changefeed`
    // writes, so the two files byte-compare.
    auto feed = client->SubscribeChangefeed(session, /*after_version=*/0,
                                            /*timeout_ms=*/0);
    if (!feed.ok()) return Fail(feed.status().ToString());
    const std::string path = args.Get("changefeed-out");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << *feed;
    if (!out) return Fail("cannot write " + path);
    std::printf("wrote changefeed to %s (%zu bytes)\n", path.c_str(),
                feed->size());
  }
  util::Status closed = client->CloseSession(session);
  if (!closed.ok()) return Fail(closed.ToString());
  return 0;
}

/// Prints a changefeed file (discover --changefeed output) in human form.
int CmdChangefeed(const Args& args) {
  if (!args.Has("feed")) return Fail("changefeed needs --feed FILE");
  std::ifstream in(args.Get("feed"), std::ios::binary);
  if (!in) return Fail("cannot open " + args.Get("feed"));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto records = core::ParseSchemaDiffStream(bytes);
  if (!records.ok()) return Fail(records.status().ToString());
  for (const core::SchemaDiff& diff : *records) {
    std::printf("%s", core::DescribeSchemaDiff(diff).c_str());
  }
  std::printf("%zu changefeed records\n", records->size());
  return 0;
}

/// Scans a changefeed for schema drift — property retypes and cardinality
/// flips — from a feed file (tolerant of a torn tail, as segment files of a
/// crashed daemon can have one) or a live pghived session (catch-up scan:
/// polls subscribe-changefeed until the feed has no newer version).
int CmdDrift(const Args& args) {
  std::vector<core::SchemaDiff> records;
  if (args.Has("feed")) {
    std::ifstream in(args.Get("feed"), std::ios::binary);
    if (!in) return Fail("cannot open " + args.Get("feed"));
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    size_t valid_prefix = 0;
    for (core::SchemaDiffRecord& record :
         core::ScanSchemaDiffStream(bytes, &valid_prefix)) {
      records.push_back(std::move(record.diff));
    }
    if (valid_prefix < bytes.size()) {
      std::fprintf(stderr,
                   "pghive: warning: ignoring %zu trailing bytes of %s "
                   "(torn or corrupt record)\n",
                   bytes.size() - valid_prefix, args.Get("feed").c_str());
    }
  } else if (args.Has("session")) {
    auto resolved_port = ResolvePort(args);
    if (!resolved_port.ok()) return Fail(resolved_port.status().ToString());
    if (*resolved_port == 0) {
      return Fail("drift --session needs --port N or --port-file FILE");
    }
    auto client = service::PghivedClient::Connect(*resolved_port);
    if (!client.ok()) return Fail(client.status().ToString());
    auto from = util::ParseInt64InRange(args.Get("from", "0"), 0,
                                        std::numeric_limits<int64_t>::max(),
                                        "--from");
    if (!from.ok()) return Fail(from.status().ToString());
    auto timeout_ms = util::ParseInt64InRange(args.Get("timeout-ms", "0"), 0,
                                              3600000, "--timeout-ms");
    if (!timeout_ms.ok()) return Fail(timeout_ms.status().ToString());
    uint64_t after = static_cast<uint64_t>(*from);
    for (;;) {
      auto feed = client->SubscribeChangefeed(
          args.Get("session"), after, static_cast<uint64_t>(*timeout_ms));
      if (!feed.ok()) return Fail(feed.status().ToString());
      if (feed->empty()) break;  // Caught up.
      auto parsed = core::ParseSchemaDiffStream(*feed);
      if (!parsed.ok()) return Fail(parsed.status().ToString());
      for (core::SchemaDiff& diff : *parsed) {
        after = std::max(after, diff.version_to);
        records.push_back(std::move(diff));
      }
    }
  } else {
    return Fail("drift needs --feed FILE, or --session ID with --port/"
                "--port-file");
  }

  size_t alert_count = 0;
  for (const core::SchemaDiff& diff : records) {
    for (const core::DriftAlert& alert : core::ScanForDrift(diff)) {
      std::printf("!! %s\n", core::DescribeDriftAlert(alert).c_str());
      ++alert_count;
    }
  }
  std::printf("%zu drift alerts in %zu changefeed records\n", alert_count,
              records.size());
  if (args.Has("fail-on-alert") && alert_count > 0) return 1;
  return 0;
}

int CmdValidate(const Args& args) {
  if (!args.Has("graph") || !args.Has("schema")) {
    return Fail("validate needs --graph FILE and --schema FILE.pgs");
  }
  auto loaded = pg::LoadGraphFile(args.Get("graph"));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  pg::PropertyGraph graph = std::move(loaded).value();

  std::ifstream in(args.Get("schema"));
  if (!in) return Fail("cannot open " + args.Get("schema"));
  std::ostringstream buf;
  buf << in.rdbuf();
  auto schema = core::ParsePgSchema(buf.str(), &graph.vocab());
  if (!schema.ok()) return Fail(schema.status().ToString());

  core::ValidatorOptions options;
  options.mode = args.Has("strict") ? core::SchemaMode::kStrict
                                    : core::SchemaMode::kLoose;
  core::SchemaValidator validator(&schema.value(), options);
  core::ValidationReport report = validator.Validate(graph);
  std::printf("%s\n", report.Summary().c_str());
  for (size_t i = 0; i < report.violations.size() && i < 20; ++i) {
    const core::Violation& v = report.violations[i];
    std::printf("  [%s] %s %llu: %s\n", core::ViolationKindName(v.kind),
                v.is_edge ? "edge" : "node",
                static_cast<unsigned long long>(v.element_id),
                v.detail.c_str());
  }
  return report.conforms() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "discover") return CmdDiscover(args);
  if (args.command == "import") return CmdImport(args);
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "validate") return CmdValidate(args);
  if (args.command == "client") return CmdClient(args);
  if (args.command == "changefeed") return CmdChangefeed(args);
  if (args.command == "drift") return CmdDrift(args);
  std::fprintf(stderr,
               "usage: pghive"
               " <discover|import|generate|validate|client|changefeed|drift>"
               " [options]\n"
               "  discover --graph FILE [--method elsh|minhash] [--batches N]"
               " [--out PREFIX] [--loose] [--threads N] [--pipeline-depth D]"
               " [--data-plane columnar|row] [--shards N]"
               " [--checkpoint-to FILE [--checkpoint-every K]]"
               " [--resume-from FILE] [--changefeed FILE]\n"
               "  import   --nodes a.csv,b.csv --edges rels.csv --out g.pg\n"
               "  generate --dataset POLE [--scale 1.0] [--seed 42] --out g.pg\n"
               "  validate --graph g.pg --schema s.pgs [--strict]\n"
               "  client   --graph FILE (--port N | --port-file FILE)"
               " [--batches N] [--out PREFIX] [--loose] [--stop-after K]"
               " [--save-state PATH] [--load-state PATH] [--session ID]"
               " [--changefeed-out FILE] [discover knobs]\n"
               "  changefeed --feed FILE\n"
               "  drift    (--feed FILE | (--port N | --port-file FILE)"
               " --session ID) [--from V] [--timeout-ms T]"
               " [--fail-on-alert]\n");
  return args.command.empty() ? 1 : 1;
}
