// pghive — command-line front end for the PG-HIVE library.
//
// Subcommands:
//   discover  --graph FILE [--method elsh|minhash] [--batches N]
//             [--out PREFIX] [--loose] [--sample-datatypes] [--threads N]
//             [--pipeline-depth D] [--data-plane columnar|row] [--shards N]
//       --threads 0 (default) uses every hardware thread; --threads 1 runs
//       serially. --pipeline-depth D (default 1) overlaps batch i+1's
//       preprocess with batch i's extract during multi-batch ingest; the
//       discovered schema is identical for every threads/depth combination.
//       --data-plane row keeps the row-at-a-time inner loops instead of the
//       columnar ones; the schema is byte-identical either way.
//       --shards N (default 1) partitions every batch by consistent hashing
//       over node ids and runs the per-shard data plane in parallel; the
//       schema is byte-identical to --shards=1 at every shard count.
//       Discovers the schema of a graph file (pg::SaveGraphFile format) and
//       prints it; with --out also writes PREFIX.pgs and PREFIX.xsd.
//   import    --nodes FILE[,FILE...] --edges FILE[,FILE...] --out GRAPH
//       Imports neo4j-admin style CSVs into a graph file.
//   generate  --dataset NAME [--scale S] [--seed N] --out GRAPH
//       Generates one of the paper's synthetic datasets (POLE, MB6, HET.IO,
//       FIB25, ICIJ, CORD19, LDBC, IYP).
//   validate  --graph FILE --schema FILE.pgs [--strict]
//       Validates a graph against a PG-Schema file.
//
// Exit code 0 on success (and, for validate, on conformance), 1 otherwise.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/pghive.h"
#include "core/pgschema_parser.h"
#include "core/serialize.h"
#include "core/validator.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/csv_import.h"
#include "pg/graph_io.h"

namespace {

using namespace pghive;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    std::string value = "true";
    size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    }
    args.options[key] = value;
  }
  return args;
}

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "pghive: %s\n", message.c_str());
  return 1;
}

/// Strict integer option parsing: the whole value must be a base-10 integer
/// in [min, max]. Returns false on garbage instead of silently falling back
/// (an ignored typo in --batches or --pipeline-depth would quietly change
/// what gets measured).
bool ParseIntOption(const Args& args, const std::string& key, long long min,
                    long long max, long long* out) {
  if (!args.Has(key)) return true;
  const std::string value = args.Get(key);
  char* end = nullptr;
  long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0' || parsed < min ||
      parsed > max) {
    return false;
  }
  *out = parsed;
  return true;
}

int CmdDiscover(const Args& args) {
  if (!args.Has("graph")) return Fail("discover needs --graph FILE");
  auto loaded = pg::LoadGraphFile(args.Get("graph"));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  pg::PropertyGraph graph = std::move(loaded).value();
  std::printf("loaded %zu nodes, %zu edges\n", graph.num_nodes(),
              graph.num_edges());

  core::PgHiveOptions options;
  if (args.Get("method") == "minhash") {
    options.method = core::ClusterMethod::kMinHash;
  }
  if (args.Has("sample-datatypes")) {
    options.datatype_options.sample = true;
  }
  long long threads = 0;
  if (!ParseIntOption(args, "threads", 0, 4096, &threads)) {
    return Fail("--threads must be an integer in [0, 4096] "
                "(0 = hardware threads)");
  }
  options.num_threads = static_cast<size_t>(threads);
  long long depth = 1;
  if (!ParseIntOption(args, "pipeline-depth", 1, 64, &depth)) {
    return Fail("--pipeline-depth must be an integer in [1, 64] "
                "(1 = sequential ingest; higher overlaps the next batch's "
                "preprocess with the current batch's extract)");
  }
  options.pipeline_depth = static_cast<size_t>(depth);
  long long shards = 1;
  if (!ParseIntOption(args, "shards", 1, 4096, &shards)) {
    return Fail("--shards must be an integer in [1, 4096] "
                "(1 = unsharded; higher partitions every batch by "
                "consistent hashing and runs the shards in parallel)");
  }
  options.num_shards = static_cast<size_t>(shards);
  const std::string plane = args.Get("data-plane", "columnar");
  if (plane == "row") {
    options.columnar = false;
  } else if (plane != "columnar") {
    return Fail("--data-plane must be 'columnar' or 'row'");
  }
  long long num_batches = 1;
  if (!ParseIntOption(args, "batches", 1, 1000000, &num_batches)) {
    return Fail("--batches must be an integer in [1, 1000000]");
  }
  core::PgHive pipeline(&graph, options);
  if (num_batches <= 1) {
    if (depth > 1) {
      std::fprintf(stderr,
                   "pghive: warning: --pipeline-depth %lld has no effect "
                   "without --batches > 1 (single-batch discovery has "
                   "nothing to overlap)\n",
                   depth);
    }
    auto status = pipeline.Run();
    if (!status.ok()) return Fail(status.ToString());
  } else {
    std::vector<pg::GraphBatch> batches = pg::SplitIntoBatches(
        graph, static_cast<size_t>(num_batches), /*seed=*/1);
    core::BatchPipeline executor(&pipeline);
    auto status = executor.Run(batches);
    if (!status.ok()) return Fail(status.ToString());
    status = pipeline.Finish();
    if (!status.ok()) return Fail(status.ToString());
    std::printf("ingested %zu batches (pipeline depth %zu) in %.1f ms\n",
                batches.size(), executor.depth(), executor.wall_ms());
  }

  std::printf("%s", core::DescribeSchema(pipeline.schema(), graph.vocab())
                        .c_str());
  std::printf("discovery took %.1f ms (+%.1f ms post-processing)\n",
              pipeline.total_stats().discovery_ms(),
              pipeline.total_stats().post_process_ms);

  core::SchemaMode mode = args.Has("loose") ? core::SchemaMode::kLoose
                                            : core::SchemaMode::kStrict;
  if (args.Has("out")) {
    std::string prefix = args.Get("out");
    std::ofstream pgs(prefix + ".pgs");
    pgs << core::SerializePgSchema(pipeline.schema(), graph.vocab(), mode);
    std::ofstream xsd(prefix + ".xsd");
    xsd << core::SerializeXsd(pipeline.schema(), graph.vocab());
    std::printf("wrote %s.pgs and %s.xsd\n", prefix.c_str(), prefix.c_str());
  }
  return 0;
}

int CmdImport(const Args& args) {
  if (!args.Has("nodes") || !args.Has("out")) {
    return Fail("import needs --nodes FILES and --out GRAPH");
  }
  pg::CsvGraphImporter importer;
  for (const std::string& path : SplitComma(args.Get("nodes"))) {
    auto status = importer.AddNodeFile(path);
    if (!status.ok()) return Fail(path + ": " + status.ToString());
  }
  for (const std::string& path : SplitComma(args.Get("edges"))) {
    auto status = importer.AddEdgeFile(path);
    if (!status.ok()) return Fail(path + ": " + status.ToString());
  }
  pg::PropertyGraph graph = importer.TakeGraph();
  auto status = pg::SaveGraphFile(graph, args.Get("out"));
  if (!status.ok()) return Fail(status.ToString());
  std::printf("imported %zu nodes, %zu edges -> %s\n", graph.num_nodes(),
              graph.num_edges(), args.Get("out").c_str());
  return 0;
}

int CmdGenerate(const Args& args) {
  if (!args.Has("dataset") || !args.Has("out")) {
    return Fail("generate needs --dataset NAME and --out GRAPH");
  }
  auto spec = datasets::ZooDataset(args.Get("dataset"));
  if (!spec.ok()) return Fail(spec.status().ToString());
  double scale = std::atof(args.Get("scale", "1.0").c_str());
  uint64_t seed = std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  datasets::Dataset dataset = datasets::Generate(spec.value(), scale, seed);
  auto status = pg::SaveGraphFile(dataset.graph, args.Get("out"));
  if (!status.ok()) return Fail(status.ToString());
  std::printf("generated %s: %zu nodes, %zu edges -> %s\n",
              spec.value().name.c_str(), dataset.graph.num_nodes(),
              dataset.graph.num_edges(), args.Get("out").c_str());
  return 0;
}

int CmdValidate(const Args& args) {
  if (!args.Has("graph") || !args.Has("schema")) {
    return Fail("validate needs --graph FILE and --schema FILE.pgs");
  }
  auto loaded = pg::LoadGraphFile(args.Get("graph"));
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  pg::PropertyGraph graph = std::move(loaded).value();

  std::ifstream in(args.Get("schema"));
  if (!in) return Fail("cannot open " + args.Get("schema"));
  std::ostringstream buf;
  buf << in.rdbuf();
  auto schema = core::ParsePgSchema(buf.str(), &graph.vocab());
  if (!schema.ok()) return Fail(schema.status().ToString());

  core::ValidatorOptions options;
  options.mode = args.Has("strict") ? core::SchemaMode::kStrict
                                    : core::SchemaMode::kLoose;
  core::SchemaValidator validator(&schema.value(), options);
  core::ValidationReport report = validator.Validate(graph);
  std::printf("%s\n", report.Summary().c_str());
  for (size_t i = 0; i < report.violations.size() && i < 20; ++i) {
    const core::Violation& v = report.violations[i];
    std::printf("  [%s] %s %llu: %s\n", core::ViolationKindName(v.kind),
                v.is_edge ? "edge" : "node",
                static_cast<unsigned long long>(v.element_id),
                v.detail.c_str());
  }
  return report.conforms() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "discover") return CmdDiscover(args);
  if (args.command == "import") return CmdImport(args);
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "validate") return CmdValidate(args);
  std::fprintf(stderr,
               "usage: pghive <discover|import|generate|validate> [options]\n"
               "  discover --graph FILE [--method elsh|minhash] [--batches N]"
               " [--out PREFIX] [--loose] [--threads N] [--pipeline-depth D]"
               " [--data-plane columnar|row] [--shards N]\n"
               "  import   --nodes a.csv,b.csv --edges rels.csv --out g.pg\n"
               "  generate --dataset POLE [--scale 1.0] [--seed 42] --out g.pg\n"
               "  validate --graph g.pg --schema s.pgs [--strict]\n");
  return args.command.empty() ? 1 : 1;
}
