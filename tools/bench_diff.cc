// bench_diff — the CI bench-regression gate.
//
//   bench_diff BASELINE.json CURRENT.json [--threshold=PCT]
//              [--mode=ms|speedup|eps] [--markdown_out=FILE]
//              [--warn_state_in=FILE] [--warn_state_out=FILE]
//
// Compares two bench JSON artifacts (either the bench_micro --speedup_json
// sweep format or google-benchmark --benchmark_out format), prints the
// per-entry delta table, and optionally writes it as markdown (for the
// GitHub job summary).
//
// --mode=ms (default) gates on absolute per-entry milliseconds; --mode=speedup
// gates on the drop in parallel speedup ratios, which divide out the host —
// the robust setting for heterogeneous hosted CI runners. --mode=eps gates on
// drops in absolute throughput (the sweep entries' "eps" elements/sec field),
// which catches a uniform slowdown the ratio gate can't see; like --mode=ms
// it wants fixed hardware or a same-run baseline such as the bench_micro
// --rowcol_json row-vs-columnar pair.
//
// With --warn_state_in / --warn_state_out the gate is warn-then-fail: a
// regression only fails when the same entry is also listed in the state file
// written by the previous run (one entry name per line); a first trip exits 0
// with a warning. Without the state flags every regression fails immediately.
//
// Exit codes: 0 = gate passed (possibly with first-trip warnings), 1 = gate
// failed, 2 = usage or parse error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/bench_diff_lib.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--threshold=PCT] "
               "[--mode=ms|speedup|eps] [--markdown_out=FILE] "
               "[--warn_state_in=FILE] [--warn_state_out=FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path, markdown_path;
  std::string warn_state_in, warn_state_out;
  pghive::tools::GateMode mode = pghive::tools::GateMode::kAbsoluteMs;
  double threshold = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      char* end = nullptr;
      threshold = std::strtod(argv[i] + 12, &end);
      if (end == argv[i] + 12 || *end != '\0') {
        std::fprintf(stderr, "invalid --threshold value: %s\n", argv[i] + 12);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      if (std::strcmp(argv[i] + 7, "ms") == 0) {
        mode = pghive::tools::GateMode::kAbsoluteMs;
      } else if (std::strcmp(argv[i] + 7, "speedup") == 0) {
        mode = pghive::tools::GateMode::kSpeedupRatio;
      } else if (std::strcmp(argv[i] + 7, "eps") == 0) {
        mode = pghive::tools::GateMode::kThroughput;
      } else {
        std::fprintf(stderr, "invalid --mode value: %s\n", argv[i] + 7);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--markdown_out=", 15) == 0) {
      markdown_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--warn_state_in=", 16) == 0) {
      warn_state_in = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--warn_state_out=", 17) == 0) {
      warn_state_out = argv[i] + 17;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty()) return Usage(argv[0]);

  std::string baseline_text, current_text;
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  if (!ReadFile(current_path, &current_text)) {
    std::fprintf(stderr, "cannot read %s\n", current_path.c_str());
    return 2;
  }
  auto baseline = pghive::tools::ParseBenchJson(baseline_text);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                 baseline.status().ToString().c_str());
    return 2;
  }
  if (baseline->empty()) {
    std::fprintf(stderr, "%s: no entries\n", baseline_path.c_str());
    return 2;
  }
  auto current = pghive::tools::ParseBenchJson(current_text);
  if (!current.ok()) {
    std::fprintf(stderr, "%s: %s\n", current_path.c_str(),
                 current.status().ToString().c_str());
    return 2;
  }
  if (current->empty()) {
    std::fprintf(stderr, "%s: no entries\n", current_path.c_str());
    return 2;
  }

  const bool warn_then_fail = !warn_state_in.empty() || !warn_state_out.empty();
  std::vector<std::string> prior;
  if (!warn_state_in.empty()) prior = ReadLines(warn_state_in);

  auto rows = pghive::tools::DiffEntries(*baseline, *current);
  auto regressed = pghive::tools::RegressedNames(rows, threshold, mode);
  auto failures = warn_then_fail
                      ? pghive::tools::ConsecutiveRegressions(regressed, prior)
                      : regressed;

  const bool speedup_mode = mode == pghive::tools::GateMode::kSpeedupRatio;
  const bool eps_mode = mode == pghive::tools::GateMode::kThroughput;
  for (const auto& row : rows) {
    const char* flag = "";
    if (pghive::tools::IsRegression(row, threshold, mode)) {
      bool fails = std::find(failures.begin(), failures.end(), row.name) !=
                   failures.end();
      flag = fails ? "  REGRESSION" : "  WARN";
    }
    if (speedup_mode) {
      std::printf("%-40s %9.2fx -> %9.2fx     %+7.1f%%%s\n", row.name.c_str(),
                  row.base_speedup, row.cur_speedup, row.speedup_drop_pct,
                  flag);
    } else if (eps_mode) {
      std::printf("%-40s %12.0f -> %12.0f e/s %+7.1f%%%s\n", row.name.c_str(),
                  row.base_eps, row.cur_eps, row.eps_drop_pct, flag);
    } else {
      std::printf("%-40s %10.3f -> %10.3f ms  %+7.1f%%%s\n", row.name.c_str(),
                  row.base_ms, row.cur_ms, row.delta_pct, flag);
    }
  }
  if (rows.empty()) {
    std::fprintf(stderr, "warning: no comparable entries between %s and %s\n",
                 baseline_path.c_str(), current_path.c_str());
  }

  if (!warn_state_out.empty()) {
    std::ofstream state(warn_state_out);
    if (!state) {
      std::fprintf(stderr, "cannot write %s\n", warn_state_out.c_str());
      return 2;
    }
    for (const auto& name : regressed) state << name << "\n";
  }

  if (!markdown_path.empty()) {
    std::ofstream md(markdown_path);
    if (!md) {
      std::fprintf(stderr, "cannot write %s\n", markdown_path.c_str());
      return 2;
    }
    md << "### Bench regression gate ("
       << (speedup_mode ? "speedup ratios"
                        : (eps_mode ? "throughput (elements/sec)"
                                    : "absolute ms"))
       << ", threshold "
       << threshold << "%"
       << (warn_then_fail ? ", warn-then-fail" : "") << ")\n\n"
       << pghive::tools::MarkdownTable(rows, threshold, mode,
                                       warn_then_fail ? &prior : nullptr);
  }

  if (!failures.empty()) {
    std::fprintf(stderr, "FAIL: regression past %.1f%% threshold%s:\n",
                 threshold,
                 warn_then_fail ? " in two consecutive runs" : "");
    for (const auto& name : failures) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 1;
  }
  for (const auto& name : regressed) {
    std::fprintf(stderr,
                 "WARN: %s tripped the %.1f%% threshold (first run; gate "
                 "fails if it trips again)\n",
                 name.c_str(), threshold);
  }
  std::printf("OK: gate passed (%zu warning%s)\n", regressed.size(),
              regressed.size() == 1 ? "" : "s");
  return 0;
}
