// bench_diff — the CI bench-regression gate.
//
//   bench_diff BASELINE.json CURRENT.json [--threshold=PCT]
//              [--markdown_out=FILE]
//
// Compares two bench JSON artifacts (either the bench_micro --speedup_json
// sweep format or google-benchmark --benchmark_out format), prints the
// per-entry delta table, and optionally writes it as markdown (for the
// GitHub job summary). Exit codes: 0 = no regression, 1 = at least one
// entry slowed down by more than the threshold (default 10%), 2 = usage or
// parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/bench_diff_lib.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--threshold=PCT] "
               "[--markdown_out=FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path, markdown_path;
  double threshold = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      char* end = nullptr;
      threshold = std::strtod(argv[i] + 12, &end);
      if (end == argv[i] + 12 || *end != '\0') {
        std::fprintf(stderr, "invalid --threshold value: %s\n", argv[i] + 12);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--markdown_out=", 15) == 0) {
      markdown_path = argv[i] + 15;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty()) return Usage(argv[0]);

  std::string baseline_text, current_text, error;
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  if (!ReadFile(current_path, &current_text)) {
    std::fprintf(stderr, "cannot read %s\n", current_path.c_str());
    return 2;
  }
  auto baseline = pghive::tools::ParseBenchJson(baseline_text, &error);
  if (baseline.empty()) {
    std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                 error.empty() ? "no entries" : error.c_str());
    return 2;
  }
  auto current = pghive::tools::ParseBenchJson(current_text, &error);
  if (current.empty()) {
    std::fprintf(stderr, "%s: %s\n", current_path.c_str(),
                 error.empty() ? "no entries" : error.c_str());
    return 2;
  }

  auto rows = pghive::tools::DiffEntries(baseline, current);
  for (const auto& row : rows) {
    bool regressed = pghive::tools::IsRegression(row, threshold);
    std::printf("%-40s %10.3f -> %10.3f ms  %+7.1f%%%s\n", row.name.c_str(),
                row.base_ms, row.cur_ms, row.delta_pct,
                regressed ? "  REGRESSION" : "");
  }
  if (rows.empty()) {
    std::fprintf(stderr, "warning: no comparable entries between %s and %s\n",
                 baseline_path.c_str(), current_path.c_str());
  }

  if (!markdown_path.empty()) {
    std::ofstream md(markdown_path);
    if (!md) {
      std::fprintf(stderr, "cannot write %s\n", markdown_path.c_str());
      return 2;
    }
    md << "### Bench regression gate (threshold " << threshold << "%)\n\n"
       << pghive::tools::MarkdownTable(rows, threshold);
  }

  if (pghive::tools::AnyRegression(rows, threshold)) {
    std::fprintf(stderr, "FAIL: regression past %.1f%% threshold\n",
                 threshold);
    return 1;
  }
  std::printf("OK: no entry slower than %.1f%% over baseline\n", threshold);
  return 0;
}
