#include "tools/bench_diff_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <utility>

namespace pghive::tools {

namespace {

// ---- Minimal JSON reader ------------------------------------------------
//
// Just enough of RFC 8259 for the two bench artifact formats: objects,
// arrays, strings (common escapes), numbers, true/false/null. No external
// dependency, fails soft (parse error -> empty result + message).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipWhitespace();
    return ok && pos_ == text_.size();
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return Fail("expected '{'");
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return Fail("expected '['");
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u':
          // Benchmark names are ASCII; keep a placeholder for exotic input.
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          pos_ += 4;
          out->push_back('?');
          break;
        default: out->push_back(esc); break;
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseLiteral(JsonValue* out) {
    auto match = [&](const char* word) {
      size_t len = std::char_traits<char>::length(word);
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return Fail("unknown literal");
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double value = std::strtod(start, &end);
    if (end == start) return Fail("expected number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---- Format extraction --------------------------------------------------

double AsMillis(double value, const std::string& unit) {
  if (unit == "ns") return value / 1e6;
  if (unit == "us") return value / 1e3;
  if (unit == "s") return value * 1e3;
  return value;  // "ms" (google-benchmark default is ns, always present).
}

bool ExtractSweepStages(const JsonValue& root, std::vector<BenchEntry>* out,
                        std::string* error) {
  const JsonValue* stages = root.Get("stages");
  for (const JsonValue& stage : stages->array) {
    const JsonValue* name = stage.Get("stage");
    const JsonValue* results = stage.Get("results");
    if (name == nullptr || results == nullptr) {
      *error = "stage entry missing 'stage' or 'results'";
      return false;
    }
    for (const JsonValue& result : results->array) {
      const JsonValue* threads = result.Get("threads");
      const JsonValue* ms = result.Get("ms");
      if (threads == nullptr || ms == nullptr) {
        *error = "result entry missing 'threads' or 'ms'";
        return false;
      }
      const JsonValue* speedup = result.Get("speedup");
      const JsonValue* eps = result.Get("eps");
      out->push_back(
          {name->string + "/threads=" +
               std::to_string(static_cast<long long>(threads->number)),
           ms->number, speedup == nullptr ? 0.0 : speedup->number,
           eps == nullptr ? 0.0 : eps->number});
    }
  }
  return true;
}

bool ExtractGoogleBenchmarks(const JsonValue& root,
                             std::vector<BenchEntry>* out,
                             std::string* error) {
  const JsonValue* benchmarks = root.Get("benchmarks");
  for (const JsonValue& bench : benchmarks->array) {
    const JsonValue* name = bench.Get("name");
    const JsonValue* real_time = bench.Get("real_time");
    if (name == nullptr || real_time == nullptr) {
      *error = "benchmark entry missing 'name' or 'real_time'";
      return false;
    }
    // Skip aggregate rows (mean/median/stddev repeats of the same name).
    if (bench.Get("run_type") != nullptr &&
        bench.Get("run_type")->string == "aggregate") {
      continue;
    }
    const JsonValue* unit = bench.Get("time_unit");
    out->push_back({name->string,
                    AsMillis(real_time->number,
                             unit == nullptr ? "ns" : unit->string)});
  }
  return true;
}

}  // namespace

util::StatusOr<std::vector<BenchEntry>> ParseBenchJson(
    const std::string& text) {
  JsonValue root;
  JsonParser parser(text);
  if (!parser.Parse(&root)) {
    return util::Status::ParseError("JSON parse error: " + parser.error());
  }
  std::vector<BenchEntry> entries;
  std::string error;
  bool ok = false;
  if (root.Get("stages") != nullptr) {
    ok = ExtractSweepStages(root, &entries, &error);
  } else if (root.Get("benchmarks") != nullptr) {
    ok = ExtractGoogleBenchmarks(root, &entries, &error);
  } else {
    error = "unrecognized bench JSON: no 'stages' or 'benchmarks' key";
  }
  if (!ok) return util::Status::ParseError(error);
  return entries;
}

std::vector<DiffRow> DiffEntries(const std::vector<BenchEntry>& baseline,
                                 const std::vector<BenchEntry>& current) {
  std::unordered_map<std::string, const BenchEntry*> current_by_name;
  current_by_name.reserve(current.size());
  for (const BenchEntry& entry : current) current_by_name[entry.name] = &entry;
  std::vector<DiffRow> rows;
  for (const BenchEntry& base : baseline) {
    auto it = current_by_name.find(base.name);
    if (it == current_by_name.end()) continue;
    const BenchEntry& cur = *it->second;
    DiffRow row;
    row.name = base.name;
    row.base_ms = base.ms;
    row.cur_ms = cur.ms;
    row.delta_pct = base.ms > 0 ? (cur.ms - base.ms) / base.ms * 100.0 : 0.0;
    if (base.speedup > 0 && cur.speedup > 0) {
      row.base_speedup = base.speedup;
      row.cur_speedup = cur.speedup;
      row.speedup_drop_pct =
          (base.speedup - cur.speedup) / base.speedup * 100.0;
    }
    if (base.eps > 0 && cur.eps > 0) {
      row.base_eps = base.eps;
      row.cur_eps = cur.eps;
      row.eps_drop_pct = (base.eps - cur.eps) / base.eps * 100.0;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

bool IsIdenticalCodeStage(const std::string& entry_name) {
  // Stages whose row and columnar implementations are the same code path,
  // so any eps delta between the planes is measurement noise.
  static constexpr const char* kIdenticalCodeStages[] = {"group"};
  const std::string stage = entry_name.substr(0, entry_name.find('/'));
  for (const char* skip : kIdenticalCodeStages) {
    if (stage == skip) return true;
  }
  return false;
}

bool IsRegression(const DiffRow& row, double threshold_pct, GateMode mode) {
  if (mode == GateMode::kSpeedupRatio) {
    return row.base_speedup > 0 && row.speedup_drop_pct > threshold_pct;
  }
  if (mode == GateMode::kThroughput) {
    if (IsIdenticalCodeStage(row.name)) return false;
    return row.base_eps > 0 && row.eps_drop_pct > threshold_pct;
  }
  return row.base_ms > 0 && row.delta_pct > threshold_pct;
}

bool AnyRegression(const std::vector<DiffRow>& rows, double threshold_pct,
                   GateMode mode) {
  for (const DiffRow& row : rows) {
    if (IsRegression(row, threshold_pct, mode)) return true;
  }
  return false;
}

std::vector<std::string> RegressedNames(const std::vector<DiffRow>& rows,
                                        double threshold_pct, GateMode mode) {
  std::vector<std::string> names;
  for (const DiffRow& row : rows) {
    if (IsRegression(row, threshold_pct, mode)) names.push_back(row.name);
  }
  return names;
}

std::vector<std::string> ConsecutiveRegressions(
    const std::vector<std::string>& regressed_now,
    const std::vector<std::string>& prior) {
  std::vector<std::string> failures;
  for (const std::string& name : regressed_now) {
    if (std::find(prior.begin(), prior.end(), name) != prior.end()) {
      failures.push_back(name);
    }
  }
  return failures;
}

std::string MarkdownTable(const std::vector<DiffRow>& rows,
                          double threshold_pct, GateMode mode,
                          const std::vector<std::string>* prior) {
  std::string out;
  switch (mode) {
    case GateMode::kSpeedupRatio:
      out =
          "| benchmark | baseline speedup | current speedup | drop "
          "| status |\n|---|---:|---:|---:|:---|\n";
      break;
    case GateMode::kThroughput:
      out =
          "| benchmark | baseline (elem/s) | current (elem/s) | drop "
          "| status |\n|---|---:|---:|---:|:---|\n";
      break;
    case GateMode::kAbsoluteMs:
      out =
          "| benchmark | baseline (ms) | current (ms) | delta "
          "| status |\n|---|---:|---:|---:|:---|\n";
      break;
  }
  char buf[96];
  for (const DiffRow& row : rows) {
    if (mode == GateMode::kSpeedupRatio) {
      std::snprintf(buf, sizeof(buf), " | %.2fx | %.2fx | %+.1f%% | ",
                    row.base_speedup, row.cur_speedup, row.speedup_drop_pct);
    } else if (mode == GateMode::kThroughput) {
      std::snprintf(buf, sizeof(buf), " | %.0f | %.0f | %+.1f%% | ",
                    row.base_eps, row.cur_eps, row.eps_drop_pct);
    } else {
      std::snprintf(buf, sizeof(buf), " | %.3f | %.3f | %+.1f%% | ",
                    row.base_ms, row.cur_ms, row.delta_pct);
    }
    const char* status = "✅ ok";
    if (IsRegression(row, threshold_pct, mode)) {
      if (prior == nullptr) {
        status = "❌ regression";
      } else if (std::find(prior->begin(), prior->end(), row.name) !=
                 prior->end()) {
        status = "❌ regression (2nd consecutive run)";
      } else {
        status = "⚠️ warn (first trip)";
      }
    }
    out += "| " + row.name + buf + status + " |\n";
  }
  if (rows.empty()) out += "| _no comparable entries_ | | | | |\n";
  return out;
}

}  // namespace pghive::tools
