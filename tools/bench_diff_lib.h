#ifndef PGHIVE_TOOLS_BENCH_DIFF_LIB_H_
#define PGHIVE_TOOLS_BENCH_DIFF_LIB_H_

#include <string>
#include <vector>

namespace pghive::tools {

/// One timed entry extracted from a bench JSON file, keyed by a stable name
/// ("<stage>/threads=<n>" for the speedup-sweep format, the benchmark name
/// for the google-benchmark format).
struct BenchEntry {
  std::string name;
  double ms = 0.0;
};

/// A matched (baseline, current) pair with its relative delta.
struct DiffRow {
  std::string name;
  double base_ms = 0.0;
  double cur_ms = 0.0;
  double delta_pct = 0.0;  ///< (cur - base) / base * 100; + means slower.
};

/// Parses either supported bench JSON format, detected by its top-level key:
///   - the bench_micro --speedup_json artifact ("stages": per-stage,
///     per-thread-count ms), or
///   - google-benchmark --benchmark_out ("benchmarks": real_time +
///     time_unit, converted to ms).
/// Returns entries in file order; on malformed input returns empty and sets
/// *error.
std::vector<BenchEntry> ParseBenchJson(const std::string& text,
                                       std::string* error);

/// Joins baseline and current by entry name (baseline order). Entries
/// present on only one side are skipped — a changed benchmark set is not a
/// regression.
std::vector<DiffRow> DiffEntries(const std::vector<BenchEntry>& baseline,
                                 const std::vector<BenchEntry>& current);

/// The gate predicate: the row slowed down by strictly more than
/// threshold_pct percent. Rows with a non-positive baseline never regress
/// (no meaningful ratio).
bool IsRegression(const DiffRow& row, double threshold_pct);

/// True if IsRegression holds for any row.
bool AnyRegression(const std::vector<DiffRow>& rows, double threshold_pct);

/// Renders the delta table as GitHub-flavored markdown (for the CI job
/// summary): one row per entry, regressions past the threshold flagged.
std::string MarkdownTable(const std::vector<DiffRow>& rows,
                          double threshold_pct);

}  // namespace pghive::tools

#endif  // PGHIVE_TOOLS_BENCH_DIFF_LIB_H_
