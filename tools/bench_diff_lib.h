#ifndef PGHIVE_TOOLS_BENCH_DIFF_LIB_H_
#define PGHIVE_TOOLS_BENCH_DIFF_LIB_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace pghive::tools {

/// One timed entry extracted from a bench JSON file, keyed by a stable name
/// ("<stage>/threads=<n>" for the speedup-sweep format, the benchmark name
/// for the google-benchmark format).
struct BenchEntry {
  std::string name;
  double ms = 0.0;
  /// Parallel speedup over the 1-thread run of the same stage. Only the
  /// sweep format carries it; 0 means absent.
  double speedup = 0.0;
  /// Absolute throughput in elements per second. Only sweep entries that
  /// carry an "eps" field have it; 0 means absent.
  double eps = 0.0;
};

/// A matched (baseline, current) pair with its relative deltas.
struct DiffRow {
  std::string name;
  double base_ms = 0.0;
  double cur_ms = 0.0;
  double delta_pct = 0.0;  ///< (cur - base) / base * 100; + means slower.
  double base_speedup = 0.0;  ///< 0 when either side lacks a speedup.
  double cur_speedup = 0.0;
  /// (base - cur) / base * 100 on the speedups; + means scaling got worse.
  double speedup_drop_pct = 0.0;
  double base_eps = 0.0;  ///< 0 when either side lacks a throughput.
  double cur_eps = 0.0;
  /// (base - cur) / base * 100 on the throughputs; + means fewer elements
  /// per second now.
  double eps_drop_pct = 0.0;
};

/// What the gate compares. Absolute per-entry milliseconds are only
/// meaningful on fixed hardware; speedup ratios divide out the machine, so
/// they are the robust choice on heterogeneous CI runners. Throughput gates
/// on drops in absolute elements/sec — the counter that catches a data-plane
/// regression the ratio gate can't see (a change that slows every thread
/// count equally keeps its speedups intact); like absolute ms it needs fixed
/// hardware or a same-run baseline (e.g. the row-vs-columnar comparison).
enum class GateMode {
  kAbsoluteMs,
  kSpeedupRatio,
  kThroughput,
};

/// Parses either supported bench JSON format, detected by its top-level key:
///   - the bench_micro --speedup_json artifact ("stages": per-stage,
///     per-thread-count ms), or
///   - google-benchmark --benchmark_out ("benchmarks": real_time +
///     time_unit, converted to ms).
/// Returns entries in file order; kParseError on malformed input (an empty
/// but well-formed file parses to an empty vector).
util::StatusOr<std::vector<BenchEntry>> ParseBenchJson(const std::string& text);

/// Joins baseline and current by entry name (baseline order). Entries
/// present on only one side are skipped — a changed benchmark set is not a
/// regression.
std::vector<DiffRow> DiffEntries(const std::vector<BenchEntry>& baseline,
                                 const std::vector<BenchEntry>& current);

/// True when the entry belongs to a stage that runs identical code on both
/// sides of the row-vs-columnar comparison (currently the `group` stage:
/// signature grouping never touches the data plane, so its elements/sec
/// delta in the --rowcol_json artifact is pure measurement noise). The
/// kThroughput gate skips these entries instead of gating on noise; they
/// still appear in diff tables. Matches the stage prefix of sweep-format
/// names ("group" and "group/threads=8" both match).
bool IsIdenticalCodeStage(const std::string& entry_name);

/// The gate predicate. kAbsoluteMs: the row slowed down by strictly more
/// than threshold_pct percent. kSpeedupRatio: the row's parallel speedup
/// dropped by strictly more than threshold_pct percent. kThroughput: the
/// row's elements/sec dropped by strictly more than threshold_pct percent,
/// except for IsIdenticalCodeStage entries, which never regress in this
/// mode. Rows without a meaningful ratio (non-positive baseline ms, or a
/// side missing speedup/eps data) never regress.
bool IsRegression(const DiffRow& row, double threshold_pct,
                  GateMode mode = GateMode::kAbsoluteMs);

/// True if IsRegression holds for any row.
bool AnyRegression(const std::vector<DiffRow>& rows, double threshold_pct,
                   GateMode mode = GateMode::kAbsoluteMs);

/// Names of the rows IsRegression flags, in row order.
std::vector<std::string> RegressedNames(const std::vector<DiffRow>& rows,
                                        double threshold_pct,
                                        GateMode mode = GateMode::kAbsoluteMs);

/// The warn-then-fail policy: a regression only fails the gate when the
/// same entry already regressed in the previous run (`prior`, that run's
/// RegressedNames); a first trip is a warning. Returns the failing subset
/// of `regressed_now` in order.
std::vector<std::string> ConsecutiveRegressions(
    const std::vector<std::string>& regressed_now,
    const std::vector<std::string>& prior);

/// Renders the delta table as GitHub-flavored markdown (for the CI job
/// summary): one row per entry, regressions past the threshold flagged.
/// kSpeedupRatio tables show the speedup columns instead of raw ms. When
/// `prior` is non-null the warn-then-fail policy is reflected in the status
/// column (first trip = warn, consecutive trip = fail).
std::string MarkdownTable(const std::vector<DiffRow>& rows,
                          double threshold_pct,
                          GateMode mode = GateMode::kAbsoluteMs,
                          const std::vector<std::string>* prior = nullptr);

}  // namespace pghive::tools

#endif  // PGHIVE_TOOLS_BENCH_DIFF_LIB_H_
