// pghived — the PG-HIVE schema-discovery daemon.
//
//   pghived [--port N] [--port-file PATH] [--threads N] [--max-sessions N]
//           [--checkpoint-dir DIR] [--checkpoint-every N]
//
// Listens on 127.0.0.1 (port 0 picks an ephemeral port, written to
// --port-file so scripts can find it) and serves the line protocol described
// in src/service/protocol.h. Every session's discovery compute runs on one
// shared thread pool; SIGINT/SIGTERM trigger a graceful shutdown that stops
// accepting, finishes in-flight requests, and drains every session's queued
// jobs before exiting.
//
// With --checkpoint-dir the daemon is durable on its own authority: every
// session checkpoints to DIR after every --checkpoint-every ingested batches
// (default 1) and once more during the SIGTERM drain, changefeed records
// evicted from the in-memory backlog spill to per-session segment files in
// DIR, and a restarted daemon restores every snapshot it finds there — no
// client save-state/load-state required.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "service/server.h"
#include "util/parse.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

int Fail(const std::string& message) {
  std::fprintf(stderr, "pghived: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Fail("unknown argument '" + arg + "'");
    }
    std::string key = arg.substr(2);
    std::string value;
    size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      return Fail("--" + key + " needs a value");
    }
    // A repeated flag is a typo or a mangled service file, and for a daemon
    // silently taking one of the two values is worse than refusing to start.
    if (!options.emplace(key, value).second) {
      return Fail("duplicate option --" + key);
    }
  }

  pghive::service::PghivedServer::Options server_options;
  std::string port_file;
  for (const auto& [key, value] : options) {
    if (key == "port") {
      auto port = pghive::util::ParseInt64InRange(value, 0, 65535, "--port");
      if (!port.ok()) return Fail(port.status().ToString());
      server_options.port = static_cast<uint16_t>(*port);
    } else if (key == "port-file") {
      port_file = value;
    } else if (key == "threads") {
      auto threads =
          pghive::util::ParseInt64InRange(value, 0, 4096, "--threads");
      if (!threads.ok()) return Fail(threads.status().ToString());
      server_options.threads = static_cast<size_t>(*threads);
    } else if (key == "max-sessions") {
      auto max = pghive::util::ParseInt64InRange(value, 1, 1000000,
                                                 "--max-sessions");
      if (!max.ok()) return Fail(max.status().ToString());
      server_options.max_sessions = static_cast<size_t>(*max);
    } else if (key == "checkpoint-dir") {
      if (value.empty()) return Fail("--checkpoint-dir needs a directory");
      server_options.checkpoint_dir = value;
    } else if (key == "checkpoint-every") {
      auto every = pghive::util::ParseInt64InRange(value, 1, 1000000,
                                                   "--checkpoint-every");
      if (!every.ok()) return Fail(every.status().ToString());
      server_options.checkpoint_every = static_cast<uint64_t>(*every);
    } else {
      return Fail("unknown option --" + key);
    }
  }
  if (options.count("checkpoint-every") && !options.count("checkpoint-dir")) {
    return Fail("--checkpoint-every requires --checkpoint-dir");
  }

  // Handlers must be installed before Start(): once the daemon is reachable
  // (listening, port file written) a SIGTERM must always drain and
  // checkpoint, never take the default die-without-drain disposition.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  pghive::service::PghivedServer server(server_options);
  auto status = server.Start();
  if (!status.ok()) return Fail(status.ToString());
  std::printf("pghived listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << '\n';
    if (!out) return Fail("cannot write " + port_file);
  }

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("pghived: draining and shutting down\n");
  server.Stop();
  return 0;
}
