#!/usr/bin/env python3
"""Per-layer line-coverage soft gate.

Reads a gcovr --json-summary artifact, aggregates line coverage per source
layer (src/<dir>, tools, ...), renders the markdown table for the CI job
summary, and compares each layer against the floors in
tools/coverage_floors.json. A layer below its floor fails the gate (exit 1);
layers without a floor are advisory, so new code starts reporting before it
starts gating.

Degrades gracefully: a missing/unreadable summary (gcovr absent or broken on
the runner) or a missing floors file prints a warning and exits 0 — the gate
must never turn infrastructure trouble into a red build.

Usage: check_coverage.py SUMMARY.json [FLOORS.json]
"""

import collections
import json
import os
import sys


def load_json(path, label):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"> coverage gate skipped: cannot read {label} ({e})")
        return None


def layer_of(filename):
    parts = filename.split("/")
    return "/".join(parts[:2]) if parts[0] == "src" else parts[0]


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    summary = load_json(argv[1], "coverage summary")
    if summary is None:
        return 0
    floors_path = argv[2] if len(argv) > 2 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "coverage_floors.json")
    floors_doc = load_json(floors_path, "coverage floors")
    floors = floors_doc.get("layers", {}) if floors_doc else {}

    layers = collections.defaultdict(lambda: [0, 0])
    for entry in summary.get("files", []):
        layer = layer_of(entry["filename"])
        layers[layer][0] += entry["line_covered"]
        layers[layer][1] += entry["line_total"]

    failures = []
    print("### Line coverage by layer (soft gate)\n")
    print("| layer | lines | covered | % | floor | status |")
    print("|---|---:|---:|---:|---:|:---|")
    for layer in sorted(layers):
        covered, total = layers[layer]
        pct = 100.0 * covered / total if total else 0.0
        floor = floors.get(layer)
        if floor is None:
            status = "advisory (no floor)"
            floor_cell = "—"
        elif pct + 1e-9 < floor:
            status = "❌ below floor"
            floor_cell = f"{floor:.1f}%"
            failures.append((layer, pct, floor))
        else:
            status = "✅ ok"
            floor_cell = f"{floor:.1f}%"
        print(f"| {layer} | {total} | {covered} | {pct:.1f}% | "
              f"{floor_cell} | {status} |")
    covered = sum(v[0] for v in layers.values())
    total = sum(v[1] for v in layers.values())
    pct = 100.0 * covered / total if total else 0.0
    print(f"| **total** | {total} | {covered} | **{pct:.1f}%** | | |")

    if failures:
        print()
        for layer, pct, floor in failures:
            print(f"> ❌ {layer}: {pct:.1f}% is below its {floor:.1f}% floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
