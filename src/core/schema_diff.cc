#include "core/schema_diff.h"

#include <map>
#include <sstream>
#include <utility>

#include "pg/value.h"
#include "util/binio.h"

namespace pghive::core {

namespace {

constexpr char kFeedMagic[4] = {'P', 'G', 'H', 'F'};
constexpr uint8_t kFeedVersion = 1;
constexpr uint32_t kDiffSection = 1;

const char* RequirednessName(Requiredness r) {
  return r == Requiredness::kMandatory ? "MANDATORY" : "OPTIONAL";
}

/// Property-map diff shared by node and edge types. Output order is
/// deterministic: next's key order for added/retyped/requiredness, then
/// prev's key order for removals (both maps are ordered by key id).
std::vector<PropertyDelta> DiffProperties(
    const std::map<pg::PropKeyId, PropertyInfo>& prev,
    const std::map<pg::PropKeyId, PropertyInfo>& next,
    const pg::Vocabulary& vocab) {
  std::vector<PropertyDelta> deltas;
  for (const auto& [key, info] : next) {
    auto it = prev.find(key);
    if (it == prev.end()) {
      PropertyDelta d;
      d.kind = PropertyDelta::Kind::kAdded;
      d.key = vocab.KeyName(key);
      d.new_type = info.data_type;
      d.new_requiredness = info.requiredness;
      deltas.push_back(std::move(d));
      continue;
    }
    if (it->second.data_type != info.data_type) {
      PropertyDelta d;
      d.kind = PropertyDelta::Kind::kRetyped;
      d.key = vocab.KeyName(key);
      d.old_type = it->second.data_type;
      d.new_type = info.data_type;
      deltas.push_back(std::move(d));
    }
    if (it->second.requiredness != info.requiredness) {
      PropertyDelta d;
      d.kind = PropertyDelta::Kind::kRequirednessChanged;
      d.key = vocab.KeyName(key);
      d.old_requiredness = it->second.requiredness;
      d.new_requiredness = info.requiredness;
      deltas.push_back(std::move(d));
    }
  }
  for (const auto& [key, info] : prev) {
    if (next.count(key)) continue;
    PropertyDelta d;
    d.kind = PropertyDelta::Kind::kRemoved;
    d.key = vocab.KeyName(key);
    d.old_type = info.data_type;
    d.old_requiredness = info.requiredness;
    deltas.push_back(std::move(d));
  }
  return deltas;
}

/// All of a type's properties as kAdded (for a new type) or kRemoved (for a
/// vanished one), so a consumer sees the full shape without a lookup.
std::vector<PropertyDelta> WholeTypeProperties(
    const std::map<pg::PropKeyId, PropertyInfo>& props,
    const pg::Vocabulary& vocab, bool removed) {
  std::vector<PropertyDelta> deltas;
  for (const auto& [key, info] : props) {
    PropertyDelta d;
    d.kind =
        removed ? PropertyDelta::Kind::kRemoved : PropertyDelta::Kind::kAdded;
    d.key = vocab.KeyName(key);
    if (removed) {
      d.old_type = info.data_type;
      d.old_requiredness = info.requiredness;
    } else {
      d.new_type = info.data_type;
      d.new_requiredness = info.requiredness;
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

/// Counts elements of `a` not in `b` (both sets ordered the same way).
template <typename Set>
uint64_t CountMissing(const Set& a, const Set& b) {
  uint64_t n = 0;
  for (const auto& x : a) {
    if (!b.count(x)) ++n;
  }
  return n;
}

/// Matches prev/next types by label set with positional pairing inside each
/// set (abstract types all share the empty set), then emits deltas. Works
/// for both NodeType and EdgeType; `extras` fills the edge-only fields.
template <typename Type, typename ExtrasFn>
void DiffTypes(const std::vector<Type>& prev, const std::vector<Type>& next,
               const pg::Vocabulary& vocab, bool is_edge, ExtrasFn extras,
               std::vector<TypeDelta>* out) {
  std::map<std::vector<pg::LabelId>, std::vector<size_t>> prev_by_labels;
  for (size_t i = 0; i < prev.size(); ++i) {
    prev_by_labels[prev[i].labels].push_back(i);
  }
  std::map<std::vector<pg::LabelId>, size_t> next_seen;
  std::vector<bool> prev_matched(prev.size(), false);
  for (size_t i = 0; i < next.size(); ++i) {
    const Type& t = next[i];
    size_t occurrence = next_seen[t.labels]++;
    auto group = prev_by_labels.find(t.labels);
    if (group == prev_by_labels.end() ||
        occurrence >= group->second.size()) {
      TypeDelta d;
      d.kind = TypeDelta::Kind::kAdded;
      d.is_edge = is_edge;
      d.name = t.Name(vocab, i);
      d.instance_delta = static_cast<int64_t>(t.instance_count);
      d.properties = WholeTypeProperties(t.properties, vocab, false);
      extras(static_cast<const Type*>(nullptr), &t, &d);
      out->push_back(std::move(d));
      continue;
    }
    size_t j = group->second[occurrence];
    prev_matched[j] = true;
    const Type& p = prev[j];
    TypeDelta d;
    d.kind = TypeDelta::Kind::kChanged;
    d.is_edge = is_edge;
    d.name = t.Name(vocab, i);
    d.instance_delta = static_cast<int64_t>(t.instance_count) -
                       static_cast<int64_t>(p.instance_count);
    d.properties = DiffProperties(p.properties, t.properties, vocab);
    extras(&p, &t, &d);
    bool changed = d.instance_delta != 0 || !d.properties.empty() ||
                   d.old_cardinality != d.new_cardinality ||
                   d.endpoints_added != 0 || d.endpoints_removed != 0;
    if (changed) out->push_back(std::move(d));
  }
  for (size_t j = 0; j < prev.size(); ++j) {
    if (prev_matched[j]) continue;
    const Type& p = prev[j];
    TypeDelta d;
    d.kind = TypeDelta::Kind::kRemoved;
    d.is_edge = is_edge;
    d.name = p.Name(vocab, j);
    d.instance_delta = -static_cast<int64_t>(p.instance_count);
    d.properties = WholeTypeProperties(p.properties, vocab, true);
    extras(&p, static_cast<const Type*>(nullptr), &d);
    out->push_back(std::move(d));
  }
}

void PutPropertyDelta(std::string* out, const PropertyDelta& d) {
  util::PutU8(out, static_cast<uint8_t>(d.kind));
  util::PutString(out, d.key);
  util::PutU8(out, static_cast<uint8_t>(d.old_type));
  util::PutU8(out, static_cast<uint8_t>(d.new_type));
  util::PutU8(out, static_cast<uint8_t>(d.old_requiredness));
  util::PutU8(out, static_cast<uint8_t>(d.new_requiredness));
}

bool ReadPropertyDelta(util::ByteReader* in, PropertyDelta* d) {
  uint8_t kind = in->ReadU8();
  in->ReadString(&d->key);
  uint8_t old_type = in->ReadU8();
  uint8_t new_type = in->ReadU8();
  uint8_t old_req = in->ReadU8();
  uint8_t new_req = in->ReadU8();
  if (!in->ok() ||
      kind > static_cast<uint8_t>(PropertyDelta::Kind::kRequirednessChanged) ||
      old_type > static_cast<uint8_t>(pg::DataType::kString) ||
      new_type > static_cast<uint8_t>(pg::DataType::kString) || old_req > 1 ||
      new_req > 1) {
    in->Fail();
    return false;
  }
  d->kind = static_cast<PropertyDelta::Kind>(kind);
  d->old_type = static_cast<pg::DataType>(old_type);
  d->new_type = static_cast<pg::DataType>(new_type);
  d->old_requiredness = static_cast<Requiredness>(old_req);
  d->new_requiredness = static_cast<Requiredness>(new_req);
  return true;
}

void PutTypeDelta(std::string* out, const TypeDelta& d) {
  util::PutU8(out, static_cast<uint8_t>(d.kind));
  util::PutU8(out, d.is_edge ? 1 : 0);
  util::PutString(out, d.name);
  util::PutU64(out, static_cast<uint64_t>(d.instance_delta));
  util::PutU64(out, d.properties.size());
  for (const PropertyDelta& p : d.properties) PutPropertyDelta(out, p);
  util::PutU8(out, static_cast<uint8_t>(d.old_cardinality));
  util::PutU8(out, static_cast<uint8_t>(d.new_cardinality));
  util::PutU64(out, d.endpoints_added);
  util::PutU64(out, d.endpoints_removed);
}

bool ReadTypeDelta(util::ByteReader* in, TypeDelta* d) {
  uint8_t kind = in->ReadU8();
  uint8_t is_edge = in->ReadU8();
  in->ReadString(&d->name);
  d->instance_delta = static_cast<int64_t>(in->ReadU64());
  uint64_t num_props = in->ReadU64();
  // Each serialized property delta is at least 6 bytes (kind + empty-string
  // length + four enum bytes); clamp the count before reserving.
  if (!in->SaneCount(num_props, 6)) return false;
  if (kind > static_cast<uint8_t>(TypeDelta::Kind::kChanged) || is_edge > 1) {
    in->Fail();
    return false;
  }
  d->kind = static_cast<TypeDelta::Kind>(kind);
  d->is_edge = is_edge != 0;
  d->properties.resize(num_props);
  for (PropertyDelta& p : d->properties) {
    if (!ReadPropertyDelta(in, &p)) return false;
  }
  uint8_t old_card = in->ReadU8();
  uint8_t new_card = in->ReadU8();
  d->endpoints_added = in->ReadU64();
  d->endpoints_removed = in->ReadU64();
  if (!in->ok() ||
      old_card > static_cast<uint8_t>(CardinalityKind::kManyToMany) ||
      new_card > static_cast<uint8_t>(CardinalityKind::kManyToMany)) {
    in->Fail();
    return false;
  }
  d->old_cardinality = static_cast<CardinalityKind>(old_card);
  d->new_cardinality = static_cast<CardinalityKind>(new_card);
  return true;
}

void DescribeTypeDelta(std::ostringstream* out, const TypeDelta& d) {
  switch (d.kind) {
    case TypeDelta::Kind::kAdded: *out << "+ "; break;
    case TypeDelta::Kind::kRemoved: *out << "- "; break;
    case TypeDelta::Kind::kChanged: *out << "~ "; break;
  }
  *out << (d.is_edge ? "edge " : "node ") << d.name;
  const char* sep = ": ";
  if (d.instance_delta != 0) {
    *out << sep << (d.instance_delta > 0 ? "+" : "") << d.instance_delta
         << " instances";
    sep = ", ";
  }
  for (const PropertyDelta& p : d.properties) {
    *out << sep;
    sep = ", ";
    switch (p.kind) {
      case PropertyDelta::Kind::kAdded:
        *out << "+prop " << p.key << " (" << pg::DataTypeName(p.new_type)
             << " " << RequirednessName(p.new_requiredness) << ")";
        break;
      case PropertyDelta::Kind::kRemoved:
        *out << "-prop " << p.key;
        break;
      case PropertyDelta::Kind::kRetyped:
        *out << "prop " << p.key << " retyped "
             << pg::DataTypeName(p.old_type) << " -> "
             << pg::DataTypeName(p.new_type);
        break;
      case PropertyDelta::Kind::kRequirednessChanged:
        *out << "prop " << p.key << " now "
             << RequirednessName(p.new_requiredness);
        break;
    }
  }
  if (d.is_edge) {
    if (d.old_cardinality != d.new_cardinality) {
      *out << sep << "cardinality " << CardinalityKindName(d.old_cardinality)
           << " -> " << CardinalityKindName(d.new_cardinality);
      sep = ", ";
    }
    if (d.endpoints_added != 0 || d.endpoints_removed != 0) {
      *out << sep << "+" << d.endpoints_added << "/-" << d.endpoints_removed
           << " endpoints";
    }
  }
  *out << "\n";
}

/// Reads one "PGHF" record off `in`, leaving the reader positioned at the
/// next record on success. Shared by the strict stream parser and the
/// tolerant segment-file scanner.
util::Status ReadOneDiffRecord(util::ByteReader* in, SchemaDiff* diff) {
  std::string_view magic = in->ReadBytes(sizeof(kFeedMagic));
  if (!in->ok() || magic != std::string_view(kFeedMagic, sizeof(kFeedMagic))) {
    return util::Status::ParseError("changefeed: bad record magic at byte " +
                                    std::to_string(in->pos()));
  }
  uint8_t version = in->ReadU8();
  if (!in->ok() || version != kFeedVersion) {
    return util::Status::ParseError("changefeed: unsupported record version");
  }
  uint32_t id = 0;
  std::string_view payload;
  if (!util::ReadSection(in, &id, &payload) || id != kDiffSection) {
    return util::Status::ParseError("changefeed: truncated or corrupt record");
  }
  util::ByteReader rec(payload);
  diff->version_from = rec.ReadU64();
  diff->version_to = rec.ReadU64();
  diff->batch = rec.ReadU64();
  for (std::vector<TypeDelta>* deltas :
       {&diff->node_deltas, &diff->edge_deltas}) {
    uint64_t n = rec.ReadU64();
    // A type delta is at least 25 bytes serialized; clamp before resize.
    if (!rec.SaneCount(n, 25)) break;
    deltas->resize(n);
    for (TypeDelta& d : *deltas) {
      if (!ReadTypeDelta(&rec, &d)) break;
    }
    if (!rec.ok()) break;
  }
  if (!rec.ok() || !rec.AtEnd()) {
    return util::Status::ParseError("changefeed: corrupt record payload");
  }
  return util::Status::Ok();
}

}  // namespace

SchemaDiff DiffSchemas(const SchemaGraph& prev, const SchemaGraph& next,
                       const pg::Vocabulary& vocab) {
  SchemaDiff diff;
  DiffTypes(
      prev.node_types(), next.node_types(), vocab, /*is_edge=*/false,
      [](const NodeType*, const NodeType*, TypeDelta*) {}, &diff.node_deltas);
  DiffTypes(
      prev.edge_types(), next.edge_types(), vocab, /*is_edge=*/true,
      [](const EdgeType* p, const EdgeType* n, TypeDelta* d) {
        if (p != nullptr) d->old_cardinality = p->cardinality.kind;
        if (n != nullptr) d->new_cardinality = n->cardinality.kind;
        if (p != nullptr && n != nullptr) {
          d->endpoints_added = CountMissing(n->endpoints, p->endpoints);
          d->endpoints_removed = CountMissing(p->endpoints, n->endpoints);
        } else if (n != nullptr) {
          d->endpoints_added = n->endpoints.size();
        } else {
          d->endpoints_removed = p->endpoints.size();
        }
      },
      &diff.edge_deltas);
  return diff;
}

std::string SerializeSchemaDiffBinary(const SchemaDiff& diff) {
  std::string payload;
  util::PutU64(&payload, diff.version_from);
  util::PutU64(&payload, diff.version_to);
  util::PutU64(&payload, diff.batch);
  util::PutU64(&payload, diff.node_deltas.size());
  for (const TypeDelta& d : diff.node_deltas) PutTypeDelta(&payload, d);
  util::PutU64(&payload, diff.edge_deltas.size());
  for (const TypeDelta& d : diff.edge_deltas) PutTypeDelta(&payload, d);

  std::string out;
  out.append(kFeedMagic, sizeof(kFeedMagic));
  util::PutU8(&out, kFeedVersion);
  util::AppendSection(&out, kDiffSection, payload);
  return out;
}

util::StatusOr<std::vector<SchemaDiff>> ParseSchemaDiffStream(
    const std::string& bytes) {
  std::vector<SchemaDiff> records;
  util::ByteReader in(bytes);
  while (!in.AtEnd()) {
    SchemaDiff diff;
    util::Status status = ReadOneDiffRecord(&in, &diff);
    if (!status.ok()) return status;
    records.push_back(std::move(diff));
  }
  return records;
}

std::vector<SchemaDiffRecord> ScanSchemaDiffStream(std::string_view bytes,
                                                   size_t* valid_prefix) {
  std::vector<SchemaDiffRecord> records;
  size_t offset = 0;
  while (offset < bytes.size()) {
    // A fresh reader per record: ByteReader latches failure, and a failed
    // partial read must not poison the records already recovered.
    util::ByteReader in(bytes.substr(offset));
    SchemaDiffRecord record;
    if (!ReadOneDiffRecord(&in, &record.diff).ok()) break;
    record.offset = offset;
    record.length = in.pos();
    offset += record.length;
    records.push_back(std::move(record));
  }
  if (valid_prefix != nullptr) *valid_prefix = offset;
  return records;
}

bool IsCardinalityWidening(CardinalityKind from, CardinalityKind to) {
  if (from == to || from == CardinalityKind::kUnknown) return true;
  if (to == CardinalityKind::kManyToMany) return true;
  return from == CardinalityKind::kOneToOne &&
         (to == CardinalityKind::kManyToOne ||
          to == CardinalityKind::kOneToMany);
}

std::vector<DriftAlert> ScanForDrift(const SchemaDiff& diff) {
  std::vector<DriftAlert> alerts;
  for (const std::vector<TypeDelta>* deltas :
       {&diff.node_deltas, &diff.edge_deltas}) {
    for (const TypeDelta& t : *deltas) {
      for (const PropertyDelta& p : t.properties) {
        if (p.kind != PropertyDelta::Kind::kRetyped) continue;
        // A property acquiring its first concrete type is refinement, not
        // drift — the datatype twin of the kUnknown cardinality rule. The
        // one-shot pipeline resolves statistics at Finish, so every feed
        // would otherwise flood with NULL -> X alerts on its final record.
        if (p.old_type == pg::DataType::kNull) continue;
        DriftAlert a;
        a.kind = DriftAlert::Kind::kPropertyRetype;
        a.is_edge = t.is_edge;
        a.version_to = diff.version_to;
        a.type_name = t.name;
        a.key = p.key;
        a.old_type = p.old_type;
        a.new_type = p.new_type;
        alerts.push_back(std::move(a));
      }
      // Cardinality only exists on matched edge pairs; added/removed types
      // have one side at kUnknown, which never reads as a flip.
      if (t.is_edge && t.kind == TypeDelta::Kind::kChanged &&
          t.old_cardinality != t.new_cardinality &&
          !IsCardinalityWidening(t.old_cardinality, t.new_cardinality)) {
        DriftAlert a;
        a.kind = DriftAlert::Kind::kCardinalityFlip;
        a.is_edge = true;
        a.version_to = diff.version_to;
        a.type_name = t.name;
        a.old_cardinality = t.old_cardinality;
        a.new_cardinality = t.new_cardinality;
        alerts.push_back(std::move(a));
      }
    }
  }
  return alerts;
}

std::string DescribeDriftAlert(const DriftAlert& alert) {
  std::ostringstream out;
  out << "v" << alert.version_to << " " << (alert.is_edge ? "edge " : "node ")
      << alert.type_name << ": ";
  if (alert.kind == DriftAlert::Kind::kPropertyRetype) {
    out << "property " << alert.key << " retyped "
        << pg::DataTypeName(alert.old_type) << " -> "
        << pg::DataTypeName(alert.new_type);
  } else {
    out << "cardinality flipped " << CardinalityKindName(alert.old_cardinality)
        << " -> " << CardinalityKindName(alert.new_cardinality);
  }
  return out.str();
}

std::string DescribeSchemaDiff(const SchemaDiff& diff) {
  std::ostringstream out;
  out << "== v" << diff.version_from << " -> v" << diff.version_to
      << " (batch " << diff.batch << "): " << diff.node_deltas.size()
      << " node / " << diff.edge_deltas.size() << " edge deltas\n";
  for (const TypeDelta& d : diff.node_deltas) DescribeTypeDelta(&out, d);
  for (const TypeDelta& d : diff.edge_deltas) DescribeTypeDelta(&out, d);
  return out.str();
}

}  // namespace pghive::core
