#include "core/cardinality.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace pghive::core {

Cardinality CardinalityForEdges(const pg::PropertyGraph& graph,
                                const std::vector<uint64_t>& edge_ids) {
  std::unordered_map<pg::NodeId, std::unordered_set<pg::NodeId>> out_targets;
  std::unordered_map<pg::NodeId, std::unordered_set<pg::NodeId>> in_sources;
  for (uint64_t id : edge_ids) {
    const pg::Edge& e = graph.edge(id);
    out_targets[e.src].insert(e.dst);
    in_sources[e.dst].insert(e.src);
  }
  Cardinality c;
  for (const auto& [src, targets] : out_targets) {
    c.max_out = std::max(c.max_out, targets.size());
  }
  for (const auto& [dst, sources] : in_sources) {
    c.max_in = std::max(c.max_in, sources.size());
  }
  c.kind = ClassifyCardinality(c.max_out, c.max_in);
  return c;
}

void ComputeCardinalities(const pg::PropertyGraph& graph,
                          SchemaGraph* schema) {
  for (auto& t : schema->edge_types()) {
    t.cardinality = CardinalityForEdges(graph, t.instances);
  }
}

}  // namespace pghive::core
