#ifndef PGHIVE_CORE_SCHEMA_H_
#define PGHIVE_CORE_SCHEMA_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "pg/graph.h"

namespace pghive::core {

/// Whether a property is present in every instance of its type (§4.4).
enum class Requiredness { kMandatory, kOptional };

/// Edge cardinality classes inferred from max in/out degrees (§4.4).
enum class CardinalityKind {
  kUnknown,
  kOneToOne,    // (1, 1)
  kManyToOne,   // (>1, 1)  -- N:1
  kOneToMany,   // (1, >1)  -- 1:N
  kManyToMany,  // (>1, >1) -- M:N
};

const char* CardinalityKindName(CardinalityKind k);

/// Cardinality constraint C of Def. 3.3: the observed degree bounds.
struct Cardinality {
  size_t max_out = 0;
  size_t max_in = 0;
  CardinalityKind kind = CardinalityKind::kUnknown;
};

/// Classifies (max_out, max_in) into the four cardinality classes.
CardinalityKind ClassifyCardinality(size_t max_out, size_t max_in);

/// A node pattern (Def. 3.5): a label set plus a property-key set.
struct NodePattern {
  std::vector<pg::LabelId> labels;   // Sorted.
  std::vector<pg::PropKeyId> keys;   // Sorted.

  bool operator==(const NodePattern&) const = default;
  uint64_t Hash() const;
};

/// An edge pattern (Def. 3.6): labels, keys, and endpoint label sets.
struct EdgePattern {
  std::vector<pg::LabelId> labels;
  std::vector<pg::PropKeyId> keys;
  std::vector<pg::LabelId> src_labels;
  std::vector<pg::LabelId> dst_labels;

  bool operator==(const EdgePattern&) const = default;
  uint64_t Hash() const;
};

/// Per-property accumulated statistics of a type. Counts drive the
/// mandatory/optional constraint; the data type is filled by the (optional)
/// inference pass.
struct PropertyInfo {
  size_t count = 0;  ///< Number of instances carrying the property.
  pg::DataType data_type = pg::DataType::kNull;
  Requiredness requiredness = Requiredness::kOptional;
};

/// A discovered node type (Def. 3.2) together with its supporting evidence:
/// instance ids, per-property counts, and the distinct patterns it covers.
struct NodeType {
  std::vector<pg::LabelId> labels;  ///< Sorted union; empty => ABSTRACT.
  std::map<pg::PropKeyId, PropertyInfo> properties;
  std::vector<uint64_t> instances;  ///< Node ids assigned to this type.
  size_t instance_count = 0;
  std::set<uint64_t> pattern_hashes;  ///< Distinct NodePattern hashes seen.

  bool is_abstract() const { return labels.empty(); }

  /// The sorted property-key set (K of the type pattern).
  std::vector<pg::PropKeyId> Keys() const;

  /// Display name, e.g. "Person", "Org|Company", "Abstract#3".
  std::string Name(const pg::Vocabulary& vocab, size_t index) const;
};

/// A discovered edge type (Def. 3.3). Endpoints rho_e accumulate as pairs of
/// source/target *node-type label-set tokens* so connectivity survives
/// merging without pointer chasing.
struct EdgeType {
  std::vector<pg::LabelId> labels;
  std::map<pg::PropKeyId, PropertyInfo> properties;
  std::vector<uint64_t> instances;  ///< Edge ids assigned to this type.
  size_t instance_count = 0;
  std::set<uint64_t> pattern_hashes;
  /// Distinct (src token, dst token) endpoint pairs (pg::kNoToken allowed).
  std::set<std::pair<uint32_t, uint32_t>> endpoints;
  Cardinality cardinality;

  bool is_abstract() const { return labels.empty(); }
  std::vector<pg::PropKeyId> Keys() const;
  std::string Name(const pg::Vocabulary& vocab, size_t index) const;
};

/// The schema graph of Def. 3.4: node types, edge types, and connectivity.
/// Also tracks instance -> type assignments for evaluation.
class SchemaGraph {
 public:
  SchemaGraph() = default;

  std::vector<NodeType>& node_types() { return node_types_; }
  const std::vector<NodeType>& node_types() const { return node_types_; }
  std::vector<EdgeType>& edge_types() { return edge_types_; }
  const std::vector<EdgeType>& edge_types() const { return edge_types_; }

  size_t num_node_types() const { return node_types_.size(); }
  size_t num_edge_types() const { return edge_types_.size(); }

  /// instance id -> node type index (dense vectors sized to the graph);
  /// UINT32_MAX for unassigned instances.
  std::vector<uint32_t> NodeAssignment(size_t num_nodes) const;
  std::vector<uint32_t> EdgeAssignment(size_t num_edges) const;

  /// Total distinct labels over node / edge types (schema summary).
  size_t TotalNodeLabels() const;
  size_t TotalEdgeLabels() const;

 private:
  std::vector<NodeType> node_types_;
  std::vector<EdgeType> edge_types_;
};

/// Union-merge of label vectors (sorted inputs -> sorted output).
std::vector<uint32_t> UnionSorted(const std::vector<uint32_t>& a,
                                  const std::vector<uint32_t>& b);

/// Jaccard similarity of two sorted id vectors; 1.0 when both empty.
double JaccardSorted(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_SCHEMA_H_
