#ifndef PGHIVE_CORE_DATATYPE_INFERENCE_H_
#define PGHIVE_CORE_DATATYPE_INFERENCE_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "core/schema.h"
#include "pg/graph.h"
#include "util/thread_pool.h"

namespace pghive::core {

/// Data type inference options (§4.4). With sampling enabled, only a
/// fraction of each property's values is examined ("10% of the properties,
/// and at least 1000"), which trades a small error (Fig. 8) for speed.
struct DataTypeOptions {
  bool sample = false;
  double sample_fraction = 0.1;
  size_t min_sample = 1000;
  uint64_t seed = 13;
};

/// Fills PropertyInfo::data_type for every property of every type by
/// joining the inferred types of observed values (full scan or sampled).
/// Values unseen (e.g. sampling skipped everything) default to STRING.
///
/// With a pool, the per-type scans fan out across workers. Each type draws
/// its sample from an RNG seeded by (options.seed, type kind, type index) —
/// pre-split, never shared — so the inferred types are identical at every
/// pool size (including the serial path).
void InferDataTypes(const pg::PropertyGraph& graph, SchemaGraph* schema,
                    const DataTypeOptions& options = {},
                    util::ThreadPool* pool = nullptr);

/// The sampling error of Fig. 8 for a single property: the fraction of
/// *sampled* values whose individually-inferred type disagrees with the
/// full-scan joined type:
///   error(p) = (1/|S_p|) * sum_{v in S_p} 1[f(v) != f(D_p)].
struct SamplingErrorReport {
  /// One entry per (type, property) pair with at least one value.
  std::vector<double> errors;

  /// Histogram over the paper's bins: [0,0.05), [0.05,0.10), [0.10,0.20),
  /// [0.20,inf). Fractions normalized by the number of properties.
  std::array<double, 4> BinFractions() const;
};

SamplingErrorReport ComputeSamplingErrors(const pg::PropertyGraph& graph,
                                          const SchemaGraph& schema,
                                          const DataTypeOptions& options);

/// Joins the inferred types of all values of `key` across `instances`
/// (exposed for tests). Nodes or edges selected by `edges`.
pg::DataType FullScanType(const pg::PropertyGraph& graph,
                          const std::vector<uint64_t>& instances, bool edges,
                          pg::PropKeyId key);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_DATATYPE_INFERENCE_H_
