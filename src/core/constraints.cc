#include "core/constraints.h"

namespace pghive::core {

namespace {

template <typename TypeT>
void InferForType(TypeT* type) {
  for (auto& [key, info] : type->properties) {
    info.requiredness = (type->instance_count > 0 &&
                         info.count == type->instance_count)
                            ? Requiredness::kMandatory
                            : Requiredness::kOptional;
  }
}

template <typename TypeT>
double FrequencyImpl(const TypeT& type, pg::PropKeyId key) {
  if (type.instance_count == 0) return 0.0;
  auto it = type.properties.find(key);
  if (it == type.properties.end()) return 0.0;
  return static_cast<double>(it->second.count) /
         static_cast<double>(type.instance_count);
}

}  // namespace

void InferPropertyConstraints(SchemaGraph* schema) {
  for (auto& t : schema->node_types()) InferForType(&t);
  for (auto& t : schema->edge_types()) InferForType(&t);
}

double PropertyFrequency(const NodeType& type, pg::PropKeyId key) {
  return FrequencyImpl(type, key);
}

double PropertyFrequency(const EdgeType& type, pg::PropKeyId key) {
  return FrequencyImpl(type, key);
}

}  // namespace pghive::core
