#include "core/statistics.h"

#include <sstream>
#include <unordered_set>

namespace pghive::core {

SchemaStatistics SchemaStatistics::Compute(const pg::PropertyGraph& graph,
                                           const SchemaGraph& schema) {
  SchemaStatistics stats;
  const double total_nodes =
      std::max<size_t>(1, graph.num_nodes());
  const double total_edges =
      std::max<size_t>(1, graph.num_edges());

  for (const NodeType& type : schema.node_types()) {
    NodeTypeStats s;
    s.instance_count = type.instances.size();
    s.selectivity = static_cast<double>(s.instance_count) / total_nodes;
    std::map<pg::PropKeyId, std::unordered_set<std::string>> values;
    std::map<pg::PropKeyId, size_t> present;
    for (uint64_t id : type.instances) {
      for (const auto& [key, value] : graph.node(id).properties.entries()) {
        ++present[key];
        values[key].insert(value.ToString());
      }
    }
    for (const auto& [key, count] : present) {
      s.property_frequency[key] =
          s.instance_count == 0
              ? 0.0
              : static_cast<double>(count) / s.instance_count;
      s.distinct_values[key] = values[key].size();
    }
    stats.node_stats_.push_back(std::move(s));
  }

  for (const EdgeType& type : schema.edge_types()) {
    EdgeTypeStats s;
    s.instance_count = type.instances.size();
    s.selectivity = static_cast<double>(s.instance_count) / total_edges;
    std::unordered_set<pg::NodeId> sources, targets;
    for (uint64_t id : type.instances) {
      sources.insert(graph.edge(id).src);
      targets.insert(graph.edge(id).dst);
    }
    s.distinct_sources = sources.size();
    s.distinct_targets = targets.size();
    s.avg_out_degree = sources.empty()
                           ? 0.0
                           : static_cast<double>(s.instance_count) /
                                 static_cast<double>(sources.size());
    s.avg_in_degree = targets.empty()
                          ? 0.0
                          : static_cast<double>(s.instance_count) /
                                static_cast<double>(targets.size());
    stats.edge_stats_.push_back(std::move(s));
  }
  return stats;
}

double SchemaStatistics::EstimateNodeScan(uint32_t type) const {
  if (type >= node_stats_.size()) return 0.0;
  return static_cast<double>(node_stats_[type].instance_count);
}

double SchemaStatistics::EstimateExpansion(uint32_t edge_type,
                                           double src_nodes) const {
  if (edge_type >= edge_stats_.size()) return 0.0;
  return src_nodes * edge_stats_[edge_type].avg_out_degree;
}

double SchemaStatistics::EstimatePropertyFilter(uint32_t node_type,
                                                pg::PropKeyId key) const {
  if (node_type >= node_stats_.size()) return 0.0;
  const NodeTypeStats& s = node_stats_[node_type];
  auto it = s.property_frequency.find(key);
  if (it == s.property_frequency.end()) return 0.0;
  return static_cast<double>(s.instance_count) * it->second;
}

std::string SchemaStatistics::ToString(const pg::Vocabulary& vocab,
                                       const SchemaGraph& schema) const {
  std::ostringstream out;
  for (size_t t = 0; t < node_stats_.size() && t < schema.num_node_types();
       ++t) {
    const NodeTypeStats& s = node_stats_[t];
    out << "node " << schema.node_types()[t].Name(vocab, t) << ": count="
        << s.instance_count << " sel=" << s.selectivity;
    for (const auto& [key, freq] : s.property_frequency) {
      out << ' ' << vocab.KeyName(key) << "(f=" << freq
          << ",ndv=" << s.distinct_values.at(key) << ')';
    }
    out << '\n';
  }
  for (size_t t = 0; t < edge_stats_.size() && t < schema.num_edge_types();
       ++t) {
    const EdgeTypeStats& s = edge_stats_[t];
    out << "edge " << schema.edge_types()[t].Name(vocab, t) << ": count="
        << s.instance_count << " sel=" << s.selectivity
        << " avg_out=" << s.avg_out_degree << " avg_in=" << s.avg_in_degree
        << '\n';
  }
  return out.str();
}

}  // namespace pghive::core
