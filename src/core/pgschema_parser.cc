#include "core/pgschema_parser.h"

#include <cctype>
#include <cstring>
#include <limits>

namespace pghive::core {

namespace {

// A small hand-rolled recursive-descent tokenizer/parser for the dialect.
class Parser {
 public:
  Parser(const std::string& text, pg::Vocabulary* vocab)
      : text_(text), vocab_(vocab) {}

  util::StatusOr<SchemaGraph> Parse() {
    SkipSpace();
    if (!ConsumeWord("CREATE") || !ConsumeWord("GRAPH") ||
        !ConsumeWord("TYPE")) {
      return Error("expected CREATE GRAPH TYPE");
    }
    (void)Identifier();  // Schema name.
    mode_strict_ = ConsumeWord("STRICT");
    if (!mode_strict_) ConsumeWord("LOOSE");
    if (!Consume('{')) return Error("expected '{'");

    SchemaGraph schema;
    for (;;) {
      SkipSpace();
      if (Consume('}')) break;
      if (AtEnd()) return Error("unexpected end of input");
      util::Status status = ParseElement(&schema);
      if (!status.ok()) return status;
      SkipSpace();
      Consume(',');
    }
    return schema;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }

  void SkipSpace() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      // Skip /* ... */ comments (cardinality annotations).
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '*') {
        size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos) {
          pos_ = text_.size();
          return;
        }
        // Remember the annotation body for the current edge type.
        last_comment_ = text_.substr(pos_ + 2, end - pos_ - 2);
        pos_ = end + 2;
        continue;
      }
      return;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (!AtEnd() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekIs(char c) {
    SkipSpace();
    return !AtEnd() && text_[pos_] == c;
  }

  std::string Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                        text_[pos_] == '_' || text_[pos_] == '#' ||
                        text_[pos_] == '|' || text_[pos_] == '.')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  bool ConsumeWord(const char* word) {
    SkipSpace();
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      size_t after = pos_ + len;
      if (after >= text_.size() ||
          !std::isalnum(static_cast<unsigned char>(text_[after]))) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }

  util::Status Error(const std::string& message) {
    return util::Status::ParseError(message + " at offset " +
                                    std::to_string(pos_));
  }

  // Parses "Label & Label2" into interned ids.
  std::vector<pg::LabelId> ParseLabelSpec() {
    std::vector<pg::LabelId> labels;
    for (;;) {
      std::string name = Identifier();
      if (name.empty()) break;
      labels.push_back(vocab_->InternLabel(name));
      if (!Consume('&')) break;
    }
    pg::NormalizeLabels(&labels);
    return labels;
  }

  // Parses "{k TYPE, OPTIONAL k2 TYPE, OPEN}" into a property map.
  util::Status ParsePropertyBlock(
      std::map<pg::PropKeyId, PropertyInfo>* props) {
    if (!Consume('{')) return util::Status::Ok();  // No properties.
    for (;;) {
      SkipSpace();
      if (Consume('}')) return util::Status::Ok();
      if (AtEnd()) return Error("unterminated property block");
      bool optional = ConsumeWord("OPTIONAL");
      if (ConsumeWord("OPEN")) {
        Consume(',');
        continue;
      }
      std::string key = Identifier();
      if (key.empty()) return Error("expected property key");
      PropertyInfo info;
      info.requiredness =
          optional ? Requiredness::kOptional : Requiredness::kMandatory;
      info.count = optional ? 0 : 1;
      // Optional data type token.
      for (pg::DataType t :
           {pg::DataType::kInteger, pg::DataType::kFloat,
            pg::DataType::kBoolean, pg::DataType::kDate,
            pg::DataType::kDateTime, pg::DataType::kString}) {
        if (ConsumeWord(pg::DataTypeName(t))) {
          info.data_type = t;
          break;
        }
      }
      (*props)[vocab_->InternKey(key)] = info;
      Consume(',');
    }
  }

  // Elements: "(TypeName : Labels {props})" or
  // "(:SrcType)-[TypeName : Labels {props}]->(:DstType)".
  util::Status ParseElement(SchemaGraph* schema) {
    if (!Consume('(')) return Error("expected '('");
    if (PeekIs(':')) {
      // Edge element: "(:Src | Src2)-[...]->(:Dst)".
      Consume(':');
      // Source endpoint type names (ignored for reconstruction beyond
      // existence; endpoints re-derive from names below).
      std::vector<std::string> src_names;
      for (;;) {
        std::string n = Identifier();
        if (n.empty()) break;
        src_names.push_back(n);
        if (!Consume('|')) break;
      }
      if (!Consume(')')) return Error("expected ')' after source");
      if (!Consume('-') || !Consume('[')) return Error("expected '-['");
      EdgeType edge;
      (void)ConsumeWord("ABSTRACT");
      (void)Identifier();  // Type name.
      if (Consume(':')) edge.labels = ParseLabelSpec();
      util::Status status = ParsePropertyBlock(&edge.properties);
      if (!status.ok()) return status;
      if (!Consume(']') || !Consume('-') || !Consume('>')) {
        return Error("expected ']->'");
      }
      if (!Consume('(') || !Consume(':')) return Error("expected '(:'");
      for (;;) {
        std::string n = Identifier();
        if (n.empty()) break;
        if (!Consume('|')) break;
      }
      if (!Consume(')')) return Error("expected ')' after target");
      edge.instance_count = 1;
      for (auto& [key, info] : edge.properties) {
        if (info.requiredness == Requiredness::kMandatory) info.count = 1;
      }
      last_comment_.clear();
      SkipSpace();  // May capture the cardinality comment.
      if (!last_comment_.empty()) {
        std::string c = last_comment_;
        // Trim.
        while (!c.empty() && c.front() == ' ') c.erase(c.begin());
        while (!c.empty() && c.back() == ' ') c.pop_back();
        if (c == "1:1") edge.cardinality.kind = CardinalityKind::kOneToOne;
        if (c == "N:1") edge.cardinality.kind = CardinalityKind::kManyToOne;
        if (c == "1:N") edge.cardinality.kind = CardinalityKind::kOneToMany;
        if (c == "M:N") edge.cardinality.kind = CardinalityKind::kManyToMany;
        // The text only records the class, not the observed maxima — restore
        // the bounds the class implies ("1" sides cap at one, "N"/"M" sides
        // are unbounded) so STRICT validation of a parsed schema enforces
        // the declared class instead of the zero-initialized maxima.
        constexpr size_t kUnbounded = std::numeric_limits<size_t>::max();
        switch (edge.cardinality.kind) {
          case CardinalityKind::kOneToOne:
            edge.cardinality.max_out = 1;
            edge.cardinality.max_in = 1;
            break;
          case CardinalityKind::kManyToOne:  // Many sources per target.
            edge.cardinality.max_out = 1;
            edge.cardinality.max_in = kUnbounded;
            break;
          case CardinalityKind::kOneToMany:  // Many targets per source.
            edge.cardinality.max_out = kUnbounded;
            edge.cardinality.max_in = 1;
            break;
          case CardinalityKind::kManyToMany:
            edge.cardinality.max_out = kUnbounded;
            edge.cardinality.max_in = kUnbounded;
            break;
          case CardinalityKind::kUnknown:
            break;
        }
      }
      schema->edge_types().push_back(std::move(edge));
      return util::Status::Ok();
    }

    // Node element.
    NodeType node;
    (void)ConsumeWord("ABSTRACT");
    (void)Identifier();  // Type name.
    if (Consume(':')) node.labels = ParseLabelSpec();
    util::Status status = ParsePropertyBlock(&node.properties);
    if (!status.ok()) return status;
    if (!Consume(')')) return Error("expected ')'");
    node.instance_count = 1;
    for (auto& [key, info] : node.properties) {
      if (info.requiredness == Requiredness::kMandatory) info.count = 1;
    }
    schema->node_types().push_back(std::move(node));
    return util::Status::Ok();
  }

  const std::string& text_;
  pg::Vocabulary* vocab_;
  size_t pos_ = 0;
  bool mode_strict_ = false;
  std::string last_comment_;
};

}  // namespace

util::StatusOr<SchemaGraph> ParsePgSchema(const std::string& text,
                                        pg::Vocabulary* vocab) {
  PGHIVE_CHECK(vocab != nullptr);
  Parser parser(text, vocab);
  return parser.Parse();
}

}  // namespace pghive::core
