#ifndef PGHIVE_CORE_PGHIVE_H_
#define PGHIVE_CORE_PGHIVE_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive.h"
#include "core/datatype_inference.h"
#include "core/schema.h"
#include "core/type_extraction.h"
#include "core/vectorizer.h"
#include "embed/word2vec.h"
#include "lsh/clustering.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash.h"
#include "pg/batch.h"
#include "pg/graph.h"
#include "pg/shard_plan.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pghive::core {

/// Which LSH family clusters the representation vectors (§4.2).
enum class ClusterMethod { kElsh, kMinHash };

/// Which label embedder feeds the vectorizer (§4.1).
enum class EmbedderKind { kWord2Vec, kHash };

/// End-to-end pipeline options (Algorithm 1 inputs + engineering knobs).
struct PgHiveOptions {
  ClusterMethod method = ClusterMethod::kElsh;
  EmbedderKind embedder = EmbedderKind::kWord2Vec;
  size_t embedding_dim = 8;

  /// Adaptive parameterization (§4.2). When false, the manual values below
  /// are used ("users can always provide their own LSH parameters").
  bool adaptive = true;
  double bucket_length = 2.0;
  size_t num_tables = 20;
  size_t minhash_rows_per_band = 4;
  lsh::Amplification amplification = lsh::Amplification::kAnd;

  /// Jaccard threshold theta of Algorithm 2.
  double jaccard_threshold = 0.9;

  /// postProcessing flag of Algorithm 1: when true, constraints, data types
  /// and cardinalities are refreshed after *every* batch; otherwise only at
  /// Finish().
  bool post_process_each_batch = false;

  /// Data type inference sampling (§4.4).
  DataTypeOptions datatype_options;

  /// Columnar data plane: build a per-batch pg::ColumnStore in preprocess
  /// and run the vectorize / LSH / corpus inner loops over contiguous
  /// columns instead of per-row PropertyMap walks. The discovered schema is
  /// byte-identical either way (the column build interns tokens in the row
  /// path's canonical order); false keeps the row-at-a-time loops for
  /// equivalence tests and benchmarking.
  bool columnar = true;

  /// Scales the adaptive multiplier on alpha when sweeping Fig. 6's grid
  /// (1.0 = the paper's heuristic).
  double alpha_scale = 1.0;

  /// Worker threads for the parallel pipeline stages (Word2Vec training,
  /// vectorization, LSH hashing, the concurrent node/edge tracks, datatype
  /// sampling).
  /// 0 = hardware concurrency, 1 = the serial path. The discovered schema
  /// is bit-identical for every value: parallel loops shard by index and
  /// all RNG seeds are pre-split per shard.
  size_t num_threads = 0;

  /// Cross-batch pipelining for incremental ingest (BatchPipeline): how many
  /// batches may be in flight at once. 1 = today's strictly sequential
  /// ProcessBatch loop; depth k lets batch i+1's preprocess (corpus build,
  /// embedding training, vectorization — the stages that advance the
  /// vocabulary and Word2Vec state, always in batch order) run while batch i
  /// is still clustering/extracting on the coordinator, with up to k-1
  /// prepared batches buffered ahead. The discovered schema is byte-identical
  /// at every depth; depths > 1 only take effect when a thread pool exists
  /// (num_threads != 1).
  size_t pipeline_depth = 1;

  /// In-process sharded discovery: partition every batch into N shards by
  /// consistent hashing over node ids (pg::ShardPlan; edges ride with their
  /// source endpoint), run the per-shard data plane — column-store builds,
  /// vectorization, LSH hashing, candidate evidence scans — on per-shard
  /// thread pools against per-shard contiguous arrays, then fold shard
  /// results in fixed shard order (core::MergeShardCandidates) below the
  /// Algorithm-2 extraction. The discovered schema is byte-identical to
  /// num_shards == 1 at every thread count: the vocabulary/Word2Vec chain
  /// stays global and serial, per-element hashing is position-pure, and the
  /// shard fold restores the unsharded scan order. 1 = no sharding.
  size_t num_shards = 1;

  uint64_t seed = 42;

  /// The single source of truth for knob constraints: thread/shard/pipeline
  /// ranges, embedding dimension, thresholds. Called by the CLI parsers, by
  /// PgHive::Create, and by the pghived session-create path, so every entry
  /// point rejects the same inputs with the same messages.
  util::Status Validate() const;
};

/// Wall-clock breakdown of one batch (drives Figs. 5 and 7).
struct PipelineStats {
  double preprocess_ms = 0;   ///< Corpus + embedding training + vectorize.
  double cluster_ms = 0;      ///< LSH hashing + grouping + candidate build.
  double extract_ms = 0;      ///< Algorithm 2 merge.
  double post_process_ms = 0; ///< Constraints + datatypes + cardinalities.
  size_t node_clusters = 0;   ///< Clusters before merging.
  size_t edge_clusters = 0;
  AdaptiveChoice node_params; ///< The (b, T) actually used for nodes.
  AdaptiveChoice edge_params;

  double total_ms() const {
    return preprocess_ms + cluster_ms + extract_ms + post_process_ms;
  }
  /// Time until type discovery (the paper's Fig. 5 measures up to and
  /// including type extraction, excluding post-processing).
  double discovery_ms() const {
    return preprocess_ms + cluster_ms + extract_ms;
  }
};

/// The PG-HIVE schema-discovery pipeline (Algorithm 1). Construct once per
/// graph, then either call Run() for static discovery or feed batches with
/// ProcessBatch() for incremental discovery, ending with Finish().
class PgHive {
 public:
  /// Lifecycle of one hive (the session state machine pghived builds on):
  /// batches may only be fed while kIngesting; Finish() moves to kFinished,
  /// after which every mutating call returns FailedPrecondition; a failed
  /// stage moves to kFailed, which is terminal the same way.
  enum class Phase { kIngesting, kFinished, kFailed };

  /// `shared_pool` (optional, non-owning, must outlive the hive) runs this
  /// hive's parallel stages on an external pool instead of a private one —
  /// how pghived multiplexes many sessions onto one worker pool. When null,
  /// the hive owns a pool sized by options.num_threads as before.
  PgHive(pg::PropertyGraph* graph, PgHiveOptions options,
         util::ThreadPool* shared_pool = nullptr);
  ~PgHive();

  PgHive(const PgHive&) = delete;
  PgHive& operator=(const PgHive&) = delete;

  /// Validating factory: rejects a null graph and options that fail
  /// PgHiveOptions::Validate() instead of aborting in the constructor.
  static util::StatusOr<std::unique_ptr<PgHive>> Create(
      pg::PropertyGraph* graph, PgHiveOptions options,
      util::ThreadPool* shared_pool = nullptr);

  /// Static mode: one full batch plus post-processing.
  util::Status Run();

  /// Incremental mode (§4.6): vectorize + cluster the batch, merge the
  /// extracted candidate types into the running schema. Equivalent to
  /// ProcessPrepared(PreprocessBatch(batch)). Taken by value because the
  /// prepared batch owns its id lists (a pipeline requirement); move in to
  /// skip the copy.
  util::Status ProcessBatch(pg::GraphBatch batch);

  /// The output of the preprocess stage, ready for cluster + extract. Owns
  /// everything the later stages need (feature matrices, the vectorizer
  /// with its warmed token caches — including the edge endpoint tokens the
  /// candidate builder reads), so ProcessPrepared never touches the
  /// vocabulary or the embedder — the two pieces of state the *next*
  /// batch's PreprocessBatch mutates.
  struct PreparedBatch {
    pg::GraphBatch batch;
    std::unique_ptr<Vectorizer> vectorizer;
    FeatureMatrix node_features;
    FeatureMatrix edge_features;
    double preprocess_ms = 0;  ///< Wall time of the preprocess stage.

    /// One shard's slice of the data plane (num_shards > 1 only): the shard
    /// batch, its own vectorizer over per-shard column stores, and the
    /// shard-local feature rows that were scattered into the global
    /// node_features / edge_features matrices above by parent-batch
    /// position.
    struct ShardPrepared {
      pg::ShardBatch shard;
      std::unique_ptr<Vectorizer> vectorizer;
      FeatureMatrix node_features;
      FeatureMatrix edge_features;
    };
    /// Empty when num_shards == 1; the unsharded `vectorizer` above is null
    /// when this is non-empty.
    std::vector<ShardPrepared> shards;
  };

  /// Stage (b) of Algorithm 1 on its own: trains/refreshes the label
  /// embedding on the batch and builds its representation vectors.
  ///
  /// Sequencing contract: this is the only stage that mutates cross-batch
  /// state (label-set token interning and the incremental Word2Vec model),
  /// so calls must happen in batch order and never concurrently with each
  /// other. They MAY overlap a previous batch's ProcessPrepared — that pair
  /// shares only the read-only graph and the thread pool, which is exactly
  /// the overlap BatchPipeline exploits.
  ///
  /// By value for the same reason as ProcessBatch: the returned
  /// PreparedBatch owns the id lists so it can outlive the caller's loop
  /// iteration (the pipeline hands it to another thread).
  PreparedBatch PreprocessBatch(pg::GraphBatch batch);

  /// Stages (c)-(g): LSH clustering, candidate build, Algorithm 2 merge into
  /// the running schema, and optional per-batch post-processing. Must be
  /// called in batch order (the schema merge is order-defined); reads no
  /// vocabulary or embedder state.
  util::Status ProcessPrepared(PreparedBatch prepared);

  /// Runs the post-processing passes (constraints, data types,
  /// cardinalities) on the current schema and moves the hive to kFinished:
  /// afterwards ProcessBatch/ProcessPrepared/Run/Finish all return
  /// FailedPrecondition.
  util::Status Finish();

  /// Where the hive is in its lifecycle (see Phase).
  Phase phase() const { return phase_; }
  /// Batches merged into the schema so far.
  size_t batches_processed() const { return batches_processed_; }

  const SchemaGraph& schema() const { return schema_; }
  SchemaGraph& mutable_schema() { return schema_; }

  /// node id -> node type index (UINT32_MAX if unseen). For evaluation.
  std::vector<uint32_t> NodeAssignment() const;
  std::vector<uint32_t> EdgeAssignment() const;

  /// Stats of the most recent batch.
  const PipelineStats& last_stats() const { return last_stats_; }
  /// Cumulative stats over all batches.
  const PipelineStats& total_stats() const { return total_stats_; }

  const PgHiveOptions& options() const { return options_; }

  /// The execution pool (null when running serially with num_threads == 1).
  /// Either the shared pool passed at construction or the owned one.
  util::ThreadPool* pool() const { return pool_; }

  /// Writes a versioned snapshot of the full cross-batch discovery state:
  /// the vocabulary (all three interners), the incremental Word2Vec weights,
  /// the running schema, cumulative statistics, the options fingerprint, and
  /// the batch cursor. Format: "PGHS" magic + u32 version, then CRC-framed
  /// util/binio sections, so a flipped bit or truncated file is rejected on
  /// restore instead of silently corrupting discovery. Snapshotting is only
  /// meaningful at a batch boundary (between ProcessBatch calls, or after a
  /// BatchPipeline::Run returned) — mid-pipeline the preprocess of a later
  /// batch may already have advanced the vocabulary. A failed hive cannot be
  /// snapshotted.
  util::Status SaveState(std::ostream& out) const;

  /// Restores a SaveState snapshot into a freshly created hive: same
  /// discovery-relevant options (method, embedder, dim, LSH parameters,
  /// thresholds, datatype sampling, seed — execution-plan knobs like
  /// threads/pipeline-depth/shards/data-plane may differ, their byte-
  /// identity contracts make them free to change across a resume), zero
  /// batches processed, and a graph whose vocabulary is position-consistent
  /// with the snapshot (empty, or reloaded from the same graph file).
  /// Returns the number of batches the snapshotted run had already merged;
  /// continuing with the remaining batches reproduces the uninterrupted
  /// run's schema byte for byte. On failure the hive may be partially
  /// mutated and must be discarded.
  util::StatusOr<uint64_t> RestoreState(std::istream& in);

 private:
  lsh::ClusterSet ClusterNodes(const pg::GraphBatch& batch,
                               const FeatureMatrix& features,
                               Vectorizer* vectorizer);
  lsh::ClusterSet ClusterEdges(const pg::GraphBatch& batch,
                               const FeatureMatrix& features,
                               Vectorizer* vectorizer);

  // Adaptive/manual LSH parameter choice, shared by the fused and sharded
  // cluster paths so both apply the exact same seeds and clamps. Each also
  // records the choice in last_stats_.
  lsh::EuclideanLshParams NodeElshParams(const FeatureMatrix& features);
  lsh::EuclideanLshParams EdgeElshParams(const FeatureMatrix& features);
  lsh::MinHashParams NodeMinHashParams(const FeatureMatrix& features);
  lsh::MinHashParams EdgeMinHashParams(const FeatureMatrix& features);

  // Sharded discovery (num_shards > 1). Preprocess runs the global serial
  // vocabulary/Word2Vec chain, partitions the batch, builds per-shard
  // vectorizers/features on per-shard pools, and gathers feature rows into
  // the global matrices by parent-batch position; the cluster stages hash
  // per shard, scatter signatures by position, and group globally; the
  // candidate stages scan per shard and fold (core::MergeShardCandidates)
  // back into the unsharded scan order.
  PreparedBatch PreprocessSharded(pg::GraphBatch batch);
  lsh::ClusterSet ClusterNodesSharded(PreparedBatch& prepared);
  lsh::ClusterSet ClusterEdgesSharded(PreparedBatch& prepared);
  std::vector<CandidateType> ShardedNodeCandidates(
      const PreparedBatch& prepared, const lsh::ClusterSet& clusters);
  std::vector<CandidateType> ShardedEdgeCandidates(
      const PreparedBatch& prepared, const lsh::ClusterSet& clusters);
  util::ThreadPool* ShardPool(size_t shard) const {
    return shard_pools_.empty() ? nullptr : shard_pools_[shard].get();
  }

  pg::PropertyGraph* graph_;
  PgHiveOptions options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;  // owned_pool_.get() or the shared pool.
  std::unique_ptr<pg::ShardPlan> shard_plan_;  // Non-null iff num_shards > 1.
  // Per-shard pools (num_shards entries, ~num_threads/num_shards workers
  // each; a null entry means that shard works inline on its caller). Empty
  // when unsharded or when the hive itself is serial.
  std::vector<std::unique_ptr<util::ThreadPool>> shard_pools_;
  SchemaGraph schema_;
  std::unique_ptr<embed::LabelEmbedder> embedder_;
  embed::Word2Vec* word2vec_ = nullptr;  // Non-null iff kWord2Vec.
  PipelineStats last_stats_;
  PipelineStats total_stats_;
  size_t batches_processed_ = 0;
  Phase phase_ = Phase::kIngesting;
};

/// One-call convenience wrapper: discover the schema of `graph` with the
/// given options (static mode).
util::StatusOr<SchemaGraph> DiscoverSchema(pg::PropertyGraph* graph,
                                         const PgHiveOptions& options = {});

/// Reads only the options section out of a PgHive::SaveState snapshot —
/// how pghived's load-state path learns which options to construct the
/// restored session with before any heavy state is touched. Verifies the
/// header, the section framing/CRC, and the parsed options themselves
/// (PgHiveOptions::Validate).
util::StatusOr<PgHiveOptions> ReadSnapshotOptions(const std::string& bytes);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_PGHIVE_H_
