#include "core/serialize.h"

#include <cctype>
#include <sstream>

#include "util/binio.h"

namespace pghive::core {

namespace {

std::string SanitizeIdentifier(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) return "T";
  return out;
}

std::string LabelSpec(const pg::Vocabulary& vocab,
                      const std::vector<pg::LabelId>& labels) {
  std::string out;
  for (pg::LabelId l : labels) {
    out += " & ";
    out += vocab.LabelName(l);
  }
  if (!out.empty()) out = out.substr(3);
  return out;
}

template <typename TypeT>
std::string PropertyBlock(const pg::Vocabulary& vocab, const TypeT& type,
                          SchemaMode mode) {
  if (type.properties.empty()) return "";
  std::string out = " {";
  bool first = true;
  for (const auto& [key, info] : type.properties) {
    if (!first) out += ", ";
    first = false;
    if (mode == SchemaMode::kStrict &&
        info.requiredness == Requiredness::kOptional) {
      out += "OPTIONAL ";
    }
    out += vocab.KeyName(key);
    if (mode == SchemaMode::kStrict) {
      out.push_back(' ');
      out += pg::DataTypeName(info.data_type == pg::DataType::kNull
                                  ? pg::DataType::kString
                                  : info.data_type);
    }
  }
  if (mode == SchemaMode::kLoose) out += ", OPEN";
  out += "}";
  return out;
}

}  // namespace

std::string SerializePgSchema(const SchemaGraph& schema,
                              const pg::Vocabulary& vocab, SchemaMode mode) {
  std::ostringstream out;
  out << "CREATE GRAPH TYPE PgHiveSchema "
      << (mode == SchemaMode::kStrict ? "STRICT" : "LOOSE") << " {\n";
  bool first = true;
  for (size_t i = 0; i < schema.node_types().size(); ++i) {
    const NodeType& t = schema.node_types()[i];
    if (!first) out << ",\n";
    first = false;
    std::string type_name = SanitizeIdentifier(t.Name(vocab, i)) + "Type";
    out << "  (" << (t.is_abstract() ? "ABSTRACT " : "") << type_name;
    if (!t.labels.empty()) out << " : " << LabelSpec(vocab, t.labels);
    out << PropertyBlock(vocab, t, mode) << ")";
  }
  for (size_t i = 0; i < schema.edge_types().size(); ++i) {
    const EdgeType& t = schema.edge_types()[i];
    if (!first) out << ",\n";
    first = false;
    std::string type_name = SanitizeIdentifier(t.Name(vocab, i)) + "EdgeType";
    // Endpoint spec: the union of source/target tokens observed.
    auto token_list = [&](bool src_side) {
      std::string spec;
      std::set<uint32_t> tokens;
      for (const auto& [s, d] : t.endpoints) {
        uint32_t tok = src_side ? s : d;
        if (tok != pg::kNoToken) tokens.insert(tok);
      }
      bool f = true;
      for (uint32_t tok : tokens) {
        if (!f) spec += " | ";
        f = false;
        spec += SanitizeIdentifier(vocab.TokenName(tok)) + "Type";
      }
      if (spec.empty()) spec = "ANY";
      return spec;
    };
    out << "  (:" << token_list(true) << ")-[";
    if (t.is_abstract()) out << "ABSTRACT ";
    out << type_name;
    if (!t.labels.empty()) out << " : " << LabelSpec(vocab, t.labels);
    out << PropertyBlock(vocab, t, mode) << "]->(:" << token_list(false)
        << ")";
    if (mode == SchemaMode::kStrict &&
        t.cardinality.kind != CardinalityKind::kUnknown) {
      out << " /* " << CardinalityKindName(t.cardinality.kind) << " */";
    }
  }
  out << "\n}\n";
  return out.str();
}

const char* XsdTypeName(pg::DataType t) {
  switch (t) {
    case pg::DataType::kInteger:
      return "xs:long";
    case pg::DataType::kFloat:
      return "xs:double";
    case pg::DataType::kBoolean:
      return "xs:boolean";
    case pg::DataType::kDate:
      return "xs:date";
    case pg::DataType::kDateTime:
      return "xs:dateTime";
    case pg::DataType::kNull:
    case pg::DataType::kString:
      return "xs:string";
  }
  return "xs:string";
}

std::string SerializeXsd(const SchemaGraph& schema,
                         const pg::Vocabulary& vocab) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n";
  auto emit_properties = [&](const std::map<pg::PropKeyId, PropertyInfo>& props) {
    for (const auto& [key, info] : props) {
      out << "      <xs:attribute name=\""
          << SanitizeIdentifier(vocab.KeyName(key)) << "\" type=\""
          << XsdTypeName(info.data_type) << "\" use=\""
          << (info.requiredness == Requiredness::kMandatory ? "required"
                                                            : "optional")
          << "\"/>\n";
    }
  };
  for (size_t i = 0; i < schema.node_types().size(); ++i) {
    const NodeType& t = schema.node_types()[i];
    out << "  <xs:element name=\"" << SanitizeIdentifier(t.Name(vocab, i))
        << "\">\n    <xs:complexType>\n";
    emit_properties(t.properties);
    out << "    </xs:complexType>\n  </xs:element>\n";
  }
  for (size_t i = 0; i < schema.edge_types().size(); ++i) {
    const EdgeType& t = schema.edge_types()[i];
    out << "  <xs:element name=\"" << SanitizeIdentifier(t.Name(vocab, i))
        << "_edge\">\n    <xs:complexType>\n";
    emit_properties(t.properties);
    out << "      <xs:attribute name=\"source\" type=\"xs:IDREF\" "
           "use=\"required\"/>\n"
        << "      <xs:attribute name=\"target\" type=\"xs:IDREF\" "
           "use=\"required\"/>\n";
    if (t.cardinality.kind != CardinalityKind::kUnknown) {
      out << "      <!-- cardinality: "
          << CardinalityKindName(t.cardinality.kind) << " -->\n";
    }
    out << "    </xs:complexType>\n  </xs:element>\n";
  }
  out << "</xs:schema>\n";
  return out.str();
}

std::string DescribeSchema(const SchemaGraph& schema,
                           const pg::Vocabulary& vocab) {
  std::ostringstream out;
  out << "Schema: " << schema.num_node_types() << " node types, "
      << schema.num_edge_types() << " edge types\n";
  for (size_t i = 0; i < schema.node_types().size(); ++i) {
    const NodeType& t = schema.node_types()[i];
    out << "  node " << t.Name(vocab, i) << " [" << t.instance_count
        << " instances, " << t.pattern_hashes.size() << " patterns]";
    for (const auto& [key, info] : t.properties) {
      out << ' ' << vocab.KeyName(key) << ':'
          << pg::DataTypeName(info.data_type)
          << (info.requiredness == Requiredness::kMandatory ? "!" : "?");
    }
    out << '\n';
  }
  for (size_t i = 0; i < schema.edge_types().size(); ++i) {
    const EdgeType& t = schema.edge_types()[i];
    out << "  edge " << t.Name(vocab, i) << " [" << t.instance_count
        << " instances, " << CardinalityKindName(t.cardinality.kind) << "]";
    for (const auto& [key, info] : t.properties) {
      out << ' ' << vocab.KeyName(key) << ':'
          << pg::DataTypeName(info.data_type)
          << (info.requiredness == Requiredness::kMandatory ? "!" : "?");
    }
    out << '\n';
  }
  return out.str();
}

namespace {

// --- Binary schema snapshot ------------------------------------------------
//
// Everything is little-endian and length-prefixed (util/binio framing);
// there are no implicit sizes, so a reader can validate the payload before
// building any structure.

constexpr char kBinaryMagic[4] = {'P', 'G', 'H', 'B'};
constexpr uint32_t kBinaryVersion = 1;

using util::ByteReader;
using util::PutU32;
using util::PutU32Vector;
using util::PutU64;
using util::PutU64Set;
using util::PutU64Vector;
using util::PutU8;

void PutProperties(std::string* out,
                   const std::map<pg::PropKeyId, PropertyInfo>& props) {
  PutU64(out, props.size());
  for (const auto& [key, info] : props) {
    PutU32(out, key);
    PutU64(out, info.count);
    PutU8(out, static_cast<uint8_t>(info.data_type));
    PutU8(out, info.requiredness == Requiredness::kMandatory ? 1 : 0);
  }
}

bool ReadProperties(ByteReader* in,
                    std::map<pg::PropKeyId, PropertyInfo>* props) {
  uint64_t n = in->ReadU64();
  if (!in->SaneCount(n, 14)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    pg::PropKeyId key = in->ReadU32();
    PropertyInfo info;
    info.count = in->ReadU64();
    uint8_t type = in->ReadU8();
    if (type > static_cast<uint8_t>(pg::DataType::kString)) {
      in->Fail();
      return false;
    }
    info.data_type = static_cast<pg::DataType>(type);
    info.requiredness =
        in->ReadU8() != 0 ? Requiredness::kMandatory : Requiredness::kOptional;
    (*props)[key] = info;
  }
  return in->ok();
}

}  // namespace

std::string SerializeSchemaBinary(const SchemaGraph& schema) {
  std::string out;
  out.append(kBinaryMagic, sizeof(kBinaryMagic));
  PutU32(&out, kBinaryVersion);
  PutU64(&out, schema.num_node_types());
  PutU64(&out, schema.num_edge_types());
  for (const NodeType& t : schema.node_types()) {
    PutU32Vector(&out, t.labels);
    PutProperties(&out, t.properties);
    PutU64Vector(&out, t.instances);
    PutU64(&out, t.instance_count);
    PutU64Set(&out, t.pattern_hashes);
  }
  for (const EdgeType& t : schema.edge_types()) {
    PutU32Vector(&out, t.labels);
    PutProperties(&out, t.properties);
    PutU64Vector(&out, t.instances);
    PutU64(&out, t.instance_count);
    PutU64Set(&out, t.pattern_hashes);
    PutU64(&out, t.endpoints.size());
    for (const auto& [src, dst] : t.endpoints) {
      PutU32(&out, src);
      PutU32(&out, dst);
    }
    PutU64(&out, t.cardinality.max_out);
    PutU64(&out, t.cardinality.max_in);
    PutU8(&out, static_cast<uint8_t>(t.cardinality.kind));
  }
  return out;
}

util::StatusOr<SchemaGraph> ParseSchemaBinary(const std::string& bytes) {
  ByteReader in(bytes);
  if (!in.Has(sizeof(kBinaryMagic)) ||
      bytes.compare(0, sizeof(kBinaryMagic), kBinaryMagic,
                    sizeof(kBinaryMagic)) != 0) {
    return util::Status::ParseError("schema binary: bad magic");
  }
  in.ReadBytes(sizeof(kBinaryMagic));
  uint32_t version = in.ReadU32();
  if (version != kBinaryVersion) {
    return util::Status::ParseError("schema binary: unsupported version " +
                                    std::to_string(version));
  }
  uint64_t num_node_types = in.ReadU64();
  uint64_t num_edge_types = in.ReadU64();
  SchemaGraph schema;
  for (uint64_t i = 0; i < num_node_types && in.ok(); ++i) {
    NodeType t;
    if (!in.ReadU32Vector(&t.labels) || !ReadProperties(&in, &t.properties) ||
        !in.ReadU64Vector(&t.instances)) {
      break;
    }
    t.instance_count = in.ReadU64();
    if (!in.ReadU64Set(&t.pattern_hashes) || !in.ok()) break;
    schema.node_types().push_back(std::move(t));
  }
  for (uint64_t i = 0; i < num_edge_types && in.ok(); ++i) {
    EdgeType t;
    // Each field stops the parse immediately on a bad length prefix, so a
    // corrupt early field can never let a later untrusted count through.
    if (!in.ReadU32Vector(&t.labels) || !ReadProperties(&in, &t.properties) ||
        !in.ReadU64Vector(&t.instances)) {
      break;
    }
    t.instance_count = in.ReadU64();
    if (!in.ReadU64Set(&t.pattern_hashes)) break;
    uint64_t num_endpoints = in.ReadU64();
    if (!in.SaneCount(num_endpoints, 8)) break;
    for (uint64_t e = 0; e < num_endpoints && in.ok(); ++e) {
      uint32_t src = in.ReadU32();
      uint32_t dst = in.ReadU32();
      t.endpoints.emplace(src, dst);
    }
    t.cardinality.max_out = in.ReadU64();
    t.cardinality.max_in = in.ReadU64();
    uint8_t kind = in.ReadU8();
    if (kind > static_cast<uint8_t>(CardinalityKind::kManyToMany)) {
      return util::Status::ParseError("schema binary: bad cardinality kind");
    }
    t.cardinality.kind = static_cast<CardinalityKind>(kind);
    if (!in.ok()) break;
    schema.edge_types().push_back(std::move(t));
  }
  if (!in.ok() || schema.num_node_types() != num_node_types ||
      schema.num_edge_types() != num_edge_types || !in.AtEnd()) {
    return util::Status::ParseError(
        "schema binary: truncated or trailing payload");
  }
  return schema;
}

}  // namespace pghive::core
