// PgHive::SaveState / RestoreState — the full-state snapshot behind
// `pghive discover --resume-from/--checkpoint-to` and the pghived
// save-state/load-state verbs.
//
// Layout: "PGHS" magic + u32 format version, then CRC-framed util/binio
// sections (id + length + payload + CRC-32). Section ids are stable;
// unknown ids are skipped so the format can grow within a version. The
// snapshot captures exactly the state PreprocessBatch advances across
// batches (vocabulary interners, Word2Vec weights) plus the running schema,
// the cumulative stats, the options fingerprint, and the batch cursor —
// everything else in the pipeline is derived per batch from these.

#include <istream>
#include <map>
#include <ostream>
#include <utility>

#include "core/pghive.h"
#include "core/serialize.h"
#include "embed/word2vec.h"
#include "util/binio.h"

namespace pghive::core {

namespace {

constexpr char kStateMagic[4] = {'P', 'G', 'H', 'S'};
constexpr uint32_t kStateVersion = 1;

// Section ids. Never renumber; add new ids at the end.
constexpr uint32_t kOptionsSection = 1;
constexpr uint32_t kVocabSection = 2;
constexpr uint32_t kEmbedderSection = 3;
constexpr uint32_t kSchemaSection = 4;
constexpr uint32_t kStatsSection = 5;
constexpr uint32_t kCursorSection = 6;

std::string SerializeOptionsPayload(const PgHiveOptions& o) {
  std::string out;
  util::PutU8(&out, static_cast<uint8_t>(o.method));
  util::PutU8(&out, static_cast<uint8_t>(o.embedder));
  util::PutU64(&out, o.embedding_dim);
  util::PutU8(&out, o.adaptive ? 1 : 0);
  util::PutF64(&out, o.bucket_length);
  util::PutU64(&out, o.num_tables);
  util::PutU64(&out, o.minhash_rows_per_band);
  util::PutU8(&out, static_cast<uint8_t>(o.amplification));
  util::PutF64(&out, o.jaccard_threshold);
  util::PutU8(&out, o.post_process_each_batch ? 1 : 0);
  util::PutU8(&out, o.datatype_options.sample ? 1 : 0);
  util::PutF64(&out, o.datatype_options.sample_fraction);
  util::PutU64(&out, o.datatype_options.min_sample);
  util::PutU64(&out, o.datatype_options.seed);
  util::PutU8(&out, o.columnar ? 1 : 0);
  util::PutF64(&out, o.alpha_scale);
  util::PutU64(&out, o.num_threads);
  util::PutU64(&out, o.pipeline_depth);
  util::PutU64(&out, o.num_shards);
  util::PutU64(&out, o.seed);
  return out;
}

util::StatusOr<PgHiveOptions> ParseOptionsPayload(std::string_view payload) {
  util::ByteReader in(payload);
  PgHiveOptions o;
  uint8_t method = in.ReadU8();
  uint8_t embedder = in.ReadU8();
  o.embedding_dim = in.ReadU64();
  o.adaptive = in.ReadU8() != 0;
  o.bucket_length = in.ReadF64();
  o.num_tables = in.ReadU64();
  o.minhash_rows_per_band = in.ReadU64();
  uint8_t amplification = in.ReadU8();
  o.jaccard_threshold = in.ReadF64();
  o.post_process_each_batch = in.ReadU8() != 0;
  o.datatype_options.sample = in.ReadU8() != 0;
  o.datatype_options.sample_fraction = in.ReadF64();
  o.datatype_options.min_sample = in.ReadU64();
  o.datatype_options.seed = in.ReadU64();
  o.columnar = in.ReadU8() != 0;
  o.alpha_scale = in.ReadF64();
  o.num_threads = in.ReadU64();
  o.pipeline_depth = in.ReadU64();
  o.num_shards = in.ReadU64();
  o.seed = in.ReadU64();
  if (!in.ok() || !in.AtEnd()) {
    return util::Status::ParseError("state snapshot: corrupt options section");
  }
  if (method > static_cast<uint8_t>(ClusterMethod::kMinHash) ||
      embedder > static_cast<uint8_t>(EmbedderKind::kHash) ||
      amplification > static_cast<uint8_t>(lsh::Amplification::kOr)) {
    return util::Status::ParseError("state snapshot: bad options enum value");
  }
  o.method = static_cast<ClusterMethod>(method);
  o.embedder = static_cast<EmbedderKind>(embedder);
  o.amplification = static_cast<lsh::Amplification>(amplification);
  util::Status valid = o.Validate();
  if (!valid.ok()) {
    return util::Status::ParseError("state snapshot: invalid options: " +
                                    valid.message());
  }
  return o;
}

void PutAdaptiveChoice(std::string* out, const AdaptiveChoice& c) {
  util::PutF64(out, c.mu);
  util::PutF64(out, c.alpha);
  util::PutF64(out, c.bucket_length);
  util::PutU64(out, c.num_tables);
}

void ReadAdaptiveChoice(util::ByteReader* in, AdaptiveChoice* c) {
  c->mu = in->ReadF64();
  c->alpha = in->ReadF64();
  c->bucket_length = in->ReadF64();
  c->num_tables = in->ReadU64();
}

void PutStats(std::string* out, const PipelineStats& s) {
  util::PutF64(out, s.preprocess_ms);
  util::PutF64(out, s.cluster_ms);
  util::PutF64(out, s.extract_ms);
  util::PutF64(out, s.post_process_ms);
  util::PutU64(out, s.node_clusters);
  util::PutU64(out, s.edge_clusters);
  PutAdaptiveChoice(out, s.node_params);
  PutAdaptiveChoice(out, s.edge_params);
}

void ReadStats(util::ByteReader* in, PipelineStats* s) {
  s->preprocess_ms = in->ReadF64();
  s->cluster_ms = in->ReadF64();
  s->extract_ms = in->ReadF64();
  s->post_process_ms = in->ReadF64();
  s->node_clusters = in->ReadU64();
  s->edge_clusters = in->ReadU64();
  ReadAdaptiveChoice(in, &s->node_params);
  ReadAdaptiveChoice(in, &s->edge_params);
}

/// Knobs that change what schema discovery computes — a resume with any of
/// these differing would not reproduce the uninterrupted run. Execution-plan
/// knobs (threads, pipeline depth, shards, data plane) are deliberately
/// excluded: their byte-identity contracts are pinned by the determinism
/// suites, so a snapshot taken at --threads 8 restores fine at --threads 1.
util::Status CheckDiscoveryOptionsMatch(const PgHiveOptions& have,
                                        const PgHiveOptions& snap) {
  auto mismatch = [](const std::string& knob) {
    return util::Status::FailedPrecondition(
        "state snapshot: option '" + knob +
        "' differs from the snapshotted run; resume with the original "
        "discovery options");
  };
  if (have.method != snap.method) return mismatch("method");
  if (have.embedder != snap.embedder) return mismatch("embedder");
  if (have.embedding_dim != snap.embedding_dim) {
    return mismatch("embedding-dim");
  }
  if (have.adaptive != snap.adaptive) return mismatch("adaptive");
  if (have.bucket_length != snap.bucket_length) {
    return mismatch("bucket-length");
  }
  if (have.num_tables != snap.num_tables) return mismatch("num-tables");
  if (have.minhash_rows_per_band != snap.minhash_rows_per_band) {
    return mismatch("minhash-rows-per-band");
  }
  if (have.amplification != snap.amplification) {
    return mismatch("amplification");
  }
  if (have.jaccard_threshold != snap.jaccard_threshold) {
    return mismatch("jaccard-threshold");
  }
  if (have.post_process_each_batch != snap.post_process_each_batch) {
    return mismatch("post-process-each-batch");
  }
  if (have.datatype_options.sample != snap.datatype_options.sample) {
    return mismatch("sample-datatypes");
  }
  if (have.datatype_options.sample_fraction !=
      snap.datatype_options.sample_fraction) {
    return mismatch("sample-fraction");
  }
  if (have.datatype_options.min_sample != snap.datatype_options.min_sample) {
    return mismatch("datatype-min-sample");
  }
  if (have.datatype_options.seed != snap.datatype_options.seed) {
    return mismatch("datatype-seed");
  }
  if (have.alpha_scale != snap.alpha_scale) return mismatch("alpha-scale");
  if (have.seed != snap.seed) return mismatch("seed");
  return util::Status::Ok();
}

/// Splits a full snapshot byte string into header + unique sections.
util::StatusOr<std::map<uint32_t, std::string_view>> ReadSections(
    const std::string& bytes) {
  util::ByteReader in(bytes);
  if (!in.Has(sizeof(kStateMagic)) ||
      bytes.compare(0, sizeof(kStateMagic), kStateMagic,
                    sizeof(kStateMagic)) != 0) {
    return util::Status::ParseError("state snapshot: bad magic");
  }
  in.ReadBytes(sizeof(kStateMagic));
  uint32_t version = in.ReadU32();
  if (!in.ok()) {
    return util::Status::ParseError("state snapshot: truncated header");
  }
  // Forward compatible: newer writers may only *append* optional sections
  // (the required-section layouts are frozen within the "PGHS" magic), so a
  // v1 reader accepts any version >= 1 and skips section ids it does not
  // know. Unknown versions below ours are malformed, not futuristic.
  if (version < kStateVersion) {
    return util::Status::ParseError("state snapshot: unsupported version " +
                                    std::to_string(version));
  }
  std::map<uint32_t, std::string_view> sections;
  while (!in.AtEnd()) {
    uint32_t id = 0;
    std::string_view payload;
    if (!util::ReadSection(&in, &id, &payload)) {
      return util::Status::ParseError(
          "state snapshot: truncated or corrupt section" +
          (id ? " " + std::to_string(id) : std::string()));
    }
    if (!sections.emplace(id, payload).second) {
      return util::Status::ParseError("state snapshot: duplicate section " +
                                      std::to_string(id));
    }
  }
  return sections;
}

}  // namespace

util::Status PgHive::SaveState(std::ostream& out) const {
  if (phase_ == Phase::kFailed) {
    return util::Status::FailedPrecondition(
        "cannot snapshot a failed hive");
  }
  std::string bytes;
  bytes.append(kStateMagic, sizeof(kStateMagic));
  util::PutU32(&bytes, kStateVersion);
  util::AppendSection(&bytes, kOptionsSection,
                      SerializeOptionsPayload(options_));
  std::string vocab;
  graph_->vocab().AppendStateTo(&vocab);
  util::AppendSection(&bytes, kVocabSection, vocab);
  if (word2vec_ != nullptr) {
    std::string weights;
    word2vec_->AppendStateTo(&weights);
    util::AppendSection(&bytes, kEmbedderSection, weights);
  }
  util::AppendSection(&bytes, kSchemaSection, SerializeSchemaBinary(schema_));
  std::string stats;
  PutStats(&stats, last_stats_);
  PutStats(&stats, total_stats_);
  util::AppendSection(&bytes, kStatsSection, stats);
  std::string cursor;
  util::PutU64(&cursor, batches_processed_);
  util::PutU8(&cursor, phase_ == Phase::kFinished ? 1 : 0);
  util::AppendSection(&bytes, kCursorSection, cursor);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return util::Status::IoError("failed to write state snapshot");
  return util::Status::Ok();
}

util::StatusOr<uint64_t> PgHive::RestoreState(std::istream& in) {
  if (phase_ != Phase::kIngesting || batches_processed_ != 0) {
    return util::Status::FailedPrecondition(
        "RestoreState needs a fresh hive: no batches processed yet");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return util::Status::IoError("failed to read state snapshot");
  }
  auto sections = ReadSections(bytes);
  if (!sections.ok()) return sections.status();
  for (uint32_t required : {kOptionsSection, kVocabSection, kSchemaSection,
                            kCursorSection}) {
    if (!sections->count(required)) {
      return util::Status::ParseError("state snapshot: missing section " +
                                      std::to_string(required));
    }
  }

  auto snap_options = ParseOptionsPayload(sections->at(kOptionsSection));
  if (!snap_options.ok()) return snap_options.status();
  util::Status match = CheckDiscoveryOptionsMatch(options_, *snap_options);
  if (!match.ok()) return match;

  const bool want_weights = options_.embedder == EmbedderKind::kWord2Vec;
  if (want_weights != (sections->count(kEmbedderSection) != 0)) {
    return util::Status::ParseError(
        "state snapshot: embedder section " +
        std::string(want_weights ? "missing for" : "present without") +
        " a word2vec hive");
  }

  std::string_view cursor_payload = sections->at(kCursorSection);
  util::ByteReader cursor(cursor_payload);
  uint64_t batches = cursor.ReadU64();
  uint8_t finished = cursor.ReadU8();
  if (!cursor.ok() || !cursor.AtEnd() || finished > 1) {
    return util::Status::ParseError("state snapshot: corrupt cursor section");
  }

  auto schema = ParseSchemaBinary(std::string(sections->at(kSchemaSection)));
  if (!schema.ok()) return schema.status();

  std::string_view stats_payload;
  PipelineStats last_stats;
  PipelineStats total_stats;
  if (sections->count(kStatsSection)) {
    stats_payload = sections->at(kStatsSection);
    util::ByteReader stats(stats_payload);
    ReadStats(&stats, &last_stats);
    ReadStats(&stats, &total_stats);
    if (!stats.ok() || !stats.AtEnd()) {
      return util::Status::ParseError(
          "state snapshot: corrupt stats section");
    }
  }

  // Everything parsed and validated; start mutating. The vocabulary and
  // Word2Vec restores still validate internally (position consistency, dim,
  // matrix shape) and leave their component untouched on failure, but a
  // failure here leaves the hive half-restored — callers must discard it.
  util::Status vocab_status =
      graph_->vocab().RestoreState(sections->at(kVocabSection));
  if (!vocab_status.ok()) return vocab_status;
  if (word2vec_ != nullptr) {
    util::Status weights_status =
        word2vec_->RestoreState(sections->at(kEmbedderSection));
    if (!weights_status.ok()) return weights_status;
    if (word2vec_->num_rows() > graph_->vocab().num_tokens()) {
      return util::Status::ParseError(
          "state snapshot: more embedding rows than vocabulary tokens");
    }
  }
  schema_ = *std::move(schema);
  last_stats_ = last_stats;
  total_stats_ = total_stats;
  batches_processed_ = static_cast<size_t>(batches);
  phase_ = finished != 0 ? Phase::kFinished : Phase::kIngesting;
  return batches;
}

util::StatusOr<PgHiveOptions> ReadSnapshotOptions(const std::string& bytes) {
  auto sections = ReadSections(bytes);
  if (!sections.ok()) return sections.status();
  auto it = sections->find(kOptionsSection);
  if (it == sections->end()) {
    return util::Status::ParseError("state snapshot: missing options section");
  }
  return ParseOptionsPayload(it->second);
}

}  // namespace pghive::core
