#include "core/type_extraction.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/rng.h"
#include "util/status.h"
#include "util/union_find.h"

namespace pghive::core {

namespace {

uint64_t LabelSetKey(const std::vector<pg::LabelId>& labels) {
  uint64_t h = 0x2545F4914F6CDD1DULL;
  for (pg::LabelId l : labels) h = util::HashCombine(h, l + 1);
  return h;
}

// The Jaccard universe for unlabeled-cluster merging. Nodes compare property
// keys only (§4.3); edges also mix in endpoint tokens so property-less edge
// types with different endpoints do not collapse.
std::vector<uint32_t> NodeJaccardSet(const CandidateType& c) { return c.keys; }

std::vector<uint32_t> EdgeJaccardSet(const CandidateType& c) {
  std::vector<uint32_t> set = c.keys;
  // Offset endpoint tokens into a disjoint id range.
  constexpr uint32_t kSrcBase = 0x40000000u;
  constexpr uint32_t kDstBase = 0x80000000u;
  for (const auto& [src, dst] : c.endpoints) {
    if (src != pg::kNoToken) set.push_back(kSrcBase + src);
    if (dst != pg::kNoToken) set.push_back(kDstBase + dst);
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

// Merges candidate `from` into candidate `into` by set union (Lemma 1/2).
void MergeCandidate(const CandidateType& from, CandidateType* into) {
  into->labels = UnionSorted(into->labels, from.labels);
  into->keys = UnionSorted(into->keys, from.keys);
  into->instances.insert(into->instances.end(), from.instances.begin(),
                         from.instances.end());
  into->instance_count += from.instance_count;
  // Merge sorted key-count runs.
  std::vector<std::pair<pg::PropKeyId, size_t>> merged;
  merged.reserve(into->key_counts.size() + from.key_counts.size());
  size_t i = 0, j = 0;
  while (i < into->key_counts.size() || j < from.key_counts.size()) {
    if (j >= from.key_counts.size() ||
        (i < into->key_counts.size() &&
         into->key_counts[i].first < from.key_counts[j].first)) {
      merged.push_back(into->key_counts[i++]);
    } else if (i >= into->key_counts.size() ||
               from.key_counts[j].first < into->key_counts[i].first) {
      merged.push_back(from.key_counts[j++]);
    } else {
      merged.emplace_back(into->key_counts[i].first,
                          into->key_counts[i].second +
                              from.key_counts[j].second);
      ++i;
      ++j;
    }
  }
  into->key_counts = std::move(merged);
  into->pattern_hashes.insert(into->pattern_hashes.end(),
                              from.pattern_hashes.begin(),
                              from.pattern_hashes.end());
  into->endpoints.insert(into->endpoints.end(), from.endpoints.begin(),
                         from.endpoints.end());
}

// Applies a candidate's evidence to a NodeType (union semantics).
void ApplyToNodeType(const CandidateType& c, NodeType* type) {
  type->labels = UnionSorted(type->labels, c.labels);
  for (const auto& [key, count] : c.key_counts) {
    type->properties[key].count += count;
  }
  // Keys present in the pattern but never counted (shouldn't happen, but
  // keep the union property airtight).
  for (pg::PropKeyId key : c.keys) type->properties[key];
  type->instances.insert(type->instances.end(), c.instances.begin(),
                         c.instances.end());
  type->instance_count += c.instance_count;
  for (uint64_t h : c.pattern_hashes) type->pattern_hashes.insert(h);
}

void ApplyToEdgeType(const CandidateType& c, EdgeType* type) {
  type->labels = UnionSorted(type->labels, c.labels);
  for (const auto& [key, count] : c.key_counts) {
    type->properties[key].count += count;
  }
  for (pg::PropKeyId key : c.keys) type->properties[key];
  type->instances.insert(type->instances.end(), c.instances.begin(),
                         c.instances.end());
  type->instance_count += c.instance_count;
  for (uint64_t h : c.pattern_hashes) type->pattern_hashes.insert(h);
  for (const auto& ep : c.endpoints) type->endpoints.insert(ep);
}

template <typename TypeT>
std::vector<uint32_t> TypeJaccardSet(const TypeT& type);

template <>
std::vector<uint32_t> TypeJaccardSet<NodeType>(const NodeType& type) {
  return type.Keys();
}

template <>
std::vector<uint32_t> TypeJaccardSet<EdgeType>(const EdgeType& type) {
  std::vector<uint32_t> set = type.Keys();
  constexpr uint32_t kSrcBase = 0x40000000u;
  constexpr uint32_t kDstBase = 0x80000000u;
  for (const auto& [src, dst] : type.endpoints) {
    if (src != pg::kNoToken) set.push_back(kSrcBase + src);
    if (dst != pg::kNoToken) set.push_back(kDstBase + dst);
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

// Shared skeleton of Algorithm 2 for node and edge types.
template <typename TypeT, typename ApplyFn, typename CandSetFn>
void ExtractTypesImpl(std::vector<CandidateType> candidates,
                      const ExtractionOptions& options,
                      std::vector<TypeT>* types, ApplyFn apply,
                      CandSetFn cand_set) {
  // Index existing types by exact label-set key.
  std::unordered_map<uint64_t, uint32_t> by_label_set;
  for (uint32_t t = 0; t < types->size(); ++t) {
    const TypeT& type = (*types)[t];
    if (!type.labels.empty()) by_label_set[LabelSetKey(type.labels)] = t;
  }

  // Phase 1: labeled candidates merge by identical label set (Alg. 2 l.2-7).
  std::vector<CandidateType> unlabeled;
  for (auto& c : candidates) {
    if (!c.labeled()) {
      unlabeled.push_back(std::move(c));
      continue;
    }
    uint64_t key = LabelSetKey(c.labels);
    auto it = by_label_set.find(key);
    if (it != by_label_set.end()) {
      apply(c, &(*types)[it->second]);
    } else {
      TypeT fresh;
      apply(c, &fresh);
      types->push_back(std::move(fresh));
      by_label_set[key] = static_cast<uint32_t>(types->size() - 1);
    }
  }

  // Phase 2: unlabeled candidates merge into the best labeled type with
  // Jaccard >= theta (Alg. 2 l.8-11).
  std::vector<CandidateType> still_unlabeled;
  for (auto& c : unlabeled) {
    auto c_set = cand_set(c);
    double best = -1.0;
    int best_type = -1;
    for (uint32_t t = 0; t < types->size(); ++t) {
      const TypeT& type = (*types)[t];
      if (type.labels.empty()) continue;
      double j = JaccardSorted(c_set, TypeJaccardSet<TypeT>(type));
      if (j >= options.jaccard_threshold && j > best) {
        best = j;
        best_type = static_cast<int>(t);
      }
    }
    if (best_type >= 0) {
      apply(c, &(*types)[best_type]);
    } else {
      still_unlabeled.push_back(std::move(c));
    }
  }

  // Phase 3a: try existing ABSTRACT types (incremental mode keeps abstract
  // types from previous batches alive).
  std::vector<CandidateType> fresh_unlabeled;
  for (auto& c : still_unlabeled) {
    auto c_set = cand_set(c);
    double best = -1.0;
    int best_type = -1;
    for (uint32_t t = 0; t < types->size(); ++t) {
      const TypeT& type = (*types)[t];
      if (!type.labels.empty()) continue;
      double j = JaccardSorted(c_set, TypeJaccardSet<TypeT>(type));
      if (j >= options.jaccard_threshold && j > best) {
        best = j;
        best_type = static_cast<int>(t);
      }
    }
    if (best_type >= 0) {
      apply(c, &(*types)[best_type]);
    } else {
      fresh_unlabeled.push_back(std::move(c));
    }
  }

  // Phase 3b: pairwise merging among the remaining unlabeled clusters
  // (Alg. 2 l.12-14) via union-find, then append as ABSTRACT types.
  if (!fresh_unlabeled.empty()) {
    std::vector<std::vector<uint32_t>> sets;
    sets.reserve(fresh_unlabeled.size());
    for (const auto& c : fresh_unlabeled) sets.push_back(cand_set(c));
    util::UnionFind uf(fresh_unlabeled.size());
    for (size_t i = 0; i < fresh_unlabeled.size(); ++i) {
      for (size_t j = i + 1; j < fresh_unlabeled.size(); ++j) {
        if (JaccardSorted(sets[i], sets[j]) >= options.jaccard_threshold) {
          uf.Union(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
        }
      }
    }
    std::vector<uint32_t> comp(fresh_unlabeled.size());
    for (uint32_t i = 0; i < fresh_unlabeled.size(); ++i) comp[i] = uf.Find(i);
    std::map<uint32_t, CandidateType> groups;
    for (uint32_t i = 0; i < fresh_unlabeled.size(); ++i) {
      auto it = groups.find(comp[i]);
      if (it == groups.end()) {
        groups.emplace(comp[i], std::move(fresh_unlabeled[i]));
      } else {
        MergeCandidate(fresh_unlabeled[i], &it->second);
      }
    }
    for (auto& [root, c] : groups) {
      TypeT fresh;
      apply(c, &fresh);
      types->push_back(std::move(fresh));
    }
  }
}

}  // namespace

std::vector<CandidateType> BuildNodeCandidates(
    const pg::PropertyGraph& graph, const pg::GraphBatch& batch,
    const lsh::ClusterSet& clusters) {
  PGHIVE_CHECK(clusters.num_items() == batch.node_ids.size());
  std::vector<CandidateType> candidates(clusters.num_clusters());
  std::vector<std::map<pg::PropKeyId, size_t>> counts(clusters.num_clusters());
  for (size_t i = 0; i < batch.node_ids.size(); ++i) {
    uint32_t c = clusters.cluster_of(i);
    const pg::Node& n = graph.node(batch.node_ids[i]);
    CandidateType& cand = candidates[c];
    cand.labels = UnionSorted(cand.labels, n.labels);
    auto keys = n.properties.Keys();
    cand.keys = UnionSorted(cand.keys, keys);
    for (pg::PropKeyId k : keys) ++counts[c][k];
    cand.instances.push_back(batch.node_ids[i]);
    ++cand.instance_count;
    NodePattern pattern{n.labels, keys};
    cand.pattern_hashes.push_back(pattern.Hash());
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto& kc = candidates[c].key_counts;
    kc.assign(counts[c].begin(), counts[c].end());
    auto& ph = candidates[c].pattern_hashes;
    std::sort(ph.begin(), ph.end());
    ph.erase(std::unique(ph.begin(), ph.end()), ph.end());
  }
  return candidates;
}

std::vector<CandidateType> BuildEdgeCandidates(
    const pg::PropertyGraph& graph, const pg::GraphBatch& batch,
    const lsh::ClusterSet& clusters,
    const std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>>&
        endpoint_tokens) {
  PGHIVE_CHECK(clusters.num_items() == batch.edge_ids.size());
  PGHIVE_CHECK(endpoint_tokens.size() == batch.edge_ids.size());
  std::vector<CandidateType> candidates(clusters.num_clusters());
  std::vector<std::map<pg::PropKeyId, size_t>> counts(clusters.num_clusters());
  for (size_t i = 0; i < batch.edge_ids.size(); ++i) {
    uint32_t c = clusters.cluster_of(i);
    const pg::Edge& e = graph.edge(batch.edge_ids[i]);
    CandidateType& cand = candidates[c];
    cand.labels = UnionSorted(cand.labels, e.labels);
    auto keys = e.properties.Keys();
    cand.keys = UnionSorted(cand.keys, keys);
    for (pg::PropKeyId k : keys) ++counts[c][k];
    cand.instances.push_back(batch.edge_ids[i]);
    ++cand.instance_count;
    const auto& src_labels = graph.node(e.src).labels;
    const auto& dst_labels = graph.node(e.dst).labels;
    cand.endpoints.push_back(endpoint_tokens[i]);
    EdgePattern pattern{e.labels, keys, src_labels, dst_labels};
    cand.pattern_hashes.push_back(pattern.Hash());
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto& kc = candidates[c].key_counts;
    kc.assign(counts[c].begin(), counts[c].end());
    auto& ph = candidates[c].pattern_hashes;
    std::sort(ph.begin(), ph.end());
    ph.erase(std::unique(ph.begin(), ph.end()), ph.end());
    auto& ep = candidates[c].endpoints;
    std::sort(ep.begin(), ep.end());
    ep.erase(std::unique(ep.begin(), ep.end()), ep.end());
  }
  return candidates;
}

void ExtractNodeTypes(std::vector<CandidateType> candidates,
                      const ExtractionOptions& options, SchemaGraph* schema) {
  ExtractTypesImpl<NodeType>(
      std::move(candidates), options, &schema->node_types(),
      [](const CandidateType& c, NodeType* t) { ApplyToNodeType(c, t); },
      [](const CandidateType& c) { return NodeJaccardSet(c); });
}

void ExtractEdgeTypes(std::vector<CandidateType> candidates,
                      const ExtractionOptions& options, SchemaGraph* schema) {
  ExtractTypesImpl<EdgeType>(
      std::move(candidates), options, &schema->edge_types(),
      [](const CandidateType& c, EdgeType* t) { ApplyToEdgeType(c, t); },
      [](const CandidateType& c) { return EdgeJaccardSet(c); });
}

CandidateType NodeTypeToCandidate(const NodeType& type) {
  CandidateType c;
  c.labels = type.labels;
  c.keys = type.Keys();
  c.instances = type.instances;
  c.instance_count = type.instance_count;
  for (const auto& [key, info] : type.properties) {
    c.key_counts.emplace_back(key, info.count);
  }
  c.pattern_hashes.assign(type.pattern_hashes.begin(),
                          type.pattern_hashes.end());
  return c;
}

CandidateType EdgeTypeToCandidate(const EdgeType& type) {
  CandidateType c;
  c.labels = type.labels;
  c.keys = type.Keys();
  c.instances = type.instances;
  c.instance_count = type.instance_count;
  for (const auto& [key, info] : type.properties) {
    c.key_counts.emplace_back(key, info.count);
  }
  c.pattern_hashes.assign(type.pattern_hashes.begin(),
                          type.pattern_hashes.end());
  c.endpoints.assign(type.endpoints.begin(), type.endpoints.end());
  return c;
}

SchemaGraph MergeSchemas(const SchemaGraph& a, const SchemaGraph& b,
                         const ExtractionOptions& options) {
  SchemaGraph merged = a;
  std::vector<CandidateType> node_cands;
  node_cands.reserve(b.node_types().size());
  for (const auto& t : b.node_types()) {
    node_cands.push_back(NodeTypeToCandidate(t));
  }
  ExtractNodeTypes(std::move(node_cands), options, &merged);
  std::vector<CandidateType> edge_cands;
  edge_cands.reserve(b.edge_types().size());
  for (const auto& t : b.edge_types()) {
    edge_cands.push_back(EdgeTypeToCandidate(t));
  }
  ExtractEdgeTypes(std::move(edge_cands), options, &merged);
  return merged;
}

}  // namespace pghive::core
