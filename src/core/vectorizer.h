#ifndef PGHIVE_CORE_VECTORIZER_H_
#define PGHIVE_CORE_VECTORIZER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "embed/embedder.h"
#include "pg/batch.h"
#include "pg/column_store.h"
#include "pg/graph.h"
#include "util/thread_pool.h"

namespace pghive::core {

/// A dense row-major feature matrix: `num` rows of `dim` floats.
struct FeatureMatrix {
  std::vector<float> data;
  size_t num = 0;
  size_t dim = 0;

  const float* row(size_t i) const { return &data[i * dim]; }
};

/// An owning CSR of MinHash element sets: set i's elements are
/// elements[offsets[i] .. offsets[i+1]). The columnar producers emit this
/// flat layout instead of vector<vector<uint64_t>>; lsh::SetSpans views it.
struct ElementSetCsr {
  std::vector<uint64_t> elements;
  std::vector<uint32_t> offsets;  // num() + 1 entries; empty when num() == 0.

  size_t num() const { return offsets.empty() ? 0 : offsets.size() - 1; }
};

/// Builds the hybrid representation vectors of §4.1.
///
/// Nodes:  f_v in R^{d+K}   = [ Word2Vec(labels) | binary property vector ]
/// Edges:  f_e in R^{3d+Q}  = [ W2V(edge) | W2V(src) | W2V(dst) | binary ]
///
/// where K / Q are the numbers of distinct node / edge property keys in the
/// vocabulary at vectorization time, and an absent label contributes a zero
/// block. The binary block uses a global key-id -> column map shared by all
/// rows of one call so identical patterns produce identical vectors.
///
/// With a thread pool, rows are sharded across workers. Label-set tokens are
/// interned in a sequential pre-pass (in row order, so token ids never depend
/// on the thread count); the parallel phase then only reads the graph and the
/// embedder, and each row writes its own slice of the matrix — output is
/// bit-identical at every pool size. As a side effect, every token of the
/// batch (including edge endpoint tokens) is interned once NodeFeatures and
/// EdgeFeatures have run, which is what lets the later node/edge tracks share
/// the vocabulary read-only.
///
/// In columnar mode (the default) the sweep runs over a per-batch
/// pg::ColumnStore instead of the rows: the embed block reads the contiguous
/// token array and the binary block is a per-column presence-bitmap sweep,
/// with no per-row PropertyMap access in the hot loop. The column build is
/// the sequential intern pre-pass, in the same canonical order as the row
/// path, so features, sets and every downstream schema are byte-identical
/// between the two modes (pinned by tests).
class Vectorizer {
 public:
  Vectorizer(pg::PropertyGraph* graph, const embed::LabelEmbedder* embedder,
             util::ThreadPool* pool = nullptr, bool columnar = true);

  /// Feature vectors for the batch's nodes (row i corresponds to
  /// batch.node_ids[i]).
  FeatureMatrix NodeFeatures(const pg::GraphBatch& batch);

  /// Feature vectors for the batch's edges.
  FeatureMatrix EdgeFeatures(const pg::GraphBatch& batch);

  /// MinHash element sets for nodes: the label-set token plus property keys,
  /// disambiguated into one uint64 universe.
  std::vector<std::vector<uint64_t>> NodeSets(const pg::GraphBatch& batch);

  /// MinHash element sets for edges: edge token, source token, target token,
  /// plus edge property keys.
  std::vector<std::vector<uint64_t>> EdgeSets(const pg::GraphBatch& batch);

  /// Columnar MinHash element sets: one flat CSR filled from the batch's
  /// column store. Element multisets per row equal NodeSets/EdgeSets, and
  /// rows come out pre-sorted for free: the tag constants ascend in push
  /// order (label < src < dst < key) and key ids ascend within a row, so the
  /// per-row sort of the nested producers is skipped entirely.
  ElementSetCsr NodeSetSpans(const pg::GraphBatch& batch);
  ElementSetCsr EdgeSetSpans(const pg::GraphBatch& batch);

  /// The batch's column stores (built on first use, cached per id list; the
  /// build is the sequential token-intern pre-pass of columnar mode).
  const pg::ColumnStore& NodeColumns(const pg::GraphBatch& batch);
  const pg::ColumnStore& EdgeColumns(const pg::GraphBatch& batch);

  bool columnar() const { return columnar_; }

  /// Per-edge (src, dst) label-set token pairs from the cached intern
  /// pre-pass (row i corresponds to batch.edge_ids[i]). After EdgeFeatures
  /// or EdgeSets ran on the same batch this is a pure read, which is how the
  /// pipelined executor hands the extract stage everything it needs without
  /// touching the vocabulary again.
  std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>>
  EdgeEndpointTokens(const pg::GraphBatch& batch);

 private:
  struct EdgeTokens {
    pg::LabelSetToken edge, src, dst;
  };

  /// The sequential token-intern pre-passes, cached per id list: a token
  /// depends only on the element's labels, so as long as the graph is
  /// unchanged (which the vectorizer assumes for its lifetime — vocabulary
  /// dimensions must stay fixed anyway) the same ids yield the same tokens.
  /// The cache spares the MinHash path a second serial pass when
  /// NodeSets/EdgeSets follow NodeFeatures/EdgeFeatures on the same batch.
  const std::vector<pg::LabelSetToken>& NodeTokens(const pg::GraphBatch& batch);
  const std::vector<EdgeTokens>& EdgeTokensFor(const pg::GraphBatch& batch);

  pg::PropertyGraph* graph_;
  const embed::LabelEmbedder* embedder_;
  util::ThreadPool* pool_;
  bool columnar_;
  std::vector<pg::NodeId> node_token_ids_;
  std::vector<pg::LabelSetToken> node_tokens_;
  bool node_tokens_valid_ = false;
  std::vector<pg::EdgeId> edge_token_ids_;
  std::vector<EdgeTokens> edge_tokens_;
  bool edge_tokens_valid_ = false;
  // Columnar-mode caches, keyed by the batch id lists like the token caches.
  std::vector<pg::NodeId> node_col_ids_;
  pg::ColumnStore node_cols_;
  bool node_cols_valid_ = false;
  std::vector<pg::EdgeId> edge_col_ids_;
  pg::ColumnStore edge_cols_;
  bool edge_cols_valid_ = false;
};

/// Element-universe tags for MinHash sets (exposed for tests).
uint64_t MinHashLabelElement(uint32_t token);
uint64_t MinHashSrcElement(uint32_t token);
uint64_t MinHashDstElement(uint32_t token);
uint64_t MinHashKeyElement(uint32_t key);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_VECTORIZER_H_
