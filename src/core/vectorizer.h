#ifndef PGHIVE_CORE_VECTORIZER_H_
#define PGHIVE_CORE_VECTORIZER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "embed/embedder.h"
#include "pg/batch.h"
#include "pg/graph.h"
#include "util/thread_pool.h"

namespace pghive::core {

/// A dense row-major feature matrix: `num` rows of `dim` floats.
struct FeatureMatrix {
  std::vector<float> data;
  size_t num = 0;
  size_t dim = 0;

  const float* row(size_t i) const { return &data[i * dim]; }
};

/// Builds the hybrid representation vectors of §4.1.
///
/// Nodes:  f_v in R^{d+K}   = [ Word2Vec(labels) | binary property vector ]
/// Edges:  f_e in R^{3d+Q}  = [ W2V(edge) | W2V(src) | W2V(dst) | binary ]
///
/// where K / Q are the numbers of distinct node / edge property keys in the
/// vocabulary at vectorization time, and an absent label contributes a zero
/// block. The binary block uses a global key-id -> column map shared by all
/// rows of one call so identical patterns produce identical vectors.
///
/// With a thread pool, rows are sharded across workers. Label-set tokens are
/// interned in a sequential pre-pass (in row order, so token ids never depend
/// on the thread count); the parallel phase then only reads the graph and the
/// embedder, and each row writes its own slice of the matrix — output is
/// bit-identical at every pool size. As a side effect, every token of the
/// batch (including edge endpoint tokens) is interned once NodeFeatures and
/// EdgeFeatures have run, which is what lets the later node/edge tracks share
/// the vocabulary read-only.
class Vectorizer {
 public:
  Vectorizer(pg::PropertyGraph* graph, const embed::LabelEmbedder* embedder,
             util::ThreadPool* pool = nullptr);

  /// Feature vectors for the batch's nodes (row i corresponds to
  /// batch.node_ids[i]).
  FeatureMatrix NodeFeatures(const pg::GraphBatch& batch);

  /// Feature vectors for the batch's edges.
  FeatureMatrix EdgeFeatures(const pg::GraphBatch& batch);

  /// MinHash element sets for nodes: the label-set token plus property keys,
  /// disambiguated into one uint64 universe.
  std::vector<std::vector<uint64_t>> NodeSets(const pg::GraphBatch& batch);

  /// MinHash element sets for edges: edge token, source token, target token,
  /// plus edge property keys.
  std::vector<std::vector<uint64_t>> EdgeSets(const pg::GraphBatch& batch);

  /// Per-edge (src, dst) label-set token pairs from the cached intern
  /// pre-pass (row i corresponds to batch.edge_ids[i]). After EdgeFeatures
  /// or EdgeSets ran on the same batch this is a pure read, which is how the
  /// pipelined executor hands the extract stage everything it needs without
  /// touching the vocabulary again.
  std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>>
  EdgeEndpointTokens(const pg::GraphBatch& batch);

 private:
  struct EdgeTokens {
    pg::LabelSetToken edge, src, dst;
  };

  /// The sequential token-intern pre-passes, cached per id list: a token
  /// depends only on the element's labels, so as long as the graph is
  /// unchanged (which the vectorizer assumes for its lifetime — vocabulary
  /// dimensions must stay fixed anyway) the same ids yield the same tokens.
  /// The cache spares the MinHash path a second serial pass when
  /// NodeSets/EdgeSets follow NodeFeatures/EdgeFeatures on the same batch.
  const std::vector<pg::LabelSetToken>& NodeTokens(const pg::GraphBatch& batch);
  const std::vector<EdgeTokens>& EdgeTokensFor(const pg::GraphBatch& batch);

  pg::PropertyGraph* graph_;
  const embed::LabelEmbedder* embedder_;
  util::ThreadPool* pool_;
  std::vector<pg::NodeId> node_token_ids_;
  std::vector<pg::LabelSetToken> node_tokens_;
  bool node_tokens_valid_ = false;
  std::vector<pg::EdgeId> edge_token_ids_;
  std::vector<EdgeTokens> edge_tokens_;
  bool edge_tokens_valid_ = false;
};

/// Element-universe tags for MinHash sets (exposed for tests).
uint64_t MinHashLabelElement(uint32_t token);
uint64_t MinHashSrcElement(uint32_t token);
uint64_t MinHashDstElement(uint32_t token);
uint64_t MinHashKeyElement(uint32_t key);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_VECTORIZER_H_
