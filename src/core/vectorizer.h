#ifndef PGHIVE_CORE_VECTORIZER_H_
#define PGHIVE_CORE_VECTORIZER_H_

#include <cstdint>
#include <vector>

#include "embed/embedder.h"
#include "pg/batch.h"
#include "pg/graph.h"

namespace pghive::core {

/// A dense row-major feature matrix: `num` rows of `dim` floats.
struct FeatureMatrix {
  std::vector<float> data;
  size_t num = 0;
  size_t dim = 0;

  const float* row(size_t i) const { return &data[i * dim]; }
};

/// Builds the hybrid representation vectors of §4.1.
///
/// Nodes:  f_v in R^{d+K}   = [ Word2Vec(labels) | binary property vector ]
/// Edges:  f_e in R^{3d+Q}  = [ W2V(edge) | W2V(src) | W2V(dst) | binary ]
///
/// where K / Q are the numbers of distinct node / edge property keys in the
/// vocabulary at vectorization time, and an absent label contributes a zero
/// block. The binary block uses a global key-id -> column map shared by all
/// rows of one call so identical patterns produce identical vectors.
class Vectorizer {
 public:
  Vectorizer(pg::PropertyGraph* graph, const embed::LabelEmbedder* embedder);

  /// Feature vectors for the batch's nodes (row i corresponds to
  /// batch.node_ids[i]).
  FeatureMatrix NodeFeatures(const pg::GraphBatch& batch);

  /// Feature vectors for the batch's edges.
  FeatureMatrix EdgeFeatures(const pg::GraphBatch& batch);

  /// MinHash element sets for nodes: the label-set token plus property keys,
  /// disambiguated into one uint64 universe.
  std::vector<std::vector<uint64_t>> NodeSets(const pg::GraphBatch& batch);

  /// MinHash element sets for edges: edge token, source token, target token,
  /// plus edge property keys.
  std::vector<std::vector<uint64_t>> EdgeSets(const pg::GraphBatch& batch);

 private:
  pg::PropertyGraph* graph_;
  const embed::LabelEmbedder* embedder_;
};

/// Element-universe tags for MinHash sets (exposed for tests).
uint64_t MinHashLabelElement(uint32_t token);
uint64_t MinHashSrcElement(uint32_t token);
uint64_t MinHashDstElement(uint32_t token);
uint64_t MinHashKeyElement(uint32_t key);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_VECTORIZER_H_
