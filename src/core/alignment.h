#ifndef PGHIVE_CORE_ALIGNMENT_H_
#define PGHIVE_CORE_ALIGNMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schema.h"
#include "embed/embedder.h"

namespace pghive::core {

/// Options for semantic type alignment.
struct AlignmentOptions {
  /// Minimum embedding cosine similarity between two types' label tokens.
  double min_label_similarity = 0.6;
  /// Minimum property-set Jaccard between two types.
  double min_structure_similarity = 0.6;
  /// Never align a labeled type with an abstract one (abstract types are
  /// handled by Algorithm 2's Jaccard path instead).
  bool labeled_only = true;
};

/// One proposed alignment.
struct AlignmentSuggestion {
  uint32_t type_a = 0;  ///< Node-type indices in the schema.
  uint32_t type_b = 0;
  double label_similarity = 0.0;
  double structure_similarity = 0.0;
};

/// Semantic type alignment — the integration scenario of the paper's future
/// work (§6 (c)): different sources may use distinct labels for the same
/// conceptual entity (Organization vs Company). The paper proposes LLMs; we
/// implement the embedding-based variant available inside the system: two
/// labeled node types are aligned when their label embeddings (trained on
/// the graph's co-occurrence structure) are close AND their property sets
/// overlap strongly. Matches are returned as suggestions; ApplyAlignments
/// merges them with the same union semantics as Algorithm 2 (monotone).
std::vector<AlignmentSuggestion> SuggestAlignments(
    const SchemaGraph& schema, const pg::Vocabulary& vocab,
    const embed::LabelEmbedder& embedder, const AlignmentOptions& options);

/// Merges each suggested pair (transitively, via union-find) into combined
/// types. Returns the number of merges applied.
size_t ApplyAlignments(const std::vector<AlignmentSuggestion>& suggestions,
                       SchemaGraph* schema);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_ALIGNMENT_H_
