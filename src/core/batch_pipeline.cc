#include "core/batch_pipeline.h"

#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "util/channel.h"
#include "util/timer.h"

namespace pghive::core {

BatchPipeline::BatchPipeline(PgHive* hive, size_t depth) : hive_(hive) {
  PGHIVE_CHECK(hive_ != nullptr);
  depth_ = depth == 0 ? hive_->options().pipeline_depth : depth;
  if (depth_ == 0) depth_ = 1;
}

util::Status BatchPipeline::Run(const std::vector<pg::GraphBatch>& batches) {
  batch_stats_.clear();
  batch_stats_.reserve(batches.size());
  util::Timer wall;
  // Overlap needs a pool (the preprocess thread alone would just time-slice
  // a single core's serial schedule) and at least two batches.
  util::Status status = (depth_ > 1 && hive_->pool() != nullptr &&
                         batches.size() > 1)
                            ? RunOverlapped(batches)
                            : RunSequential(batches);
  wall_ms_ = wall.ElapsedMillis();
  return status;
}

util::Status BatchPipeline::RunSequential(
    const std::vector<pg::GraphBatch>& batches) {
  for (const pg::GraphBatch& batch : batches) {
    util::Status status = hive_->ProcessBatch(batch);
    if (!status.ok()) return status;
    batch_stats_.push_back(hive_->last_stats());
  }
  return util::Status::Ok();
}

util::Status BatchPipeline::RunOverlapped(
    const std::vector<pg::GraphBatch>& batches) {
  // The handoff window: outside the coordinator's one batch in flight, at
  // most depth-1 prepared batches exist at any instant (being built or
  // buffered — WaitNotFull reserves the slot *before* the build starts),
  // so depth bounds the batches in flight and hence the feature-matrix
  // memory the pipeline holds at once.
  util::BoundedChannel<PgHive::PreparedBatch> channel(depth_ - 1);
  std::exception_ptr preprocess_error;

  // A dedicated thread, NOT ThreadPool::Submit: pool tasks must never block
  // on other pool work (a coordinator-side ParallelFor could otherwise pop
  // the whole producer and deadlock on the bounded channel it then cannot
  // drain). The thread still fans its inner loops out on the pool.
  std::thread preprocess([&] {
    try {
      for (const pg::GraphBatch& batch : batches) {
        if (!channel.WaitNotFull()) return;  // Consumer stopped.
        PgHive::PreparedBatch prepared = hive_->PreprocessBatch(batch);
        if (!channel.Push(std::move(prepared))) return;  // Consumer stopped.
      }
    } catch (...) {
      preprocess_error = std::current_exception();
    }
    channel.Close();
  });

  util::Status status = util::Status::Ok();
  try {
    for (size_t i = 0; i < batches.size(); ++i) {
      std::optional<PgHive::PreparedBatch> prepared = channel.Pop();
      if (!prepared.has_value()) break;  // Preprocess thread failed.
      status = hive_->ProcessPrepared(std::move(*prepared));
      if (!status.ok()) break;
      batch_stats_.push_back(hive_->last_stats());
    }
  } catch (...) {
    channel.Close();  // Unblock a Push so the thread can exit.
    preprocess.join();
    throw;
  }
  channel.Close();
  preprocess.join();
  if (preprocess_error != nullptr) std::rethrow_exception(preprocess_error);
  return status;
}

}  // namespace pghive::core
