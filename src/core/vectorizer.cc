#include "core/vectorizer.h"

#include <algorithm>

namespace pghive::core {

namespace {

constexpr uint64_t kLabelTag = 1ULL << 40;
constexpr uint64_t kSrcTag = 2ULL << 40;
constexpr uint64_t kDstTag = 3ULL << 40;
constexpr uint64_t kKeyTag = 4ULL << 40;

/// Rows per ParallelFor chunk. Embedding one row is a few hundred flops, so
/// this keeps chunk dispatch overhead well under 1% of the work.
constexpr size_t kRowGrain = 256;

}  // namespace

uint64_t MinHashLabelElement(uint32_t token) { return kLabelTag | token; }
uint64_t MinHashSrcElement(uint32_t token) { return kSrcTag | token; }
uint64_t MinHashDstElement(uint32_t token) { return kDstTag | token; }
uint64_t MinHashKeyElement(uint32_t key) { return kKeyTag | key; }

Vectorizer::Vectorizer(pg::PropertyGraph* graph,
                       const embed::LabelEmbedder* embedder,
                       util::ThreadPool* pool, bool columnar)
    : graph_(graph), embedder_(embedder), pool_(pool), columnar_(columnar) {}

// The token-intern pre-passes. Interning assigns token ids in first-seen
// order, so these must stay sequential (and in row order) to keep ids
// independent of the thread count; afterwards every token of the batch is
// present, which is what makes the parallel phases' (and the later
// node/edge tracks') vocabulary accesses read-only.

const std::vector<pg::LabelSetToken>& Vectorizer::NodeTokens(
    const pg::GraphBatch& batch) {
  if (!node_tokens_valid_ || node_token_ids_ != batch.node_ids) {
    pg::Vocabulary& vocab = graph_->vocab();
    node_tokens_.assign(batch.node_ids.size(), pg::kNoToken);
    for (size_t i = 0; i < node_tokens_.size(); ++i) {
      node_tokens_[i] =
          vocab.TokenForLabelSet(graph_->node(batch.node_ids[i]).labels);
    }
    node_token_ids_ = batch.node_ids;
    node_tokens_valid_ = true;
  }
  return node_tokens_;
}

const std::vector<Vectorizer::EdgeTokens>& Vectorizer::EdgeTokensFor(
    const pg::GraphBatch& batch) {
  if (!edge_tokens_valid_ || edge_token_ids_ != batch.edge_ids) {
    pg::Vocabulary& vocab = graph_->vocab();
    edge_tokens_.assign(batch.edge_ids.size(), EdgeTokens{});
    for (size_t i = 0; i < edge_tokens_.size(); ++i) {
      const pg::Edge& e = graph_->edge(batch.edge_ids[i]);
      // Intern in (src, edge, dst) order — the corpus-builder sentence order,
      // and the order pg::ColumnStore::ForEdges uses, so token ids agree
      // between the row and columnar paths wherever this pass interns first.
      edge_tokens_[i].src = vocab.TokenForLabelSet(graph_->node(e.src).labels);
      edge_tokens_[i].edge = vocab.TokenForLabelSet(e.labels);
      edge_tokens_[i].dst = vocab.TokenForLabelSet(graph_->node(e.dst).labels);
    }
    edge_token_ids_ = batch.edge_ids;
    edge_tokens_valid_ = true;
  }
  return edge_tokens_;
}

const pg::ColumnStore& Vectorizer::NodeColumns(const pg::GraphBatch& batch) {
  if (!node_cols_valid_ || node_col_ids_ != batch.node_ids) {
    node_cols_ = pg::ColumnStore::ForNodes(*graph_, batch.node_ids);
    node_col_ids_ = batch.node_ids;
    node_cols_valid_ = true;
  }
  return node_cols_;
}

const pg::ColumnStore& Vectorizer::EdgeColumns(const pg::GraphBatch& batch) {
  if (!edge_cols_valid_ || edge_col_ids_ != batch.edge_ids) {
    edge_cols_ = pg::ColumnStore::ForEdges(*graph_, batch.edge_ids);
    edge_col_ids_ = batch.edge_ids;
    edge_cols_valid_ = true;
  }
  return edge_cols_;
}

FeatureMatrix Vectorizer::NodeFeatures(const pg::GraphBatch& batch) {
  pg::Vocabulary& vocab = graph_->vocab();
  const size_t d = embedder_->dim();
  const size_t k = vocab.num_keys();
  FeatureMatrix m;
  m.num = batch.node_ids.size();
  m.dim = d + k;
  m.data.assign(m.num * m.dim, 0.0f);
  if (columnar_) {
    const pg::ColumnStore& cols = NodeColumns(batch);
    const std::vector<pg::LabelSetToken>& tokens = cols.tokens();
    util::ParallelFor(pool_, 0, m.num, kRowGrain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        embedder_->Embed(tokens[i], &m.data[i * m.dim]);
      }
      cols.FillBinaryBlock(lo, hi, k, &m.data[lo * m.dim], m.dim, d);
    });
    return m;
  }
  const std::vector<pg::LabelSetToken>& tokens = NodeTokens(batch);
  const pg::PropertyGraph& graph = *graph_;
  util::ParallelFor(pool_, 0, m.num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const pg::Node& n = graph.node(batch.node_ids[i]);
      float* row = &m.data[i * m.dim];
      embedder_->Embed(tokens[i], row);
      for (const auto& [key, value] : n.properties.entries()) {
        if (key < k) row[d + key] = 1.0f;
      }
    }
  });
  return m;
}

FeatureMatrix Vectorizer::EdgeFeatures(const pg::GraphBatch& batch) {
  pg::Vocabulary& vocab = graph_->vocab();
  const size_t d = embedder_->dim();
  const size_t q = vocab.num_keys();
  FeatureMatrix m;
  m.num = batch.edge_ids.size();
  m.dim = 3 * d + q;
  m.data.assign(m.num * m.dim, 0.0f);
  if (columnar_) {
    const pg::ColumnStore& cols = EdgeColumns(batch);
    util::ParallelFor(pool_, 0, m.num, kRowGrain, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        float* row = &m.data[i * m.dim];
        embedder_->Embed(cols.tokens()[i], row);
        embedder_->Embed(cols.src_tokens()[i], row + d);
        embedder_->Embed(cols.dst_tokens()[i], row + 2 * d);
      }
      cols.FillBinaryBlock(lo, hi, q, &m.data[lo * m.dim], m.dim, 3 * d);
    });
    return m;
  }
  const std::vector<EdgeTokens>& tokens = EdgeTokensFor(batch);
  const pg::PropertyGraph& graph = *graph_;
  util::ParallelFor(pool_, 0, m.num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const pg::Edge& e = graph.edge(batch.edge_ids[i]);
      float* row = &m.data[i * m.dim];
      embedder_->Embed(tokens[i].edge, row);
      embedder_->Embed(tokens[i].src, row + d);
      embedder_->Embed(tokens[i].dst, row + 2 * d);
      for (const auto& [key, value] : e.properties.entries()) {
        if (key < q) row[3 * d + key] = 1.0f;
      }
    }
  });
  return m;
}

std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>>
Vectorizer::EdgeEndpointTokens(const pg::GraphBatch& batch) {
  std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>> out;
  if (columnar_) {
    const pg::ColumnStore& cols = EdgeColumns(batch);
    out.reserve(cols.num_rows());
    for (size_t i = 0; i < cols.num_rows(); ++i) {
      out.emplace_back(cols.src_tokens()[i], cols.dst_tokens()[i]);
    }
    return out;
  }
  const std::vector<EdgeTokens>& tokens = EdgeTokensFor(batch);
  out.reserve(tokens.size());
  for (const EdgeTokens& t : tokens) out.emplace_back(t.src, t.dst);
  return out;
}

std::vector<std::vector<uint64_t>> Vectorizer::NodeSets(
    const pg::GraphBatch& batch) {
  const size_t num = batch.node_ids.size();
  const std::vector<pg::LabelSetToken>& tokens = NodeTokens(batch);
  std::vector<std::vector<uint64_t>> sets(num);
  const pg::PropertyGraph& graph = *graph_;
  util::ParallelFor(pool_, 0, num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const pg::Node& n = graph.node(batch.node_ids[i]);
      auto& set = sets[i];
      if (tokens[i] != pg::kNoToken) {
        set.push_back(MinHashLabelElement(tokens[i]));
      }
      for (const auto& [key, value] : n.properties.entries()) {
        set.push_back(MinHashKeyElement(key));
      }
      std::sort(set.begin(), set.end());
    }
  });
  return sets;
}

std::vector<std::vector<uint64_t>> Vectorizer::EdgeSets(
    const pg::GraphBatch& batch) {
  const size_t num = batch.edge_ids.size();
  const std::vector<EdgeTokens>& tokens = EdgeTokensFor(batch);
  std::vector<std::vector<uint64_t>> sets(num);
  const pg::PropertyGraph& graph = *graph_;
  util::ParallelFor(pool_, 0, num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const pg::Edge& e = graph.edge(batch.edge_ids[i]);
      auto& set = sets[i];
      if (tokens[i].edge != pg::kNoToken) {
        set.push_back(MinHashLabelElement(tokens[i].edge));
      }
      if (tokens[i].src != pg::kNoToken) {
        set.push_back(MinHashSrcElement(tokens[i].src));
      }
      if (tokens[i].dst != pg::kNoToken) {
        set.push_back(MinHashDstElement(tokens[i].dst));
      }
      for (const auto& [key, value] : e.properties.entries()) {
        set.push_back(MinHashKeyElement(key));
      }
      std::sort(set.begin(), set.end());
    }
  });
  return sets;
}

// The columnar set producers fill one flat CSR from the column store. Push
// order per row is (label, src, dst, keys): the tags ascend in that order
// and key ids ascend within a row, so every row is emitted pre-sorted and
// the per-row sort of the nested producers has nothing to do — the spans
// equal the sorted sets element for element.

ElementSetCsr Vectorizer::NodeSetSpans(const pg::GraphBatch& batch) {
  const pg::ColumnStore& cols = NodeColumns(batch);
  const size_t num = cols.num_rows();
  const std::vector<uint32_t>& key_offsets = cols.key_offsets();
  const std::vector<pg::PropKeyId>& key_ids = cols.key_ids();
  ElementSetCsr csr;
  csr.offsets.assign(num + 1, 0);
  for (size_t i = 0; i < num; ++i) {
    const uint32_t keys = key_offsets[i + 1] - key_offsets[i];
    const uint32_t label = cols.tokens()[i] != pg::kNoToken ? 1 : 0;
    csr.offsets[i + 1] = csr.offsets[i] + label + keys;
  }
  csr.elements.resize(csr.offsets[num]);
  util::ParallelFor(pool_, 0, num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      uint64_t* out = &csr.elements[csr.offsets[i]];
      if (cols.tokens()[i] != pg::kNoToken) {
        *out++ = MinHashLabelElement(cols.tokens()[i]);
      }
      for (uint32_t k = key_offsets[i]; k < key_offsets[i + 1]; ++k) {
        *out++ = MinHashKeyElement(key_ids[k]);
      }
    }
  });
  return csr;
}

ElementSetCsr Vectorizer::EdgeSetSpans(const pg::GraphBatch& batch) {
  const pg::ColumnStore& cols = EdgeColumns(batch);
  const size_t num = cols.num_rows();
  const std::vector<uint32_t>& key_offsets = cols.key_offsets();
  const std::vector<pg::PropKeyId>& key_ids = cols.key_ids();
  ElementSetCsr csr;
  csr.offsets.assign(num + 1, 0);
  for (size_t i = 0; i < num; ++i) {
    const uint32_t keys = key_offsets[i + 1] - key_offsets[i];
    const uint32_t tokens = (cols.tokens()[i] != pg::kNoToken ? 1 : 0) +
                            (cols.src_tokens()[i] != pg::kNoToken ? 1 : 0) +
                            (cols.dst_tokens()[i] != pg::kNoToken ? 1 : 0);
    csr.offsets[i + 1] = csr.offsets[i] + tokens + keys;
  }
  csr.elements.resize(csr.offsets[num]);
  util::ParallelFor(pool_, 0, num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      uint64_t* out = &csr.elements[csr.offsets[i]];
      if (cols.tokens()[i] != pg::kNoToken) {
        *out++ = MinHashLabelElement(cols.tokens()[i]);
      }
      if (cols.src_tokens()[i] != pg::kNoToken) {
        *out++ = MinHashSrcElement(cols.src_tokens()[i]);
      }
      if (cols.dst_tokens()[i] != pg::kNoToken) {
        *out++ = MinHashDstElement(cols.dst_tokens()[i]);
      }
      for (uint32_t k = key_offsets[i]; k < key_offsets[i + 1]; ++k) {
        *out++ = MinHashKeyElement(key_ids[k]);
      }
    }
  });
  return csr;
}

}  // namespace pghive::core
