#include "core/vectorizer.h"

#include <algorithm>

namespace pghive::core {

namespace {

constexpr uint64_t kLabelTag = 1ULL << 40;
constexpr uint64_t kSrcTag = 2ULL << 40;
constexpr uint64_t kDstTag = 3ULL << 40;
constexpr uint64_t kKeyTag = 4ULL << 40;

/// Rows per ParallelFor chunk. Embedding one row is a few hundred flops, so
/// this keeps chunk dispatch overhead well under 1% of the work.
constexpr size_t kRowGrain = 256;

}  // namespace

uint64_t MinHashLabelElement(uint32_t token) { return kLabelTag | token; }
uint64_t MinHashSrcElement(uint32_t token) { return kSrcTag | token; }
uint64_t MinHashDstElement(uint32_t token) { return kDstTag | token; }
uint64_t MinHashKeyElement(uint32_t key) { return kKeyTag | key; }

Vectorizer::Vectorizer(pg::PropertyGraph* graph,
                       const embed::LabelEmbedder* embedder,
                       util::ThreadPool* pool)
    : graph_(graph), embedder_(embedder), pool_(pool) {}

// The token-intern pre-passes. Interning assigns token ids in first-seen
// order, so these must stay sequential (and in row order) to keep ids
// independent of the thread count; afterwards every token of the batch is
// present, which is what makes the parallel phases' (and the later
// node/edge tracks') vocabulary accesses read-only.

const std::vector<pg::LabelSetToken>& Vectorizer::NodeTokens(
    const pg::GraphBatch& batch) {
  if (!node_tokens_valid_ || node_token_ids_ != batch.node_ids) {
    pg::Vocabulary& vocab = graph_->vocab();
    node_tokens_.assign(batch.node_ids.size(), pg::kNoToken);
    for (size_t i = 0; i < node_tokens_.size(); ++i) {
      node_tokens_[i] =
          vocab.TokenForLabelSet(graph_->node(batch.node_ids[i]).labels);
    }
    node_token_ids_ = batch.node_ids;
    node_tokens_valid_ = true;
  }
  return node_tokens_;
}

const std::vector<Vectorizer::EdgeTokens>& Vectorizer::EdgeTokensFor(
    const pg::GraphBatch& batch) {
  if (!edge_tokens_valid_ || edge_token_ids_ != batch.edge_ids) {
    pg::Vocabulary& vocab = graph_->vocab();
    edge_tokens_.assign(batch.edge_ids.size(), EdgeTokens{});
    for (size_t i = 0; i < edge_tokens_.size(); ++i) {
      const pg::Edge& e = graph_->edge(batch.edge_ids[i]);
      edge_tokens_[i].edge = vocab.TokenForLabelSet(e.labels);
      edge_tokens_[i].src = vocab.TokenForLabelSet(graph_->node(e.src).labels);
      edge_tokens_[i].dst = vocab.TokenForLabelSet(graph_->node(e.dst).labels);
    }
    edge_token_ids_ = batch.edge_ids;
    edge_tokens_valid_ = true;
  }
  return edge_tokens_;
}

FeatureMatrix Vectorizer::NodeFeatures(const pg::GraphBatch& batch) {
  pg::Vocabulary& vocab = graph_->vocab();
  const size_t d = embedder_->dim();
  const size_t k = vocab.num_keys();
  FeatureMatrix m;
  m.num = batch.node_ids.size();
  m.dim = d + k;
  m.data.assign(m.num * m.dim, 0.0f);
  const std::vector<pg::LabelSetToken>& tokens = NodeTokens(batch);
  const pg::PropertyGraph& graph = *graph_;
  util::ParallelFor(pool_, 0, m.num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const pg::Node& n = graph.node(batch.node_ids[i]);
      float* row = &m.data[i * m.dim];
      embedder_->Embed(tokens[i], row);
      for (const auto& [key, value] : n.properties.entries()) {
        if (key < k) row[d + key] = 1.0f;
      }
    }
  });
  return m;
}

FeatureMatrix Vectorizer::EdgeFeatures(const pg::GraphBatch& batch) {
  pg::Vocabulary& vocab = graph_->vocab();
  const size_t d = embedder_->dim();
  const size_t q = vocab.num_keys();
  FeatureMatrix m;
  m.num = batch.edge_ids.size();
  m.dim = 3 * d + q;
  m.data.assign(m.num * m.dim, 0.0f);
  const std::vector<EdgeTokens>& tokens = EdgeTokensFor(batch);
  const pg::PropertyGraph& graph = *graph_;
  util::ParallelFor(pool_, 0, m.num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const pg::Edge& e = graph.edge(batch.edge_ids[i]);
      float* row = &m.data[i * m.dim];
      embedder_->Embed(tokens[i].edge, row);
      embedder_->Embed(tokens[i].src, row + d);
      embedder_->Embed(tokens[i].dst, row + 2 * d);
      for (const auto& [key, value] : e.properties.entries()) {
        if (key < q) row[3 * d + key] = 1.0f;
      }
    }
  });
  return m;
}

std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>>
Vectorizer::EdgeEndpointTokens(const pg::GraphBatch& batch) {
  const std::vector<EdgeTokens>& tokens = EdgeTokensFor(batch);
  std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>> out;
  out.reserve(tokens.size());
  for (const EdgeTokens& t : tokens) out.emplace_back(t.src, t.dst);
  return out;
}

std::vector<std::vector<uint64_t>> Vectorizer::NodeSets(
    const pg::GraphBatch& batch) {
  const size_t num = batch.node_ids.size();
  const std::vector<pg::LabelSetToken>& tokens = NodeTokens(batch);
  std::vector<std::vector<uint64_t>> sets(num);
  const pg::PropertyGraph& graph = *graph_;
  util::ParallelFor(pool_, 0, num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const pg::Node& n = graph.node(batch.node_ids[i]);
      auto& set = sets[i];
      if (tokens[i] != pg::kNoToken) {
        set.push_back(MinHashLabelElement(tokens[i]));
      }
      for (const auto& [key, value] : n.properties.entries()) {
        set.push_back(MinHashKeyElement(key));
      }
      std::sort(set.begin(), set.end());
    }
  });
  return sets;
}

std::vector<std::vector<uint64_t>> Vectorizer::EdgeSets(
    const pg::GraphBatch& batch) {
  const size_t num = batch.edge_ids.size();
  const std::vector<EdgeTokens>& tokens = EdgeTokensFor(batch);
  std::vector<std::vector<uint64_t>> sets(num);
  const pg::PropertyGraph& graph = *graph_;
  util::ParallelFor(pool_, 0, num, kRowGrain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const pg::Edge& e = graph.edge(batch.edge_ids[i]);
      auto& set = sets[i];
      if (tokens[i].edge != pg::kNoToken) {
        set.push_back(MinHashLabelElement(tokens[i].edge));
      }
      if (tokens[i].src != pg::kNoToken) {
        set.push_back(MinHashSrcElement(tokens[i].src));
      }
      if (tokens[i].dst != pg::kNoToken) {
        set.push_back(MinHashDstElement(tokens[i].dst));
      }
      for (const auto& [key, value] : e.properties.entries()) {
        set.push_back(MinHashKeyElement(key));
      }
      std::sort(set.begin(), set.end());
    }
  });
  return sets;
}

}  // namespace pghive::core
