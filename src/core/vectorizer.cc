#include "core/vectorizer.h"

#include <algorithm>

namespace pghive::core {

namespace {

constexpr uint64_t kLabelTag = 1ULL << 40;
constexpr uint64_t kSrcTag = 2ULL << 40;
constexpr uint64_t kDstTag = 3ULL << 40;
constexpr uint64_t kKeyTag = 4ULL << 40;

}  // namespace

uint64_t MinHashLabelElement(uint32_t token) { return kLabelTag | token; }
uint64_t MinHashSrcElement(uint32_t token) { return kSrcTag | token; }
uint64_t MinHashDstElement(uint32_t token) { return kDstTag | token; }
uint64_t MinHashKeyElement(uint32_t key) { return kKeyTag | key; }

Vectorizer::Vectorizer(pg::PropertyGraph* graph,
                       const embed::LabelEmbedder* embedder)
    : graph_(graph), embedder_(embedder) {}

FeatureMatrix Vectorizer::NodeFeatures(const pg::GraphBatch& batch) {
  pg::Vocabulary& vocab = graph_->vocab();
  const size_t d = embedder_->dim();
  const size_t k = vocab.num_keys();
  FeatureMatrix m;
  m.num = batch.node_ids.size();
  m.dim = d + k;
  m.data.assign(m.num * m.dim, 0.0f);
  for (size_t i = 0; i < batch.node_ids.size(); ++i) {
    const pg::Node& n = graph_->node(batch.node_ids[i]);
    float* row = &m.data[i * m.dim];
    pg::LabelSetToken token = vocab.TokenForLabelSet(n.labels);
    embedder_->Embed(token, row);
    for (const auto& [key, value] : n.properties.entries()) {
      if (key < k) row[d + key] = 1.0f;
    }
  }
  return m;
}

FeatureMatrix Vectorizer::EdgeFeatures(const pg::GraphBatch& batch) {
  pg::Vocabulary& vocab = graph_->vocab();
  const size_t d = embedder_->dim();
  const size_t q = vocab.num_keys();
  FeatureMatrix m;
  m.num = batch.edge_ids.size();
  m.dim = 3 * d + q;
  m.data.assign(m.num * m.dim, 0.0f);
  for (size_t i = 0; i < batch.edge_ids.size(); ++i) {
    const pg::Edge& e = graph_->edge(batch.edge_ids[i]);
    float* row = &m.data[i * m.dim];
    pg::LabelSetToken et = vocab.TokenForLabelSet(e.labels);
    pg::LabelSetToken st = vocab.TokenForLabelSet(graph_->node(e.src).labels);
    pg::LabelSetToken tt = vocab.TokenForLabelSet(graph_->node(e.dst).labels);
    embedder_->Embed(et, row);
    embedder_->Embed(st, row + d);
    embedder_->Embed(tt, row + 2 * d);
    for (const auto& [key, value] : e.properties.entries()) {
      if (key < q) row[3 * d + key] = 1.0f;
    }
  }
  return m;
}

std::vector<std::vector<uint64_t>> Vectorizer::NodeSets(
    const pg::GraphBatch& batch) {
  pg::Vocabulary& vocab = graph_->vocab();
  std::vector<std::vector<uint64_t>> sets(batch.node_ids.size());
  for (size_t i = 0; i < batch.node_ids.size(); ++i) {
    const pg::Node& n = graph_->node(batch.node_ids[i]);
    auto& set = sets[i];
    pg::LabelSetToken token = vocab.TokenForLabelSet(n.labels);
    if (token != pg::kNoToken) set.push_back(MinHashLabelElement(token));
    for (const auto& [key, value] : n.properties.entries()) {
      set.push_back(MinHashKeyElement(key));
    }
    std::sort(set.begin(), set.end());
  }
  return sets;
}

std::vector<std::vector<uint64_t>> Vectorizer::EdgeSets(
    const pg::GraphBatch& batch) {
  pg::Vocabulary& vocab = graph_->vocab();
  std::vector<std::vector<uint64_t>> sets(batch.edge_ids.size());
  for (size_t i = 0; i < batch.edge_ids.size(); ++i) {
    const pg::Edge& e = graph_->edge(batch.edge_ids[i]);
    auto& set = sets[i];
    pg::LabelSetToken et = vocab.TokenForLabelSet(e.labels);
    pg::LabelSetToken st = vocab.TokenForLabelSet(graph_->node(e.src).labels);
    pg::LabelSetToken tt = vocab.TokenForLabelSet(graph_->node(e.dst).labels);
    if (et != pg::kNoToken) set.push_back(MinHashLabelElement(et));
    if (st != pg::kNoToken) set.push_back(MinHashSrcElement(st));
    if (tt != pg::kNoToken) set.push_back(MinHashDstElement(tt));
    for (const auto& [key, value] : e.properties.entries()) {
      set.push_back(MinHashKeyElement(key));
    }
    std::sort(set.begin(), set.end());
  }
  return sets;
}

}  // namespace pghive::core
