#ifndef PGHIVE_CORE_BATCH_PIPELINE_H_
#define PGHIVE_CORE_BATCH_PIPELINE_H_

#include <cstddef>
#include <vector>

#include "core/pghive.h"
#include "pg/batch.h"
#include "util/status.h"

namespace pghive::core {

/// Pipelined executor for incremental ingest (§4.6): streams a sequence of
/// batches through PgHive with cross-batch overlap. While batch i runs its
/// clustering and serial merge/extract on the calling thread, batch i+1's
/// preprocess (corpus build, embedding training, vectorization, token
/// interning) already runs on a dedicated preprocess thread — both sides
/// fanning their inner loops out on the hive's shared thread pool.
///
/// Determinism: the schema is byte-identical to the sequential
/// `for (batch : batches) hive->ProcessBatch(batch)` loop at every thread
/// count and every depth. Two rules make that hold:
///   1. Preprocess stages never overlap each other — they run as a serial
///      chain in batch order, because they advance shared state (label-set
///      token interning, the incremental Word2Vec model) whose results
///      depend on order. This is the pipeline's one barrier: the preprocess
///      of batch i+2 waits for the preprocess of batch i+1 even when a
///      deeper window has room. True preprocess/preprocess overlap would
///      require snapshotting the vocabulary and embedder per batch, which
///      costs more than it buys at the paper's batch counts.
///   2. Extract/merge (and optional per-batch post-processing) run strictly
///      in batch order on the calling thread, and read nothing the
///      overlapping preprocess writes: the prepared batch carries its own
///      feature matrices, token caches, and endpoint tokens.
///
/// Error handling: on a failed batch the pipeline stops; the preprocess
/// thread may already have advanced vocabulary/embedder state for batches
/// past the failure (harmless for the schema, which never saw them).
class BatchPipeline {
 public:
  /// depth == 0 means "use hive->options().pipeline_depth". Effective depth
  /// is clamped to >= 1; depths > 1 fall back to the sequential loop when
  /// the hive has no thread pool (num_threads == 1) or fewer than 2 batches
  /// arrive — the output is identical either way.
  explicit BatchPipeline(PgHive* hive, size_t depth = 0);

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  /// Processes every batch in order. Does NOT call hive->Finish(); the
  /// caller decides when post-processing happens, exactly as with the
  /// sequential loop. `batches` must outlive the call.
  util::Status Run(const std::vector<pg::GraphBatch>& batches);

  /// Stats of each processed batch, in batch order (PgHive::last_stats()
  /// captured after the batch's merge). Stage times are per-stage wall
  /// times measured on the thread that ran the stage, so per-batch sums
  /// stay meaningful under overlap — but their total can exceed Run's
  /// wall clock, which is the whole point of pipelining.
  const std::vector<PipelineStats>& batch_stats() const {
    return batch_stats_;
  }

  /// Wall-clock milliseconds of the last Run (the Fig. 7 quantity).
  double wall_ms() const { return wall_ms_; }

  /// The depth this executor resolved (>= 1).
  size_t depth() const { return depth_; }

 private:
  util::Status RunSequential(const std::vector<pg::GraphBatch>& batches);
  util::Status RunOverlapped(const std::vector<pg::GraphBatch>& batches);

  PgHive* hive_;
  size_t depth_;
  std::vector<PipelineStats> batch_stats_;
  double wall_ms_ = 0;
};

}  // namespace pghive::core

#endif  // PGHIVE_CORE_BATCH_PIPELINE_H_
