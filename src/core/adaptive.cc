#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace pghive::core {

double AlphaForLabelCount(size_t num_labels) {
  if (num_labels <= 3) return 0.8;
  if (num_labels <= 10) return 1.0;
  return 1.5;
}

double EstimateDistanceScale(const FeatureMatrix& features, size_t pairs,
                             size_t max_sample, uint64_t seed) {
  if (features.num < 2) return 1.0;
  util::Rng rng(seed);
  size_t sample = std::min(features.num, max_sample);
  auto idx = rng.SampleWithoutReplacement(features.num, sample);
  double total = 0.0;
  size_t counted = 0;
  for (size_t p = 0; p < pairs; ++p) {
    size_t a = idx[rng.NextBounded(idx.size())];
    size_t b = idx[rng.NextBounded(idx.size())];
    if (a == b) continue;
    const float* ra = features.row(a);
    const float* rb = features.row(b);
    double d2 = 0.0;
    for (size_t d = 0; d < features.dim; ++d) {
      double diff = static_cast<double>(ra[d]) - rb[d];
      d2 += diff * diff;
    }
    total += std::sqrt(d2);
    ++counted;
  }
  if (counted == 0) return 1.0;
  double mu = total / static_cast<double>(counted);
  return mu > 1e-9 ? mu : 1.0;
}

namespace {

AdaptiveChoice Choose(const FeatureMatrix& features, size_t num_labels,
                      const AdaptiveOptions& options, bool edges) {
  AdaptiveChoice choice;
  // "randomly sample 1% of the graph, or at least 10k nodes (whichever is
  // larger)" — capped at the population size.
  size_t want = std::max(features.num / 100, options.min_sample);
  choice.mu = EstimateDistanceScale(features, options.sample_pairs, want,
                                    options.seed);
  choice.alpha = AlphaForLabelCount(num_labels);
  if (edges) choice.alpha *= options.edge_alpha_scale;
  double b_base = options.base_factor * choice.mu;
  choice.bucket_length = std::max(1e-6, b_base * choice.alpha);

  double n = static_cast<double>(std::max<size_t>(features.num, 2));
  double log_n = std::log10(n);
  double t_raw;
  if (edges) {
    t_raw = b_base * std::max(3.0, choice.alpha * std::min(20.0, log_n));
  } else {
    t_raw = b_base * std::max(5.0, choice.alpha * std::min(25.0, log_n));
  }
  size_t t = static_cast<size_t>(std::lround(t_raw));
  t = std::clamp(t, options.min_tables, options.max_tables);
  choice.num_tables = t;
  return choice;
}

}  // namespace

AdaptiveChoice ChooseNodeParams(const FeatureMatrix& features,
                                size_t num_distinct_labels,
                                const AdaptiveOptions& options) {
  return Choose(features, num_distinct_labels, options, /*edges=*/false);
}

AdaptiveChoice ChooseEdgeParams(const FeatureMatrix& features,
                                size_t num_distinct_labels,
                                const AdaptiveOptions& options) {
  return Choose(features, num_distinct_labels, options, /*edges=*/true);
}

}  // namespace pghive::core
