#ifndef PGHIVE_CORE_SERIALIZE_H_
#define PGHIVE_CORE_SERIALIZE_H_

#include <string>

#include "core/schema.h"
#include "pg/vocabulary.h"
#include "util/status.h"

namespace pghive::core {

/// PG-Schema constraint level (§4.5): LOOSE allows data to deviate from the
/// declared structure (OPEN types, no datatype assertions); STRICT declares
/// data types, MANDATORY/OPTIONAL markers, and edge cardinalities.
enum class SchemaMode { kLoose, kStrict };

/// Renders the schema as a PG-Schema graph type declaration, e.g.
///
///   CREATE GRAPH TYPE PgHiveSchema STRICT {
///     (PersonType : Person {name STRING, OPTIONAL bday DATE}),
///     (:PersonType)-[KnowsType : KNOWS {OPTIONAL since DATE}]->(:PersonType)
///   }
///
/// ABSTRACT types are emitted with the ABSTRACT keyword, matching the
/// paper's handling of unlabeled clusters.
std::string SerializePgSchema(const SchemaGraph& schema,
                              const pg::Vocabulary& vocab, SchemaMode mode);

/// Renders the schema as an XML Schema Definition document: one xs:element
/// per node type with properties as attributes (use="required|optional"),
/// and one per edge type carrying source/target references.
std::string SerializeXsd(const SchemaGraph& schema,
                         const pg::Vocabulary& vocab);

/// Human-readable multi-line schema summary used by the examples.
std::string DescribeSchema(const SchemaGraph& schema,
                           const pg::Vocabulary& vocab);

/// Maps a DataType to its XSD builtin ("xs:string", "xs:long", ...).
const char* XsdTypeName(pg::DataType t);

/// Serializes the full SchemaGraph — including evidence the text renderings
/// drop (instance ids, pattern hashes, endpoint tokens, cardinality bounds) —
/// into a self-describing little-endian byte string. This is the snapshot
/// seam for pghived: a session copies the schema under its job lane with
/// these bytes, and readers reconstruct an independent SchemaGraph without
/// touching the (still-mutating) vocabulary or hive. Format: "PGHB" magic,
/// u32 version, then length-prefixed type records.
std::string SerializeSchemaBinary(const SchemaGraph& schema);

/// Inverse of SerializeSchemaBinary. Rejects bad magic, unknown versions,
/// and truncated payloads with ParseError; a round trip is lossless.
util::StatusOr<SchemaGraph> ParseSchemaBinary(const std::string& bytes);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_SERIALIZE_H_
