#ifndef PGHIVE_CORE_SHARD_MERGE_H_
#define PGHIVE_CORE_SHARD_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/type_extraction.h"
#include "lsh/clustering.h"
#include "pg/graph.h"
#include "pg/shard_plan.h"

namespace pghive::core {

/// One shard's candidate evidence against a *global* clustering of the
/// parent batch. `candidates[c]` carries exactly the members of global
/// cluster c that live in this shard (built by the regular
/// BuildNodeCandidates / BuildEdgeCandidates scans over the shard batch,
/// so per-member semantics can never drift from the unsharded path);
/// `positions[c][j]` is the parent-batch position of
/// `candidates[c].instances[j]`, which is what lets the merge restore the
/// unsharded scan order. `candidates` may be shorter than the global
/// cluster count when the shard has no member of the top clusters.
struct ShardCandidates {
  std::vector<CandidateType> candidates;
  std::vector<std::vector<uint32_t>> positions;
};

/// Builds one shard's node candidates. `clusters` is the global clustering
/// of the parent batch (num_items == parent batch node count); shard
/// members look their cluster up through ShardBatch::node_positions.
ShardCandidates BuildNodeShardCandidates(const pg::PropertyGraph& graph,
                                         const pg::ShardBatch& shard,
                                         const lsh::ClusterSet& clusters);

/// Edge version; `endpoint_tokens[i]` pairs with shard.batch.edge_ids[i]
/// (the shard vectorizer's EdgeEndpointTokens output).
ShardCandidates BuildEdgeShardCandidates(
    const pg::PropertyGraph& graph, const pg::ShardBatch& shard,
    const lsh::ClusterSet& clusters,
    const std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>>&
        endpoint_tokens);

/// Folds per-shard candidates in fixed shard order into the candidates the
/// unsharded BuildNodeCandidates / BuildEdgeCandidates scan would have
/// produced — byte-identical: label/key/pattern/endpoint unions are
/// order-free sets, key counts sum, and instances are re-interleaved by
/// parent-batch position. `num_clusters` is the global cluster count.
std::vector<CandidateType> MergeShardCandidates(
    std::vector<ShardCandidates> shards, size_t num_clusters);

/// Folds independently discovered shard schemas in fixed shard order
/// through the Algorithm-2 merge (MergeSchemas): the relaxed seam for a
/// future cross-machine `pghived`, where shards exchange only schemas.
/// The fold is deterministic (same shard order, same result) and monotone
/// (every shard's types survive as unions), but NOT byte-identical to a
/// single-shard run: type discovery order — and with it type indexing and
/// instance order — depends on the shard boundaries. In-process sharding
/// uses MergeShardCandidates instead, which merges *below* extraction and
/// keeps the byte-identity contract.
SchemaGraph MergeShardSchemas(const std::vector<SchemaGraph>& shard_schemas,
                              const ExtractionOptions& options = {});

}  // namespace pghive::core

#endif  // PGHIVE_CORE_SHARD_MERGE_H_
