#ifndef PGHIVE_CORE_REMOVAL_H_
#define PGHIVE_CORE_REMOVAL_H_

#include "core/schema.h"
#include "pg/batch.h"
#include "pg/graph.h"

namespace pghive::core {

/// Result of applying a deletion batch to a schema.
struct RemovalResult {
  size_t nodes_removed = 0;
  size_t edges_removed = 0;
  size_t node_types_dropped = 0;  ///< Types left with zero instances.
  size_t edge_types_dropped = 0;
};

/// Incremental *deletions* — the paper's explicit future work ("handling
/// updates and deletions is left for future work", §4.6), implemented here
/// as an extension:
///
///   - the given node/edge ids are removed from their types' instance lists,
///   - per-property counts are decremented from the elements' current
///     property maps (so mandatory/optional stays exact when the graph still
///     holds the deleted elements' data at call time),
///   - types whose instance count reaches zero are dropped.
///
/// Note the semantic asymmetry with insertion: deletions are *not* monotone
/// (a schema may shrink), so the S_i ⊑ S_{i+1} chain only holds between
/// deletions. Constraints and cardinalities should be refreshed afterwards
/// via InferPropertyConstraints / ComputeCardinalities on the updated graph.
RemovalResult RemoveBatch(const pg::PropertyGraph& graph,
                          const pg::GraphBatch& batch, SchemaGraph* schema);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_REMOVAL_H_
