#include "core/alignment.h"

#include <algorithm>

#include "core/type_extraction.h"
#include "util/union_find.h"

namespace pghive::core {

std::vector<AlignmentSuggestion> SuggestAlignments(
    const SchemaGraph& schema, const pg::Vocabulary& vocab,
    const embed::LabelEmbedder& embedder, const AlignmentOptions& options) {
  std::vector<AlignmentSuggestion> suggestions;
  const auto& types = schema.node_types();

  // Pre-compute tokens and embeddings per type.
  std::vector<std::vector<float>> embeddings(types.size());
  std::vector<bool> eligible(types.size(), false);
  for (size_t t = 0; t < types.size(); ++t) {
    if (options.labeled_only && types[t].is_abstract()) continue;
    pg::LabelSetToken token =
        const_cast<pg::Vocabulary&>(vocab).TokenForLabelSet(types[t].labels);
    if (token == pg::kNoToken) continue;
    embeddings[t] = embedder.EmbedVec(token);
    eligible[t] = true;
  }

  for (size_t a = 0; a < types.size(); ++a) {
    if (!eligible[a]) continue;
    for (size_t b = a + 1; b < types.size(); ++b) {
      if (!eligible[b]) continue;
      // Identical label sets are already merged by Algorithm 2.
      if (types[a].labels == types[b].labels) continue;
      double label_sim = embed::CosineSimilarity(embeddings[a], embeddings[b]);
      if (label_sim < options.min_label_similarity) continue;
      double structure_sim = JaccardSorted(types[a].Keys(), types[b].Keys());
      if (structure_sim < options.min_structure_similarity) continue;
      suggestions.push_back({static_cast<uint32_t>(a),
                             static_cast<uint32_t>(b), label_sim,
                             structure_sim});
    }
  }
  return suggestions;
}

size_t ApplyAlignments(const std::vector<AlignmentSuggestion>& suggestions,
                       SchemaGraph* schema) {
  auto& types = schema->node_types();
  if (types.empty() || suggestions.empty()) return 0;

  util::UnionFind uf(types.size());
  size_t merges = 0;
  for (const AlignmentSuggestion& s : suggestions) {
    if (s.type_a >= types.size() || s.type_b >= types.size()) continue;
    merges += uf.Union(s.type_a, s.type_b);
  }
  if (merges == 0) return 0;

  // Rebuild the type list: group members merge with union semantics
  // (Lemma 1 — nothing is lost).
  std::vector<NodeType> merged;
  std::vector<int> root_to_new(types.size(), -1);
  for (uint32_t t = 0; t < types.size(); ++t) {
    uint32_t root = uf.Find(t);
    if (root_to_new[root] < 0) {
      root_to_new[root] = static_cast<int>(merged.size());
      merged.push_back(std::move(types[t]));
      continue;
    }
    NodeType& into = merged[root_to_new[root]];
    NodeType& from = types[t];
    into.labels = UnionSorted(into.labels, from.labels);
    for (const auto& [key, info] : from.properties) {
      PropertyInfo& dst = into.properties[key];
      dst.count += info.count;
      dst.data_type = pg::JoinDataTypes(dst.data_type, info.data_type);
    }
    into.instances.insert(into.instances.end(), from.instances.begin(),
                          from.instances.end());
    into.instance_count += from.instance_count;
    into.pattern_hashes.insert(from.pattern_hashes.begin(),
                               from.pattern_hashes.end());
  }
  types = std::move(merged);
  return merges;
}

}  // namespace pghive::core
