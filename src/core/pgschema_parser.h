#ifndef PGHIVE_CORE_PGSCHEMA_PARSER_H_
#define PGHIVE_CORE_PGSCHEMA_PARSER_H_

#include <string>

#include "core/schema.h"
#include "pg/vocabulary.h"
#include "util/status.h"

namespace pghive::core {

/// Parses the PG-Schema dialect emitted by SerializePgSchema back into a
/// SchemaGraph, so exported `.pgs` files can be loaded for validation or
/// merging (CREATE GRAPH TYPE ... { (T : L & L2 {k TYPE, OPTIONAL k2}),
/// (:S)-[E : L {..}]->(:T) }). Labels and keys are interned into `vocab`.
///
/// Instance-level evidence (instance lists, pattern hashes) is obviously
/// absent from the text form; parsed types carry counts of 0/1 chosen so
/// that MANDATORY/OPTIONAL round-trips through InferPropertyConstraints
/// (count == instance_count == 1 for mandatory, count == 0 for optional).
util::StatusOr<SchemaGraph> ParsePgSchema(const std::string& text,
                                        pg::Vocabulary* vocab);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_PGSCHEMA_PARSER_H_
