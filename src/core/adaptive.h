#ifndef PGHIVE_CORE_ADAPTIVE_H_
#define PGHIVE_CORE_ADAPTIVE_H_

#include <cstdint>

#include "core/vectorizer.h"

namespace pghive::core {

/// The adaptive ELSH parameter choice of §4.2 plus its intermediates, so the
/// Fig. 6 bench can show where the adaptive point lands.
struct AdaptiveChoice {
  double mu = 0.0;            ///< Mean sampled pairwise Euclidean distance.
  double alpha = 1.0;         ///< Label-count adjustment factor.
  double bucket_length = 1.0; ///< b = 1.2 * mu * alpha (floored at epsilon).
  size_t num_tables = 16;     ///< T from the size/label heuristic, clamped.
};

/// Knobs of the adaptive strategy (the paper's constants as defaults).
struct AdaptiveOptions {
  double base_factor = 1.2;      ///< b_base = base_factor * mu.
  size_t sample_pairs = 2000;    ///< Pairs used to estimate mu.
  size_t min_sample = 10000;     ///< "1% of the graph or at least 10k".
  size_t min_tables = 15;        ///< Clamp floor for T (paper: T in [15,35]).
  size_t max_tables = 40;        ///< Clamp ceiling for T.
  /// Edges benefit from slightly smaller alpha (§4.2, "practical ranges"):
  /// their 3d-embedding block makes inter-type distances smaller relative
  /// to mu, so buckets must be narrower to keep types separated.
  double edge_alpha_scale = 0.5;
  uint64_t seed = 7;
};

/// Chooses (b, T) for node clustering: samples max(1% of N, min_sample)
/// elements (capped at N), estimates the distance scale mu over random
/// pairs, sets b = 1.2*mu adjusted by the label-count factor
///   alpha = 0.8 (L<=3), 1.0 (4<=L<=10), 1.5 (L>10),
/// and T = b_base * max(5, alpha*min(25, log10 N)), clamped.
AdaptiveChoice ChooseNodeParams(const FeatureMatrix& features,
                                size_t num_distinct_labels,
                                const AdaptiveOptions& options = {});

/// Edge variant: T = b_base * max(3, alpha*min(20, log10 E)).
AdaptiveChoice ChooseEdgeParams(const FeatureMatrix& features,
                                size_t num_distinct_labels,
                                const AdaptiveOptions& options = {});

/// The label-count factor alpha (exposed for tests).
double AlphaForLabelCount(size_t num_labels);

/// Mean Euclidean distance over up to `pairs` random row pairs.
double EstimateDistanceScale(const FeatureMatrix& features, size_t pairs,
                             size_t max_sample, uint64_t seed);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_ADAPTIVE_H_
