#include "core/removal.h"

#include <algorithm>
#include <unordered_set>

namespace pghive::core {

namespace {

template <typename TypeT>
size_t RemoveFromTypes(const pg::PropertyGraph& graph,
                       const std::unordered_set<uint64_t>& victims,
                       bool edges, std::vector<TypeT>* types,
                       size_t* dropped) {
  size_t removed = 0;
  std::vector<TypeT> kept;
  kept.reserve(types->size());
  for (TypeT& type : *types) {
    std::vector<uint64_t> remaining;
    remaining.reserve(type.instances.size());
    for (uint64_t id : type.instances) {
      if (victims.count(id) == 0) {
        remaining.push_back(id);
        continue;
      }
      ++removed;
      --type.instance_count;
      // Decrement property counts using the element's current properties.
      const pg::PropertyMap& props = edges ? graph.edge(id).properties
                                           : graph.node(id).properties;
      for (const auto& [key, value] : props.entries()) {
        auto it = type.properties.find(key);
        if (it != type.properties.end() && it->second.count > 0) {
          --it->second.count;
        }
      }
    }
    type.instances = std::move(remaining);
    if (type.instance_count == 0 || type.instances.empty()) {
      ++*dropped;
      continue;
    }
    kept.push_back(std::move(type));
  }
  *types = std::move(kept);
  return removed;
}

}  // namespace

RemovalResult RemoveBatch(const pg::PropertyGraph& graph,
                          const pg::GraphBatch& batch, SchemaGraph* schema) {
  RemovalResult result;
  std::unordered_set<uint64_t> node_victims(batch.node_ids.begin(),
                                            batch.node_ids.end());
  std::unordered_set<uint64_t> edge_victims(batch.edge_ids.begin(),
                                            batch.edge_ids.end());
  result.nodes_removed =
      RemoveFromTypes(graph, node_victims, /*edges=*/false,
                      &schema->node_types(), &result.node_types_dropped);
  result.edges_removed =
      RemoveFromTypes(graph, edge_victims, /*edges=*/true,
                      &schema->edge_types(), &result.edge_types_dropped);
  return result;
}

}  // namespace pghive::core
