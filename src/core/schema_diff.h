#ifndef PGHIVE_CORE_SCHEMA_DIFF_H_
#define PGHIVE_CORE_SCHEMA_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schema.h"
#include "pg/vocabulary.h"
#include "util/status.h"

namespace pghive::core {

/// What happened to one property of a type between two schema versions.
struct PropertyDelta {
  enum class Kind : uint8_t {
    kAdded = 0,
    kRemoved = 1,
    kRetyped = 2,
    kRequirednessChanged = 3,
  };
  Kind kind = Kind::kAdded;
  std::string key;  ///< Property key name (resolved, self-contained).
  pg::DataType old_type = pg::DataType::kNull;  ///< kRetyped only.
  pg::DataType new_type = pg::DataType::kNull;  ///< kAdded / kRetyped.
  Requiredness old_requiredness = Requiredness::kOptional;
  Requiredness new_requiredness = Requiredness::kOptional;
};

/// One node or edge type that appeared, disappeared, or changed between two
/// schema versions. All names are resolved to strings at diff time so a
/// changefeed consumer needs no access to the producing hive's vocabulary.
struct TypeDelta {
  enum class Kind : uint8_t { kAdded = 0, kRemoved = 1, kChanged = 2 };
  Kind kind = Kind::kAdded;
  bool is_edge = false;
  std::string name;  ///< Display name ("Person", "Org|Company", "Abstract#3").
  /// Change in supporting instances (negative under instance decay/removal).
  int64_t instance_delta = 0;
  std::vector<PropertyDelta> properties;
  // Edge types only:
  CardinalityKind old_cardinality = CardinalityKind::kUnknown;
  CardinalityKind new_cardinality = CardinalityKind::kUnknown;
  uint64_t endpoints_added = 0;    ///< New (src, dst) endpoint pairs.
  uint64_t endpoints_removed = 0;  ///< Endpoint pairs no longer observed.
};

/// One changefeed record: everything that changed between two published
/// schema versions. Versions are the producer's monotonically increasing
/// counters (batches merged for the CLI, versions published for pghived).
struct SchemaDiff {
  uint64_t version_from = 0;
  uint64_t version_to = 0;
  uint64_t batch = 0;  ///< Batches merged when `version_to` was produced.
  std::vector<TypeDelta> node_deltas;
  std::vector<TypeDelta> edge_deltas;

  bool empty() const { return node_deltas.empty() && edge_deltas.empty(); }
};

/// Structural diff of two schemas produced by the *same* hive (ids in both
/// resolve through `vocab`). Types are matched by label set — the stable
/// identity across batch merges — with positional pairing among types that
/// share one (abstract types all share the empty set). Unmatched types in
/// `prev` become kRemoved deltas, unmatched in `next` kAdded, and matched
/// pairs that differ in properties, instance count, cardinality, or
/// endpoints become kChanged. Deterministic: output order follows `next`'s
/// type order, then `prev`'s for removals.
SchemaDiff DiffSchemas(const SchemaGraph& prev, const SchemaGraph& next,
                       const pg::Vocabulary& vocab);

/// Binary changefeed record: "PGHF" magic + u8 format version + one
/// CRC-framed util/binio section holding the record payload. Records are
/// designed to be appended to a feed file back to back.
std::string SerializeSchemaDiffBinary(const SchemaDiff& diff);

/// Parses a feed of zero or more concatenated SerializeSchemaDiffBinary
/// records. Truncation, bit flips (CRC), and malformed payloads fail with
/// ParseError; untrusted counts are clamped against the remaining input
/// before any allocation.
util::StatusOr<std::vector<SchemaDiff>> ParseSchemaDiffStream(
    const std::string& bytes);

/// One record recovered by ScanSchemaDiffStream, with its byte extent in the
/// scanned buffer so callers can slice or truncate the raw stream.
struct SchemaDiffRecord {
  SchemaDiff diff;
  size_t offset = 0;  ///< Byte offset of the record's first magic byte.
  size_t length = 0;  ///< Serialized record length in bytes.
};

/// Tolerant variant of ParseSchemaDiffStream for changefeed segment files: a
/// crash can leave a torn record at the tail, so instead of failing the whole
/// stream this returns every complete, CRC-valid record up to the first
/// malformed byte. `*valid_prefix` receives the length of the clean prefix
/// (== bytes.size() iff the whole stream parsed); everything past it is
/// untrusted and should be truncated away before appending new records.
std::vector<SchemaDiffRecord> ScanSchemaDiffStream(std::string_view bytes,
                                                   size_t* valid_prefix);

/// Human-readable rendering, one line per delta:
///   == v3 -> v4 (batch 4): 2 node / 1 edge deltas
///   + node Person|Student (+120 instances)
///   ~ edge KNOWS: property since retyped DATE -> DATETIME
std::string DescribeSchemaDiff(const SchemaDiff& diff);

/// One schema-drift signal found in a changefeed record: a property that
/// changed datatype, or an edge cardinality that moved *against* the
/// insertion lattice. Under pure insertion cardinality only widens
/// (1:1 -> N:1 / 1:N -> N:M); a non-widening transition between two
/// established kinds is only reachable through the decay model's instance
/// removal (core/removal.cc) and usually means the modeled world shifted.
struct DriftAlert {
  enum class Kind : uint8_t { kPropertyRetype = 0, kCardinalityFlip = 1 };
  Kind kind = Kind::kPropertyRetype;
  bool is_edge = false;
  uint64_t version_to = 0;  ///< Feed version that introduced the drift.
  std::string type_name;
  // kPropertyRetype only:
  std::string key;
  pg::DataType old_type = pg::DataType::kNull;
  pg::DataType new_type = pg::DataType::kNull;
  // kCardinalityFlip only:
  CardinalityKind old_cardinality = CardinalityKind::kUnknown;
  CardinalityKind new_cardinality = CardinalityKind::kUnknown;
};

/// True when `to` is reachable from `from` by adding instances alone:
/// kUnknown precedes everything, kOneToOne precedes the two asymmetric
/// kinds, and every kind precedes kManyToMany. A change for which this is
/// false (including any transition back to kUnknown) is a flip.
bool IsCardinalityWidening(CardinalityKind from, CardinalityKind to);

/// Flags every property retype and cardinality flip in one diff record.
/// Alert order is deterministic: node deltas before edge deltas, each in the
/// diff's own delta order.
std::vector<DriftAlert> ScanForDrift(const SchemaDiff& diff);

/// One-line rendering, e.g.
///   v4 node Person: property age retyped INTEGER -> STRING
///   v7 edge KNOWS: cardinality flipped N:M -> 1:N
std::string DescribeDriftAlert(const DriftAlert& alert);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_SCHEMA_DIFF_H_
