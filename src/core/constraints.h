#ifndef PGHIVE_CORE_CONSTRAINTS_H_
#define PGHIVE_CORE_CONSTRAINTS_H_

#include "core/schema.h"

namespace pghive::core {

/// Classifies every property of every type as MANDATORY or OPTIONAL (§4.4):
/// a property p is mandatory for type T iff f_T(p) = |{i in I_T : p in P_i}|
/// / |I_T| equals 1, i.e. it appears in every instance. Soundness: a
/// property marked mandatory is indeed present in all observed instances.
void InferPropertyConstraints(SchemaGraph* schema);

/// The frequency f_T(p) for one property of one type (0 if unknown key).
double PropertyFrequency(const NodeType& type, pg::PropKeyId key);
double PropertyFrequency(const EdgeType& type, pg::PropKeyId key);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_CONSTRAINTS_H_
