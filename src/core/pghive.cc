#include "core/pghive.h"

#include <algorithm>
#include <future>
#include <utility>

#include "core/cardinality.h"
#include "core/constraints.h"
#include "embed/corpus.h"
#include "embed/hash_embedder.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash.h"
#include "util/timer.h"

namespace pghive::core {

PgHive::PgHive(pg::PropertyGraph* graph, PgHiveOptions options)
    : graph_(graph), options_(options) {
  PGHIVE_CHECK(graph_ != nullptr);
  if (util::ThreadPool::ResolveThreads(options_.num_threads) > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.num_threads);
  }
  if (options_.embedder == EmbedderKind::kWord2Vec) {
    embed::Word2VecOptions w2v;
    w2v.dim = options_.embedding_dim;
    w2v.seed = options_.seed;
    auto model = std::make_unique<embed::Word2Vec>(&graph_->vocab(), w2v);
    word2vec_ = model.get();
    embedder_ = std::move(model);
  } else {
    embedder_ = std::make_unique<embed::HashEmbedder>(
        &graph_->vocab(), options_.embedding_dim, options_.seed);
  }
}

PgHive::~PgHive() = default;

lsh::ClusterSet PgHive::ClusterNodes(const pg::GraphBatch& batch,
                                     const FeatureMatrix& features,
                                     Vectorizer* vectorizer) {
  if (options_.method == ClusterMethod::kElsh) {
    AdaptiveChoice choice;
    if (options_.adaptive) {
      AdaptiveOptions aopts;
      aopts.seed = options_.seed ^ 0x11;
      choice = ChooseNodeParams(features, graph_->vocab().num_labels(), aopts);
      choice.bucket_length *= options_.alpha_scale;
    } else {
      choice.bucket_length = options_.bucket_length;
      choice.num_tables = options_.num_tables;
    }
    last_stats_.node_params = choice;
    lsh::EuclideanLshParams params;
    params.bucket_length = std::max(1e-6, choice.bucket_length);
    params.num_tables = std::max<size_t>(1, choice.num_tables);
    params.seed = options_.seed ^ 0xE15;
    params.amplification = options_.amplification;
    lsh::EuclideanLsh hasher(features.dim, params);
    return hasher.Cluster(features.data, features.num, pool_.get());
  }
  // MinHash path clusters the element sets.
  AdaptiveChoice choice;
  if (options_.adaptive) {
    AdaptiveOptions aopts;
    aopts.seed = options_.seed ^ 0x12;
    choice = ChooseNodeParams(features, graph_->vocab().num_labels(), aopts);
  } else {
    choice.num_tables = options_.num_tables;
  }
  last_stats_.node_params = choice;
  lsh::MinHashParams params;
  params.num_hashes = std::max<size_t>(4, choice.num_tables);
  params.rows_per_band =
      std::min(options_.minhash_rows_per_band, params.num_hashes);
  params.seed = options_.seed ^ 0x517;
  params.amplification = options_.amplification;
  lsh::MinHashLsh hasher(params);
  if (options_.columnar) {
    ElementSetCsr csr = vectorizer->NodeSetSpans(batch);
    return hasher.Cluster(
        lsh::SetSpans{csr.elements.data(), csr.offsets.data(), csr.num()},
        pool_.get());
  }
  return hasher.Cluster(vectorizer->NodeSets(batch), pool_.get());
}

lsh::ClusterSet PgHive::ClusterEdges(const pg::GraphBatch& batch,
                                     const FeatureMatrix& features,
                                     Vectorizer* vectorizer) {
  if (options_.method == ClusterMethod::kElsh) {
    AdaptiveChoice choice;
    if (options_.adaptive) {
      AdaptiveOptions aopts;
      aopts.seed = options_.seed ^ 0x21;
      choice = ChooseEdgeParams(features, graph_->vocab().num_labels(), aopts);
      choice.bucket_length *= options_.alpha_scale;
    } else {
      choice.bucket_length = options_.bucket_length;
      choice.num_tables = options_.num_tables;
    }
    last_stats_.edge_params = choice;
    lsh::EuclideanLshParams params;
    params.bucket_length = std::max(1e-6, choice.bucket_length);
    params.num_tables = std::max<size_t>(1, choice.num_tables);
    params.seed = options_.seed ^ 0xE25;
    params.amplification = options_.amplification;
    lsh::EuclideanLsh hasher(features.dim, params);
    return hasher.Cluster(features.data, features.num, pool_.get());
  }
  AdaptiveChoice choice;
  if (options_.adaptive) {
    AdaptiveOptions aopts;
    aopts.seed = options_.seed ^ 0x22;
    choice = ChooseEdgeParams(features, graph_->vocab().num_labels(), aopts);
  } else {
    choice.num_tables = options_.num_tables;
  }
  last_stats_.edge_params = choice;
  lsh::MinHashParams params;
  params.num_hashes = std::max<size_t>(4, choice.num_tables);
  params.rows_per_band =
      std::min(options_.minhash_rows_per_band, params.num_hashes);
  params.seed = options_.seed ^ 0x527;
  params.amplification = options_.amplification;
  lsh::MinHashLsh hasher(params);
  if (options_.columnar) {
    ElementSetCsr csr = vectorizer->EdgeSetSpans(batch);
    return hasher.Cluster(
        lsh::SetSpans{csr.elements.data(), csr.offsets.data(), csr.num()},
        pool_.get());
  }
  return hasher.Cluster(vectorizer->EdgeSets(batch), pool_.get());
}

util::Status PgHive::ProcessBatch(pg::GraphBatch batch) {
  return ProcessPrepared(PreprocessBatch(std::move(batch)));
}

PgHive::PreparedBatch PgHive::PreprocessBatch(pg::GraphBatch batch) {
  util::Timer timer;
  PreparedBatch prepared;
  prepared.batch = std::move(batch);
  const pg::GraphBatch& b = prepared.batch;

  // (b) Preprocess: train/refresh the label embedding on this batch, then
  // build representation vectors. Everything that advances cross-batch state
  // happens here, in a fixed order: the corpus build and the vectorizer's
  // intern pre-passes (column builds, in columnar mode) assign label-set
  // token ids, and Train continues the incremental Word2Vec model — so as
  // long as batches preprocess in order, ids and weights are identical
  // whether or not later stages overlap.
  prepared.vectorizer = std::make_unique<Vectorizer>(
      graph_, embedder_.get(), pool_.get(), options_.columnar);
  if (word2vec_ != nullptr) {
    embed::LabelCorpus corpus;
    if (options_.columnar) {
      // Edge columns before node columns: the edge build interns per edge in
      // the corpus sentence order (src, edge, dst), then the node build
      // interns the remaining (isolated-node) tokens in row order — the same
      // first-seen token-id sequence the row-path corpus walk produces.
      const pg::ColumnStore& edge_cols = prepared.vectorizer->EdgeColumns(b);
      const pg::ColumnStore& node_cols = prepared.vectorizer->NodeColumns(b);
      corpus = embed::BuildLabelCorpus(*graph_, edge_cols, node_cols);
    } else {
      corpus = embed::BuildLabelCorpus(*graph_, b);
    }
    word2vec_->Train(corpus, pool_.get());
  }
  prepared.node_features = prepared.vectorizer->NodeFeatures(b);
  prepared.edge_features = prepared.vectorizer->EdgeFeatures(b);
  // The feature matrices snapshot the embedder, and the vectorizer's
  // intern pre-passes (inside NodeFeatures/EdgeFeatures) snapshot the
  // vocabulary into its token caches: after this point nothing downstream
  // of this batch reads either, so the next batch is free to mutate both.
  prepared.preprocess_ms = timer.ElapsedMillis();
  return prepared;
}

util::Status PgHive::ProcessPrepared(PreparedBatch prepared) {
  last_stats_ = PipelineStats{};
  last_stats_.preprocess_ms = prepared.preprocess_ms;
  const pg::GraphBatch& batch = prepared.batch;
  Vectorizer& vectorizer = *prepared.vectorizer;
  util::Timer timer;

  // (c) LSH clustering + candidate build. The node and edge tracks are
  // independent: they write disjoint stats fields and share the graph and
  // the prepared batch read-only — the vectorizer's pre-pass already cached
  // every label-set token of the batch (including edge endpoint tokens), so
  // the tracks run concurrently when a pool is available. Each track's inner
  // loops also fan out on the pool (nested sections flatten into its queue).
  lsh::ClusterSet node_clusters;
  lsh::ClusterSet edge_clusters;
  std::vector<CandidateType> node_candidates;
  std::vector<CandidateType> edge_candidates;
  auto node_track = [&] {
    if (batch.node_ids.empty()) return;
    node_clusters = ClusterNodes(batch, prepared.node_features, &vectorizer);
    last_stats_.node_clusters = node_clusters.num_clusters();
    node_candidates = BuildNodeCandidates(*graph_, batch, node_clusters);
  };
  auto edge_track = [&] {
    if (batch.edge_ids.empty()) return;
    edge_clusters = ClusterEdges(batch, prepared.edge_features, &vectorizer);
    last_stats_.edge_clusters = edge_clusters.num_clusters();
    // EdgeEndpointTokens is a pure read of the cache EdgeFeatures warmed in
    // PreprocessBatch — no vocabulary access on this side of the overlap.
    edge_candidates = BuildEdgeCandidates(*graph_, batch, edge_clusters,
                                          vectorizer.EdgeEndpointTokens(batch));
  };
  if (pool_ != nullptr) {
    std::future<void> edges_done = pool_->Submit(edge_track);
    try {
      node_track();
    } catch (...) {
      // edge_track references stack locals; it must finish before unwinding.
      edges_done.wait();
      throw;
    }
    edges_done.get();
  } else {
    node_track();
    edge_track();
  }
  last_stats_.cluster_ms = timer.ElapsedMillis();

  // (d) Type extraction (Algorithm 2), merged into the running schema in a
  // fixed order — nodes then edges — so the schema never depends on which
  // track finished first.
  timer.Reset();
  ExtractionOptions ext;
  ext.jaccard_threshold = options_.jaccard_threshold;
  if (!batch.node_ids.empty()) {
    ExtractNodeTypes(std::move(node_candidates), ext, &schema_);
  }
  if (!batch.edge_ids.empty()) {
    ExtractEdgeTypes(std::move(edge_candidates), ext, &schema_);
  }
  last_stats_.extract_ms = timer.ElapsedMillis();

  // (e)-(g) Optional per-batch post-processing.
  if (options_.post_process_each_batch) {
    timer.Reset();
    InferPropertyConstraints(&schema_);
    InferDataTypes(*graph_, &schema_, options_.datatype_options, pool_.get());
    ComputeCardinalities(*graph_, &schema_);
    last_stats_.post_process_ms = timer.ElapsedMillis();
  }

  ++batches_processed_;
  total_stats_.preprocess_ms += last_stats_.preprocess_ms;
  total_stats_.cluster_ms += last_stats_.cluster_ms;
  total_stats_.extract_ms += last_stats_.extract_ms;
  total_stats_.post_process_ms += last_stats_.post_process_ms;
  total_stats_.node_clusters += last_stats_.node_clusters;
  total_stats_.edge_clusters += last_stats_.edge_clusters;
  return util::Status::Ok();
}

util::Status PgHive::Finish() {
  util::Timer timer;
  InferPropertyConstraints(&schema_);
  InferDataTypes(*graph_, &schema_, options_.datatype_options, pool_.get());
  ComputeCardinalities(*graph_, &schema_);
  double ms = timer.ElapsedMillis();
  last_stats_.post_process_ms += ms;
  total_stats_.post_process_ms += ms;
  return util::Status::Ok();
}

util::Status PgHive::Run() {
  util::Status status = ProcessBatch(pg::FullBatch(*graph_));
  if (!status.ok()) return status;
  return Finish();
}

std::vector<uint32_t> PgHive::NodeAssignment() const {
  return schema_.NodeAssignment(graph_->num_nodes());
}

std::vector<uint32_t> PgHive::EdgeAssignment() const {
  return schema_.EdgeAssignment(graph_->num_edges());
}

util::Result<SchemaGraph> DiscoverSchema(pg::PropertyGraph* graph,
                                         const PgHiveOptions& options) {
  PgHive pipeline(graph, options);
  util::Status status = pipeline.Run();
  if (!status.ok()) return status;
  return pipeline.schema();
}

}  // namespace pghive::core
