#include "core/pghive.h"

#include <algorithm>
#include <future>
#include <utility>

#include "core/cardinality.h"
#include "core/constraints.h"
#include "core/shard_merge.h"
#include "embed/corpus.h"
#include "embed/hash_embedder.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash.h"
#include "util/timer.h"

namespace pghive::core {

PgHive::PgHive(pg::PropertyGraph* graph, PgHiveOptions options,
               util::ThreadPool* shared_pool)
    : graph_(graph), options_(options) {
  PGHIVE_CHECK(graph_ != nullptr);
  if (shared_pool != nullptr && shared_pool->num_threads() > 1) {
    pool_ = shared_pool;
  } else if (shared_pool == nullptr &&
             util::ThreadPool::ResolveThreads(options_.num_threads) > 1) {
    owned_pool_ = std::make_unique<util::ThreadPool>(options_.num_threads);
    pool_ = owned_pool_.get();
  }
  if (options_.num_shards > 1) {
    shard_plan_ =
        std::make_unique<pg::ShardPlan>(options_.num_shards, options_.seed);
    // Split the worker budget across shards: each shard's data plane fans
    // out on its own pool. With fewer than 2 workers per shard the pools
    // would be pure overhead — shards then run inline on whichever main-pool
    // worker picked them up (still shard-parallel, just not nested).
    const size_t resolved =
        pool_ != nullptr ? pool_->num_threads()
                         : util::ThreadPool::ResolveThreads(options_.num_threads);
    const size_t per_shard =
        resolved > 1 ? std::max<size_t>(1, resolved / options_.num_shards) : 1;
    if (per_shard > 1) {
      shard_pools_.resize(options_.num_shards);
      for (auto& shard_pool : shard_pools_) {
        shard_pool = std::make_unique<util::ThreadPool>(per_shard);
      }
    }
  }
  if (options_.embedder == EmbedderKind::kWord2Vec) {
    embed::Word2VecOptions w2v;
    w2v.dim = options_.embedding_dim;
    w2v.seed = options_.seed;
    auto model = std::make_unique<embed::Word2Vec>(&graph_->vocab(), w2v);
    word2vec_ = model.get();
    embedder_ = std::move(model);
  } else {
    embedder_ = std::make_unique<embed::HashEmbedder>(
        &graph_->vocab(), options_.embedding_dim, options_.seed);
  }
}

PgHive::~PgHive() = default;

util::StatusOr<std::unique_ptr<PgHive>> PgHive::Create(
    pg::PropertyGraph* graph, PgHiveOptions options,
    util::ThreadPool* shared_pool) {
  if (graph == nullptr) {
    return util::Status::InvalidArgument("PgHive needs a non-null graph");
  }
  util::Status valid = options.Validate();
  if (!valid.ok()) return valid;
  return std::make_unique<PgHive>(graph, options, shared_pool);
}

namespace {

util::Status PhaseError(PgHive::Phase phase, const char* call) {
  return util::Status::FailedPrecondition(
      std::string(call) + " on a " +
      (phase == PgHive::Phase::kFinished ? "finished" : "failed") +
      " PgHive; construct a new hive to discover again");
}

}  // namespace

lsh::EuclideanLshParams PgHive::NodeElshParams(const FeatureMatrix& features) {
  AdaptiveChoice choice;
  if (options_.adaptive) {
    AdaptiveOptions aopts;
    aopts.seed = options_.seed ^ 0x11;
    choice = ChooseNodeParams(features, graph_->vocab().num_labels(), aopts);
    choice.bucket_length *= options_.alpha_scale;
  } else {
    choice.bucket_length = options_.bucket_length;
    choice.num_tables = options_.num_tables;
  }
  last_stats_.node_params = choice;
  lsh::EuclideanLshParams params;
  params.bucket_length = std::max(1e-6, choice.bucket_length);
  params.num_tables = std::max<size_t>(1, choice.num_tables);
  params.seed = options_.seed ^ 0xE15;
  params.amplification = options_.amplification;
  return params;
}

lsh::EuclideanLshParams PgHive::EdgeElshParams(const FeatureMatrix& features) {
  AdaptiveChoice choice;
  if (options_.adaptive) {
    AdaptiveOptions aopts;
    aopts.seed = options_.seed ^ 0x21;
    choice = ChooseEdgeParams(features, graph_->vocab().num_labels(), aopts);
    choice.bucket_length *= options_.alpha_scale;
  } else {
    choice.bucket_length = options_.bucket_length;
    choice.num_tables = options_.num_tables;
  }
  last_stats_.edge_params = choice;
  lsh::EuclideanLshParams params;
  params.bucket_length = std::max(1e-6, choice.bucket_length);
  params.num_tables = std::max<size_t>(1, choice.num_tables);
  params.seed = options_.seed ^ 0xE25;
  params.amplification = options_.amplification;
  return params;
}

lsh::MinHashParams PgHive::NodeMinHashParams(const FeatureMatrix& features) {
  AdaptiveChoice choice;
  if (options_.adaptive) {
    AdaptiveOptions aopts;
    aopts.seed = options_.seed ^ 0x12;
    choice = ChooseNodeParams(features, graph_->vocab().num_labels(), aopts);
  } else {
    choice.num_tables = options_.num_tables;
  }
  last_stats_.node_params = choice;
  lsh::MinHashParams params;
  params.num_hashes = std::max<size_t>(4, choice.num_tables);
  params.rows_per_band =
      std::min(options_.minhash_rows_per_band, params.num_hashes);
  params.seed = options_.seed ^ 0x517;
  params.amplification = options_.amplification;
  return params;
}

lsh::MinHashParams PgHive::EdgeMinHashParams(const FeatureMatrix& features) {
  AdaptiveChoice choice;
  if (options_.adaptive) {
    AdaptiveOptions aopts;
    aopts.seed = options_.seed ^ 0x22;
    choice = ChooseEdgeParams(features, graph_->vocab().num_labels(), aopts);
  } else {
    choice.num_tables = options_.num_tables;
  }
  last_stats_.edge_params = choice;
  lsh::MinHashParams params;
  params.num_hashes = std::max<size_t>(4, choice.num_tables);
  params.rows_per_band =
      std::min(options_.minhash_rows_per_band, params.num_hashes);
  params.seed = options_.seed ^ 0x527;
  params.amplification = options_.amplification;
  return params;
}

lsh::ClusterSet PgHive::ClusterNodes(const pg::GraphBatch& batch,
                                     const FeatureMatrix& features,
                                     Vectorizer* vectorizer) {
  if (options_.method == ClusterMethod::kElsh) {
    lsh::EuclideanLshParams params = NodeElshParams(features);
    lsh::EuclideanLsh hasher(features.dim, params);
    return hasher.Cluster(features.data, features.num, pool_);
  }
  // MinHash path clusters the element sets.
  lsh::MinHashParams params = NodeMinHashParams(features);
  lsh::MinHashLsh hasher(params);
  if (options_.columnar) {
    ElementSetCsr csr = vectorizer->NodeSetSpans(batch);
    return hasher.Cluster(
        lsh::SetSpans{csr.elements.data(), csr.offsets.data(), csr.num()},
        pool_);
  }
  return hasher.Cluster(vectorizer->NodeSets(batch), pool_);
}

lsh::ClusterSet PgHive::ClusterEdges(const pg::GraphBatch& batch,
                                     const FeatureMatrix& features,
                                     Vectorizer* vectorizer) {
  if (options_.method == ClusterMethod::kElsh) {
    lsh::EuclideanLshParams params = EdgeElshParams(features);
    lsh::EuclideanLsh hasher(features.dim, params);
    return hasher.Cluster(features.data, features.num, pool_);
  }
  lsh::MinHashParams params = EdgeMinHashParams(features);
  lsh::MinHashLsh hasher(params);
  if (options_.columnar) {
    ElementSetCsr csr = vectorizer->EdgeSetSpans(batch);
    return hasher.Cluster(
        lsh::SetSpans{csr.elements.data(), csr.offsets.data(), csr.num()},
        pool_);
  }
  return hasher.Cluster(vectorizer->EdgeSets(batch), pool_);
}

util::Status PgHive::ProcessBatch(pg::GraphBatch batch) {
  if (phase_ != Phase::kIngesting) return PhaseError(phase_, "ProcessBatch()");
  return ProcessPrepared(PreprocessBatch(std::move(batch)));
}

PgHive::PreparedBatch PgHive::PreprocessBatch(pg::GraphBatch batch) {
  if (shard_plan_ != nullptr) return PreprocessSharded(std::move(batch));
  util::Timer timer;
  PreparedBatch prepared;
  prepared.batch = std::move(batch);
  const pg::GraphBatch& b = prepared.batch;

  // (b) Preprocess: train/refresh the label embedding on this batch, then
  // build representation vectors. Everything that advances cross-batch state
  // happens here, in a fixed order: the corpus build and the vectorizer's
  // intern pre-passes (column builds, in columnar mode) assign label-set
  // token ids, and Train continues the incremental Word2Vec model — so as
  // long as batches preprocess in order, ids and weights are identical
  // whether or not later stages overlap.
  prepared.vectorizer = std::make_unique<Vectorizer>(
      graph_, embedder_.get(), pool_, options_.columnar);
  if (word2vec_ != nullptr) {
    embed::LabelCorpus corpus;
    if (options_.columnar) {
      // Edge columns before node columns: the edge build interns per edge in
      // the corpus sentence order (src, edge, dst), then the node build
      // interns the remaining (isolated-node) tokens in row order — the same
      // first-seen token-id sequence the row-path corpus walk produces.
      const pg::ColumnStore& edge_cols = prepared.vectorizer->EdgeColumns(b);
      const pg::ColumnStore& node_cols = prepared.vectorizer->NodeColumns(b);
      corpus = embed::BuildLabelCorpus(*graph_, edge_cols, node_cols);
    } else {
      corpus = embed::BuildLabelCorpus(*graph_, b);
    }
    word2vec_->Train(corpus, pool_);
  }
  prepared.node_features = prepared.vectorizer->NodeFeatures(b);
  prepared.edge_features = prepared.vectorizer->EdgeFeatures(b);
  // The feature matrices snapshot the embedder, and the vectorizer's
  // intern pre-passes (inside NodeFeatures/EdgeFeatures) snapshot the
  // vocabulary into its token caches: after this point nothing downstream
  // of this batch reads either, so the next batch is free to mutate both.
  prepared.preprocess_ms = timer.ElapsedMillis();
  return prepared;
}

namespace {

// Scatters per-shard feature rows back into a matrix in parent-batch order.
// Rows are position-pure (embedding lookup + vocab-wide binary key block),
// so the gathered matrix is bit-identical to the one the unsharded
// vectorizer builds over the whole batch — which is what lets the adaptive
// parameter choice run on it unchanged.
FeatureMatrix GatherShardFeatures(
    const std::vector<PgHive::PreparedBatch::ShardPrepared>& shards,
    size_t num, bool nodes) {
  FeatureMatrix out;
  out.num = num;
  for (const auto& sp : shards) {
    const FeatureMatrix& f = nodes ? sp.node_features : sp.edge_features;
    out.dim = std::max(out.dim, f.dim);
  }
  out.data.assign(num * out.dim, 0.0f);
  for (const auto& sp : shards) {
    const FeatureMatrix& f = nodes ? sp.node_features : sp.edge_features;
    const std::vector<uint32_t>& positions =
        nodes ? sp.shard.node_positions : sp.shard.edge_positions;
    for (size_t i = 0; i < f.num; ++i) {
      std::copy_n(&f.data[i * out.dim], out.dim,
                  &out.data[size_t{positions[i]} * out.dim]);
    }
  }
  return out;
}

}  // namespace

PgHive::PreparedBatch PgHive::PreprocessSharded(pg::GraphBatch batch) {
  util::Timer timer;
  PreparedBatch prepared;
  prepared.batch = std::move(batch);
  const pg::GraphBatch& b = prepared.batch;

  // The cross-batch state advance stays global and serial — exactly the
  // unsharded sequence, so label-set token ids and Word2Vec weights are
  // byte-identical to num_shards == 1 and every later vocabulary access in
  // this function is a read-only cache hit (safe to race across shards).
  if (word2vec_ != nullptr) {
    // The row-path corpus walk interns per edge in sentence order
    // (src, edge, dst), then the remaining isolated-node tokens in row
    // order — the canonical first-seen sequence of both data planes.
    embed::LabelCorpus corpus = embed::BuildLabelCorpus(*graph_, b);
    word2vec_->Train(corpus, pool_);
  } else {
    // Hash embedder: no corpus build interns for us, so warm the label-set
    // token cache in the order the unsharded vectorizer would — all batch
    // nodes in row order (NodeFeatures runs first), then (src, edge, dst)
    // per edge.
    pg::Vocabulary& vocab = graph_->vocab();
    for (pg::NodeId id : b.node_ids) {
      vocab.TokenForLabelSet(graph_->node(id).labels);
    }
    for (pg::EdgeId id : b.edge_ids) {
      const pg::Edge& e = graph_->edge(id);
      vocab.TokenForLabelSet(graph_->node(e.src).labels);
      vocab.TokenForLabelSet(e.labels);
      vocab.TokenForLabelSet(graph_->node(e.dst).labels);
    }
  }

  // Partition, then build each shard's data plane — its own vectorizer over
  // per-shard column stores and feature matrices — shards in parallel on
  // the main pool, each shard's inner loops on its own pool.
  std::vector<pg::ShardBatch> shard_batches = shard_plan_->Partition(*graph_, b);
  prepared.shards.resize(shard_batches.size());
  for (size_t s = 0; s < shard_batches.size(); ++s) {
    prepared.shards[s].shard = std::move(shard_batches[s]);
  }
  util::ParallelFor(
      pool_, 0, prepared.shards.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t s = lo; s < hi; ++s) {
          PreparedBatch::ShardPrepared& sp = prepared.shards[s];
          sp.vectorizer = std::make_unique<Vectorizer>(
              graph_, embedder_.get(), ShardPool(s), options_.columnar);
          sp.node_features = sp.vectorizer->NodeFeatures(sp.shard.batch);
          sp.edge_features = sp.vectorizer->EdgeFeatures(sp.shard.batch);
        }
      });

  // Gather the global matrices the adaptive parameter choice reads; the
  // per-shard matrices stay alive for the per-shard hashing passes.
  prepared.node_features =
      GatherShardFeatures(prepared.shards, b.node_ids.size(), /*nodes=*/true);
  prepared.edge_features =
      GatherShardFeatures(prepared.shards, b.edge_ids.size(), /*nodes=*/false);
  prepared.preprocess_ms = timer.ElapsedMillis();
  return prepared;
}

lsh::ClusterSet PgHive::ClusterNodesSharded(PreparedBatch& prepared) {
  const FeatureMatrix& features = prepared.node_features;
  const size_t num = features.num;
  const size_t num_shards = prepared.shards.size();
  if (options_.method == ClusterMethod::kElsh) {
    lsh::EuclideanLshParams params = NodeElshParams(features);
    lsh::EuclideanLsh hasher(features.dim, params);
    const size_t t = params.num_tables;
    std::vector<uint64_t> sigs(num * t);
    // Per-row hashing is position-pure: hash each shard's rows on its own
    // pool, scatter the T-slot stripes by parent-batch position, and the
    // signature matrix matches the unsharded HashAll bit for bit.
    util::ParallelFor(
        pool_, 0, num_shards, 1, [&](size_t lo, size_t hi) {
          for (size_t s = lo; s < hi; ++s) {
            const PreparedBatch::ShardPrepared& sp = prepared.shards[s];
            if (sp.shard.batch.node_ids.empty()) continue;
            std::vector<uint64_t> local = hasher.HashAll(
                sp.node_features.data, sp.node_features.num, ShardPool(s));
            for (size_t i = 0; i < sp.node_features.num; ++i) {
              std::copy_n(&local[i * t], t,
                          &sigs[size_t{sp.shard.node_positions[i]} * t]);
            }
          }
        });
    return params.amplification == lsh::Amplification::kAnd
               ? lsh::ClusterBySignature(sigs, num, t, pool_)
               : lsh::ClusterByAnyCollision(sigs, num, t, pool_);
  }
  lsh::MinHashParams params = NodeMinHashParams(features);
  lsh::MinHashLsh hasher(params);
  const size_t t = hasher.params().num_hashes;
  std::vector<uint64_t> sigs(num * t);
  util::ParallelFor(pool_, 0, num_shards, 1, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      const PreparedBatch::ShardPrepared& sp = prepared.shards[s];
      if (sp.shard.batch.node_ids.empty()) continue;
      std::vector<uint64_t> local;
      if (options_.columnar) {
        ElementSetCsr csr = sp.vectorizer->NodeSetSpans(sp.shard.batch);
        local = hasher.SignatureAll(
            lsh::SetSpans{csr.elements.data(), csr.offsets.data(), csr.num()},
            ShardPool(s));
      } else {
        local = hasher.SignatureAll(sp.vectorizer->NodeSets(sp.shard.batch),
                                    ShardPool(s));
      }
      for (size_t i = 0; i < sp.shard.batch.node_ids.size(); ++i) {
        std::copy_n(&local[i * t], t,
                    &sigs[size_t{sp.shard.node_positions[i]} * t]);
      }
    }
  });
  return hasher.ClusterFromSignatures(sigs, num, pool_);
}

lsh::ClusterSet PgHive::ClusterEdgesSharded(PreparedBatch& prepared) {
  const FeatureMatrix& features = prepared.edge_features;
  const size_t num = features.num;
  const size_t num_shards = prepared.shards.size();
  if (options_.method == ClusterMethod::kElsh) {
    lsh::EuclideanLshParams params = EdgeElshParams(features);
    lsh::EuclideanLsh hasher(features.dim, params);
    const size_t t = params.num_tables;
    std::vector<uint64_t> sigs(num * t);
    util::ParallelFor(
        pool_, 0, num_shards, 1, [&](size_t lo, size_t hi) {
          for (size_t s = lo; s < hi; ++s) {
            const PreparedBatch::ShardPrepared& sp = prepared.shards[s];
            if (sp.shard.batch.edge_ids.empty()) continue;
            std::vector<uint64_t> local = hasher.HashAll(
                sp.edge_features.data, sp.edge_features.num, ShardPool(s));
            for (size_t i = 0; i < sp.edge_features.num; ++i) {
              std::copy_n(&local[i * t], t,
                          &sigs[size_t{sp.shard.edge_positions[i]} * t]);
            }
          }
        });
    return params.amplification == lsh::Amplification::kAnd
               ? lsh::ClusterBySignature(sigs, num, t, pool_)
               : lsh::ClusterByAnyCollision(sigs, num, t, pool_);
  }
  lsh::MinHashParams params = EdgeMinHashParams(features);
  lsh::MinHashLsh hasher(params);
  const size_t t = hasher.params().num_hashes;
  std::vector<uint64_t> sigs(num * t);
  util::ParallelFor(pool_, 0, num_shards, 1, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      const PreparedBatch::ShardPrepared& sp = prepared.shards[s];
      if (sp.shard.batch.edge_ids.empty()) continue;
      std::vector<uint64_t> local;
      if (options_.columnar) {
        ElementSetCsr csr = sp.vectorizer->EdgeSetSpans(sp.shard.batch);
        local = hasher.SignatureAll(
            lsh::SetSpans{csr.elements.data(), csr.offsets.data(), csr.num()},
            ShardPool(s));
      } else {
        local = hasher.SignatureAll(sp.vectorizer->EdgeSets(sp.shard.batch),
                                    ShardPool(s));
      }
      for (size_t i = 0; i < sp.shard.batch.edge_ids.size(); ++i) {
        std::copy_n(&local[i * t], t,
                    &sigs[size_t{sp.shard.edge_positions[i]} * t]);
      }
    }
  });
  return hasher.ClusterFromSignatures(sigs, num, pool_);
}

std::vector<CandidateType> PgHive::ShardedNodeCandidates(
    const PreparedBatch& prepared, const lsh::ClusterSet& clusters) {
  const size_t num_shards = prepared.shards.size();
  std::vector<ShardCandidates> parts(num_shards);
  util::ParallelFor(pool_, 0, num_shards, 1, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      parts[s] =
          BuildNodeShardCandidates(*graph_, prepared.shards[s].shard, clusters);
    }
  });
  return MergeShardCandidates(std::move(parts), clusters.num_clusters());
}

std::vector<CandidateType> PgHive::ShardedEdgeCandidates(
    const PreparedBatch& prepared, const lsh::ClusterSet& clusters) {
  const size_t num_shards = prepared.shards.size();
  std::vector<ShardCandidates> parts(num_shards);
  util::ParallelFor(pool_, 0, num_shards, 1, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      const PreparedBatch::ShardPrepared& sp = prepared.shards[s];
      // EdgeEndpointTokens is a pure read of the cache EdgeFeatures warmed
      // in PreprocessSharded.
      parts[s] = BuildEdgeShardCandidates(
          *graph_, sp.shard, clusters,
          sp.vectorizer->EdgeEndpointTokens(sp.shard.batch));
    }
  });
  return MergeShardCandidates(std::move(parts), clusters.num_clusters());
}

util::Status PgHive::ProcessPrepared(PreparedBatch prepared) {
  if (phase_ != Phase::kIngesting) {
    return PhaseError(phase_, "ProcessPrepared()");
  }
  last_stats_ = PipelineStats{};
  last_stats_.preprocess_ms = prepared.preprocess_ms;
  const pg::GraphBatch& batch = prepared.batch;
  const bool sharded = !prepared.shards.empty();
  util::Timer timer;

  // (c) LSH clustering + candidate build. The node and edge tracks are
  // independent: they write disjoint stats fields and share the graph and
  // the prepared batch read-only — the vectorizer's pre-pass already cached
  // every label-set token of the batch (including edge endpoint tokens), so
  // the tracks run concurrently when a pool is available. Each track's inner
  // loops also fan out on the pool (nested sections flatten into its queue).
  lsh::ClusterSet node_clusters;
  lsh::ClusterSet edge_clusters;
  std::vector<CandidateType> node_candidates;
  std::vector<CandidateType> edge_candidates;
  auto node_track = [&] {
    if (batch.node_ids.empty()) return;
    node_clusters = sharded ? ClusterNodesSharded(prepared)
                            : ClusterNodes(batch, prepared.node_features,
                                           prepared.vectorizer.get());
    last_stats_.node_clusters = node_clusters.num_clusters();
    node_candidates =
        sharded ? ShardedNodeCandidates(prepared, node_clusters)
                : BuildNodeCandidates(*graph_, batch, node_clusters);
  };
  auto edge_track = [&] {
    if (batch.edge_ids.empty()) return;
    edge_clusters = sharded ? ClusterEdgesSharded(prepared)
                            : ClusterEdges(batch, prepared.edge_features,
                                           prepared.vectorizer.get());
    last_stats_.edge_clusters = edge_clusters.num_clusters();
    // EdgeEndpointTokens is a pure read of the cache EdgeFeatures warmed in
    // PreprocessBatch — no vocabulary access on this side of the overlap.
    edge_candidates =
        sharded ? ShardedEdgeCandidates(prepared, edge_clusters)
                : BuildEdgeCandidates(
                      *graph_, batch, edge_clusters,
                      prepared.vectorizer->EdgeEndpointTokens(batch));
  };
  if (pool_ != nullptr) {
    std::future<void> edges_done = pool_->Submit(edge_track);
    try {
      node_track();
    } catch (...) {
      // edge_track references stack locals; it must finish before unwinding.
      pool_->HelpWhileWaiting(edges_done);
      throw;
    }
    // Drain-while-waiting: ProcessBatch may itself be running on a pool
    // worker (pghived schedules session jobs onto the shared pool), and a
    // plain get() would deadlock when no other worker is free to take the
    // edge track.
    pool_->HelpWhileWaiting(edges_done);
    edges_done.get();
  } else {
    node_track();
    edge_track();
  }
  last_stats_.cluster_ms = timer.ElapsedMillis();

  // (d) Type extraction (Algorithm 2), merged into the running schema in a
  // fixed order — nodes then edges — so the schema never depends on which
  // track finished first.
  timer.Reset();
  ExtractionOptions ext;
  ext.jaccard_threshold = options_.jaccard_threshold;
  if (!batch.node_ids.empty()) {
    ExtractNodeTypes(std::move(node_candidates), ext, &schema_);
  }
  if (!batch.edge_ids.empty()) {
    ExtractEdgeTypes(std::move(edge_candidates), ext, &schema_);
  }
  last_stats_.extract_ms = timer.ElapsedMillis();

  // (e)-(g) Optional per-batch post-processing.
  if (options_.post_process_each_batch) {
    timer.Reset();
    InferPropertyConstraints(&schema_);
    InferDataTypes(*graph_, &schema_, options_.datatype_options, pool_);
    ComputeCardinalities(*graph_, &schema_);
    last_stats_.post_process_ms = timer.ElapsedMillis();
  }

  ++batches_processed_;
  total_stats_.preprocess_ms += last_stats_.preprocess_ms;
  total_stats_.cluster_ms += last_stats_.cluster_ms;
  total_stats_.extract_ms += last_stats_.extract_ms;
  total_stats_.post_process_ms += last_stats_.post_process_ms;
  total_stats_.node_clusters += last_stats_.node_clusters;
  total_stats_.edge_clusters += last_stats_.edge_clusters;
  return util::Status::Ok();
}

util::Status PgHive::Finish() {
  if (phase_ != Phase::kIngesting) return PhaseError(phase_, "Finish()");
  util::Timer timer;
  InferPropertyConstraints(&schema_);
  InferDataTypes(*graph_, &schema_, options_.datatype_options, pool_);
  ComputeCardinalities(*graph_, &schema_);
  double ms = timer.ElapsedMillis();
  last_stats_.post_process_ms += ms;
  total_stats_.post_process_ms += ms;
  phase_ = Phase::kFinished;
  return util::Status::Ok();
}

util::Status PgHive::Run() {
  if (phase_ != Phase::kIngesting) return PhaseError(phase_, "Run()");
  util::Status status = ProcessBatch(pg::FullBatch(*graph_));
  if (!status.ok()) {
    phase_ = Phase::kFailed;
    return status;
  }
  return Finish();
}

std::vector<uint32_t> PgHive::NodeAssignment() const {
  return schema_.NodeAssignment(graph_->num_nodes());
}

std::vector<uint32_t> PgHive::EdgeAssignment() const {
  return schema_.EdgeAssignment(graph_->num_edges());
}

util::StatusOr<SchemaGraph> DiscoverSchema(pg::PropertyGraph* graph,
                                         const PgHiveOptions& options) {
  PgHive pipeline(graph, options);
  util::Status status = pipeline.Run();
  if (!status.ok()) return status;
  return pipeline.schema();
}

}  // namespace pghive::core
