#include "core/datatype_inference.h"

#include <algorithm>
#include <array>

#include "util/rng.h"

namespace pghive::core {

namespace {

const pg::Value* GetValue(const pg::PropertyGraph& graph, uint64_t instance,
                          bool edges, pg::PropKeyId key) {
  if (edges) return graph.edge(instance).properties.Get(key);
  return graph.node(instance).properties.Get(key);
}

template <typename TypeT>
void InferForType(const pg::PropertyGraph& graph, bool edges,
                  const DataTypeOptions& options, util::Rng* rng,
                  TypeT* type) {
  for (auto& [key, info] : type->properties) {
    pg::DataType joined = pg::DataType::kNull;
    size_t seen = 0;
    if (options.sample && type->instances.size() > options.min_sample) {
      size_t want = std::max(
          options.min_sample,
          static_cast<size_t>(options.sample_fraction *
                              static_cast<double>(type->instances.size())));
      want = std::min(want, type->instances.size());
      auto idx = rng->SampleWithoutReplacement(type->instances.size(), want);
      for (size_t i : idx) {
        const pg::Value* v = GetValue(graph, type->instances[i], edges, key);
        if (v == nullptr || v->is_null()) continue;
        joined = pg::JoinDataTypes(joined, v->InferType());
        ++seen;
      }
    } else {
      for (uint64_t inst : type->instances) {
        const pg::Value* v = GetValue(graph, inst, edges, key);
        if (v == nullptr || v->is_null()) continue;
        joined = pg::JoinDataTypes(joined, v->InferType());
        ++seen;
      }
    }
    // The paper falls back to a string default when nothing is known.
    info.data_type = (seen == 0 || joined == pg::DataType::kNull)
                         ? pg::DataType::kString
                         : joined;
  }
}

}  // namespace

void InferDataTypes(const pg::PropertyGraph& graph, SchemaGraph* schema,
                    const DataTypeOptions& options, util::ThreadPool* pool) {
  // One pre-split RNG per type (seeded by kind + index, not by a shared
  // stream) so the sampled values do not depend on scan order or pool size.
  auto type_rng = [&options](uint64_t kind, size_t index) {
    return util::Rng(util::HashCombine(util::Mix64(options.seed ^ kind),
                                       static_cast<uint64_t>(index)));
  };
  auto& node_types = schema->node_types();
  util::ParallelFor(pool, 0, node_types.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      util::Rng rng = type_rng(0x4E, i);
      InferForType(graph, /*edges=*/false, options, &rng, &node_types[i]);
    }
  });
  auto& edge_types = schema->edge_types();
  util::ParallelFor(pool, 0, edge_types.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      util::Rng rng = type_rng(0xED, i);
      InferForType(graph, /*edges=*/true, options, &rng, &edge_types[i]);
    }
  });
}

pg::DataType FullScanType(const pg::PropertyGraph& graph,
                          const std::vector<uint64_t>& instances, bool edges,
                          pg::PropKeyId key) {
  pg::DataType joined = pg::DataType::kNull;
  size_t seen = 0;
  for (uint64_t inst : instances) {
    const pg::Value* v = GetValue(graph, inst, edges, key);
    if (v == nullptr || v->is_null()) continue;
    joined = pg::JoinDataTypes(joined, v->InferType());
    ++seen;
  }
  return (seen == 0 || joined == pg::DataType::kNull) ? pg::DataType::kString
                                                      : joined;
}

std::array<double, 4> SamplingErrorReport::BinFractions() const {
  std::array<double, 4> bins = {0, 0, 0, 0};
  if (errors.empty()) {
    bins[0] = 1.0;
    return bins;
  }
  for (double e : errors) {
    if (e < 0.05) {
      ++bins[0];
    } else if (e < 0.10) {
      ++bins[1];
    } else if (e < 0.20) {
      ++bins[2];
    } else {
      ++bins[3];
    }
  }
  for (auto& b : bins) b /= static_cast<double>(errors.size());
  return bins;
}

namespace {

template <typename TypeT>
void SamplingErrorsForType(const pg::PropertyGraph& graph, bool edges,
                           const DataTypeOptions& options, util::Rng* rng,
                           const TypeT& type,
                           std::vector<double>* out) {
  for (const auto& [key, info] : type.properties) {
    pg::DataType full = FullScanType(graph, type.instances, edges, key);
    // Sample values.
    size_t want = std::max(
        options.min_sample,
        static_cast<size_t>(options.sample_fraction *
                            static_cast<double>(type.instances.size())));
    want = std::min(want, type.instances.size());
    if (want == 0) continue;
    auto idx = rng->SampleWithoutReplacement(type.instances.size(), want);
    size_t disagreements = 0;
    size_t sampled = 0;
    for (size_t i : idx) {
      const pg::Value* v = GetValue(graph, type.instances[i], edges, key);
      if (v == nullptr || v->is_null()) continue;
      ++sampled;
      if (v->InferType() != full) ++disagreements;
    }
    if (sampled == 0) continue;
    out->push_back(static_cast<double>(disagreements) /
                   static_cast<double>(sampled));
  }
}

}  // namespace

SamplingErrorReport ComputeSamplingErrors(const pg::PropertyGraph& graph,
                                          const SchemaGraph& schema,
                                          const DataTypeOptions& options) {
  SamplingErrorReport report;
  util::Rng rng(options.seed ^ 0xABCDEF);
  for (const auto& t : schema.node_types()) {
    SamplingErrorsForType(graph, /*edges=*/false, options, &rng, t,
                          &report.errors);
  }
  for (const auto& t : schema.edge_types()) {
    SamplingErrorsForType(graph, /*edges=*/true, options, &rng, t,
                          &report.errors);
  }
  return report;
}

}  // namespace pghive::core
