#ifndef PGHIVE_CORE_TYPE_EXTRACTION_H_
#define PGHIVE_CORE_TYPE_EXTRACTION_H_

#include <cstdint>
#include <vector>

#include "core/schema.h"
#include "lsh/clustering.h"
#include "pg/batch.h"
#include "pg/graph.h"

namespace pghive::core {

/// A candidate type: the representative pattern of one LSH cluster (§4.2,
/// "cluster representative") plus per-property evidence.
struct CandidateType {
  std::vector<pg::LabelId> labels;    ///< Union over members, sorted.
  std::vector<pg::PropKeyId> keys;    ///< Union over members, sorted.
  std::vector<uint64_t> instances;    ///< Node or edge ids of the members.
  size_t instance_count = 0;
  std::vector<std::pair<pg::PropKeyId, size_t>> key_counts;  ///< Sorted by key.
  std::vector<uint64_t> pattern_hashes;  ///< Distinct member pattern hashes.
  /// Edges only: distinct (src token, dst token) pairs over members.
  std::vector<std::pair<uint32_t, uint32_t>> endpoints;

  bool labeled() const { return !labels.empty(); }
};

/// Builds node candidates from an LSH clustering of a batch: cluster i's
/// representative is (union of labels, union of keys) over its members,
/// with per-key presence counts for the later constraint inference.
std::vector<CandidateType> BuildNodeCandidates(const pg::PropertyGraph& graph,
                                               const pg::GraphBatch& batch,
                                               const lsh::ClusterSet& clusters);

/// Edge version; also collects endpoint label-set token pairs.
/// `endpoint_tokens[i]` is the (src, dst) label-set token pair of
/// batch.edge_ids[i], precomputed by the vectorizer's intern pre-pass
/// (Vectorizer::EdgeEndpointTokens). Taking them as input keeps this
/// function free of vocabulary access, which is what lets the pipelined
/// executor run it concurrently with the next batch's preprocess (the only
/// vocabulary writer).
std::vector<CandidateType> BuildEdgeCandidates(
    const pg::PropertyGraph& graph, const pg::GraphBatch& batch,
    const lsh::ClusterSet& clusters,
    const std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>>&
        endpoint_tokens);

/// Options for Algorithm 2.
struct ExtractionOptions {
  /// Jaccard threshold theta for merging unlabeled clusters (paper: 0.9).
  double jaccard_threshold = 0.9;
};

/// Algorithm 2 — extracting and merging types, applied *incrementally*
/// against an existing schema:
///
///   1. Labeled candidates merge into the type with the identical label set
///      (else they are appended as new types).
///   2. Unlabeled candidates merge into the labeled type with the highest
///      property-set Jaccard >= theta.
///   3. Remaining unlabeled candidates merge with each other (same Jaccard
///      rule) and with existing ABSTRACT types; leftovers become new
///      ABSTRACT types.
///
/// All merges are unions (Lemmas 1 & 2): no label, property, endpoint, or
/// instance is ever dropped, which makes the incremental chain of schemas
/// monotone (S_i ⊑ S_{i+1}).
void ExtractNodeTypes(std::vector<CandidateType> candidates,
                      const ExtractionOptions& options, SchemaGraph* schema);

/// Edge variant. Per §4.3 edges merge primarily by label; unlabeled edge
/// clusters use Jaccard over property keys plus endpoint tokens so that
/// property-less edge types with different endpoints stay distinct.
void ExtractEdgeTypes(std::vector<CandidateType> candidates,
                      const ExtractionOptions& options, SchemaGraph* schema);

/// Schema merging (§4.6): the least general schema covering both inputs.
/// Implemented by replaying b's types as candidates into a copy of a, so it
/// inherits Algorithm 2's label/Jaccard/ABSTRACT rules.
SchemaGraph MergeSchemas(const SchemaGraph& a, const SchemaGraph& b,
                         const ExtractionOptions& options = {});

/// Converts a type back into a candidate (used by MergeSchemas and tests).
CandidateType NodeTypeToCandidate(const NodeType& type);
CandidateType EdgeTypeToCandidate(const EdgeType& type);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_TYPE_EXTRACTION_H_
