#ifndef PGHIVE_CORE_STATISTICS_H_
#define PGHIVE_CORE_STATISTICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/schema.h"
#include "pg/graph.h"

namespace pghive::core {

/// Statistics for one node type.
struct NodeTypeStats {
  size_t instance_count = 0;
  double selectivity = 0.0;  ///< instance share of all nodes.
  /// Per-property presence frequency f_T(p) in [0,1].
  std::map<pg::PropKeyId, double> property_frequency;
  /// Distinct-value counts per property (capped sampling-free exact count).
  std::map<pg::PropKeyId, size_t> distinct_values;
};

/// Statistics for one edge type.
struct EdgeTypeStats {
  size_t instance_count = 0;
  double selectivity = 0.0;  ///< instance share of all edges.
  double avg_out_degree = 0.0;  ///< edges per participating source.
  double avg_in_degree = 0.0;   ///< edges per participating target.
  size_t distinct_sources = 0;
  size_t distinct_targets = 0;
};

/// Schema-level statistics computed from a discovered schema plus its
/// graph — the "query optimization" payoff the paper's introduction
/// motivates (schema-aware cardinality estimation needs exactly these
/// numbers: type selectivities, property frequencies, and per-relationship
/// fan-outs).
class SchemaStatistics {
 public:
  /// Computes statistics for every type in `schema` against `graph`.
  static SchemaStatistics Compute(const pg::PropertyGraph& graph,
                                  const SchemaGraph& schema);

  const std::vector<NodeTypeStats>& node_stats() const { return node_stats_; }
  const std::vector<EdgeTypeStats>& edge_stats() const { return edge_stats_; }

  /// Estimated result size of scanning one node type (= its count).
  double EstimateNodeScan(uint32_t type) const;

  /// Estimated result size of a one-hop expansion from `src_nodes` rows of
  /// the given edge type's source side: rows * avg_out_degree.
  double EstimateExpansion(uint32_t edge_type, double src_nodes) const;

  /// Estimated rows of a node-type scan filtered on "property exists":
  /// count * f_T(p).
  double EstimatePropertyFilter(uint32_t node_type, pg::PropKeyId key) const;

  /// Multi-line human-readable rendering.
  std::string ToString(const pg::Vocabulary& vocab,
                       const SchemaGraph& schema) const;

 private:
  std::vector<NodeTypeStats> node_stats_;
  std::vector<EdgeTypeStats> edge_stats_;
};

}  // namespace pghive::core

#endif  // PGHIVE_CORE_STATISTICS_H_
