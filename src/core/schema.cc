#include "core/schema.h"

#include <algorithm>

#include "util/rng.h"

namespace pghive::core {

const char* CardinalityKindName(CardinalityKind k) {
  switch (k) {
    case CardinalityKind::kUnknown:
      return "?";
    case CardinalityKind::kOneToOne:
      return "1:1";
    case CardinalityKind::kManyToOne:
      return "N:1";
    case CardinalityKind::kOneToMany:
      return "1:N";
    case CardinalityKind::kManyToMany:
      return "M:N";
  }
  return "?";
}

CardinalityKind ClassifyCardinality(size_t max_out, size_t max_in) {
  if (max_out == 0 && max_in == 0) return CardinalityKind::kUnknown;
  bool out_many = max_out > 1;
  bool in_many = max_in > 1;
  if (out_many && in_many) return CardinalityKind::kManyToMany;
  if (in_many) return CardinalityKind::kManyToOne;   // Many sources per target.
  if (out_many) return CardinalityKind::kOneToMany;  // Many targets per source.
  return CardinalityKind::kOneToOne;
}

namespace {

uint64_t HashIdVector(uint64_t seed, const std::vector<uint32_t>& ids) {
  uint64_t h = seed;
  for (uint32_t id : ids) h = util::HashCombine(h, id + 1);
  return h;
}

}  // namespace

uint64_t NodePattern::Hash() const {
  uint64_t h = HashIdVector(0x9e37, labels);
  return HashIdVector(util::HashCombine(h, 0xF00D), keys);
}

uint64_t EdgePattern::Hash() const {
  uint64_t h = HashIdVector(0x517c, labels);
  h = HashIdVector(util::HashCombine(h, 0xF00D), keys);
  h = HashIdVector(util::HashCombine(h, 0xBEEF), src_labels);
  return HashIdVector(util::HashCombine(h, 0xCAFE), dst_labels);
}

std::vector<pg::PropKeyId> NodeType::Keys() const {
  std::vector<pg::PropKeyId> keys;
  keys.reserve(properties.size());
  for (const auto& [k, info] : properties) keys.push_back(k);
  return keys;
}

std::vector<pg::PropKeyId> EdgeType::Keys() const {
  std::vector<pg::PropKeyId> keys;
  keys.reserve(properties.size());
  for (const auto& [k, info] : properties) keys.push_back(k);
  return keys;
}

namespace {

std::string TypeName(const pg::Vocabulary& vocab,
                     const std::vector<pg::LabelId>& labels, size_t index) {
  if (labels.empty()) return "Abstract#" + std::to_string(index);
  std::vector<std::string> names;
  names.reserve(labels.size());
  for (pg::LabelId l : labels) names.push_back(vocab.LabelName(l));
  std::sort(names.begin(), names.end());
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) out.push_back('|');
    out += names[i];
  }
  return out;
}

}  // namespace

std::string NodeType::Name(const pg::Vocabulary& vocab, size_t index) const {
  return TypeName(vocab, labels, index);
}

std::string EdgeType::Name(const pg::Vocabulary& vocab, size_t index) const {
  return TypeName(vocab, labels, index);
}

std::vector<uint32_t> SchemaGraph::NodeAssignment(size_t num_nodes) const {
  std::vector<uint32_t> assignment(num_nodes, UINT32_MAX);
  for (uint32_t t = 0; t < node_types_.size(); ++t) {
    for (uint64_t id : node_types_[t].instances) {
      if (id < num_nodes) assignment[id] = t;
    }
  }
  return assignment;
}

std::vector<uint32_t> SchemaGraph::EdgeAssignment(size_t num_edges) const {
  std::vector<uint32_t> assignment(num_edges, UINT32_MAX);
  for (uint32_t t = 0; t < edge_types_.size(); ++t) {
    for (uint64_t id : edge_types_[t].instances) {
      if (id < num_edges) assignment[id] = t;
    }
  }
  return assignment;
}

size_t SchemaGraph::TotalNodeLabels() const {
  std::set<pg::LabelId> labels;
  for (const auto& t : node_types_) labels.insert(t.labels.begin(), t.labels.end());
  return labels.size();
}

size_t SchemaGraph::TotalEdgeLabels() const {
  std::set<pg::LabelId> labels;
  for (const auto& t : edge_types_) labels.insert(t.labels.begin(), t.labels.end());
  return labels.size();
}

std::vector<uint32_t> UnionSorted(const std::vector<uint32_t>& a,
                                  const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

double JaccardSorted(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

}  // namespace pghive::core
