#include "core/shard_merge.h"

#include <algorithm>
#include <map>

namespace pghive::core {

namespace {

// Relabels the shard's elements with their *global* cluster ids and runs
// the regular candidate scan over the shard batch. ClusterSet tolerates the
// sparse id space (clusters whose members all live elsewhere simply yield
// empty candidates), so the per-member evidence-collection code is shared
// with the unsharded path byte for byte.
template <typename BuildFn>
ShardCandidates BuildShardCandidates(const std::vector<uint32_t>& positions,
                                     const lsh::ClusterSet& clusters,
                                     BuildFn&& build) {
  std::vector<uint32_t> local_assignment(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    local_assignment[i] = clusters.cluster_of(positions[i]);
  }
  lsh::ClusterSet local(std::move(local_assignment));
  ShardCandidates out;
  out.candidates = build(local);
  out.positions.resize(out.candidates.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    out.positions[local.cluster_of(i)].push_back(positions[i]);
  }
  return out;
}

}  // namespace

ShardCandidates BuildNodeShardCandidates(const pg::PropertyGraph& graph,
                                         const pg::ShardBatch& shard,
                                         const lsh::ClusterSet& clusters) {
  return BuildShardCandidates(
      shard.node_positions, clusters, [&](const lsh::ClusterSet& local) {
        return BuildNodeCandidates(graph, shard.batch, local);
      });
}

ShardCandidates BuildEdgeShardCandidates(
    const pg::PropertyGraph& graph, const pg::ShardBatch& shard,
    const lsh::ClusterSet& clusters,
    const std::vector<std::pair<pg::LabelSetToken, pg::LabelSetToken>>&
        endpoint_tokens) {
  return BuildShardCandidates(
      shard.edge_positions, clusters, [&](const lsh::ClusterSet& local) {
        return BuildEdgeCandidates(graph, shard.batch, local, endpoint_tokens);
      });
}

std::vector<CandidateType> MergeShardCandidates(
    std::vector<ShardCandidates> shards, size_t num_clusters) {
  std::vector<CandidateType> merged(num_clusters);
  std::vector<std::map<pg::PropKeyId, size_t>> counts(num_clusters);
  // (parent-batch position, instance id) pairs; sorting by position
  // restores the unsharded scan order. Positions are disjoint across
  // shards, so the order is total.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> inst(num_clusters);
  for (const ShardCandidates& shard : shards) {
    for (size_t c = 0; c < shard.candidates.size(); ++c) {
      const CandidateType& from = shard.candidates[c];
      if (from.instances.empty() && from.instance_count == 0) continue;
      CandidateType& into = merged[c];
      into.labels = UnionSorted(into.labels, from.labels);
      into.keys = UnionSorted(into.keys, from.keys);
      for (const auto& [key, count] : from.key_counts) counts[c][key] += count;
      into.instance_count += from.instance_count;
      into.pattern_hashes.insert(into.pattern_hashes.end(),
                                 from.pattern_hashes.begin(),
                                 from.pattern_hashes.end());
      into.endpoints.insert(into.endpoints.end(), from.endpoints.begin(),
                            from.endpoints.end());
      for (size_t j = 0; j < from.instances.size(); ++j) {
        inst[c].emplace_back(shard.positions[c][j], from.instances[j]);
      }
    }
  }
  for (size_t c = 0; c < num_clusters; ++c) {
    std::sort(inst[c].begin(), inst[c].end());
    merged[c].instances.reserve(inst[c].size());
    for (const auto& [pos, id] : inst[c]) merged[c].instances.push_back(id);
    merged[c].key_counts.assign(counts[c].begin(), counts[c].end());
    auto& ph = merged[c].pattern_hashes;
    std::sort(ph.begin(), ph.end());
    ph.erase(std::unique(ph.begin(), ph.end()), ph.end());
    auto& ep = merged[c].endpoints;
    std::sort(ep.begin(), ep.end());
    ep.erase(std::unique(ep.begin(), ep.end()), ep.end());
  }
  return merged;
}

SchemaGraph MergeShardSchemas(const std::vector<SchemaGraph>& shard_schemas,
                              const ExtractionOptions& options) {
  if (shard_schemas.empty()) return SchemaGraph();
  SchemaGraph merged = shard_schemas[0];
  for (size_t s = 1; s < shard_schemas.size(); ++s) {
    merged = MergeSchemas(merged, shard_schemas[s], options);
  }
  return merged;
}

}  // namespace pghive::core
