#ifndef PGHIVE_CORE_VALIDATOR_H_
#define PGHIVE_CORE_VALIDATOR_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "core/serialize.h"
#include "pg/graph.h"

namespace pghive::core {

/// Kinds of conformance violations a validator can report.
enum class ViolationKind {
  kUnknownNodeType,      ///< No type matches the node's label set.
  kUnknownEdgeType,      ///< No type matches the edge's label set.
  kMissingMandatory,     ///< A MANDATORY property is absent.
  kUndeclaredProperty,   ///< STRICT only: a property not in the type.
  kDataTypeMismatch,     ///< STRICT only: value incompatible with the type.
  kEndpointMismatch,     ///< STRICT only: edge endpoints not in rho_s.
  kCardinalityExceeded,  ///< STRICT only: observed degree above the bound.
};

const char* ViolationKindName(ViolationKind kind);

/// One conformance violation.
struct Violation {
  ViolationKind kind;
  bool is_edge = false;
  uint64_t element_id = 0;
  std::string detail;
};

/// Outcome of validating a graph against a schema.
struct ValidationReport {
  std::vector<Violation> violations;
  size_t nodes_checked = 0;
  size_t edges_checked = 0;

  bool conforms() const { return violations.empty(); }
  size_t CountKind(ViolationKind kind) const;
  std::string Summary() const;
};

/// Validation options.
struct ValidatorOptions {
  /// LOOSE mode checks only typing and mandatory properties; STRICT mode
  /// additionally enforces the closed property set, data types, endpoint
  /// pairs, and cardinality bounds (§4.5's STRICT/LOOSE trade-off).
  SchemaMode mode = SchemaMode::kLoose;
  /// Stop after this many violations (0 = unlimited).
  size_t max_violations = 0;
};

/// Validates a property graph against a (discovered or hand-written) schema.
/// A node/edge matches the type whose label set equals its own; unlabeled
/// elements match any ABSTRACT type whose key set covers theirs.
///
/// This realizes the paper's motivation that a discovered schema "supports
/// validation processes" (§4.4): the schema PG-HIVE infers from a clean
/// graph always validates that same graph (tested property), and deviations
/// introduced later are reported precisely.
class SchemaValidator {
 public:
  SchemaValidator(const SchemaGraph* schema, ValidatorOptions options);

  ValidationReport Validate(const pg::PropertyGraph& graph) const;

 private:
  const SchemaGraph* schema_;
  ValidatorOptions options_;
};

}  // namespace pghive::core

#endif  // PGHIVE_CORE_VALIDATOR_H_
