#ifndef PGHIVE_CORE_CARDINALITY_H_
#define PGHIVE_CORE_CARDINALITY_H_

#include "core/schema.h"
#include "pg/graph.h"

namespace pghive::core {

/// Computes the cardinality constraint of every edge type (§4.4):
///   max_out(rho) = max over sources of the number of distinct targets
///                  reached through edges of this type, and
///   max_in(rho)  = max over targets of distinct sources.
/// The pair classifies as 1:1 / N:1 / 1:N / M:N. These are sound *upper
/// bounds*: the data never exhibits a higher multiplicity than recorded
/// (lower bounds would require scanning unconnected nodes; future work in
/// the paper).
void ComputeCardinalities(const pg::PropertyGraph& graph, SchemaGraph* schema);

/// Computes the cardinality for an explicit edge-instance list (helper for
/// tests and incremental recomputation).
Cardinality CardinalityForEdges(const pg::PropertyGraph& graph,
                                const std::vector<uint64_t>& edge_ids);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_CARDINALITY_H_
