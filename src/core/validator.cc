#include "core/validator.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace pghive::core {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnknownNodeType:
      return "UNKNOWN_NODE_TYPE";
    case ViolationKind::kUnknownEdgeType:
      return "UNKNOWN_EDGE_TYPE";
    case ViolationKind::kMissingMandatory:
      return "MISSING_MANDATORY";
    case ViolationKind::kUndeclaredProperty:
      return "UNDECLARED_PROPERTY";
    case ViolationKind::kDataTypeMismatch:
      return "DATATYPE_MISMATCH";
    case ViolationKind::kEndpointMismatch:
      return "ENDPOINT_MISMATCH";
    case ViolationKind::kCardinalityExceeded:
      return "CARDINALITY_EXCEEDED";
  }
  return "?";
}

size_t ValidationReport::CountKind(ViolationKind kind) const {
  size_t count = 0;
  for (const Violation& v : violations) count += v.kind == kind;
  return count;
}

std::string ValidationReport::Summary() const {
  std::ostringstream out;
  out << "checked " << nodes_checked << " nodes, " << edges_checked
      << " edges: ";
  if (conforms()) {
    out << "CONFORMS";
  } else {
    out << violations.size() << " violations";
    for (int k = 0; k <= static_cast<int>(ViolationKind::kCardinalityExceeded);
         ++k) {
      size_t c = CountKind(static_cast<ViolationKind>(k));
      if (c > 0) {
        out << ", " << ViolationKindName(static_cast<ViolationKind>(k)) << "="
            << c;
      }
    }
  }
  return out.str();
}

namespace {

uint64_t LabelSetKey(const std::vector<pg::LabelId>& labels) {
  uint64_t h = 0x2545F4914F6CDD1DULL;
  for (pg::LabelId l : labels) h = util::HashCombine(h, l + 1);
  return h;
}

// Whether a value is compatible with a declared type: the value's inferred
// type joined with the declared type must not generalize past it.
bool ValueCompatible(const pg::Value& value, pg::DataType declared) {
  if (declared == pg::DataType::kString || declared == pg::DataType::kNull) {
    return true;  // Everything renders as a string.
  }
  pg::DataType observed = value.InferType();
  if (observed == pg::DataType::kNull) return true;
  return pg::JoinDataTypes(observed, declared) == declared;
}

}  // namespace

SchemaValidator::SchemaValidator(const SchemaGraph* schema,
                                 ValidatorOptions options)
    : schema_(schema), options_(options) {}

ValidationReport SchemaValidator::Validate(
    const pg::PropertyGraph& graph) const {
  ValidationReport report;
  const bool strict = options_.mode == SchemaMode::kStrict;
  pg::Vocabulary& vocab = const_cast<pg::PropertyGraph&>(graph).vocab();

  auto full = [&]() {
    return options_.max_violations > 0 &&
           report.violations.size() >= options_.max_violations;
  };
  auto add = [&](ViolationKind kind, bool is_edge, uint64_t id,
                 std::string detail) {
    if (full()) return;
    report.violations.push_back({kind, is_edge, id, std::move(detail)});
  };

  // Index types by exact label set; collect abstract and labeled types
  // separately. LOOSE matching falls back to any type whose label set is a
  // superset of the element's (union-labeled types emerge when the LSH pass
  // groups structurally identical elements of several labels, §4.3).
  std::unordered_map<uint64_t, const NodeType*> node_by_labels;
  std::vector<const NodeType*> labeled_node_types;
  std::vector<const NodeType*> abstract_node_types;
  for (const NodeType& t : schema_->node_types()) {
    if (t.is_abstract()) {
      abstract_node_types.push_back(&t);
    } else {
      node_by_labels[LabelSetKey(t.labels)] = &t;
      labeled_node_types.push_back(&t);
    }
  }
  std::unordered_map<uint64_t, const EdgeType*> edge_by_labels;
  std::vector<const EdgeType*> labeled_edge_types;
  std::vector<const EdgeType*> abstract_edge_types;
  for (const EdgeType& t : schema_->edge_types()) {
    if (t.is_abstract()) {
      abstract_edge_types.push_back(&t);
    } else {
      edge_by_labels[LabelSetKey(t.labels)] = &t;
      labeled_edge_types.push_back(&t);
    }
  }
  auto is_label_subset = [](const std::vector<pg::LabelId>& sub,
                            const std::vector<pg::LabelId>& super) {
    return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
  };

  // Property checks for a candidate type, collected into `out` so callers
  // can compare candidates and keep the cleanest match.
  auto property_violations = [&](const auto& type,
                                 const pg::PropertyMap& props, bool is_edge,
                                 uint64_t id, std::vector<Violation>* out) {
    for (const auto& [key, info] : type.properties) {
      if (info.requiredness == Requiredness::kMandatory && !props.Has(key)) {
        out->push_back({ViolationKind::kMissingMandatory, is_edge, id,
                        "missing mandatory property '" + vocab.KeyName(key) +
                            "'"});
      }
    }
    if (!strict) return;
    for (const auto& [key, value] : props.entries()) {
      auto it = type.properties.find(key);
      if (it == type.properties.end()) {
        out->push_back({ViolationKind::kUndeclaredProperty, is_edge, id,
                        "property '" + vocab.KeyName(key) +
                            "' not declared"});
        continue;
      }
      if (!ValueCompatible(value, it->second.data_type)) {
        out->push_back({ViolationKind::kDataTypeMismatch, is_edge, id,
                        "property '" + vocab.KeyName(key) + "' value '" +
                            value.ToString() + "' incompatible with " +
                            pg::DataTypeName(it->second.data_type)});
      }
    }
  };

  // Checks an element against all candidate types; conforms if any candidate
  // is violation-free, otherwise reports the cleanest candidate's issues.
  auto check_candidates = [&](const auto& candidates,
                              const pg::PropertyMap& props, bool is_edge,
                              uint64_t id) {
    std::vector<Violation> best;
    bool first = true;
    for (const auto* type : candidates) {
      std::vector<Violation> current;
      property_violations(*type, props, is_edge, id, &current);
      if (current.empty()) return;  // Clean match.
      if (first || current.size() < best.size()) best = std::move(current);
      first = false;
    }
    for (Violation& v : best) {
      if (full()) return;
      report.violations.push_back(std::move(v));
    }
  };

  // Unlabeled elements match any abstract type covering their key set.
  auto matches_abstract = [&](const auto& abstract_types,
                              const pg::PropertyMap& props) {
    for (const auto* t : abstract_types) {
      bool covered = true;
      for (const auto& [key, value] : props.entries()) {
        if (!t->properties.count(key)) {
          covered = false;
          break;
        }
      }
      if (covered) return true;
    }
    return false;
  };

  // --- Nodes ---
  for (const pg::Node& node : graph.nodes()) {
    if (full()) break;
    ++report.nodes_checked;
    if (node.labels.empty()) {
      if (!matches_abstract(abstract_node_types, node.properties) &&
          node_by_labels.empty() == false) {
        // An unlabeled node is fine in LOOSE mode if some labeled type could
        // host it (Jaccard-mergeable); in STRICT mode it must match an
        // ABSTRACT type.
        if (strict) {
          add(ViolationKind::kUnknownNodeType, false, node.id,
              "unlabeled node matches no ABSTRACT type");
        }
      }
      continue;
    }
    std::vector<const NodeType*> candidates;
    auto it = node_by_labels.find(LabelSetKey(node.labels));
    if (it != node_by_labels.end()) candidates.push_back(it->second);
    if (!strict) {
      for (const NodeType* t : labeled_node_types) {
        if (t != (candidates.empty() ? nullptr : candidates[0]) &&
            is_label_subset(node.labels, t->labels)) {
          candidates.push_back(t);
        }
      }
    }
    if (candidates.empty()) {
      add(ViolationKind::kUnknownNodeType, false, node.id,
          "no type with this label set");
      continue;
    }
    check_candidates(candidates, node.properties, false, node.id);
  }

  // --- Edges ---
  std::unordered_map<const EdgeType*,
                     std::unordered_map<pg::NodeId, std::unordered_set<pg::NodeId>>>
      out_targets;
  std::unordered_map<const EdgeType*,
                     std::unordered_map<pg::NodeId, std::unordered_set<pg::NodeId>>>
      in_sources;
  for (const pg::Edge& edge : graph.edges()) {
    if (full()) break;
    ++report.edges_checked;
    const EdgeType* type = nullptr;
    if (edge.labels.empty()) {
      if (strict && !matches_abstract(abstract_edge_types, edge.properties)) {
        add(ViolationKind::kUnknownEdgeType, true, edge.id,
            "unlabeled edge matches no ABSTRACT type");
      }
      continue;
    }
    std::vector<const EdgeType*> candidates;
    auto it = edge_by_labels.find(LabelSetKey(edge.labels));
    if (it != edge_by_labels.end()) candidates.push_back(it->second);
    if (!strict) {
      for (const EdgeType* t : labeled_edge_types) {
        if (t != (candidates.empty() ? nullptr : candidates[0]) &&
            is_label_subset(edge.labels, t->labels)) {
          candidates.push_back(t);
        }
      }
    }
    if (candidates.empty()) {
      add(ViolationKind::kUnknownEdgeType, true, edge.id,
          "no type with this label set");
      continue;
    }
    type = candidates[0];
    check_candidates(candidates, edge.properties, true, edge.id);

    if (strict) {
      // Endpoint check: the (src token, dst token) pair must be declared.
      uint32_t src_token =
          vocab.TokenForLabelSet(graph.node(edge.src).labels);
      uint32_t dst_token =
          vocab.TokenForLabelSet(graph.node(edge.dst).labels);
      if (!type->endpoints.empty() &&
          type->endpoints.count({src_token, dst_token}) == 0) {
        add(ViolationKind::kEndpointMismatch, true, edge.id,
            "endpoint pair not declared for this edge type");
      }
      out_targets[type][edge.src].insert(edge.dst);
      in_sources[type][edge.dst].insert(edge.src);
    }
  }

  // Cardinality bounds (STRICT): observed degrees must not exceed the
  // schema's recorded upper bounds.
  if (strict) {
    for (const auto& [type, per_src] : out_targets) {
      if (type->cardinality.kind == CardinalityKind::kUnknown) continue;
      for (const auto& [src, targets] : per_src) {
        if (targets.size() > type->cardinality.max_out) {
          add(ViolationKind::kCardinalityExceeded, true, 0,
              "source " + std::to_string(src) + " exceeds max_out " +
                  std::to_string(type->cardinality.max_out));
        }
      }
    }
    for (const auto& [type, per_dst] : in_sources) {
      if (type->cardinality.kind == CardinalityKind::kUnknown) continue;
      for (const auto& [dst, sources] : per_dst) {
        if (sources.size() > type->cardinality.max_in) {
          add(ViolationKind::kCardinalityExceeded, true, 0,
              "target " + std::to_string(dst) + " exceeds max_in " +
                  std::to_string(type->cardinality.max_in));
        }
      }
    }
  }

  return report;
}

}  // namespace pghive::core
