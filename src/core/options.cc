#include "core/options.h"

#include <utility>

#include "util/parse.h"

namespace pghive::core {

util::Status PgHiveOptions::Validate() const {
  if (num_threads > kMaxThreads) {
    return util::Status::OutOfRange(
        "threads must be in [0, " + std::to_string(kMaxThreads) +
        "] (0 = hardware threads), got " + std::to_string(num_threads));
  }
  if (pipeline_depth < 1 || pipeline_depth > kMaxPipelineDepth) {
    return util::Status::OutOfRange(
        "pipeline-depth must be in [1, " + std::to_string(kMaxPipelineDepth) +
        "] (1 = sequential ingest), got " + std::to_string(pipeline_depth));
  }
  if (num_shards < 1 || num_shards > kMaxShards) {
    return util::Status::OutOfRange(
        "shards must be in [1, " + std::to_string(kMaxShards) +
        "] (1 = unsharded), got " + std::to_string(num_shards));
  }
  if (embedding_dim == 0) {
    return util::Status::OutOfRange("embedding_dim must be >= 1");
  }
  if (jaccard_threshold < 0.0 || jaccard_threshold > 1.0) {
    return util::Status::OutOfRange("jaccard_threshold must be in [0, 1]");
  }
  if (alpha_scale <= 0.0) {
    return util::Status::OutOfRange("alpha_scale must be > 0");
  }
  if (!adaptive && bucket_length <= 0.0) {
    return util::Status::OutOfRange(
        "bucket_length must be > 0 with adaptive parameterization off");
  }
  return util::Status::Ok();
}

namespace {

util::StatusOr<size_t> ParseKnob(const std::string& value,
                                 const std::string& key) {
  util::StatusOr<int64_t> parsed = util::ParseInt64(value);
  if (!parsed.ok()) {
    return util::Status::ParseError(key + ": " + parsed.status().message());
  }
  if (*parsed < 0) {
    return util::Status::OutOfRange(key + " must be non-negative, got " +
                                    value);
  }
  return static_cast<size_t>(*parsed);
}

}  // namespace

util::Status ApplyOptionFlags(const std::map<std::string, std::string>& flags,
                              PgHiveOptions* options) {
  for (const auto& [key, value] : flags) {
    if (key == "method") {
      if (value == "minhash") {
        options->method = ClusterMethod::kMinHash;
      } else if (value == "elsh") {
        options->method = ClusterMethod::kElsh;
      } else {
        return util::Status::InvalidArgument(
            "method must be 'elsh' or 'minhash', got '" + value + "'");
      }
    } else if (key == "threads") {
      auto parsed = ParseKnob(value, key);
      if (!parsed.ok()) return parsed.status();
      options->num_threads = *parsed;
    } else if (key == "pipeline-depth") {
      auto parsed = ParseKnob(value, key);
      if (!parsed.ok()) return parsed.status();
      options->pipeline_depth = *parsed;
    } else if (key == "shards") {
      auto parsed = ParseKnob(value, key);
      if (!parsed.ok()) return parsed.status();
      options->num_shards = *parsed;
    } else if (key == "data-plane") {
      if (value == "row") {
        options->columnar = false;
      } else if (value == "columnar") {
        options->columnar = true;
      } else {
        return util::Status::InvalidArgument(
            "data-plane must be 'columnar' or 'row', got '" + value + "'");
      }
    } else if (key == "sample-datatypes") {
      if (value != "true" && value != "false") {
        return util::Status::InvalidArgument(
            "sample-datatypes must be 'true' or 'false', got '" + value + "'");
      }
      options->datatype_options.sample = (value == "true");
    } else if (key == "seed") {
      auto parsed = ParseKnob(value, key);
      if (!parsed.ok()) return parsed.status();
      options->seed = *parsed;
    } else {
      return util::Status::InvalidArgument("unknown option '" + key + "'");
    }
  }
  return options->Validate();
}

util::StatusOr<PgHiveOptions> ParsePgHiveOptions(
    const std::map<std::string, std::string>& flags) {
  PgHiveOptions options;
  util::Status status = ApplyOptionFlags(flags, &options);
  if (!status.ok()) return status;
  return options;
}

}  // namespace pghive::core
