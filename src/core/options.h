#ifndef PGHIVE_CORE_OPTIONS_H_
#define PGHIVE_CORE_OPTIONS_H_

#include <map>
#include <string>

#include "core/pghive.h"
#include "util/status.h"

namespace pghive::core {

/// Knob bounds shared by PgHiveOptions::Validate and every front end's help
/// text. 0 threads means hardware concurrency, so the minimum differs from
/// the other knobs.
inline constexpr size_t kMaxThreads = 4096;
inline constexpr size_t kMaxPipelineDepth = 64;
inline constexpr size_t kMaxShards = 4096;

/// Applies string knobs onto `options` — the one parser behind both the
/// `pghive discover` flags and the pghived `create-session` parameters, so
/// a graph discovered over the wire runs with exactly the options the
/// one-shot CLI would have used. Recognized keys (all optional):
///
///   method=elsh|minhash      threads=N          pipeline-depth=N
///   shards=N                 data-plane=columnar|row
///   sample-datatypes=true    seed=N
///
/// Unknown keys are rejected (InvalidArgument) so typos fail loudly. Parse
/// errors surface as ParseError; range violations come from
/// options->Validate(), which this function calls last.
util::Status ApplyOptionFlags(const std::map<std::string, std::string>& flags,
                              PgHiveOptions* options);

/// Convenience wrapper: defaults + ApplyOptionFlags.
util::StatusOr<PgHiveOptions> ParsePgHiveOptions(
    const std::map<std::string, std::string>& flags);

}  // namespace pghive::core

#endif  // PGHIVE_CORE_OPTIONS_H_
