#include "service/client.h"

#include <sstream>
#include <utility>

#include "pg/batch.h"
#include "pg/graph_io.h"
#include "util/parse.h"

namespace pghive::service {

std::vector<std::string> BuildIngestPayloads(const pg::PropertyGraph& graph,
                                             size_t num_batches,
                                             uint64_t seed) {
  std::vector<pg::GraphBatch> batches;
  if (num_batches <= 1) {
    batches.push_back(pg::FullBatch(graph));
  } else {
    batches = pg::SplitIntoBatches(graph, num_batches, seed);
  }

  std::vector<std::string> payloads;
  payloads.reserve(batches.size());
  std::vector<bool> sent(graph.num_nodes(), false);
  for (size_t b = 0; b < batches.size(); ++b) {
    std::ostringstream out;
    if (b == 0) {
      out << "G " << graph.num_nodes() << ' ' << graph.num_edges() << '\n';
      // Vocabulary preamble: the label/key id permutation decides the
      // feature-column layout, so the server must intern in exactly the
      // order the one-shot load did.
      const pg::Vocabulary& vocab = graph.vocab();
      for (pg::LabelId l = 0; l < vocab.num_labels(); ++l) {
        out << "V L " << pg::EscapeField(vocab.LabelName(l)) << '\n';
      }
      for (pg::PropKeyId k = 0; k < vocab.num_keys(); ++k) {
        out << "V K " << pg::EscapeField(vocab.KeyName(k)) << '\n';
      }
    }
    for (pg::NodeId id : batches[b].node_ids) {
      if (sent[id]) {
        out << "M " << id << '\n';
      } else {
        out << pg::FormatNodeLine(graph, graph.node(id)) << '\n';
        sent[id] = true;
      }
    }
    for (pg::EdgeId id : batches[b].edge_ids) {
      const pg::Edge& edge = graph.edge(id);
      for (pg::NodeId endpoint : {edge.src, edge.dst}) {
        if (!sent[endpoint]) {
          // Edge before its endpoints' batches: ship the endpoint now as a
          // reference so its labels are resolvable, membership comes later.
          std::string line =
              pg::FormatNodeLine(graph, graph.node(endpoint));
          line[0] = 'R';
          out << line << '\n';
          sent[endpoint] = true;
        }
      }
      out << pg::FormatEdgeLine(graph, edge) << '\n';
    }
    payloads.push_back(out.str());
  }
  return payloads;
}

util::StatusOr<PghivedClient> PghivedClient::Connect(uint16_t port) {
  auto fd = ConnectTcp(port);
  if (!fd.ok()) return fd.status();
  return PghivedClient(SocketStream(*fd));
}

util::StatusOr<Response> PghivedClient::RoundTrip(const std::string& line,
                                                  const std::string& body) {
  util::Status status = stream_.WriteAll(line + "\n");
  if (status.ok() && !body.empty()) status = stream_.WriteAll(body);
  if (!status.ok()) return status;

  auto response_line = stream_.ReadLine();
  if (!response_line.ok()) return response_line.status();
  Response response;
  size_t body_bytes = 0;
  status = ParseResponseLine(*response_line, &response, &body_bytes);
  if (!status.ok()) return status;
  if (response.has_body) {
    status = stream_.ReadExact(body_bytes, &response.body);
    if (!status.ok()) return status;
    // Consume the newline FormatResponse appends after the body.
    auto trailer = stream_.ReadLine();
    if (!trailer.ok()) return trailer.status();
  }
  if (!response.status.ok()) return response.status;
  return response;
}

util::Status PghivedClient::Ping() {
  auto response = RoundTrip("ping");
  return response.ok() ? util::Status::Ok() : response.status();
}

util::StatusOr<std::string> PghivedClient::CreateSession(
    const std::map<std::string, std::string>& option_flags) {
  std::string line = "create-session";
  if (option_flags.find("proto") == option_flags.end()) {
    line += " proto=" + std::to_string(kProtocolVersion);
  }
  for (const auto& [key, value] : option_flags) {
    line += ' ' + key + '=' + value;
  }
  auto response = RoundTrip(line);
  if (!response.ok()) return response.status();
  std::istringstream info(response->info);
  std::string tag, id;
  if (!(info >> tag >> id) || tag != "session") {
    return util::Status::ParseError("unexpected create-session reply '" +
                                    response->info + "'");
  }
  return id;
}

util::StatusOr<uint64_t> PghivedClient::IngestBatch(
    const std::string& session, const std::string& payload) {
  auto response = RoundTrip("ingest-batch " + session + ' ' +
                                std::to_string(payload.size()),
                            payload);
  if (!response.ok()) return response.status();
  std::istringstream info(response->info);
  std::string tag, seq;
  if (!(info >> tag >> seq) || tag != "batch") {
    return util::Status::ParseError("unexpected ingest-batch reply '" +
                                    response->info + "'");
  }
  auto parsed = util::ParseInt64(seq);
  if (!parsed.ok() || *parsed < 0) {
    return util::Status::ParseError("bad batch sequence '" + seq + "'");
  }
  return static_cast<uint64_t>(*parsed);
}

util::StatusOr<std::string> PghivedClient::GetSchema(
    const std::string& session, const std::string& form, bool snapshot) {
  std::string line = "get-schema " + session + ' ' + form;
  if (snapshot) line += " snapshot";
  auto response = RoundTrip(line);
  if (!response.ok()) return response.status();
  if (!response->has_body) {
    return util::Status::ParseError("get-schema reply carried no body");
  }
  return std::move(response->body);
}

util::StatusOr<ValidationResult> PghivedClient::Validate(
    const std::string& session, bool strict, const std::string& pgs_text) {
  auto response = RoundTrip(
      "validate " + session + (strict ? " strict " : " loose ") +
          std::to_string(pgs_text.size()),
      pgs_text);
  if (!response.ok()) return response.status();
  ValidationResult result;
  result.conforms = response->info == "valid";
  result.report = std::move(response->body);
  return result;
}

util::StatusOr<uint64_t> PghivedClient::SaveState(const std::string& session,
                                                  const std::string& path) {
  auto response = RoundTrip("save-state " + session + ' ' + path);
  if (!response.ok()) return response.status();
  std::istringstream info(response->info);
  std::string tag, id, bytes_tag, bytes;
  if (!(info >> tag >> id >> bytes_tag >> bytes) || tag != "saved" ||
      bytes_tag != "bytes") {
    return util::Status::ParseError("unexpected save-state reply '" +
                                    response->info + "'");
  }
  auto parsed = util::ParseInt64(bytes);
  if (!parsed.ok() || *parsed < 0) {
    return util::Status::ParseError("bad snapshot size '" + bytes + "'");
  }
  return static_cast<uint64_t>(*parsed);
}

util::StatusOr<PghivedClient::RestoredSession> PghivedClient::LoadState(
    const std::string& path) {
  auto response = RoundTrip("load-state " + path);
  if (!response.ok()) return response.status();
  std::istringstream info(response->info);
  std::string tag, id, batches_tag, batches;
  if (!(info >> tag >> id >> batches_tag >> batches) || tag != "session" ||
      batches_tag != "batches") {
    return util::Status::ParseError("unexpected load-state reply '" +
                                    response->info + "'");
  }
  auto parsed = util::ParseInt64(batches);
  if (!parsed.ok() || *parsed < 0) {
    return util::Status::ParseError("bad batch count '" + batches + "'");
  }
  return RestoredSession{id, static_cast<uint64_t>(*parsed)};
}

util::StatusOr<PghivedClient::RestoredSession> PghivedClient::SessionInfo(
    const std::string& session) {
  auto response = RoundTrip("session-info " + session);
  if (!response.ok()) return response.status();
  std::istringstream info(response->info);
  std::string tag, id, batches_tag, batches;
  if (!(info >> tag >> id >> batches_tag >> batches) || tag != "session" ||
      batches_tag != "batches") {
    return util::Status::ParseError("unexpected session-info reply '" +
                                    response->info + "'");
  }
  auto parsed = util::ParseInt64(batches);
  if (!parsed.ok() || *parsed < 0) {
    return util::Status::ParseError("bad batch count '" + batches + "'");
  }
  return RestoredSession{id, static_cast<uint64_t>(*parsed)};
}

util::StatusOr<std::string> PghivedClient::SubscribeChangefeed(
    const std::string& session, uint64_t after_version, uint64_t timeout_ms) {
  auto response =
      RoundTrip("subscribe-changefeed " + session + ' ' +
                std::to_string(after_version) + ' ' + std::to_string(timeout_ms));
  if (!response.ok()) return response.status();
  return std::move(response->body);
}

util::Status PghivedClient::CloseSession(const std::string& session) {
  auto response = RoundTrip("close " + session);
  return response.ok() ? util::Status::Ok() : response.status();
}

}  // namespace pghive::service
