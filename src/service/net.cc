#include "service/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pghive::service {

namespace {

util::Status Errno(const std::string& what) {
  return util::Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

util::StatusOr<int> ListenTcp(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    util::Status status = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    util::Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

util::StatusOr<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

util::StatusOr<int> ConnectTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    util::Status status = Errno("connect 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return status;
  }
  return fd;
}

SocketStream& SocketStream::operator=(SocketStream&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void SocketStream::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::StatusOr<size_t> SocketStream::Fill() {
  // A closed or moved-from stream must surface the same NotFound the
  // ReadLine/ReadExact entry guards promise, not an EBADF IoError from
  // recv(-1, ...) — callers branch on NotFound to mean "peer went away".
  if (fd_ < 0) return util::Status::NotFound("connection closed");
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      return static_cast<size_t>(n);
    }
    if (n == 0) return util::Status::NotFound("connection closed");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

util::StatusOr<std::string> SocketStream::ReadLine() {
  if (fd_ < 0) return util::Status::NotFound("connection closed");
  for (;;) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    auto filled = Fill();
    if (!filled.ok()) {
      // Bytes without a final newline count as a (last) line.
      if (filled.status().code() == util::StatusCode::kNotFound &&
          !buffer_.empty()) {
        std::string line = std::move(buffer_);
        buffer_.clear();
        return line;
      }
      return filled.status();
    }
  }
}

util::Status SocketStream::ReadExact(size_t n, std::string* out) {
  if (fd_ < 0) return util::Status::NotFound("connection closed");
  while (buffer_.size() < n) {
    auto filled = Fill();
    if (!filled.ok()) return filled.status();
  }
  *out = buffer_.substr(0, n);
  buffer_.erase(0, n);
  return util::Status::Ok();
}

util::Status SocketStream::WriteAll(std::string_view data) {
  if (fd_ < 0) return util::Status::IoError("write on a closed socket");
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

}  // namespace pghive::service
