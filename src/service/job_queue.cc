#include "service/job_queue.h"

#include <utility>

namespace pghive::service {

bool JobQueue::Submit(const std::string& lane, Job job) {
  bool dispatch = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return false;
    Lane& l = lanes_[lane];
    l.jobs.push_back(std::move(job));
    ++pending_;
    if (!l.running) {
      l.running = true;
      dispatch = true;
    }
  }
  if (dispatch) {
    if (pool_ != nullptr && pool_->num_threads() > 1) {
      pool_->Submit([this, lane] { RunLane(lane); });
    } else {
      RunLane(lane);
    }
  }
  return true;
}

void JobQueue::RunLane(const std::string& lane) {
  for (;;) {
    Job job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Lane& l = lanes_[lane];
      if (l.jobs.empty()) {
        l.running = false;
        idle_.notify_all();
        return;
      }
      job = std::move(l.jobs.front());
      l.jobs.pop_front();
    }
    // Jobs are expected not to throw (session jobs latch a Status instead),
    // but a stray exception must not kill the pool worker or wedge the lane
    // bookkeeping.
    try {
      job();
    } catch (...) {
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) idle_.notify_all();
    }
  }
}

void JobQueue::DrainLane(const std::string& lane) {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] {
    auto it = lanes_.find(lane);
    return it == lanes_.end() || (it->second.jobs.empty() && !it->second.running);
  });
}

void JobQueue::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return pending_ == 0; });
}

void JobQueue::Shutdown() {
  Drain();
  std::lock_guard<std::mutex> lock(mutex_);
  shutdown_ = true;
}

size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace pghive::service
