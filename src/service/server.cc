#include "service/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "service/net.h"

namespace pghive::service {

namespace {

SessionManager::Options ManagerOptions(const PghivedServer::Options& options) {
  SessionManager::Options manager_options;
  manager_options.max_sessions = options.max_sessions;
  manager_options.checkpoint_dir = options.checkpoint_dir;
  manager_options.checkpoint_every = options.checkpoint_every;
  return manager_options;
}

}  // namespace

PghivedServer::PghivedServer(Options options)
    : options_(std::move(options)),
      pool_(options_.threads),
      manager_(&pool_, ManagerOptions(options_)),
      handler_(&manager_) {}

PghivedServer::~PghivedServer() { Stop(); }

util::Status PghivedServer::Start() {
  // Restore checkpointed sessions before any client can connect, so a
  // restarted daemon serves every surviving tenant from the first request.
  // A corrupt checkpoint fails startup loudly instead of dropping state.
  util::Status restored = manager_.RestoreFromCheckpointDir();
  if (!restored.ok()) return restored;
  auto listen_fd = ListenTcp(options_.port);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = *listen_fd;
  auto port = BoundPort(listen_fd_);
  if (!port.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void PghivedServer::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;  // EINTR or a transient accept failure.
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void PghivedServer::ServeConnection(int fd) {
  SocketStream stream(fd);
  while (!stopping_.load()) {
    auto line = stream.ReadLine();
    if (!line.ok()) break;  // Disconnect or IO error ends the connection.
    if (line->empty()) continue;
    Response response;
    auto request = ParseRequestLine(*line);
    if (!request.ok()) {
      response.status = request.status();
    } else {
      auto body_bytes = RequestBodyBytes(*request);
      if (!body_bytes.ok()) {
        response.status = body_bytes.status();
      } else {
        if (*body_bytes > 0) {
          util::Status read = stream.ReadExact(*body_bytes, &request->body);
          if (!read.ok()) break;  // Mid-body disconnect: no way to recover.
        }
        response = handler_.Handle(*request);
      }
    }
    if (!stream.WriteAll(FormatResponse(response)).ok()) break;
  }
  // The fd is owned (and closed) by `stream`; drop it from the nudge list.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connection_fds_.erase(
      std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
      connection_fds_.end());
}

void PghivedServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // Unblocks accept() so the accept thread can observe stopping_.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Nudge connections blocked in recv; they finish the in-flight request
    // (ServeConnection rechecks stopping_ before reading the next one).
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RD);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  // Queue-draining shutdown: every accepted batch commits before exit.
  manager_.DrainAll();
  // Then one final checkpoint of every live session, so a SIGTERM'd daemon
  // restarts exactly where the drain left it. Best effort: shutdown must
  // complete even when the disk does not cooperate.
  util::Status checkpointed = manager_.CheckpointAll();
  if (!checkpointed.ok()) {
    std::fprintf(stderr, "pghived: shutdown checkpoint failed: %s\n",
                 checkpointed.ToString().c_str());
  }
}

}  // namespace pghive::service
