#include "service/assembler.h"

#include <sstream>
#include <utility>

#include "pg/graph_io.h"
#include "util/binio.h"
#include "util/parse.h"

namespace pghive::service {

namespace {

/// Hard ceiling on the element counts a G header may declare. The header
/// pre-sizes the graph with placeholders, so an unchecked count would let a
/// one-line request allocate unbounded memory; 2^28 elements is far above
/// any real dataset while keeping the worst-case placeholder allocation in
/// the low gigabytes.
constexpr uint64_t kMaxDeclaredElements = uint64_t{1} << 28;

util::StatusOr<uint64_t> ParseId(const std::string& text,
                                 const std::string& what) {
  auto parsed = util::ParseInt64(text);
  if (!parsed.ok() || *parsed < 0) {
    return util::Status::ParseError("bad " + what + " '" + text + "'");
  }
  return static_cast<uint64_t>(*parsed);
}

void PutBitmap(std::string* out, const std::vector<bool>& bits) {
  util::PutU64(out, bits.size());
  uint8_t byte = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      util::PutU8(out, byte);
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) util::PutU8(out, byte);
}

bool ReadBitmap(util::ByteReader* in, std::vector<bool>* bits) {
  uint64_t n = in->ReadU64();
  // Bit-packed: n bits need ceil(n/8) bytes of remaining input.
  if (!in->ok() || !in->Has((n + 7) / 8)) {
    in->Fail();
    return false;
  }
  bits->assign(n, false);
  uint8_t byte = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) byte = in->ReadU8();
    (*bits)[i] = (byte >> (i % 8)) & 1;
  }
  return in->ok();
}

}  // namespace

util::Status GraphAssembler::ApplyPayload(const std::string& payload,
                                          pg::GraphBatch* batch) {
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    util::Status status = ApplyLine(line, batch);
    if (!status.ok()) return status;
  }
  return util::Status::Ok();
}

util::Status GraphAssembler::ApplyLine(const std::string& line,
                                       pg::GraphBatch* batch) {
  switch (line[0]) {
    case 'G':
      return ApplyHeader(line);
    case 'V':
      return ApplyVocab(line);
    case 'N':
      return MaterializeNode(line, /*member=*/true, batch);
    case 'R':
      return MaterializeNode(line, /*member=*/false, batch);
    case 'M': {
      if (line.size() < 3 || line[1] != ' ') {
        return util::Status::ParseError("bad member line '" + line + "'");
      }
      auto id = ParseId(line.substr(2), "member id");
      if (!id.ok()) return id.status();
      if (*id >= node_filled_.size() || !node_filled_[*id]) {
        return util::Status::ParseError(
            "member marker for unmaterialized node " + std::to_string(*id));
      }
      batch->node_ids.push_back(*id);
      return util::Status::Ok();
    }
    case 'E':
      return MaterializeEdge(line, batch);
    default:
      return util::Status::ParseError("unknown ingest record '" + line + "'");
  }
}

util::Status GraphAssembler::ApplyHeader(const std::string& line) {
  if (sized_) {
    return util::Status::FailedPrecondition("duplicate G header");
  }
  if (graph_->num_nodes() != 0 || graph_->num_edges() != 0) {
    return util::Status::FailedPrecondition("G header on a non-empty graph");
  }
  std::istringstream ls(line);
  std::string kind;
  uint64_t num_nodes = 0, num_edges = 0;
  if (!(ls >> kind >> num_nodes) || kind != "G") {
    return util::Status::ParseError("bad G header '" + line + "'");
  }
  ls >> num_edges;
  if (num_edges > 0 && num_nodes == 0) {
    return util::Status::ParseError("edges declared on a node-less graph");
  }
  if (num_nodes > kMaxDeclaredElements || num_edges > kMaxDeclaredElements) {
    return util::Status::OutOfRange(
        "G header declares " + std::to_string(num_nodes) + " nodes / " +
        std::to_string(num_edges) + " edges; the limit is " +
        std::to_string(kMaxDeclaredElements) + " each");
  }
  // Placeholders give the graph its final shape up front: dense ids and the
  // same num_nodes()/num_edges() the one-shot run sees from batch 1 on.
  for (uint64_t i = 0; i < num_nodes; ++i) {
    graph_->AddNodeWithLabelIds({});
  }
  for (uint64_t i = 0; i < num_edges; ++i) {
    graph_->AddEdgeWithLabelIds(0, 0, {});
  }
  node_filled_.assign(num_nodes, false);
  edge_filled_.assign(num_edges, false);
  sized_ = true;
  return util::Status::Ok();
}

util::Status GraphAssembler::ApplyVocab(const std::string& line) {
  // "V L <name>" / "V K <name>"; the name is the rest of the line, unescaped,
  // so label names with spaces survive.
  if (line.size() < 5 || line[1] != ' ' || line[3] != ' ' ||
      (line[2] != 'L' && line[2] != 'K')) {
    return util::Status::ParseError("bad vocab line '" + line + "'");
  }
  const std::string name = pg::UnescapeField(line.substr(4));
  if (line[2] == 'L') {
    graph_->vocab().InternLabel(name);
  } else {
    graph_->vocab().InternKey(name);
  }
  return util::Status::Ok();
}

util::Status GraphAssembler::MaterializeNode(const std::string& line,
                                             bool member,
                                             pg::GraphBatch* batch) {
  if (!sized_) {
    return util::Status::FailedPrecondition(
        "node record before the G header");
  }
  // R lines share the node-line shape; normalize the tag for the parser.
  std::string node_line = line;
  node_line[0] = 'N';
  auto parsed = pg::ParseElementLine(node_line);
  if (!parsed.ok()) return parsed.status();
  const pg::ElementRecord& record = *parsed;
  if (record.id >= node_filled_.size()) {
    return util::Status::OutOfRange("node id " + std::to_string(record.id) +
                                    " outside the declared graph");
  }
  if (node_filled_[record.id]) {
    return util::Status::FailedPrecondition(
        "node " + std::to_string(record.id) + " materialized twice");
  }
  std::vector<pg::LabelId> labels;
  labels.reserve(record.labels.size());
  for (const std::string& name : record.labels) {
    labels.push_back(graph_->vocab().InternLabel(name));
  }
  pg::NormalizeLabels(&labels);
  graph_->node(record.id).labels = std::move(labels);
  for (const auto& [key, value] : record.properties) {
    graph_->SetNodeProperty(record.id, key, value);
  }
  node_filled_[record.id] = true;
  ++nodes_filled_;
  if (member) batch->node_ids.push_back(record.id);
  return util::Status::Ok();
}

util::Status GraphAssembler::MaterializeEdge(const std::string& line,
                                             pg::GraphBatch* batch) {
  if (!sized_) {
    return util::Status::FailedPrecondition(
        "edge record before the G header");
  }
  auto parsed = pg::ParseElementLine(line);
  if (!parsed.ok()) return parsed.status();
  const pg::ElementRecord& record = *parsed;
  if (record.id >= edge_filled_.size()) {
    return util::Status::OutOfRange("edge id " + std::to_string(record.id) +
                                    " outside the declared graph");
  }
  if (edge_filled_[record.id]) {
    return util::Status::FailedPrecondition(
        "edge " + std::to_string(record.id) + " materialized twice");
  }
  if (record.src >= node_filled_.size() || record.dst >= node_filled_.size()) {
    return util::Status::OutOfRange("edge endpoint outside the graph");
  }
  if (!node_filled_[record.src] || !node_filled_[record.dst]) {
    // Discovery embeds endpoint labels when it processes the edge, so an
    // unmaterialized endpoint would silently change the schema. The client
    // always sends R records first; reaching this means a broken client.
    return util::Status::FailedPrecondition(
        "edge " + std::to_string(record.id) +
        " references an unmaterialized endpoint");
  }
  std::vector<pg::LabelId> labels;
  labels.reserve(record.labels.size());
  for (const std::string& name : record.labels) {
    labels.push_back(graph_->vocab().InternLabel(name));
  }
  pg::NormalizeLabels(&labels);
  pg::Edge& edge = graph_->edge(record.id);
  edge.src = record.src;
  edge.dst = record.dst;
  edge.labels = std::move(labels);
  for (const auto& [key, value] : record.properties) {
    graph_->SetEdgeProperty(record.id, key, value);
  }
  edge_filled_[record.id] = true;
  ++edges_filled_;
  batch->edge_ids.push_back(record.id);
  return util::Status::Ok();
}

void GraphAssembler::AppendStateTo(std::string* out) const {
  util::PutU8(out, sized_ ? 1 : 0);
  PutBitmap(out, node_filled_);
  PutBitmap(out, edge_filled_);
}

util::Status GraphAssembler::RestoreState(std::string_view bytes) {
  util::ByteReader in(bytes);
  uint8_t sized = in.ReadU8();
  std::vector<bool> node_filled;
  std::vector<bool> edge_filled;
  if (sized > 1 || !ReadBitmap(&in, &node_filled) ||
      !ReadBitmap(&in, &edge_filled) || !in.ok() || !in.AtEnd()) {
    return util::Status::ParseError(
        "assembler snapshot: truncated or corrupt");
  }
  if (node_filled.size() != graph_->num_nodes() ||
      edge_filled.size() != graph_->num_edges()) {
    return util::Status::FailedPrecondition(
        "assembler snapshot does not match the replayed graph (" +
        std::to_string(node_filled.size()) + "/" +
        std::to_string(edge_filled.size()) + " vs " +
        std::to_string(graph_->num_nodes()) + "/" +
        std::to_string(graph_->num_edges()) + " elements)");
  }
  sized_ = sized != 0;
  node_filled_ = std::move(node_filled);
  edge_filled_ = std::move(edge_filled);
  nodes_filled_ = 0;
  for (bool b : node_filled_) nodes_filled_ += b ? 1 : 0;
  edges_filled_ = 0;
  for (bool b : edge_filled_) edges_filled_ += b ? 1 : 0;
  return util::Status::Ok();
}

util::Status GraphAssembler::CheckComplete() const {
  if (!sized_) {
    return util::Status::FailedPrecondition("no batches were ingested");
  }
  if (nodes_filled_ != node_filled_.size() ||
      edges_filled_ != edge_filled_.size()) {
    return util::Status::FailedPrecondition(
        "stream ended with unmaterialized elements: " +
        std::to_string(node_filled_.size() - nodes_filled_) + " nodes, " +
        std::to_string(edge_filled_.size() - edges_filled_) + " edges");
  }
  return util::Status::Ok();
}

}  // namespace pghive::service
