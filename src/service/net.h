#ifndef PGHIVE_SERVICE_NET_H_
#define PGHIVE_SERVICE_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace pghive::service {

/// Minimal POSIX TCP helpers for pghived. Loopback-only by design: the
/// daemon is a local sidecar, not an internet-facing server.

/// Listens on 127.0.0.1:<port> (port 0 picks an ephemeral port; read it back
/// with BoundPort). Returns the listening fd.
util::StatusOr<int> ListenTcp(uint16_t port, int backlog = 16);

/// The port a listening fd is bound to.
util::StatusOr<uint16_t> BoundPort(int fd);

/// Connects to 127.0.0.1:<port>; returns the connected fd.
util::StatusOr<int> ConnectTcp(uint16_t port);

/// A buffered line/byte reader-writer over a connected socket. Owns the fd.
/// Single-threaded use per direction; pghived serves one request at a time
/// per connection, so one stream object per connection suffices.
class SocketStream {
 public:
  explicit SocketStream(int fd) : fd_(fd) {}
  ~SocketStream() { Close(); }

  SocketStream(SocketStream&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  SocketStream& operator=(SocketStream&& other) noexcept;
  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  /// Reads up to the next '\n' (stripped, along with a preceding '\r').
  /// A clean EOF before any byte returns NotFound("connection closed") so
  /// servers can tell an orderly disconnect from a real IO error.
  util::StatusOr<std::string> ReadLine();

  /// Reads exactly `n` bytes into `*out` (replacing its contents).
  util::Status ReadExact(size_t n, std::string* out);

  util::Status WriteAll(std::string_view data);

  void Close();
  bool closed() const { return fd_ < 0; }
  int fd() const { return fd_; }

 private:
  /// Pulls more bytes into buffer_ and returns how many arrived (> 0).
  /// Orderly EOF is NotFound("connection closed"), IO failures IoError —
  /// StatusOr-first like every other fallible surface in the repo.
  util::StatusOr<size_t> Fill();

  int fd_;
  std::string buffer_;
};

}  // namespace pghive::service

#endif  // PGHIVE_SERVICE_NET_H_
