#ifndef PGHIVE_SERVICE_CLIENT_H_
#define PGHIVE_SERVICE_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pg/graph.h"
#include "service/net.h"
#include "service/protocol.h"
#include "util/status.h"

namespace pghive::service {

/// Splits `graph` the way the one-shot CLI does (FullBatch for
/// num_batches <= 1, SplitIntoBatches(graph, n, seed) otherwise) and renders
/// each batch as a pghived ingest payload. Payload 1 carries the graph-size
/// header and the vocabulary preamble; later payloads carry only records.
/// Reference (R) records materialize edge endpoints ahead of their own
/// batch; membership (M) markers restore those nodes to the batch that owns
/// them. Streaming these payloads in order reproduces the one-shot
/// discovery byte for byte.
std::vector<std::string> BuildIngestPayloads(const pg::PropertyGraph& graph,
                                             size_t num_batches,
                                             uint64_t seed = 1);

/// A blocking pghived client: one TCP connection, one request in flight.
class PghivedClient {
 public:
  static util::StatusOr<PghivedClient> Connect(uint16_t port);

  util::Status Ping();

  /// Returns the new session id. Knobs use the `pghive discover` names
  /// (threads, shards, method, ...).
  util::StatusOr<std::string> CreateSession(
      const std::map<std::string, std::string>& option_flags);

  /// Returns the batch sequence number the server assigned.
  util::StatusOr<uint64_t> IngestBatch(const std::string& session,
                                       const std::string& payload);

  /// form: pgs | pgs-loose | xsd | describe | binary. With snapshot=false
  /// the server finishes the stream and returns the final schema.
  util::StatusOr<std::string> GetSchema(const std::string& session,
                                        const std::string& form = "pgs",
                                        bool snapshot = false);

  util::StatusOr<ValidationResult> Validate(const std::string& session,
                                            bool strict,
                                            const std::string& pgs_text);

  /// Serializes the session to `path` on the *server's* filesystem; returns
  /// the snapshot size in bytes.
  util::StatusOr<uint64_t> SaveState(const std::string& session,
                                     const std::string& path);

  /// A session restored by LoadState: its fresh id and how many batches the
  /// snapshot already holds (the client skips that many payloads on resume).
  struct RestoredSession {
    std::string id;
    uint64_t batches = 0;
  };

  /// Restores a server-side SaveState file as a new session.
  util::StatusOr<RestoredSession> LoadState(const std::string& path);

  /// Looks up an existing session's id and batch count — the resume
  /// handshake against a daemon that restored the session from its own
  /// checkpoint dir (no LoadState round trip or snapshot file needed).
  util::StatusOr<RestoredSession> SessionInfo(const std::string& session);

  /// Long-polls the session's schema changefeed; returns concatenated
  /// core::SchemaDiff records with version > after_version (empty string if
  /// `timeout_ms` elapsed first). Parse with core::ParseSchemaDiffStream.
  util::StatusOr<std::string> SubscribeChangefeed(const std::string& session,
                                                  uint64_t after_version,
                                                  uint64_t timeout_ms);

  util::Status CloseSession(const std::string& session);

 private:
  explicit PghivedClient(SocketStream stream) : stream_(std::move(stream)) {}

  /// Sends `line` (plus optional body) and reads the full response.
  util::StatusOr<Response> RoundTrip(const std::string& line,
                                     const std::string& body = "");

  SocketStream stream_;
};

}  // namespace pghive::service

#endif  // PGHIVE_SERVICE_CLIENT_H_
