#ifndef PGHIVE_SERVICE_ASSEMBLER_H_
#define PGHIVE_SERVICE_ASSEMBLER_H_

#include <string>
#include <string_view>
#include <vector>

#include "pg/batch.h"
#include "pg/graph.h"
#include "util/status.h"

namespace pghive::service {

/// Rebuilds a PropertyGraph incrementally from pghived ingest payloads such
/// that after the last batch the graph is byte-for-byte the one the one-shot
/// CLI would have loaded: same dense ids, same label/key intern order, same
/// property values. That identity is what makes a streamed discovery run
/// reproduce the one-shot schema exactly (the label/key id permutation feeds
/// the feature layout, which feeds the LSH hashes).
///
/// Payload grammar (line-oriented; fields escaped as in pg graph text):
///
///   G <num_nodes> <num_edges>   pre-size the graph (first line, batch 1)
///   V L <label> / V K <key>     vocabulary preamble in one-shot intern order
///   N <id> <labels> <props>     materialize node; member of this batch
///   R <id> <labels> <props>     materialize node; NOT a member (an endpoint
///                               of an early edge, sent ahead of its batch)
///   M <id>                      mark an already-materialized node a member
///   E <id> <src> <dst> ...      materialize edge; member of this batch
///
/// The G header materializes every element as a placeholder (empty labels,
/// 0/0 endpoints) so ids are dense from the start and graph-global sizes
/// match the one-shot run; placeholders are never read before their record
/// arrives because discovery only touches batch members and their endpoints,
/// and the client materializes endpoints (R lines) before edges that use
/// them. CheckComplete() verifies no placeholder survived the stream.
class GraphAssembler {
 public:
  /// `graph` must be empty and outlive the assembler.
  explicit GraphAssembler(pg::PropertyGraph* graph) : graph_(graph) {}

  /// Applies one ingest payload; member element ids append to `*batch` in
  /// payload order (which the client emits in SplitIntoBatches order).
  util::Status ApplyPayload(const std::string& payload, pg::GraphBatch* batch);

  /// Ok when every declared element has been materialized.
  util::Status CheckComplete() const;

  size_t nodes_filled() const { return nodes_filled_; }
  size_t edges_filled() const { return edges_filled_; }

  /// Appends the assembler's stream-progress state (sized flag and the two
  /// fill bitmaps, bit-packed) — the assembler section of a pghived session
  /// snapshot (util/binio framing). The graph contents themselves are saved
  /// separately as graph text.
  void AppendStateTo(std::string* out) const;

  /// Restores AppendStateTo bytes. The attached graph must already hold the
  /// replayed stream (bitmap sizes are validated against it); corrupt bytes
  /// fail with ParseError, a size mismatch with FailedPrecondition.
  util::Status RestoreState(std::string_view bytes);

 private:
  util::Status ApplyLine(const std::string& line, pg::GraphBatch* batch);
  util::Status ApplyHeader(const std::string& line);
  util::Status ApplyVocab(const std::string& line);
  util::Status MaterializeNode(const std::string& line, bool member,
                               pg::GraphBatch* batch);
  util::Status MaterializeEdge(const std::string& line, pg::GraphBatch* batch);

  pg::PropertyGraph* graph_;
  bool sized_ = false;
  std::vector<bool> node_filled_;
  std::vector<bool> edge_filled_;
  size_t nodes_filled_ = 0;
  size_t edges_filled_ = 0;
};

}  // namespace pghive::service

#endif  // PGHIVE_SERVICE_ASSEMBLER_H_
