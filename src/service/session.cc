#include "service/session.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <future>
#include <sstream>
#include <utility>

#include "core/options.h"
#include "core/pgschema_parser.h"
#include "core/schema_diff.h"
#include "core/serialize.h"
#include "core/validator.h"
#include "pg/graph_io.h"
#include "util/binio.h"

namespace pghive::service {

namespace {

constexpr char kSessionMagic[4] = {'P', 'G', 'H', 'D'};
constexpr uint32_t kSessionVersion = 1;

// Session snapshot section ids ("PGHD" container). Never renumber.
constexpr uint32_t kGraphTextSection = 1;
constexpr uint32_t kAssemblerSection = 2;
constexpr uint32_t kHiveStateSection = 3;
constexpr uint32_t kCountersSection = 4;

/// Ceiling on one WaitForDiffs long-poll, so a subscriber can never wedge
/// server shutdown for longer than this.
constexpr uint64_t kMaxFeedWaitMs = 30000;

/// Writes `bytes` to `path` atomically: a sibling tmp file, then rename, so
/// a crash mid-write never leaves a torn file under the real name.
util::Status AtomicWriteFile(const std::string& path,
                             const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return util::Status::IoError("cannot write " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return util::Status::Ok();
}

/// Reconciles a feed segment file with a restored session's version counter:
/// keeps the longest clean prefix of records numbered contiguously
/// 1..max_version and truncates everything past it — a torn tail from a
/// crash, or versions the restored session will re-publish (and re-append)
/// while replaying batches the checkpoint had not yet seen.
util::Status TruncateFeedFile(const std::string& path, uint64_t max_version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Ok();  // No segment yet: nothing to reconcile.
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return util::Status::IoError("cannot read " + path);
  size_t valid_prefix = 0;
  auto records = core::ScanSchemaDiffStream(bytes, &valid_prefix);
  size_t keep = 0;
  uint64_t expect = 1;
  for (const core::SchemaDiffRecord& record : records) {
    if (expect > max_version || record.diff.version_to != expect) break;
    keep = record.offset + record.length;
    ++expect;
  }
  if (keep == bytes.size()) return util::Status::Ok();
  return AtomicWriteFile(path, bytes.substr(0, keep));
}

}  // namespace

Session::Session(std::string id, core::PgHiveOptions options,
                 util::ThreadPool* pool, JobQueue* queue,
                 SessionDurability durability)
    : id_(std::move(id)),
      options_(options),
      durability_(std::move(durability)),
      queue_(queue) {
  graph_ = std::make_unique<pg::PropertyGraph>();
  // The hive shares the cross-session pool; per-session ordering comes from
  // the job lane, not from a dedicated pool.
  hive_ = std::make_unique<core::PgHive>(graph_.get(), options_, pool);
  assembler_ = std::make_unique<GraphAssembler>(graph_.get());
}

util::StatusOr<std::shared_ptr<Session>> Session::Create(
    std::string id, const std::map<std::string, std::string>& option_flags,
    util::ThreadPool* pool, JobQueue* queue, SessionDurability durability) {
  auto options = core::ParsePgHiveOptions(option_flags);
  if (!options.ok()) return options.status();
  // A fresh session owns its durability paths outright: stale files there
  // (say, from a session that published a feed but died before its first
  // checkpoint) must not leak into this one's history.
  if (!durability.state_path.empty()) {
    std::remove(durability.state_path.c_str());
  }
  if (!durability.feed_path.empty()) {
    std::remove(durability.feed_path.c_str());
  }
  return std::shared_ptr<Session>(new Session(std::move(id), *options, pool,
                                              queue, std::move(durability)));
}

Session::~Session() { Drain(); }

void Session::Drain() { queue_->DrainLane(id_); }

util::StatusOr<uint64_t> Session::SubmitIngest(std::string payload) {
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finish_submitted_) {
      return util::Status::FailedPrecondition(
          "session " + id_ + " is finished; create a new session to ingest");
    }
    if (!status_.ok()) return status_;
    seq = ++batches_submitted_;
  }
  auto shared_payload = std::make_shared<std::string>(std::move(payload));
  if (!queue_->Submit(id_, [this, shared_payload] {
        IngestJob(*shared_payload);
      })) {
    return util::Status::FailedPrecondition("service is shutting down");
  }
  return seq;
}

void Session::IngestJob(const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status_.ok()) return;  // Poisoned: drop follow-on batches.
  }
  pg::GraphBatch batch;
  util::Status status = assembler_->ApplyPayload(payload, &batch);
  if (status.ok()) {
    status = hive_->ProcessBatch(batch);
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_.ok()) status_ = status;
    return;
  }
  Publish(/*is_final=*/false);
  if (!durability_.state_path.empty() && durability_.checkpoint_every > 0 &&
      hive_->batches_processed() % durability_.checkpoint_every == 0) {
    util::Status checkpointed = CheckpointInLane();
    if (!checkpointed.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (status_.ok()) status_ = checkpointed;
    }
  }
}

void Session::FinishJob() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status_.ok()) return;
  }
  util::Status status = assembler_->CheckComplete();
  if (status.ok()) {
    status = hive_->Finish();
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_.ok()) status_ = status;
    return;
  }
  Publish(/*is_final=*/true);
  // The final schema always checkpoints (regardless of checkpoint_every), so
  // a restart after Finish still serves the post-processed snapshot.
  if (!durability_.state_path.empty()) {
    util::Status checkpointed = CheckpointInLane();
    if (!checkpointed.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (status_.ok()) status_ = checkpointed;
    }
  }
}

std::shared_ptr<SchemaSnapshot> Session::RenderSnapshot(bool is_final) const {
  auto snapshot = std::make_shared<SchemaSnapshot>();
  snapshot->batches = hive_->batches_processed();
  snapshot->is_final = is_final;
  const core::SchemaGraph& schema = hive_->schema();
  const pg::Vocabulary& vocab = graph_->vocab();
  snapshot->pgs_strict =
      core::SerializePgSchema(schema, vocab, core::SchemaMode::kStrict);
  snapshot->pgs_loose =
      core::SerializePgSchema(schema, vocab, core::SchemaMode::kLoose);
  snapshot->xsd = core::SerializeXsd(schema, vocab);
  snapshot->describe = core::DescribeSchema(schema, vocab);
  snapshot->binary = core::SerializeSchemaBinary(schema);
  return snapshot;
}

void Session::Publish(bool is_final) {
  auto snapshot = RenderSnapshot(is_final);
  // The changefeed record for this publish. Diffed in-lane (the renderer
  // reads the vocabulary, which only lane jobs may touch) against the
  // schema as of the previous publish.
  core::SchemaDiff diff =
      core::DiffSchemas(prev_schema_, hive_->schema(), graph_->vocab());
  prev_schema_ = hive_->schema();
  diff.batch = snapshot->batches;
  // versions_published_ is only ever advanced from lane jobs, which the
  // queue serializes, so reading it here without the mutex is ordered; the
  // mutex below still guards the cross-thread readers.
  const uint64_t version = versions_published_ + 1;
  diff.version_from = version - 1;
  diff.version_to = version;
  std::string record = core::SerializeSchemaDiffBinary(diff);
  // Spill to the segment file *before* the version becomes visible: once a
  // subscriber can name this version, the file must already cover it — that
  // invariant is what lets WaitForDiffs serve pruned versions from disk.
  AppendFeedRecord(record);
  std::lock_guard<std::mutex> lock(mutex_);
  versions_published_ = version;
  snapshot->version = version;
  feed_records_.push_back(std::move(record));
  while (feed_records_.size() > durability_.feed_backlog) {
    feed_records_.pop_front();
    ++first_feed_version_;
  }
  snapshot_ = std::move(snapshot);
  feed_cv_.notify_all();
}

void Session::AppendFeedRecord(const std::string& record) {
  if (durability_.feed_path.empty()) return;
  if (!feed_out_.is_open()) {
    feed_out_.open(durability_.feed_path, std::ios::binary | std::ios::app);
  }
  feed_out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  feed_out_.flush();
  if (!feed_out_) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_.ok()) {
      status_ = util::Status::IoError("cannot append changefeed segment " +
                                      durability_.feed_path);
    }
  }
}

std::shared_ptr<const SchemaSnapshot> Session::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

util::StatusOr<std::shared_ptr<const SchemaSnapshot>> Session::FinalSnapshot() {
  bool submit = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!finish_submitted_) {
      finish_submitted_ = true;
      submit = true;
    }
  }
  if (submit) {
    queue_->Submit(id_, [this] { FinishJob(); });
  }
  Drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status_.ok()) return status_;
    if (snapshot_ == nullptr || !snapshot_->is_final) {
      return util::Status::Internal("finish produced no snapshot");
    }
    return snapshot_;
  }
}

util::StatusOr<ValidationResult> Session::Validate(
    const std::string& pgs_text, bool strict) {
  auto task = std::make_shared<std::packaged_task<
      util::StatusOr<ValidationResult>()>>([this, pgs_text, strict] {
    // A vocabulary copy keeps schema parsing from interning labels or keys
    // the stream never mentioned — interning into the live vocabulary would
    // shift token order for batches still to come.
    pg::Vocabulary vocab = graph_->vocab();
    auto schema = core::ParsePgSchema(pgs_text, &vocab);
    if (!schema.ok()) return util::StatusOr<ValidationResult>(schema.status());
    core::ValidatorOptions options;
    options.mode = strict ? core::SchemaMode::kStrict : core::SchemaMode::kLoose;
    core::SchemaValidator validator(&schema.value(), options);
    core::ValidationReport report = validator.Validate(*graph_);
    ValidationResult result;
    result.conforms = report.conforms();
    result.report = report.Summary();
    return util::StatusOr<ValidationResult>(std::move(result));
  });
  std::future<util::StatusOr<ValidationResult>> future = task->get_future();
  if (!queue_->Submit(id_, [task] { (*task)(); })) {
    return util::Status::FailedPrecondition("service is shutting down");
  }
  return future.get();
}

util::Status Session::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

util::StatusOr<std::string> Session::BuildStateBytes() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status_.ok()) return status_;
  }
  std::string bytes;
  bytes.append(kSessionMagic, sizeof(kSessionMagic));
  util::PutU32(&bytes, kSessionVersion);
  util::AppendSection(&bytes, kGraphTextSection, pg::SaveGraphText(*graph_));
  std::string assembler;
  assembler_->AppendStateTo(&assembler);
  util::AppendSection(&bytes, kAssemblerSection, assembler);
  std::ostringstream hive;
  util::Status saved = hive_->SaveState(hive);
  if (!saved.ok()) return saved;
  util::AppendSection(&bytes, kHiveStateSection, hive.str());
  std::string counters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Submitted == processed here: this code runs as a lane job, so every
    // batch submitted before it has already committed, and any submitted
    // after it will replay against the restored session.
    util::PutU64(&counters, hive_->batches_processed());
    util::PutU64(&counters, versions_published_);
    util::PutU8(&counters, finish_submitted_ ? 1 : 0);
  }
  util::AppendSection(&bytes, kCountersSection, counters);
  return bytes;
}

util::Status Session::CheckpointInLane() {
  if (durability_.state_path.empty()) return util::Status::Ok();
  auto bytes = BuildStateBytes();
  if (!bytes.ok()) return bytes.status();
  return AtomicWriteFile(durability_.state_path, *bytes);
}

util::StatusOr<std::string> Session::SaveState() {
  auto task = std::make_shared<
      std::packaged_task<util::StatusOr<std::string>()>>(
      [this] { return BuildStateBytes(); });
  std::future<util::StatusOr<std::string>> future = task->get_future();
  if (!queue_->Submit(id_, [task] { (*task)(); })) {
    return util::Status::FailedPrecondition("service is shutting down");
  }
  return future.get();
}

util::Status Session::WriteCheckpoint() {
  if (durability_.state_path.empty()) return util::Status::Ok();
  auto task = std::make_shared<std::packaged_task<util::Status()>>(
      [this] { return CheckpointInLane(); });
  std::future<util::Status> future = task->get_future();
  if (!queue_->Submit(id_, [task] { (*task)(); })) {
    return util::Status::FailedPrecondition("service is shutting down");
  }
  return future.get();
}

util::StatusOr<std::shared_ptr<Session>> Session::CreateFromState(
    std::string id, const std::string& bytes, util::ThreadPool* pool,
    JobQueue* queue, SessionDurability durability) {
  util::ByteReader in(bytes);
  if (!in.Has(sizeof(kSessionMagic)) ||
      bytes.compare(0, sizeof(kSessionMagic), kSessionMagic,
                    sizeof(kSessionMagic)) != 0) {
    return util::Status::ParseError("session snapshot: bad magic");
  }
  in.ReadBytes(sizeof(kSessionMagic));
  uint32_t version = in.ReadU32();
  // Forward compatible like the "PGHS" reader: newer writers may only append
  // optional sections, so any version >= ours restores; unknown section ids
  // below are skipped.
  if (!in.ok() || version < kSessionVersion) {
    return util::Status::ParseError(
        "session snapshot: bad header or unsupported version");
  }
  std::map<uint32_t, std::string_view> sections;
  while (!in.AtEnd()) {
    uint32_t section_id = 0;
    std::string_view payload;
    if (!util::ReadSection(&in, &section_id, &payload)) {
      return util::Status::ParseError(
          "session snapshot: truncated or corrupt section");
    }
    if (!sections.emplace(section_id, payload).second) {
      return util::Status::ParseError("session snapshot: duplicate section " +
                                      std::to_string(section_id));
    }
  }
  for (uint32_t required : {kGraphTextSection, kAssemblerSection,
                            kHiveStateSection, kCountersSection}) {
    if (!sections.count(required)) {
      return util::Status::ParseError("session snapshot: missing section " +
                                      std::to_string(required));
    }
  }
  const std::string hive_bytes(sections.at(kHiveStateSection));
  auto options = core::ReadSnapshotOptions(hive_bytes);
  if (!options.ok()) return options.status();

  // Reconcile the feed segment with the snapshot before the session can
  // publish: drop any torn tail and any versions past the checkpoint's
  // counter — replaying the uncheckpointed batches re-appends those same
  // versions, byte-identically, without duplication.
  if (!durability.feed_path.empty()) {
    util::ByteReader counters_peek(sections.at(kCountersSection));
    counters_peek.ReadU64();  // batches
    uint64_t published = counters_peek.ReadU64();
    if (!counters_peek.ok()) {
      return util::Status::ParseError(
          "session snapshot: corrupt counters section");
    }
    util::Status truncated = TruncateFeedFile(durability.feed_path, published);
    if (!truncated.ok()) return truncated;
  }

  std::shared_ptr<Session> session(new Session(std::move(id), *options, pool,
                                               queue, std::move(durability)));
  // Order matters: the hive restore rebuilds the vocabulary first (trivially
  // position-consistent with the empty graph), so the graph-text replay
  // below resolves every label and key to its snapshotted id — the id order
  // the stream preamble had fixed, which the feature layout depends on.
  std::istringstream hive_in(hive_bytes);
  auto restored = session->hive_->RestoreState(hive_in);
  if (!restored.ok()) return restored.status();
  util::Status replayed = pg::LoadGraphTextInto(
      std::string(sections.at(kGraphTextSection)), session->graph_.get());
  if (!replayed.ok()) return replayed;
  util::Status assembler =
      session->assembler_->RestoreState(sections.at(kAssemblerSection));
  if (!assembler.ok()) return assembler;

  util::ByteReader counters(sections.at(kCountersSection));
  uint64_t batches_submitted = counters.ReadU64();
  uint64_t versions_published = counters.ReadU64();
  uint8_t finish_submitted = counters.ReadU8();
  if (!counters.ok() || !counters.AtEnd() || finish_submitted > 1 ||
      batches_submitted != *restored) {
    return util::Status::ParseError(
        "session snapshot: corrupt counters section");
  }
  session->batches_submitted_ = batches_submitted;
  session->versions_published_ = versions_published;
  session->finish_submitted_ = finish_submitted != 0;
  session->prev_schema_ = session->hive_->schema();
  session->first_feed_version_ = versions_published + 1;
  if (versions_published > 0) {
    auto snapshot = session->RenderSnapshot(
        session->hive_->phase() == core::PgHive::Phase::kFinished);
    snapshot->version = versions_published;
    session->snapshot_ = std::move(snapshot);
  }
  return session;
}

util::StatusOr<std::string> Session::WaitForDiffs(uint64_t after_version,
                                                  uint64_t timeout_ms) {
  timeout_ms = std::min<uint64_t>(timeout_ms, kMaxFeedWaitMs);
  std::unique_lock<std::mutex> lock(mutex_);
  feed_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return versions_published_ > after_version || !status_.ok();
  });
  if (!status_.ok()) return status_;
  std::string out;
  if (versions_published_ > after_version &&
      after_version + 1 < first_feed_version_) {
    // Older than the in-memory window: serve the gap from the feed segment
    // file. Safe under mutex_ — every version below first_feed_version_ was
    // flushed to the file before it became visible, and the file is only
    // ever appended to while the session lives.
    auto from_disk = ReadFeedFromDisk(after_version, first_feed_version_);
    if (!from_disk.ok()) return from_disk.status();
    out = std::move(*from_disk);
  }
  for (size_t i = 0; i < feed_records_.size(); ++i) {
    if (first_feed_version_ + i > after_version) out += feed_records_[i];
  }
  return out;
}

util::StatusOr<std::string> Session::ReadFeedFromDisk(
    uint64_t after_version, uint64_t until_version) const {
  const util::Status pruned = util::Status::OutOfRange(
      "changefeed backlog pruned before version " +
      std::to_string(after_version + 1) +
      "; refetch the schema and resubscribe from its version");
  if (durability_.feed_path.empty()) return pruned;
  std::ifstream in(durability_.feed_path, std::ios::binary);
  if (!in) return pruned;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return util::Status::IoError("cannot read changefeed segment " +
                                 durability_.feed_path);
  }
  auto records = core::ScanSchemaDiffStream(bytes, nullptr);
  std::string out;
  uint64_t expect = after_version + 1;
  for (const core::SchemaDiffRecord& record : records) {
    if (record.diff.version_to <= after_version) continue;
    if (expect >= until_version) break;
    // The segment is contiguous from version 1 by construction (restore
    // truncates to a clean prefix, publish appends in order); any gap means
    // the requested range predates what survived.
    if (record.diff.version_to != expect) return pruned;
    out.append(bytes, record.offset, record.length);
    ++expect;
  }
  if (expect < until_version) return pruned;
  return out;
}

}  // namespace pghive::service
