#include "service/session.h"

#include <future>
#include <utility>

#include "core/options.h"
#include "core/pgschema_parser.h"
#include "core/serialize.h"
#include "core/validator.h"

namespace pghive::service {

Session::Session(std::string id, core::PgHiveOptions options,
                 util::ThreadPool* pool, JobQueue* queue)
    : id_(std::move(id)), options_(options), queue_(queue) {
  graph_ = std::make_unique<pg::PropertyGraph>();
  // The hive shares the cross-session pool; per-session ordering comes from
  // the job lane, not from a dedicated pool.
  hive_ = std::make_unique<core::PgHive>(graph_.get(), options_, pool);
  assembler_ = std::make_unique<GraphAssembler>(graph_.get());
}

util::StatusOr<std::shared_ptr<Session>> Session::Create(
    std::string id, const std::map<std::string, std::string>& option_flags,
    util::ThreadPool* pool, JobQueue* queue) {
  auto options = core::ParsePgHiveOptions(option_flags);
  if (!options.ok()) return options.status();
  return std::shared_ptr<Session>(
      new Session(std::move(id), *options, pool, queue));
}

Session::~Session() { Drain(); }

void Session::Drain() { queue_->DrainLane(id_); }

util::StatusOr<uint64_t> Session::SubmitIngest(std::string payload) {
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finish_submitted_) {
      return util::Status::FailedPrecondition(
          "session " + id_ + " is finished; create a new session to ingest");
    }
    if (!status_.ok()) return status_;
    seq = ++batches_submitted_;
  }
  auto shared_payload = std::make_shared<std::string>(std::move(payload));
  if (!queue_->Submit(id_, [this, shared_payload] {
        IngestJob(*shared_payload);
      })) {
    return util::Status::FailedPrecondition("service is shutting down");
  }
  return seq;
}

void Session::IngestJob(const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status_.ok()) return;  // Poisoned: drop follow-on batches.
  }
  pg::GraphBatch batch;
  util::Status status = assembler_->ApplyPayload(payload, &batch);
  if (status.ok()) {
    status = hive_->ProcessBatch(batch);
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_.ok()) status_ = status;
    return;
  }
  Publish(/*is_final=*/false);
}

void Session::FinishJob() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status_.ok()) return;
  }
  util::Status status = assembler_->CheckComplete();
  if (status.ok()) {
    status = hive_->Finish();
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_.ok()) status_ = status;
    return;
  }
  Publish(/*is_final=*/true);
}

void Session::Publish(bool is_final) {
  auto snapshot = std::make_shared<SchemaSnapshot>();
  snapshot->batches = hive_->batches_processed();
  snapshot->is_final = is_final;
  const core::SchemaGraph& schema = hive_->schema();
  const pg::Vocabulary& vocab = graph_->vocab();
  snapshot->pgs_strict =
      core::SerializePgSchema(schema, vocab, core::SchemaMode::kStrict);
  snapshot->pgs_loose =
      core::SerializePgSchema(schema, vocab, core::SchemaMode::kLoose);
  snapshot->xsd = core::SerializeXsd(schema, vocab);
  snapshot->describe = core::DescribeSchema(schema, vocab);
  snapshot->binary = core::SerializeSchemaBinary(schema);
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot->version = ++versions_published_;
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const SchemaSnapshot> Session::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

util::StatusOr<std::shared_ptr<const SchemaSnapshot>> Session::FinalSnapshot() {
  bool submit = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!finish_submitted_) {
      finish_submitted_ = true;
      submit = true;
    }
  }
  if (submit) {
    queue_->Submit(id_, [this] { FinishJob(); });
  }
  Drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status_.ok()) return status_;
    if (snapshot_ == nullptr || !snapshot_->is_final) {
      return util::Status::Internal("finish produced no snapshot");
    }
    return snapshot_;
  }
}

util::StatusOr<ValidationResult> Session::Validate(
    const std::string& pgs_text, bool strict) {
  auto task = std::make_shared<std::packaged_task<
      util::StatusOr<ValidationResult>()>>([this, pgs_text, strict] {
    // A vocabulary copy keeps schema parsing from interning labels or keys
    // the stream never mentioned — interning into the live vocabulary would
    // shift token order for batches still to come.
    pg::Vocabulary vocab = graph_->vocab();
    auto schema = core::ParsePgSchema(pgs_text, &vocab);
    if (!schema.ok()) return util::StatusOr<ValidationResult>(schema.status());
    core::ValidatorOptions options;
    options.mode = strict ? core::SchemaMode::kStrict : core::SchemaMode::kLoose;
    core::SchemaValidator validator(&schema.value(), options);
    core::ValidationReport report = validator.Validate(*graph_);
    ValidationResult result;
    result.conforms = report.conforms();
    result.report = report.Summary();
    return util::StatusOr<ValidationResult>(std::move(result));
  });
  std::future<util::StatusOr<ValidationResult>> future = task->get_future();
  if (!queue_->Submit(id_, [task] { (*task)(); })) {
    return util::Status::FailedPrecondition("service is shutting down");
  }
  return future.get();
}

util::Status Session::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

}  // namespace pghive::service
