#ifndef PGHIVE_SERVICE_SERVER_H_
#define PGHIVE_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/session_manager.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pghive::service {

/// The pghived TCP server: accepts loopback connections, reads framed
/// requests, and dispatches them through RequestHandler. IO runs on one
/// thread per connection (connections spend their life blocked in recv);
/// discovery compute runs on the shared ThreadPool via each session's job
/// lane, so a slow tenant saturates neither the accept loop nor other
/// tenants' pipelines.
class PghivedServer {
 public:
  struct Options {
    uint16_t port = 0;         ///< 0 picks an ephemeral port (see port()).
    size_t threads = 0;        ///< Shared pool size; 0 = hardware threads.
    size_t max_sessions = 64;
    /// Daemon-owned durability (--checkpoint-dir): sessions checkpoint here
    /// on a schedule and on SIGTERM drain, feed segments spill here, and
    /// Start() restores every snapshot found here. Empty = in-memory only.
    std::string checkpoint_dir;
    /// Batches between scheduled checkpoints (--checkpoint-every).
    uint64_t checkpoint_every = 1;
  };

  explicit PghivedServer(Options options);
  ~PghivedServer();

  PghivedServer(const PghivedServer&) = delete;
  PghivedServer& operator=(const PghivedServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  util::Status Start();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, nudge open connections to finish
  /// their current request, join all threads, drain every session's queued
  /// jobs. Idempotent; also runs from the destructor.
  void Stop();

  SessionManager& manager() { return manager_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  util::ThreadPool pool_;
  SessionManager manager_;
  RequestHandler handler_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;
};

}  // namespace pghive::service

#endif  // PGHIVE_SERVICE_SERVER_H_
