#ifndef PGHIVE_SERVICE_PROTOCOL_H_
#define PGHIVE_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/session_manager.h"
#include "util/status.h"

namespace pghive::service {

/// The pghived wire protocol: line-delimited requests, optionally followed
/// by a byte-counted body. Small enough to drive with netcat, structured
/// enough to frame binary schema payloads.
///
/// Requests (one line, space-separated tokens; <n> counts body bytes that
/// follow the newline):
///
///   ping
///   create-session [proto=N] [key=value ...]  knobs as in `pghive discover`
///       proto declares the client's protocol version (absent = 1); the
///       server rejects versions newer than kProtocolVersion with a clear
///       FailedPrecondition instead of misparsing unknown requests later.
///   ingest-batch <session> <n>  + body  one ingest payload (see assembler)
///   get-schema <session> <form> [snapshot]
///       form: pgs | pgs-loose | xsd | describe | binary
///       default waits for the stream to finish (enqueues Finish once) and
///       returns the final schema; `snapshot` returns the latest published
///       snapshot immediately without draining the session's lane.
///   validate <session> <strict|loose> <n>  + body (a PG-Schema text)
///   save-state <session> <path>         serialize the session to a server-
///                                       side file (Session::SaveState)
///   load-state <path>                   restore such a file as a NEW
///                                       session; "OK session <id> batches
///                                       <k>" tells the client how many
///                                       payloads to skip when resuming
///   subscribe-changefeed <session> <after-version> [timeout-ms]
///       long-polls for schema-diff records with version > after-version;
///       the body is a core::ParseSchemaDiffStream byte stream (empty on
///       timeout). When the daemon runs with --checkpoint-dir, versions
///       older than the in-memory backlog are served from the session's
///       feed segment file instead of OutOfRange.
///   session-info <session>              "OK session <id> batches <k>" for
///                                       an existing session — how a client
///                                       resumes against a daemon that
///                                       restored the session from its own
///                                       checkpoint (no load-state needed)
///   close <session>
///
/// Responses:
///
///   OK <tokens...>                          e.g. "OK session s1", "OK batch 3"
///   OK <tokens...> body <n>\n<n bytes>\n    body-carrying variants
///   ERR <CODE> <escaped message>            code from util::StatusCodeName;
///                                           message escaped like pg fields

/// The protocol version this build speaks. Version history:
///   1 — initial protocol (create/ingest/get-schema/validate/close).
///   2 — adds proto= handshake, save-state, load-state, subscribe-changefeed.
///   3 — adds session-info; subscribe-changefeed can serve pre-backlog
///       versions from the daemon's checkpoint-dir feed segments.
constexpr uint32_t kProtocolVersion = 3;
struct Request {
  std::string command;
  std::vector<std::string> args;  ///< Tokens after the command.
  std::string body;               ///< Filled by the transport when expected.
};

struct Response {
  util::Status status;     ///< Non-OK renders as an ERR line.
  std::string info;        ///< OK tokens ("session s1", "pong", ...).
  bool has_body = false;
  std::string body;
};

/// Splits a request line into command + args. Empty lines are invalid.
util::StatusOr<Request> ParseRequestLine(const std::string& line);

/// Body bytes the transport must read after the request line (0 for
/// body-less commands). Fails on a malformed or oversized count.
util::StatusOr<size_t> RequestBodyBytes(const Request& request);

/// Renders a response to wire form (including the trailing newline(s)).
std::string FormatResponse(const Response& response);

/// Parses the first response line (without newline) into `response`; for
/// body-carrying responses sets has_body and returns the byte count via
/// `body_bytes` so the transport can read the remainder.
util::Status ParseResponseLine(const std::string& line, Response* response,
                               size_t* body_bytes);

/// Executes requests against a SessionManager. Transport-independent: the
/// TCP server, tests, and any future transport all dispatch through here.
class RequestHandler {
 public:
  explicit RequestHandler(SessionManager* manager) : manager_(manager) {}

  Response Handle(const Request& request);

 private:
  Response HandleCreateSession(const Request& request);
  Response HandleIngestBatch(const Request& request);
  Response HandleGetSchema(const Request& request);
  Response HandleValidate(const Request& request);
  Response HandleSaveState(const Request& request);
  Response HandleLoadState(const Request& request);
  Response HandleSessionInfo(const Request& request);
  Response HandleSubscribeChangefeed(const Request& request);
  Response HandleClose(const Request& request);

  SessionManager* manager_;
};

}  // namespace pghive::service

#endif  // PGHIVE_SERVICE_PROTOCOL_H_
