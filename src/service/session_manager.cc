#include "service/session_manager.h"

#include <utility>

namespace pghive::service {

util::StatusOr<std::shared_ptr<Session>> SessionManager::CreateSession(
    const std::map<std::string, std::string>& option_flags) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    return util::Status::FailedPrecondition(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        "); close a session first");
  }
  std::string id = "s" + std::to_string(next_id_++);
  auto session = Session::Create(id, option_flags, pool_, &queue_);
  if (!session.ok()) return session.status();
  sessions_[id] = *session;
  return *session;
}

util::StatusOr<std::shared_ptr<Session>> SessionManager::CreateSessionFromState(
    const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    return util::Status::FailedPrecondition(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        "); close a session first");
  }
  std::string id = "s" + std::to_string(next_id_++);
  auto session = Session::CreateFromState(id, bytes, pool_, &queue_);
  if (!session.ok()) return session.status();
  sessions_[id] = *session;
  return *session;
}

util::StatusOr<std::shared_ptr<Session>> SessionManager::Lookup(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return util::Status::NotFound("no session '" + id + "'");
  }
  return it->second;
}

util::Status SessionManager::Close(const std::string& id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return util::Status::NotFound("no session '" + id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Outside the lock: draining can run queued jobs inline.
  session->Drain();
  return util::Status::Ok();
}

void SessionManager::DrainAll() { queue_.Drain(); }

size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace pghive::service
