#include "service/session_manager.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>
#include <vector>

namespace pghive::service {

namespace {

/// Parses the numeric part of a checkpoint filename "s<k>.pghd" / "s<k>.feed"
/// into *id; false for anything else (including foreign files in the dir).
bool ParseCheckpointId(const std::string& stem, const std::string& extension,
                       uint64_t* id) {
  if (extension != ".pghd" && extension != ".feed") return false;
  if (stem.size() < 2 || stem[0] != 's') return false;
  uint64_t value = 0;
  for (size_t i = 1; i < stem.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(stem[i]))) return false;
    value = value * 10 + static_cast<uint64_t>(stem[i] - '0');
  }
  *id = value;
  return true;
}

}  // namespace

SessionDurability SessionManager::DurabilityFor(const std::string& id) const {
  SessionDurability durability;
  durability.feed_backlog = options_.feed_backlog;
  if (options_.checkpoint_dir.empty()) return durability;
  durability.state_path = options_.checkpoint_dir + "/" + id + ".pghd";
  durability.feed_path = options_.checkpoint_dir + "/" + id + ".feed";
  durability.checkpoint_every = options_.checkpoint_every;
  return durability;
}

util::StatusOr<std::shared_ptr<Session>> SessionManager::CreateSession(
    const std::map<std::string, std::string>& option_flags) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    return util::Status::FailedPrecondition(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        "); close a session first");
  }
  std::string id = "s" + std::to_string(next_id_++);
  auto session =
      Session::Create(id, option_flags, pool_, &queue_, DurabilityFor(id));
  if (!session.ok()) return session.status();
  sessions_[id] = *session;
  return *session;
}

util::StatusOr<std::shared_ptr<Session>> SessionManager::CreateSessionFromState(
    const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    return util::Status::FailedPrecondition(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        "); close a session first");
  }
  std::string id = "s" + std::to_string(next_id_++);
  auto session =
      Session::CreateFromState(id, bytes, pool_, &queue_, DurabilityFor(id));
  if (!session.ok()) return session.status();
  sessions_[id] = *session;
  return *session;
}

util::Status SessionManager::RestoreFromCheckpointDir() {
  if (options_.checkpoint_dir.empty()) return util::Status::Ok();
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create checkpoint dir " +
                                 options_.checkpoint_dir + ": " +
                                 ec.message());
  }
  // Collect first, then restore in numeric id order so restored state is
  // independent of directory iteration order.
  std::vector<std::pair<uint64_t, std::string>> snapshots;
  uint64_t max_id = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options_.checkpoint_dir, ec)) {
    uint64_t id = 0;
    if (!ParseCheckpointId(entry.path().stem().string(),
                           entry.path().extension().string(), &id)) {
      continue;
    }
    // Feed segments without a snapshot still reserve the id: a session that
    // published but died before its first checkpoint must not have its feed
    // file inherited by an unrelated new session.
    max_id = std::max(max_id, id);
    if (entry.path().extension() == ".pghd") {
      snapshots.emplace_back(id, entry.path().string());
    }
  }
  if (ec) {
    return util::Status::IoError("cannot list checkpoint dir " +
                                 options_.checkpoint_dir + ": " +
                                 ec.message());
  }
  std::sort(snapshots.begin(), snapshots.end());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [numeric_id, path] : snapshots) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (!in || in.bad()) {
      return util::Status::IoError("cannot read checkpoint " + path);
    }
    std::string id = "s" + std::to_string(numeric_id);
    auto session =
        Session::CreateFromState(id, bytes, pool_, &queue_, DurabilityFor(id));
    if (!session.ok()) {
      return util::Status(session.status().code(),
                          "checkpoint " + path + ": " +
                              session.status().message());
    }
    sessions_[id] = *session;
  }
  next_id_ = std::max(next_id_, max_id + 1);
  return util::Status::Ok();
}

util::Status SessionManager::CheckpointAll() {
  if (options_.checkpoint_dir.empty()) return util::Status::Ok();
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  util::Status first_error = util::Status::Ok();
  for (const std::shared_ptr<Session>& session : sessions) {
    util::Status status = session->WriteCheckpoint();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

util::StatusOr<std::shared_ptr<Session>> SessionManager::Lookup(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return util::Status::NotFound("no session '" + id + "'");
  }
  return it->second;
}

util::Status SessionManager::Close(const std::string& id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return util::Status::NotFound("no session '" + id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Outside the lock: draining can run queued jobs inline.
  session->Drain();
  if (!options_.checkpoint_dir.empty()) {
    SessionDurability durability = DurabilityFor(id);
    std::remove(durability.state_path.c_str());
    std::remove(durability.feed_path.c_str());
  }
  return util::Status::Ok();
}

void SessionManager::DrainAll() { queue_.Drain(); }

size_t SessionManager::num_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace pghive::service
