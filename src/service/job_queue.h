#ifndef PGHIVE_SERVICE_JOB_QUEUE_H_
#define PGHIVE_SERVICE_JOB_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "util/thread_pool.h"

namespace pghive::service {

/// Schedules session jobs onto a shared util::ThreadPool while preserving
/// the PR-5 determinism contract per session: jobs submitted to one lane run
/// strictly in submission order, one at a time, while different lanes run
/// concurrently. A lane is keyed by session id, so one tenant's ingest never
/// reorders and never blocks another tenant's.
///
/// Scheduling: the first job submitted to an idle lane dispatches a "lane
/// runner" onto the pool; the runner drains that lane to empty and exits.
/// Jobs submitted while the runner is active are appended and picked up
/// without a second dispatch, so a lane occupies at most one pool slot.
/// With a null pool every job runs inline on the submitting thread (the
/// serial path, used by single-threaded daemons and tests).
class JobQueue {
 public:
  using Job = std::function<void()>;

  /// `pool` may be null (inline execution) and must outlive the queue.
  explicit JobQueue(util::ThreadPool* pool) : pool_(pool) {}
  ~JobQueue() { Shutdown(); }

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Appends `job` to `lane`. Returns false after Shutdown (job dropped).
  bool Submit(const std::string& lane, Job job);

  /// Blocks until every job in `lane` that was submitted before this call
  /// has finished. Jobs submitted concurrently may or may not be included.
  void DrainLane(const std::string& lane);

  /// Blocks until all lanes are idle.
  void Drain();

  /// Drains everything, then rejects further submissions. Idempotent.
  void Shutdown();

  /// Jobs queued or running right now (diagnostics).
  size_t pending() const;

 private:
  struct Lane {
    std::deque<Job> jobs;
    bool running = false;
  };

  /// Runs on a pool worker (or inline): executes `lane`'s jobs in order
  /// until the lane is empty.
  void RunLane(const std::string& lane);

  util::ThreadPool* pool_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::map<std::string, Lane> lanes_;
  size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace pghive::service

#endif  // PGHIVE_SERVICE_JOB_QUEUE_H_
