#ifndef PGHIVE_SERVICE_SESSION_MANAGER_H_
#define PGHIVE_SERVICE_SESSION_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "service/job_queue.h"
#include "service/session.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pghive::service {

/// Owns the multi-tenant session table of a pghived instance: create /
/// lookup / evict by id. All sessions schedule through one JobQueue onto one
/// shared ThreadPool, so concurrent tenants interleave at job granularity
/// while each tenant's batches stay in submission order.
class SessionManager {
 public:
  struct Options {
    size_t max_sessions = 64;  ///< Eviction backstop for runaway clients.
    /// Directory for daemon-owned durability: every session checkpoints its
    /// "PGHD" snapshot to <dir>/<id>.pghd and spills evicted changefeed
    /// records to <dir>/<id>.feed. Empty = fully in-memory sessions.
    std::string checkpoint_dir;
    /// Batches between scheduled checkpoints (Finish always checkpoints).
    uint64_t checkpoint_every = 1;
    /// Per-session in-memory changefeed window (tests shrink it to force
    /// the segment-file path).
    size_t feed_backlog = 256;
  };

  /// `pool` may be null (inline jobs — the serial path) and must outlive
  /// the manager.
  SessionManager(util::ThreadPool* pool, Options options)
      : options_(options), pool_(pool), queue_(pool) {}
  explicit SessionManager(util::ThreadPool* pool)
      : SessionManager(pool, Options()) {}

  ~SessionManager() { DrainAll(); }

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session with a fresh id ("s1", "s2", ...). Fails if the
  /// option flags don't parse/validate or the session table is full.
  util::StatusOr<std::shared_ptr<Session>> CreateSession(
      const std::map<std::string, std::string>& option_flags);

  /// Restores a session from Session::SaveState bytes under a fresh id (the
  /// load-state verb). The restored session continues exactly where the
  /// saved one stopped; ids are never recycled, so the new id differs from
  /// the one the state was saved under.
  util::StatusOr<std::shared_ptr<Session>> CreateSessionFromState(
      const std::string& bytes);

  /// NotFound if absent (or already closed).
  util::StatusOr<std::shared_ptr<Session>> Lookup(const std::string& id) const;

  /// Removes the session, waits for its queued jobs to finish, and deletes
  /// its checkpoint and feed-segment files — an explicit close means the
  /// client is done with the session's history.
  util::Status Close(const std::string& id);

  /// Waits for every session's queued jobs (graceful-shutdown path).
  void DrainAll();

  /// Restores every <id>.pghd snapshot found in checkpoint_dir (creating
  /// the directory if absent) under its original id, so a restarted daemon
  /// serves get-schema and subscribe-changefeed with no client load-state.
  /// Fresh ids continue past every id seen on disk. Fails loudly on the
  /// first unreadable or corrupt snapshot — silently dropping a tenant's
  /// state is worse than refusing to start. No-op without a checkpoint_dir.
  util::Status RestoreFromCheckpointDir();

  /// Checkpoints every live session (the SIGTERM drain path). Returns the
  /// first failure but attempts all. No-op without a checkpoint_dir.
  util::Status CheckpointAll();

  size_t num_sessions() const;
  JobQueue& queue() { return queue_; }

 private:
  /// The durability config for one session id under checkpoint_dir (empty
  /// config when durability is off).
  SessionDurability DurabilityFor(const std::string& id) const;

  const Options options_;
  util::ThreadPool* pool_;
  JobQueue queue_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t next_id_ = 1;
};

}  // namespace pghive::service

#endif  // PGHIVE_SERVICE_SESSION_MANAGER_H_
