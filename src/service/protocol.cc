#include "service/protocol.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "pg/graph_io.h"
#include "util/parse.h"

namespace pghive::service {

namespace {

/// Upper bound on a request body; a defensive limit so a corrupt length
/// prefix cannot make the server buffer gigabytes.
constexpr size_t kMaxBodyBytes = size_t{1} << 31;  // 2 GiB

Response ErrorResponse(util::Status status) {
  Response response;
  response.status = std::move(status);
  return response;
}

Response OkResponse(std::string info) {
  Response response;
  response.info = std::move(info);
  return response;
}

Response BodyResponse(std::string info, std::string body) {
  Response response;
  response.info = std::move(info);
  response.has_body = true;
  response.body = std::move(body);
  return response;
}

/// Picks the requested rendering out of a snapshot; empty form = "pgs".
util::StatusOr<std::string> SnapshotForm(const SchemaSnapshot& snapshot,
                                         const std::string& form) {
  if (form.empty() || form == "pgs") return snapshot.pgs_strict;
  if (form == "pgs-loose") return snapshot.pgs_loose;
  if (form == "xsd") return snapshot.xsd;
  if (form == "describe") return snapshot.describe;
  if (form == "binary") return snapshot.binary;
  return util::Status::InvalidArgument(
      "unknown schema form '" + form +
      "' (want pgs, pgs-loose, xsd, describe, or binary)");
}

}  // namespace

util::StatusOr<Request> ParseRequestLine(const std::string& line) {
  std::istringstream ls(line);
  Request request;
  if (!(ls >> request.command)) {
    return util::Status::ParseError("empty request");
  }
  std::string token;
  while (ls >> token) request.args.push_back(std::move(token));
  return request;
}

util::StatusOr<size_t> RequestBodyBytes(const Request& request) {
  if (request.command != "ingest-batch" && request.command != "validate") {
    return size_t{0};
  }
  if (request.args.empty()) {
    return util::Status::ParseError(request.command +
                                    " needs a trailing byte count");
  }
  auto bytes = util::ParseInt64InRange(
      request.args.back(), 0, static_cast<int64_t>(kMaxBodyBytes),
      request.command + " body bytes");
  if (!bytes.ok()) return bytes.status();
  return static_cast<size_t>(*bytes);
}

std::string FormatResponse(const Response& response) {
  std::string out;
  if (!response.status.ok()) {
    out = "ERR ";
    out += util::StatusCodeName(response.status.code());
    out += ' ';
    out += pg::EscapeField(response.status.message());
    out += '\n';
    return out;
  }
  out = "OK " + response.info;
  if (response.has_body) {
    out += " body " + std::to_string(response.body.size()) + "\n";
    out += response.body;
  }
  out += '\n';
  return out;
}

util::Status ParseResponseLine(const std::string& line, Response* response,
                               size_t* body_bytes) {
  *body_bytes = 0;
  std::istringstream ls(line);
  std::string tag;
  if (!(ls >> tag)) return util::Status::ParseError("empty response");
  if (tag == "ERR") {
    std::string code;
    ls >> code;
    std::string message;
    std::getline(ls, message);
    if (!message.empty() && message[0] == ' ') message.erase(0, 1);
    response->status =
        util::Status(util::StatusCode::kInternal,
                     code + ": " + pg::UnescapeField(message));
    return util::Status::Ok();
  }
  if (tag != "OK") {
    return util::Status::ParseError("bad response line '" + line + "'");
  }
  std::vector<std::string> tokens;
  std::string token;
  while (ls >> token) tokens.push_back(token);
  if (tokens.size() >= 2 && tokens[tokens.size() - 2] == "body") {
    auto bytes = util::ParseInt64InRange(tokens.back(), 0,
                                         static_cast<int64_t>(kMaxBodyBytes),
                                         "response body bytes");
    if (!bytes.ok()) return bytes.status();
    *body_bytes = static_cast<size_t>(*bytes);
    response->has_body = true;
    tokens.resize(tokens.size() - 2);
  }
  response->status = util::Status::Ok();
  response->info.clear();
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i) response->info += ' ';
    response->info += tokens[i];
  }
  return util::Status::Ok();
}

Response RequestHandler::Handle(const Request& request) {
  if (request.command == "ping") return OkResponse("pong");
  if (request.command == "create-session") {
    return HandleCreateSession(request);
  }
  if (request.command == "ingest-batch") return HandleIngestBatch(request);
  if (request.command == "get-schema") return HandleGetSchema(request);
  if (request.command == "validate") return HandleValidate(request);
  if (request.command == "save-state") return HandleSaveState(request);
  if (request.command == "load-state") return HandleLoadState(request);
  if (request.command == "session-info") return HandleSessionInfo(request);
  if (request.command == "subscribe-changefeed") {
    return HandleSubscribeChangefeed(request);
  }
  if (request.command == "close") return HandleClose(request);
  return ErrorResponse(util::Status::InvalidArgument(
      "unknown command '" + request.command + "'"));
}

Response RequestHandler::HandleCreateSession(const Request& request) {
  std::map<std::string, std::string> flags;
  for (const std::string& arg : request.args) {
    size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      return ErrorResponse(util::Status::InvalidArgument(
          "create-session arguments are key=value, got '" + arg + "'"));
    }
    flags[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  // The proto= handshake is protocol plumbing, not a discovery knob: strip
  // it before the shared options parser (which rejects unknown keys) and
  // refuse clients from the future with a message that names both versions.
  auto proto = flags.find("proto");
  if (proto != flags.end()) {
    auto version = util::ParseInt64InRange(proto->second, 1,
                                           std::numeric_limits<int64_t>::max(),
                                           "proto");
    if (!version.ok()) return ErrorResponse(version.status());
    if (static_cast<uint64_t>(*version) > kProtocolVersion) {
      return ErrorResponse(util::Status::FailedPrecondition(
          "client speaks protocol " + proto->second +
          " but this pghived supports up to " +
          std::to_string(kProtocolVersion) + "; upgrade the server"));
    }
    flags.erase(proto);
  }
  auto session = manager_->CreateSession(flags);
  if (!session.ok()) return ErrorResponse(session.status());
  return OkResponse("session " + (*session)->id() + " proto " +
                    std::to_string(kProtocolVersion));
}

Response RequestHandler::HandleIngestBatch(const Request& request) {
  if (request.args.size() != 2) {
    return ErrorResponse(util::Status::InvalidArgument(
        "usage: ingest-batch <session> <bytes>"));
  }
  auto session = manager_->Lookup(request.args[0]);
  if (!session.ok()) return ErrorResponse(session.status());
  auto seq = (*session)->SubmitIngest(request.body);
  if (!seq.ok()) return ErrorResponse(seq.status());
  return OkResponse("batch " + std::to_string(*seq));
}

Response RequestHandler::HandleGetSchema(const Request& request) {
  if (request.args.empty() || request.args.size() > 3) {
    return ErrorResponse(util::Status::InvalidArgument(
        "usage: get-schema <session> [form] [snapshot]"));
  }
  auto session = manager_->Lookup(request.args[0]);
  if (!session.ok()) return ErrorResponse(session.status());
  std::string form = request.args.size() > 1 ? request.args[1] : "pgs";
  const bool want_snapshot =
      !request.args.empty() && request.args.back() == "snapshot";
  if (request.args.size() == 2 && want_snapshot) form = "pgs";

  std::shared_ptr<const SchemaSnapshot> snapshot;
  if (want_snapshot) {
    snapshot = (*session)->Snapshot();
    if (snapshot == nullptr) {
      return ErrorResponse(util::Status::FailedPrecondition(
          "no snapshot yet: no batch has committed"));
    }
  } else {
    auto final_snapshot = (*session)->FinalSnapshot();
    if (!final_snapshot.ok()) return ErrorResponse(final_snapshot.status());
    snapshot = *final_snapshot;
  }
  auto body = SnapshotForm(*snapshot, form);
  if (!body.ok()) return ErrorResponse(body.status());
  std::string info = "schema " + std::string(snapshot->is_final ? "final"
                                                                : "snapshot") +
                     " version " + std::to_string(snapshot->version) +
                     " batches " + std::to_string(snapshot->batches);
  return BodyResponse(std::move(info), *std::move(body));
}

Response RequestHandler::HandleValidate(const Request& request) {
  if (request.args.size() != 3 ||
      (request.args[1] != "strict" && request.args[1] != "loose")) {
    return ErrorResponse(util::Status::InvalidArgument(
        "usage: validate <session> <strict|loose> <bytes>"));
  }
  auto session = manager_->Lookup(request.args[0]);
  if (!session.ok()) return ErrorResponse(session.status());
  auto result = (*session)->Validate(request.body, request.args[1] == "strict");
  if (!result.ok()) return ErrorResponse(result.status());
  return BodyResponse(result->conforms ? "valid" : "invalid",
                      result->report);
}

Response RequestHandler::HandleSaveState(const Request& request) {
  if (request.args.size() != 2) {
    return ErrorResponse(util::Status::InvalidArgument(
        "usage: save-state <session> <path>"));
  }
  auto session = manager_->Lookup(request.args[0]);
  if (!session.ok()) return ErrorResponse(session.status());
  auto bytes = (*session)->SaveState();
  if (!bytes.ok()) return ErrorResponse(bytes.status());
  const std::string& path = request.args[1];
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
    if (!out) return ErrorResponse(util::Status::IoError("cannot write " + tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrorResponse(
        util::Status::IoError("cannot rename " + tmp + " to " + path));
  }
  return OkResponse("saved " + request.args[0] + " bytes " +
                    std::to_string(bytes->size()));
}

Response RequestHandler::HandleLoadState(const Request& request) {
  if (request.args.size() != 1) {
    return ErrorResponse(
        util::Status::InvalidArgument("usage: load-state <path>"));
  }
  std::ifstream in(request.args[0], std::ios::binary);
  if (!in) {
    return ErrorResponse(
        util::Status::IoError("cannot open " + request.args[0]));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto session = manager_->CreateSessionFromState(bytes);
  if (!session.ok()) return ErrorResponse(session.status());
  return OkResponse("session " + (*session)->id() + " batches " +
                    std::to_string((*session)->batches_ingested()));
}

Response RequestHandler::HandleSessionInfo(const Request& request) {
  if (request.args.size() != 1) {
    return ErrorResponse(
        util::Status::InvalidArgument("usage: session-info <session>"));
  }
  auto session = manager_->Lookup(request.args[0]);
  if (!session.ok()) return ErrorResponse(session.status());
  // Mirrors the load-state response shape: the batch count tells a resuming
  // client how many payloads to skip.
  return OkResponse("session " + (*session)->id() + " batches " +
                    std::to_string((*session)->batches_ingested()));
}

Response RequestHandler::HandleSubscribeChangefeed(const Request& request) {
  if (request.args.size() < 2 || request.args.size() > 3) {
    return ErrorResponse(util::Status::InvalidArgument(
        "usage: subscribe-changefeed <session> <after-version> [timeout-ms]"));
  }
  auto session = manager_->Lookup(request.args[0]);
  if (!session.ok()) return ErrorResponse(session.status());
  auto after = util::ParseInt64InRange(
      request.args[1], 0, std::numeric_limits<int64_t>::max(),
      "after-version");
  if (!after.ok()) return ErrorResponse(after.status());
  int64_t timeout_ms = 10000;
  if (request.args.size() == 3) {
    auto parsed = util::ParseInt64InRange(request.args[2], 0, 3600000,
                                          "timeout-ms");
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    timeout_ms = *parsed;
  }
  auto records = (*session)->WaitForDiffs(static_cast<uint64_t>(*after),
                                          static_cast<uint64_t>(timeout_ms));
  if (!records.ok()) return ErrorResponse(records.status());
  return BodyResponse("changefeed " + request.args[0], *std::move(records));
}

Response RequestHandler::HandleClose(const Request& request) {
  if (request.args.size() != 1) {
    return ErrorResponse(
        util::Status::InvalidArgument("usage: close <session>"));
  }
  util::Status status = manager_->Close(request.args[0]);
  if (!status.ok()) return ErrorResponse(status);
  return OkResponse("closed " + request.args[0]);
}

}  // namespace pghive::service
