#ifndef PGHIVE_SERVICE_SESSION_H_
#define PGHIVE_SERVICE_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/pghive.h"
#include "core/schema.h"
#include "service/assembler.h"
#include "service/job_queue.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pghive::service {

/// An immutable, versioned view of a session's discovered schema, published
/// after each committed job. Every rendering is materialized eagerly inside
/// the session's serialized job lane — rendering lazily on the reader's
/// thread would race with the vocabulary, which later ingest batches still
/// mutate. Readers therefore never see a half-merged batch and never touch
/// live pipeline state.
struct SchemaSnapshot {
  uint64_t version = 0;   ///< Monotonic per session; bumps per committed job.
  size_t batches = 0;     ///< Batches folded in so far.
  bool is_final = false;  ///< True once Finish() ran (post-processing done).
  std::string pgs_strict;  ///< PG-Schema, STRICT mode.
  std::string pgs_loose;   ///< PG-Schema, LOOSE mode.
  std::string xsd;         ///< XML Schema rendering.
  std::string describe;    ///< Human-readable summary.
  std::string binary;      ///< core::SerializeSchemaBinary bytes.
};

/// Outcome of validating a PG-Schema text against a session's graph.
struct ValidationResult {
  bool conforms = false;
  std::string report;
};

/// Daemon-owned durability for one session: where to checkpoint its "PGHD"
/// snapshot, how often, and where to spill changefeed records evicted from
/// the in-memory backlog. Default-constructed == fully in-memory (the
/// pre-durability behavior). Paths are owned by the session: a fresh session
/// deletes any stale files at them, a restored one reconciles the feed
/// segment against the snapshot's version counter.
struct SessionDurability {
  std::string state_path;  ///< "PGHD" snapshot target; empty = no scheduled
                           ///< checkpoints.
  std::string feed_path;   ///< Changefeed segment file (concatenated "PGHF"
                           ///< records); empty = in-memory backlog only.
  /// Checkpoint after every N committed batches (and always on Finish);
  /// 0 = only on WriteCheckpoint() / Finish.
  uint64_t checkpoint_every = 0;
  /// Diff records retained in memory; subscribers further behind read the
  /// segment file (or get OutOfRange when there is none).
  size_t feed_backlog = 256;
};

/// One tenant of pghived: a streamed graph, its PgHive pipeline, and the
/// snapshots published so far. All pipeline mutation happens in jobs on the
/// session's JobQueue lane (keyed by session id), which serializes them in
/// submission order — the same order a one-shot run would process the same
/// batches, so the final schema is byte-identical to `pghive discover` on
/// the assembled graph (pinned by tests/threading/service_determinism_test).
///
/// Thread safety: SubmitIngest / Snapshot / FinalSnapshot / Validate /
/// status may be called from any connection thread. Graph, hive, and
/// assembler are only touched inside lane jobs (or after draining the lane).
class Session {
 public:
  /// Parses `option_flags` with the shared core parser (the same knobs and
  /// validation as the CLI) and builds an empty session. Discovery compute
  /// runs on `pool` (shared across sessions; null means inline); jobs are
  /// serialized through `queue`. Both must outlive the session.
  static util::StatusOr<std::shared_ptr<Session>> Create(
      std::string id, const std::map<std::string, std::string>& option_flags,
      util::ThreadPool* pool, JobQueue* queue,
      SessionDurability durability = {});

  /// Rebuilds a session from SaveState bytes (the pghived load-state verb):
  /// restores the hive snapshot into a fresh hive (vocabulary first, so the
  /// replayed graph text below resolves every label/key to its original id),
  /// replays the graph text, and restores the assembler's fill bitmaps and
  /// the session counters. Streaming the remaining batches afterwards
  /// produces a schema byte-identical to the uninterrupted session's.
  static util::StatusOr<std::shared_ptr<Session>> CreateFromState(
      std::string id, const std::string& bytes, util::ThreadPool* pool,
      JobQueue* queue, SessionDurability durability = {});

  /// Drains this session's lane so no job outlives the object.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& id() const { return id_; }
  const core::PgHiveOptions& options() const { return options_; }

  /// Batches accepted so far (submitted or restored); the count a resuming
  /// client uses to skip payloads the session already holds.
  uint64_t batches_ingested() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return batches_submitted_;
  }

  /// Enqueues one ingest payload; returns its 1-based batch sequence number
  /// immediately (the batch is committed asynchronously; errors latch into
  /// status()). Fails once a final snapshot was requested.
  util::StatusOr<uint64_t> SubmitIngest(std::string payload);

  /// The latest published snapshot; null before the first batch commits.
  std::shared_ptr<const SchemaSnapshot> Snapshot() const;

  /// Enqueues Finish() (first call only), waits for this session's lane to
  /// drain, and returns the final snapshot. The stream must have
  /// materialized every declared element.
  util::StatusOr<std::shared_ptr<const SchemaSnapshot>> FinalSnapshot();

  /// Validates a PG-Schema text against the session's graph as a lane job
  /// (so it sees a settled graph and blocks neither readers nor other
  /// sessions). Parses against a *copy* of the vocabulary: validation must
  /// not intern new labels into a still-discovering session.
  util::StatusOr<ValidationResult> Validate(const std::string& pgs_text,
                                            bool strict);

  /// Serializes the session — graph text, assembler progress, the full
  /// PgHive state, and the session counters — as a lane job, so the bytes
  /// always describe a batch boundary ("PGHD" magic + u32 version +
  /// CRC-framed util/binio sections). Restore with CreateFromState.
  util::StatusOr<std::string> SaveState();

  /// Checkpoints the session to its durability state_path now, as a lane job
  /// (so the bytes always describe a batch boundary), waiting for the write.
  /// The write is atomic (tmp + rename). No-op Ok without a state_path. The
  /// SIGTERM drain calls this for every live session.
  util::Status WriteCheckpoint();

  /// Long-polls the session's schema changefeed: returns every buffered
  /// diff record with version_to > after_version, concatenated in version
  /// order (parse with core::ParseSchemaDiffStream), waiting up to
  /// `timeout_ms` for the first new record. An empty string means the
  /// timeout elapsed with no new version. Records are buffered per session
  /// (bounded backlog); versions older than the in-memory window are served
  /// from the durability feed segment file when one is configured, and
  /// OutOfRange otherwise — refetch the full schema, then resubscribe.
  util::StatusOr<std::string> WaitForDiffs(uint64_t after_version,
                                           uint64_t timeout_ms);

  /// First error any job hit; Ok while healthy. A failed session rejects
  /// further ingest.
  util::Status status() const;

  /// Blocks until every enqueued job for this session finished.
  void Drain();

 private:
  Session(std::string id, core::PgHiveOptions options, util::ThreadPool* pool,
          JobQueue* queue, SessionDurability durability);

  void IngestJob(const std::string& payload);
  void FinishJob();
  /// Materializes every schema rendering from live state. Lane jobs only.
  std::shared_ptr<SchemaSnapshot> RenderSnapshot(bool is_final) const;
  /// Renders and swaps in a new snapshot, appending its changefeed record
  /// (spilled to the feed segment file *before* the version becomes visible,
  /// so the file always covers every published version). Lane jobs only.
  void Publish(bool is_final);
  /// Serializes the full session snapshot bytes. Lane jobs only.
  util::StatusOr<std::string> BuildStateBytes();
  /// Atomic (tmp + rename) checkpoint to durability_.state_path; Ok when no
  /// path is configured. Lane jobs only.
  util::Status CheckpointInLane();
  /// Appends one serialized diff record to the feed segment file and
  /// flushes; a write failure poisons the session (durability was promised).
  /// Lane jobs only.
  void AppendFeedRecord(const std::string& record);
  /// Reads versions in (after_version, until_version) from the feed segment
  /// file, verifying the range is covered contiguously; OutOfRange when it
  /// is not (or no file is configured). Called under mutex_ — safe because
  /// every version below until_version was flushed before it became visible.
  util::StatusOr<std::string> ReadFeedFromDisk(uint64_t after_version,
                                               uint64_t until_version) const;

  const std::string id_;
  const core::PgHiveOptions options_;
  const SessionDurability durability_;
  JobQueue* queue_;

  // Owned pipeline state; lane jobs only.
  std::unique_ptr<pg::PropertyGraph> graph_;
  std::unique_ptr<core::PgHive> hive_;
  std::unique_ptr<GraphAssembler> assembler_;
  /// The schema as of the last published version; lane jobs only. Publish
  /// diffs the fresh schema against this to produce the changefeed record.
  core::SchemaGraph prev_schema_;
  /// Appender for durability_.feed_path (lazily opened); lane jobs only.
  std::ofstream feed_out_;

  mutable std::mutex mutex_;
  std::condition_variable feed_cv_;
  /// Serialized core::SchemaDiff records of the most recent publishes, in
  /// version order (version_to == versions at push time). Bounded backlog;
  /// subscribers that fall behind get OutOfRange.
  std::deque<std::string> feed_records_;
  uint64_t first_feed_version_ = 1;  ///< version_to of feed_records_[0].
  std::shared_ptr<const SchemaSnapshot> snapshot_;
  util::Status status_;
  uint64_t batches_submitted_ = 0;
  uint64_t versions_published_ = 0;
  bool finish_submitted_ = false;
};

}  // namespace pghive::service

#endif  // PGHIVE_SERVICE_SESSION_H_
