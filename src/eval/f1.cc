#include "eval/f1.h"

#include <algorithm>
#include <unordered_map>

#include "util/status.h"

namespace pghive::eval {

F1Result MajorityF1(const std::vector<uint32_t>& assignment,
                    const std::vector<uint32_t>& ground_truth) {
  PGHIVE_CHECK(assignment.size() == ground_truth.size());
  F1Result result;
  const size_t n = assignment.size();
  if (n == 0) return result;

  // cluster -> (type -> count).
  std::unordered_map<uint32_t, std::unordered_map<uint32_t, size_t>>
      cluster_type_counts;
  std::unordered_map<uint32_t, size_t> type_totals;
  for (size_t i = 0; i < n; ++i) {
    ++type_totals[ground_truth[i]];
    if (assignment[i] == UINT32_MAX) continue;
    ++cluster_type_counts[assignment[i]][ground_truth[i]];
  }
  result.num_clusters = cluster_type_counts.size();
  result.num_types = type_totals.size();

  // Majority accuracy: elements matching their cluster's majority type.
  size_t correct = 0;
  for (const auto& [cluster, counts] : cluster_type_counts) {
    size_t majority = 0;
    for (const auto& [type, count] : counts) {
      majority = std::max(majority, count);
    }
    correct += majority;
  }
  result.purity = static_cast<double>(correct) / static_cast<double>(n);
  result.f1 = result.purity;

  // Diagnostic coverage: per true type, the largest single-cluster chunk.
  std::unordered_map<uint32_t, std::unordered_map<uint32_t, size_t>>
      type_cluster_counts;
  for (size_t i = 0; i < n; ++i) {
    if (assignment[i] == UINT32_MAX) continue;
    ++type_cluster_counts[ground_truth[i]][assignment[i]];
  }
  size_t covered = 0;
  for (const auto& [type, counts] : type_cluster_counts) {
    size_t best = 0;
    for (const auto& [cluster, count] : counts) best = std::max(best, count);
    covered += best;
  }
  result.coverage = static_cast<double>(covered) / static_cast<double>(n);
  return result;
}

}  // namespace pghive::eval
