#include "eval/ranks.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace pghive::eval {

std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores) {
  const size_t k = scores.size();
  if (k == 0) return {};
  const size_t n = scores[0].size();
  for (const auto& row : scores) PGHIVE_CHECK(row.size() == n);

  std::vector<double> rank_sums(k, 0.0);
  std::vector<size_t> order(k);
  for (size_t c = 0; c < n; ++c) {
    // Sort methods by descending score for this case.
    for (size_t m = 0; m < k; ++m) order[m] = m;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[a][c] > scores[b][c];
    });
    // Assign ranks with tie averaging.
    size_t i = 0;
    while (i < k) {
      size_t j = i;
      while (j + 1 < k && scores[order[j + 1]][c] == scores[order[i]][c]) ++j;
      double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
      for (size_t t = i; t <= j; ++t) rank_sums[order[t]] += avg_rank;
      i = j + 1;
    }
  }
  for (auto& r : rank_sums) r /= static_cast<double>(n);
  return rank_sums;
}

double NemenyiCriticalDifference(size_t k, size_t n) {
  // q_{0.05} values (infinite df studentized range / sqrt(2)) for
  // k = 2..10 methods (Demsar 2006).
  static const double kQ[] = {0.0,   0.0,   1.960, 2.343, 2.569, 2.728,
                              2.850, 2.949, 3.031, 3.102, 3.164};
  PGHIVE_CHECK(k >= 2 && k <= 10 && n >= 1);
  double q = kQ[k];
  return q * std::sqrt(static_cast<double>(k * (k + 1)) /
                       (6.0 * static_cast<double>(n)));
}

}  // namespace pghive::eval
