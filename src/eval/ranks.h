#ifndef PGHIVE_EVAL_RANKS_H_
#define PGHIVE_EVAL_RANKS_H_

#include <cstddef>
#include <vector>

namespace pghive::eval {

/// Average-rank analysis with the Nemenyi post-hoc test (Fig. 3).
///
/// `scores[m][c]` is method m's score on case c (higher is better; missing
/// results should be encoded as -1 and rank last). Average ranks assign
/// rank 1 to the best method per case, with ties sharing the mean rank.
std::vector<double> AverageRanks(const std::vector<std::vector<double>>& scores);

/// The Nemenyi critical difference at alpha = 0.05 for k methods over n
/// cases: CD = q_{0.05,k} * sqrt(k (k+1) / (6 n)). Two methods differ
/// significantly when their average ranks differ by more than CD.
double NemenyiCriticalDifference(size_t k, size_t n);

}  // namespace pghive::eval

#endif  // PGHIVE_EVAL_RANKS_H_
