#include "eval/harness.h"

#include <algorithm>
#include <cstdlib>

#include "baselines/gmm_schema.h"
#include "baselines/schemi.h"
#include "pg/batch.h"
#include "util/timer.h"

namespace pghive::eval {

const char* MethodName(Method m) {
  switch (m) {
    case Method::kPgHiveElsh:
      return "PG-HIVE-ELSH";
    case Method::kPgHiveMinHash:
      return "PG-HIVE-MinHash";
    case Method::kGmmSchema:
      return "GMM";
    case Method::kSchemI:
      return "SchemI";
  }
  return "?";
}

double EnvScale() {
  const char* env = std::getenv("PGHIVE_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  if (v <= 0) return 1.0;
  return std::clamp(v, 0.05, 100.0);
}

namespace {

RunResult RunPgHive(pg::PropertyGraph* graph,
                    const datasets::Dataset& dataset,
                    const RunConfig& config) {
  RunResult result;
  core::PgHiveOptions options;
  options.method = config.method == Method::kPgHiveElsh
                       ? core::ClusterMethod::kElsh
                       : core::ClusterMethod::kMinHash;
  options.adaptive = config.adaptive;
  options.bucket_length = config.bucket_length;
  options.num_tables = config.num_tables;
  options.alpha_scale = config.alpha_scale;
  options.seed = config.seed;

  core::PgHive pipeline(graph, options);
  util::Timer timer;
  if (config.num_batches <= 1) {
    util::Status status = pipeline.ProcessBatch(pg::FullBatch(*graph));
    if (!status.ok()) {
      result.error = status.ToString();
      return result;
    }
    result.batch_ms.push_back(pipeline.last_stats().discovery_ms());
  } else {
    auto batches =
        pg::SplitIntoBatches(*graph, config.num_batches, config.seed ^ 0xBA);
    for (const auto& batch : batches) {
      util::Status status = pipeline.ProcessBatch(batch);
      if (!status.ok()) {
        result.error = status.ToString();
        return result;
      }
      result.batch_ms.push_back(pipeline.last_stats().discovery_ms());
    }
  }
  result.discovery_ms = timer.ElapsedMillis();
  util::Status status = pipeline.Finish();
  if (!status.ok()) {
    result.error = status.ToString();
    return result;
  }
  result.total_ms = timer.ElapsedMillis();

  result.node_f1 =
      MajorityF1(pipeline.NodeAssignment(), dataset.truth.node_type);
  result.edge_f1 =
      MajorityF1(pipeline.EdgeAssignment(), dataset.truth.edge_type);
  result.has_edge_result = true;
  result.num_node_clusters = pipeline.schema().num_node_types();
  result.num_edge_clusters = pipeline.schema().num_edge_types();
  result.ok = true;
  return result;
}

RunResult RunGmm(pg::PropertyGraph* graph, const datasets::Dataset& dataset,
                 const RunConfig& config) {
  RunResult result;
  baselines::GmmSchemaOptions options;
  options.seed = config.seed;
  baselines::GmmSchema gmm(options);
  util::Timer timer;
  auto run = gmm.Discover(*graph);
  result.discovery_ms = timer.ElapsedMillis();
  result.total_ms = result.discovery_ms;
  if (!run.ok()) {
    result.error = run.status().ToString();
    return result;
  }
  result.node_f1 =
      MajorityF1(run.value().node_assignment, dataset.truth.node_type);
  result.num_node_clusters = run.value().num_clusters;
  result.has_edge_result = false;  // GMMSchema discovers node types only.
  result.ok = true;
  return result;
}

RunResult RunSchemi(pg::PropertyGraph* graph,
                    const datasets::Dataset& dataset,
                    const RunConfig& /*config*/) {
  RunResult result;
  baselines::SchemiOptions options;
  baselines::SchemI schemi(options);
  util::Timer timer;
  auto run = schemi.Discover(*graph);
  result.discovery_ms = timer.ElapsedMillis();
  result.total_ms = result.discovery_ms;
  if (!run.ok()) {
    result.error = run.status().ToString();
    return result;
  }
  result.node_f1 =
      MajorityF1(run.value().node_assignment, dataset.truth.node_type);
  if (!run.value().edge_assignment.empty()) {
    result.edge_f1 =
        MajorityF1(run.value().edge_assignment, dataset.truth.edge_type);
    result.has_edge_result = true;
  }
  result.num_node_clusters = run.value().num_node_clusters;
  result.num_edge_clusters = run.value().num_edge_clusters;
  result.ok = true;
  return result;
}

}  // namespace

RunResult RunMethod(const datasets::Dataset& dataset,
                    const RunConfig& config) {
  // Work on a noisy copy; the vocabulary is shared, which is safe because
  // noise only removes information.
  pg::PropertyGraph graph = dataset.graph;
  datasets::NoiseConfig noise;
  noise.property_removal = config.noise;
  noise.label_availability = config.label_availability;
  noise.seed = config.seed ^ 0x5EED;
  datasets::InjectNoise(&graph, noise);

  switch (config.method) {
    case Method::kPgHiveElsh:
    case Method::kPgHiveMinHash:
      return RunPgHive(&graph, dataset, config);
    case Method::kGmmSchema:
      return RunGmm(&graph, dataset, config);
    case Method::kSchemI:
      return RunSchemi(&graph, dataset, config);
  }
  RunResult result;
  result.error = "unknown method";
  return result;
}

}  // namespace pghive::eval
