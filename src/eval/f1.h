#ifndef PGHIVE_EVAL_F1_H_
#define PGHIVE_EVAL_F1_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive::eval {

/// The majority-based F1*-score of §5: each discovered cluster is labeled
/// with the majority ground-truth type among its members, and "the
/// correctness of a node/edge placement is determined based on whether its
/// actual type matches the majority label(s) of its cluster" [68]. The
/// F1* score is the fraction of correctly placed elements.
///
/// Properties (matching the paper's observations):
///   - mixing distinct types in one cluster is penalized (minority members
///     count as misplaced);
///   - fragmenting one type into several pure clusters is NOT penalized
///     (each fragment's majority is still the right type) — which is why
///     PG-HIVE's deliberately over-separating LSH pass is safe;
///   - undiscovered elements (assignment UINT32_MAX) count as misplaced.
///
/// The stricter pairing of purity and anti-fragmentation coverage is also
/// reported for diagnostics and the ablation benches.
struct F1Result {
  /// The paper's F1*: majority-assignment accuracy.
  double f1 = 0.0;
  /// Fraction of elements matching their cluster majority (== f1).
  double purity = 0.0;
  /// Anti-fragmentation coverage: per true type, the largest fraction kept
  /// in a single cluster, instance-weighted. Diagnostic only.
  double coverage = 0.0;
  size_t num_clusters = 0;
  size_t num_types = 0;
};

F1Result MajorityF1(const std::vector<uint32_t>& assignment,
                    const std::vector<uint32_t>& ground_truth);

}  // namespace pghive::eval

#endif  // PGHIVE_EVAL_F1_H_
