#ifndef PGHIVE_EVAL_HARNESS_H_
#define PGHIVE_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "core/pghive.h"
#include "datasets/generator.h"
#include "datasets/noise.h"
#include "eval/f1.h"

namespace pghive::eval {

/// The four compared methods (§5, "Baselines").
enum class Method { kPgHiveElsh, kPgHiveMinHash, kGmmSchema, kSchemI };

const char* MethodName(Method m);

/// One experimental cell: method x noise x label availability.
struct RunConfig {
  Method method = Method::kPgHiveElsh;
  double noise = 0.0;               ///< Property removal fraction (0-0.4).
  double label_availability = 1.0;  ///< 1.0, 0.5 or 0.0.
  uint64_t seed = 1;
  /// Overrides for the PG-HIVE pipeline (ignored by baselines); when
  /// adaptive is true the paper's heuristic picks (b, T).
  bool adaptive = true;
  double bucket_length = 2.0;
  size_t num_tables = 20;
  double alpha_scale = 1.0;
  /// Incremental mode: >1 splits the stream into this many random batches.
  size_t num_batches = 1;
};

/// One experimental measurement.
struct RunResult {
  bool ok = false;          ///< Baselines fail below 100% labels.
  std::string error;
  F1Result node_f1;
  F1Result edge_f1;         ///< Zeroed for GMMSchema (no edge types).
  bool has_edge_result = false;
  double discovery_ms = 0;  ///< Time until type discovery (Fig. 5).
  double total_ms = 0;
  size_t num_node_clusters = 0;
  size_t num_edge_clusters = 0;
  /// Per-batch discovery times (Fig. 7; size == num_batches).
  std::vector<double> batch_ms;
};

/// Runs one method on a noisy copy of the dataset and scores it against the
/// ground truth. The input dataset is not modified.
RunResult RunMethod(const datasets::Dataset& dataset, const RunConfig& config);

/// Reads the PGHIVE_SCALE environment variable (default 1.0, clamped to
/// [0.05, 100]); all benches multiply dataset sizes by this.
double EnvScale();

}  // namespace pghive::eval

#endif  // PGHIVE_EVAL_HARNESS_H_
