#ifndef PGHIVE_LSH_CLUSTERING_H_
#define PGHIVE_LSH_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive::util {
class ThreadPool;
}

namespace pghive::lsh {

/// How the T hash tables are combined into clusters (§4.2).
///
/// kAnd: two items cluster together iff they collide in *every* table
///       (group-by full signature). Higher T => finer clusters — matches the
///       paper's "increasing T increases selectivity" and is the default;
///       over-fragmentation is repaired by the merging step of §4.3.
/// kOr:  two items cluster together if they collide in *at least one* table
///       (union-find over per-table buckets). Higher T => higher recall.
enum class Amplification { kAnd, kOr };

/// The result of an LSH clustering pass: every input item is assigned to
/// exactly one cluster.
class ClusterSet {
 public:
  ClusterSet() = default;

  /// Builds from a dense assignment vector (item -> cluster id in
  /// [0, num_clusters)).
  explicit ClusterSet(std::vector<uint32_t> assignment);

  size_t num_items() const { return assignment_.size(); }
  size_t num_clusters() const { return members_.size(); }

  uint32_t cluster_of(size_t item) const { return assignment_[item]; }
  const std::vector<uint32_t>& assignment() const { return assignment_; }

  /// Member item indices of one cluster.
  const std::vector<uint32_t>& members(uint32_t cluster) const {
    return members_[cluster];
  }

 private:
  std::vector<uint32_t> assignment_;
  std::vector<std::vector<uint32_t>> members_;
};

/// Groups items by their full T-entry signature (AND amplification).
/// `signatures` is row-major: item i occupies [i*T, (i+1)*T).
///
/// With a pool, the combined-signature hashing and the group-by both run in
/// parallel (util::ParallelRadixGroupBy); cluster ids are byte-identical to
/// the serial first-occurrence assignment at every pool size.
ClusterSet ClusterBySignature(const std::vector<uint64_t>& signatures,
                              size_t num_items, size_t t,
                              util::ThreadPool* pool = nullptr);

/// Union-find clustering: items sharing any per-table bucket are merged
/// (OR amplification). Signature layout as above; bucket identity within
/// table k is (k, signatures[i*T+k]).
///
/// With a pool, the per-table bucket -> first-occupant maps are built
/// concurrently (tables are independent); the recorded Union edges are then
/// replayed into util::UnionFind in fixed (table, item) order, so the
/// resulting partition and its first-occurrence cluster ids match the
/// serial scan exactly.
ClusterSet ClusterByAnyCollision(const std::vector<uint64_t>& signatures,
                                 size_t num_items, size_t t,
                                 util::ThreadPool* pool = nullptr);

}  // namespace pghive::lsh

#endif  // PGHIVE_LSH_CLUSTERING_H_
