#ifndef PGHIVE_LSH_EUCLIDEAN_LSH_H_
#define PGHIVE_LSH_EUCLIDEAN_LSH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lsh/clustering.h"
#include "util/thread_pool.h"

namespace pghive::lsh {

/// Parameters of the p-stable (bucketed random projection) LSH family
/// (§4.2): bucket length b > 0 controls granularity; T hash tables trade
/// recall/selectivity against runtime.
struct EuclideanLshParams {
  double bucket_length = 1.0;  ///< b.
  size_t num_tables = 16;      ///< T.
  uint64_t seed = 42;
  Amplification amplification = Amplification::kAnd;
};

/// Euclidean LSH (Datar et al., "p-stable"): each table t hashes a vector x
/// to floor((a_t . x + u_t) / b) with a_t a standard Gaussian vector and
/// u_t uniform in [0, b). The single-table collision probability p_b(d) is a
/// decreasing function of the distance d, so nearby vectors share buckets.
class EuclideanLsh {
 public:
  EuclideanLsh(size_t dim, EuclideanLshParams params);

  /// Hashes one vector into all T tables. `out` receives T bucket ids.
  void Hash(const float* x, uint64_t* out) const;

  /// Hashes `num` row-major vectors; returns num x T signatures. With a
  /// pool, rows are hashed in parallel (each row writes its own T-slot
  /// stripe, so the result is identical at every pool size).
  std::vector<uint64_t> HashAll(const float* data, size_t num,
                                util::ThreadPool* pool = nullptr) const;
  std::vector<uint64_t> HashAll(const std::vector<float>& data, size_t num,
                                util::ThreadPool* pool = nullptr) const;

  /// Full clustering pass over row-major vectors: parallel hashing followed
  /// by the parallel grouping step (radix group-by for kAnd, concurrent
  /// per-table bucket maps + ordered union replay for kOr). Output is
  /// byte-identical at every pool size.
  ClusterSet Cluster(const float* data, size_t num,
                     util::ThreadPool* pool = nullptr) const;
  ClusterSet Cluster(const std::vector<float>& data, size_t num,
                     util::ThreadPool* pool = nullptr) const;

  size_t dim() const { return dim_; }
  const EuclideanLshParams& params() const { return params_; }

  /// Exact single-table collision probability for two points at distance d:
  ///   p_b(d) = 1 - 2*Phi(-b/d) - (2d / (sqrt(2*pi) b)) (1 - exp(-b^2/(2d^2)))
  /// (Datar et al. 2004). Used by tests to validate empirical rates.
  static double CollisionProbability(double distance, double bucket_length);

 private:
  size_t dim_;
  EuclideanLshParams params_;
  std::vector<float> projections_;  // num_tables x dim.
  std::vector<double> offsets_;     // num_tables.
};

}  // namespace pghive::lsh

#endif  // PGHIVE_LSH_EUCLIDEAN_LSH_H_
