#ifndef PGHIVE_LSH_MINHASH_H_
#define PGHIVE_LSH_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lsh/clustering.h"
#include "util/thread_pool.h"

namespace pghive::lsh {

/// MinHash LSH parameters (§4.2): T hash functions; when clustering with
/// banding, rows_per_band R groups the T functions into B = T/R bands so the
/// effective Jaccard threshold is roughly (1/B)^(1/R).
struct MinHashParams {
  size_t num_hashes = 24;   ///< T.
  size_t rows_per_band = 6; ///< R (banding only).
  uint64_t seed = 42;
  Amplification amplification = Amplification::kAnd;
};

/// A CSR view over many integer element sets: set i's elements are
/// elements[offsets[i] .. offsets[i+1]) and offsets has num_sets + 1
/// entries. The contiguous (columnar) alternative to
/// vector<vector<uint64_t>>; the view does not own the arrays.
struct SetSpans {
  const uint64_t* elements = nullptr;
  const uint32_t* offsets = nullptr;
  size_t num_sets = 0;
};

/// Min-wise independent hashing over integer element sets. The probability
/// that two sets share a signature slot equals their Jaccard similarity.
class MinHashLsh {
 public:
  explicit MinHashLsh(MinHashParams params);

  /// Writes the T-slot signature of `elements` (arbitrary uint64 ids).
  /// Empty sets receive a sentinel signature unique to empty sets.
  void Signature(const uint64_t* elements, size_t count, uint64_t* out) const;
  void Signature(const std::vector<uint64_t>& elements, uint64_t* out) const;

  /// Signatures of many sets, row-major num x T. With a pool, the T-hash
  /// permutations of each set are computed in parallel across sets (every
  /// set writes its own signature stripe; identical at every pool size).
  /// The SetSpans overload walks one flat element array and yields the same
  /// signatures as the nested-vector form over equal sets.
  std::vector<uint64_t> SignatureAll(
      const std::vector<std::vector<uint64_t>>& sets,
      util::ThreadPool* pool = nullptr) const;
  std::vector<uint64_t> SignatureAll(const SetSpans& sets,
                                     util::ThreadPool* pool = nullptr) const;

  /// Clusters sets. kAnd groups identical full signatures; kOr applies
  /// banding (union-find over band collisions) which approximates a Jaccard
  /// threshold of (1/B)^(1/R). Both hashing and grouping run on the pool
  /// (radix group-by for kAnd, concurrent per-band bucket maps + ordered
  /// union replay for kOr); output is byte-identical at every pool size.
  ClusterSet Cluster(const std::vector<std::vector<uint64_t>>& sets,
                     util::ThreadPool* pool = nullptr) const;
  ClusterSet Cluster(const SetSpans& sets,
                     util::ThreadPool* pool = nullptr) const;

  /// Monte-Carlo-free estimate of Jaccard similarity from two signatures:
  /// the fraction of agreeing slots.
  static double EstimateJaccard(const uint64_t* sig_a, const uint64_t* sig_b,
                                size_t t);

  const MinHashParams& params() const { return params_; }

  /// The banding threshold (1/B)^(1/R) for these parameters.
  double BandingThreshold() const;

  /// Grouping step shared by both Cluster overloads, over precomputed
  /// num x T signatures (row-major). Public so callers that compute
  /// signatures piecewise — e.g. sharded discovery hashing each shard's
  /// sets on its own pool, then grouping the gathered matrix globally —
  /// can reuse the exact grouping the fused Cluster path applies.
  ClusterSet ClusterFromSignatures(const std::vector<uint64_t>& sigs,
                                   size_t num, util::ThreadPool* pool) const;

 private:
  MinHashParams params_;
  std::vector<uint64_t> hash_seeds_;  // One per hash function.
};

/// Exact Jaccard similarity of two sorted id vectors; returns 1 when both
/// are empty (two property-less patterns are structurally identical).
double ExactJaccard(const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b);

}  // namespace pghive::lsh

#endif  // PGHIVE_LSH_MINHASH_H_
