#include "lsh/minhash.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "util/rng.h"
#include "util/status.h"
#include "util/union_find.h"

namespace pghive::lsh {

MinHashLsh::MinHashLsh(MinHashParams params) : params_(params) {
  PGHIVE_CHECK(params_.num_hashes > 0);
  if (params_.rows_per_band == 0 ||
      params_.rows_per_band > params_.num_hashes) {
    params_.rows_per_band = params_.num_hashes;
  }
  util::Rng rng(params_.seed);
  hash_seeds_.resize(params_.num_hashes);
  for (auto& s : hash_seeds_) s = rng.NextU64();
}

void MinHashLsh::Signature(const uint64_t* elements, size_t count,
                           uint64_t* out) const {
  const size_t t = params_.num_hashes;
  if (count == 0) {
    // Unique sentinel so empty sets only collide with empty sets.
    for (size_t k = 0; k < t; ++k) out[k] = UINT64_MAX;
    return;
  }
  for (size_t k = 0; k < t; ++k) {
    uint64_t best = UINT64_MAX;
    for (size_t e = 0; e < count; ++e) {
      uint64_t h = util::Mix64(elements[e] ^ hash_seeds_[k]);
      if (h < best) best = h;
    }
    out[k] = best;
  }
}

void MinHashLsh::Signature(const std::vector<uint64_t>& elements,
                           uint64_t* out) const {
  Signature(elements.data(), elements.size(), out);
}

std::vector<uint64_t> MinHashLsh::SignatureAll(
    const std::vector<std::vector<uint64_t>>& sets,
    util::ThreadPool* pool) const {
  const size_t t = params_.num_hashes;
  std::vector<uint64_t> sigs(sets.size() * t);
  const size_t grain = std::max<size_t>(16, 4096 / std::max<size_t>(1, t));
  util::ParallelFor(pool, 0, sets.size(), grain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      Signature(sets[i], &sigs[i * t]);
    }
  });
  return sigs;
}

std::vector<uint64_t> MinHashLsh::SignatureAll(const SetSpans& sets,
                                               util::ThreadPool* pool) const {
  const size_t t = params_.num_hashes;
  std::vector<uint64_t> sigs(sets.num_sets * t);
  const size_t grain = std::max<size_t>(16, 4096 / std::max<size_t>(1, t));
  util::ParallelFor(pool, 0, sets.num_sets, grain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      Signature(sets.elements + sets.offsets[i],
                sets.offsets[i + 1] - sets.offsets[i], &sigs[i * t]);
    }
  });
  return sigs;
}

ClusterSet MinHashLsh::Cluster(const std::vector<std::vector<uint64_t>>& sets,
                               util::ThreadPool* pool) const {
  return ClusterFromSignatures(SignatureAll(sets, pool), sets.size(), pool);
}

ClusterSet MinHashLsh::Cluster(const SetSpans& sets,
                               util::ThreadPool* pool) const {
  return ClusterFromSignatures(SignatureAll(sets, pool), sets.num_sets, pool);
}

ClusterSet MinHashLsh::ClusterFromSignatures(const std::vector<uint64_t>& sigs,
                                             size_t num,
                                             util::ThreadPool* pool) const {
  const size_t t = params_.num_hashes;
  if (params_.amplification == Amplification::kAnd) {
    return ClusterBySignature(sigs, num, t, pool);
  }
  const size_t r = params_.rows_per_band;
  const size_t bands = t / r;
  if (pool == nullptr || pool->num_threads() <= 1) {
    // Serial banding: keys on the fly, union in place — no extra buffers.
    util::UnionFind uf(num);
    std::unordered_map<uint64_t, uint32_t> bucket_first;
    for (size_t b = 0; b < bands; ++b) {
      bucket_first.clear();
      for (size_t i = 0; i < num; ++i) {
        uint64_t key = util::Mix64(b + 0x1234);
        for (size_t k = b * r; k < (b + 1) * r; ++k) {
          key = util::HashCombine(key, sigs[i * t + k]);
        }
        auto [it, inserted] =
            bucket_first.try_emplace(key, static_cast<uint32_t>(i));
        if (!inserted) uf.Union(it->second, static_cast<uint32_t>(i));
      }
    }
    return ClusterSet(uf.ComponentIds());
  }
  // Parallel banding: union items whose signatures agree on any whole band.
  // Band keys are computed in parallel across items (num x B, each item
  // writes its own stripe), then each band builds its bucket ->
  // first-occupant map concurrently — bands are independent — recording the
  // (first, i) edges a serial scan would Union.
  std::vector<uint64_t> band_keys(num * bands);
  const size_t grain = std::max<size_t>(1024, 65536 / std::max<size_t>(1, t));
  util::ParallelFor(pool, 0, num, grain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      for (size_t b = 0; b < bands; ++b) {
        uint64_t key = util::Mix64(b + 0x1234);
        for (size_t k = b * r; k < (b + 1) * r; ++k) {
          key = util::HashCombine(key, sigs[i * t + k]);
        }
        band_keys[i * bands + b] = key;
      }
    }
  });
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> edges(bands);
  util::ParallelFor(pool, 0, bands, 1, [&](size_t blo, size_t bhi) {
    std::unordered_map<uint64_t, uint32_t> bucket_first;
    for (size_t b = blo; b < bhi; ++b) {
      bucket_first.clear();
      bucket_first.reserve(num);
      for (size_t i = 0; i < num; ++i) {
        auto [it, inserted] = bucket_first.try_emplace(
            band_keys[i * bands + b], static_cast<uint32_t>(i));
        if (!inserted) {
          edges[b].emplace_back(it->second, static_cast<uint32_t>(i));
        }
      }
    }
  });
  // Replay in fixed (band, item) order — the exact serial Union sequence.
  util::UnionFind uf(num);
  for (size_t b = 0; b < bands; ++b) {
    for (const auto& [first, item] : edges[b]) uf.Union(first, item);
  }
  return ClusterSet(uf.ComponentIds());
}

double MinHashLsh::EstimateJaccard(const uint64_t* sig_a,
                                   const uint64_t* sig_b, size_t t) {
  if (t == 0) return 0.0;
  size_t agree = 0;
  for (size_t k = 0; k < t; ++k) {
    if (sig_a[k] == sig_b[k]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(t);
}

double MinHashLsh::BandingThreshold() const {
  const double bands =
      static_cast<double>(params_.num_hashes / params_.rows_per_band);
  if (bands <= 0) return 1.0;
  return std::pow(1.0 / bands, 1.0 / static_cast<double>(params_.rows_per_band));
}

double ExactJaccard(const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace pghive::lsh
