#include "lsh/clustering.h"

#include <unordered_map>

#include "util/rng.h"
#include "util/status.h"
#include "util/union_find.h"

namespace pghive::lsh {

ClusterSet::ClusterSet(std::vector<uint32_t> assignment)
    : assignment_(std::move(assignment)) {
  uint32_t max_id = 0;
  for (uint32_t c : assignment_) max_id = std::max(max_id, c);
  members_.resize(assignment_.empty() ? 0 : max_id + 1);
  for (uint32_t i = 0; i < assignment_.size(); ++i) {
    members_[assignment_[i]].push_back(i);
  }
}

ClusterSet ClusterBySignature(const std::vector<uint64_t>& signatures,
                              size_t num_items, size_t t) {
  PGHIVE_CHECK(signatures.size() == num_items * t);
  std::unordered_map<uint64_t, uint32_t> sig_to_cluster;
  sig_to_cluster.reserve(num_items);
  std::vector<uint32_t> assignment(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    uint64_t h = 0x6a09e667f3bcc909ULL;
    for (size_t k = 0; k < t; ++k) {
      h = util::HashCombine(h, signatures[i * t + k]);
    }
    auto [it, inserted] =
        sig_to_cluster.try_emplace(h, static_cast<uint32_t>(sig_to_cluster.size()));
    assignment[i] = it->second;
  }
  return ClusterSet(std::move(assignment));
}

ClusterSet ClusterByAnyCollision(const std::vector<uint64_t>& signatures,
                                 size_t num_items, size_t t) {
  PGHIVE_CHECK(signatures.size() == num_items * t);
  util::UnionFind uf(num_items);
  // For each table, link all items in the same bucket to the bucket's first
  // occupant.
  std::unordered_map<uint64_t, uint32_t> bucket_first;
  for (size_t k = 0; k < t; ++k) {
    bucket_first.clear();
    for (size_t i = 0; i < num_items; ++i) {
      uint64_t key = util::HashCombine(k + 1, signatures[i * t + k]);
      auto [it, inserted] =
          bucket_first.try_emplace(key, static_cast<uint32_t>(i));
      if (!inserted) uf.Union(it->second, static_cast<uint32_t>(i));
    }
  }
  return ClusterSet(uf.ComponentIds());
}

}  // namespace pghive::lsh
