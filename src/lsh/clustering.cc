#include "lsh/clustering.h"

#include <unordered_map>
#include <utility>

#include "util/parallel_group_by.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/union_find.h"

namespace pghive::lsh {

ClusterSet::ClusterSet(std::vector<uint32_t> assignment)
    : assignment_(std::move(assignment)) {
  uint32_t max_id = 0;
  for (uint32_t c : assignment_) max_id = std::max(max_id, c);
  members_.resize(assignment_.empty() ? 0 : max_id + 1);
  for (uint32_t i = 0; i < assignment_.size(); ++i) {
    members_[assignment_[i]].push_back(i);
  }
}

ClusterSet ClusterBySignature(const std::vector<uint64_t>& signatures,
                              size_t num_items, size_t t,
                              util::ThreadPool* pool) {
  PGHIVE_CHECK(signatures.size() == num_items * t);
  std::vector<uint64_t> keys(num_items);
  const size_t grain = std::max<size_t>(1024, 65536 / std::max<size_t>(1, t));
  util::ParallelFor(pool, 0, num_items, grain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      uint64_t h = 0x6a09e667f3bcc909ULL;
      for (size_t k = 0; k < t; ++k) {
        h = util::HashCombine(h, signatures[i * t + k]);
      }
      keys[i] = h;
    }
  });
  return ClusterSet(util::ParallelRadixGroupBy(keys, pool));
}

ClusterSet ClusterByAnyCollision(const std::vector<uint64_t>& signatures,
                                 size_t num_items, size_t t,
                                 util::ThreadPool* pool) {
  PGHIVE_CHECK(signatures.size() == num_items * t);
  if (pool == nullptr || pool->num_threads() <= 1) {
    // Serial: union in place with one reused map — no edge buffering.
    util::UnionFind uf(num_items);
    std::unordered_map<uint64_t, uint32_t> bucket_first;
    for (size_t k = 0; k < t; ++k) {
      bucket_first.clear();
      for (size_t i = 0; i < num_items; ++i) {
        uint64_t key = util::HashCombine(k + 1, signatures[i * t + k]);
        auto [it, inserted] =
            bucket_first.try_emplace(key, static_cast<uint32_t>(i));
        if (!inserted) uf.Union(it->second, static_cast<uint32_t>(i));
      }
    }
    return ClusterSet(uf.ComponentIds());
  }
  // Tables are independent: build each table's bucket -> first-occupant map
  // concurrently, recording the (first, i) edges a serial scan would Union.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> edges(t);
  pool->ParallelFor(0, t, 1, [&](size_t klo, size_t khi) {
    std::unordered_map<uint64_t, uint32_t> bucket_first;
    for (size_t k = klo; k < khi; ++k) {
      bucket_first.clear();
      bucket_first.reserve(num_items);
      for (size_t i = 0; i < num_items; ++i) {
        uint64_t key = util::HashCombine(k + 1, signatures[i * t + k]);
        auto [it, inserted] =
            bucket_first.try_emplace(key, static_cast<uint32_t>(i));
        if (!inserted) {
          edges[k].emplace_back(it->second, static_cast<uint32_t>(i));
        }
      }
    }
  });
  // Replay in fixed (table, item) order — the exact serial Union sequence.
  util::UnionFind uf(num_items);
  for (size_t k = 0; k < t; ++k) {
    for (const auto& [first, item] : edges[k]) uf.Union(first, item);
  }
  return ClusterSet(uf.ComponentIds());
}

}  // namespace pghive::lsh
