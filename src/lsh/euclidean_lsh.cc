#include "lsh/euclidean_lsh.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/simd.h"
#include "util/status.h"

namespace pghive::lsh {

EuclideanLsh::EuclideanLsh(size_t dim, EuclideanLshParams params)
    : dim_(dim), params_(params) {
  PGHIVE_CHECK(params_.bucket_length > 0);
  PGHIVE_CHECK(params_.num_tables > 0);
  util::Rng rng(params_.seed);
  projections_.resize(params_.num_tables * dim_);
  offsets_.resize(params_.num_tables);
  for (size_t t = 0; t < params_.num_tables; ++t) {
    for (size_t d = 0; d < dim_; ++d) {
      projections_[t * dim_ + d] = static_cast<float>(rng.NextGaussian());
    }
    offsets_[t] = rng.NextDouble() * params_.bucket_length;
  }
}

void EuclideanLsh::Hash(const float* x, uint64_t* out) const {
  for (size_t t = 0; t < params_.num_tables; ++t) {
    const float* a = &projections_[t * dim_];
    // Fixed-tree kernel: bit-identical between the AVX2 and scalar builds.
    const double dot = util::DotF32(a, x, dim_);
    double bucket = std::floor((dot + offsets_[t]) / params_.bucket_length);
    out[t] = static_cast<uint64_t>(static_cast<int64_t>(bucket));
  }
}

std::vector<uint64_t> EuclideanLsh::HashAll(const float* data, size_t num,
                                            util::ThreadPool* pool) const {
  std::vector<uint64_t> sigs(num * params_.num_tables);
  // Grain sized so one chunk is ~100k multiply-adds regardless of T*dim.
  const size_t grain =
      std::max<size_t>(16, 100000 / std::max<size_t>(1, params_.num_tables * dim_));
  util::ParallelFor(pool, 0, num, grain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      Hash(&data[i * dim_], &sigs[i * params_.num_tables]);
    }
  });
  return sigs;
}

std::vector<uint64_t> EuclideanLsh::HashAll(const std::vector<float>& data,
                                            size_t num,
                                            util::ThreadPool* pool) const {
  PGHIVE_CHECK(data.size() == num * dim_);
  return HashAll(data.data(), num, pool);
}

ClusterSet EuclideanLsh::Cluster(const float* data, size_t num,
                                 util::ThreadPool* pool) const {
  auto sigs = HashAll(data, num, pool);
  if (params_.amplification == Amplification::kAnd) {
    return ClusterBySignature(sigs, num, params_.num_tables, pool);
  }
  return ClusterByAnyCollision(sigs, num, params_.num_tables, pool);
}

ClusterSet EuclideanLsh::Cluster(const std::vector<float>& data, size_t num,
                                 util::ThreadPool* pool) const {
  PGHIVE_CHECK(data.size() == num * dim_);
  return Cluster(data.data(), num, pool);
}

double EuclideanLsh::CollisionProbability(double distance,
                                          double bucket_length) {
  if (distance <= 0) return 1.0;
  double r = bucket_length / distance;
  auto phi = [](double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); };
  return 1.0 - 2.0 * phi(-r) -
         (2.0 / (std::sqrt(2.0 * M_PI) * r)) * (1.0 - std::exp(-r * r / 2.0));
}

}  // namespace pghive::lsh
