#ifndef PGHIVE_EMBED_CORPUS_H_
#define PGHIVE_EMBED_CORPUS_H_

#include <vector>

#include "pg/batch.h"
#include "pg/column_store.h"
#include "pg/graph.h"

namespace pghive::embed {

/// A training corpus for the label Word2Vec model: each "sentence" is a
/// short sequence of label-set tokens. The paper trains Word2Vec "on the set
/// of node and edge labels observed in the dataset" (§4.1); we realize this
/// as co-occurrence sentences extracted from the graph structure:
///
///   for every edge e = (s -> t):  [token(s), token(e), token(t)]
///   for every isolated labeled node: [token(n)]
///
/// so that labels that participate in the same relationships end up close
/// in embedding space, while unrelated labels stay apart.
struct LabelCorpus {
  /// Sentences of label-set tokens (kNoToken entries are skipped).
  std::vector<std::vector<pg::LabelSetToken>> sentences;
  /// Number of distinct tokens referenced (== vocab.num_tokens()).
  size_t vocab_size = 0;
};

/// Builds the corpus from a whole graph.
LabelCorpus BuildLabelCorpus(pg::PropertyGraph& graph);

/// Builds the corpus from a single batch (incremental mode trains/updates
/// per batch on the data seen so far).
LabelCorpus BuildLabelCorpus(pg::PropertyGraph& graph,
                             const pg::GraphBatch& batch);

/// Columnar form: reads the already-interned token-id and endpoint-id
/// columns instead of walking rows, so no vocabulary mutation happens here.
/// Produces exactly the sentences of the row overload for the same batch
/// (the column builder interns per edge in the same (src, edge, dst) order
/// this builder emits).
LabelCorpus BuildLabelCorpus(const pg::PropertyGraph& graph,
                             const pg::ColumnStore& edge_cols,
                             const pg::ColumnStore& node_cols);

}  // namespace pghive::embed

#endif  // PGHIVE_EMBED_CORPUS_H_
