#ifndef PGHIVE_EMBED_HASH_EMBEDDER_H_
#define PGHIVE_EMBED_HASH_EMBEDDER_H_

#include <string>

#include "embed/embedder.h"

namespace pghive::embed {

/// Deterministic, training-free embedder: each token name hashes to a seeded
/// pseudo-random unit vector. Identical label sets always get identical
/// vectors and distinct sets get (near-)orthogonal vectors — the minimal
/// property PG-HIVE needs from its label embedding ("prevents semantically
/// different nodes from being merged due to their same structure", §4.1).
///
/// Used as the fast default in tests and as the fallback when the graph has
/// too few labels to train Word2Vec.
class HashEmbedder : public LabelEmbedder {
 public:
  HashEmbedder(const pg::Vocabulary* vocab, size_t dim, uint64_t seed);

  size_t dim() const override { return dim_; }
  void Embed(pg::LabelSetToken token, float* out) const override;

 private:
  const pg::Vocabulary* vocab_;
  size_t dim_;
  uint64_t seed_;
};

}  // namespace pghive::embed

#endif  // PGHIVE_EMBED_HASH_EMBEDDER_H_
