#include "embed/hash_embedder.h"

#include <cmath>

#include "util/rng.h"

namespace pghive::embed {

float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b) {
  if (a.size() != b.size()) return 0.0f;
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0 || nb <= 0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

HashEmbedder::HashEmbedder(const pg::Vocabulary* vocab, size_t dim,
                           uint64_t seed)
    : vocab_(vocab), dim_(dim), seed_(seed) {}

void HashEmbedder::Embed(pg::LabelSetToken token, float* out) const {
  if (token == pg::kNoToken) {
    for (size_t i = 0; i < dim_; ++i) out[i] = 0.0f;
    return;
  }
  // Hash the token *name* (not the id) so embeddings are stable across
  // vocabularies that interned tokens in different orders.
  const std::string& name = vocab_->TokenName(token);
  uint64_t h = seed_;
  for (char c : name) {
    h = util::HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  util::Rng rng(h);
  double norm2 = 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    out[i] = static_cast<float>(rng.NextGaussian());
    norm2 += static_cast<double>(out[i]) * out[i];
  }
  // Normalize to a unit vector so the embedding block has a consistent
  // scale relative to the binary property block.
  double inv = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 0.0;
  for (size_t i = 0; i < dim_; ++i) {
    out[i] = static_cast<float>(out[i] * inv);
  }
}

}  // namespace pghive::embed
