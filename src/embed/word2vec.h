#ifndef PGHIVE_EMBED_WORD2VEC_H_
#define PGHIVE_EMBED_WORD2VEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "embed/corpus.h"
#include "embed/embedder.h"
#include "util/status.h"

namespace pghive::util {
class ThreadPool;
}  // namespace pghive::util

namespace pghive::embed {

/// Training options for the skip-gram negative-sampling model.
struct Word2VecOptions {
  size_t dim = 8;           ///< Embedding dimension d (paper uses small d).
  size_t window = 2;        ///< Context window in tokens.
  size_t negatives = 4;     ///< Negative samples per positive pair.
  size_t epochs = 3;        ///< Passes over the corpus.
  float learning_rate = 0.05f;
  /// Weight of a deterministic per-token component blended into the trained
  /// vector. High-dimensional Word2Vec keeps distinct words distinguishable
  /// even when their contexts coincide; at our small `dim`, SGNS would
  /// collapse same-context tokens onto one point, so a token-identity
  /// component restores that property (0 disables).
  float identity_weight = 0.5f;
  uint64_t seed = 0x9e3779b9ULL;
  /// Caps training pairs per epoch to bound cost on large graphs; the label
  /// corpus is highly redundant so subsampling loses nothing. The cap is
  /// exact: pair enumeration stops at this many (center, context) pairs.
  size_t max_pairs_per_epoch = 200000;
  /// Pairs per minibatch. The minibatch is the unit of deterministic
  /// parallelism: every pair in a batch reads the weights as of the start of
  /// the batch's wave, and the per-batch negative-sample RNG stream is
  /// seeded only by (epoch, batch index), so batch contents never depend on
  /// the thread count. 0 is treated as 1.
  size_t batch_size = 256;
};

/// A miniature Word2Vec (skip-gram with negative sampling) over label-set
/// tokens. Reproduces the embedding substrate of §4.1: identical label sets
/// share a vector; co-occurring labels (connected by edges) get similar
/// vectors; unrelated labels diverge. Embeddings are L2-normalized on read
/// so the embedding block of the feature vector has unit scale.
class Word2Vec : public LabelEmbedder {
 public:
  Word2Vec(const pg::Vocabulary* vocab, Word2VecOptions options);

  /// Trains (or continues training) on the corpus. Tokens added to the
  /// vocabulary since the last call get freshly initialized rows, which is
  /// what incremental batch processing relies on.
  ///
  /// Minibatch SGD over waves of fixed-size batches: each batch's gradient
  /// is computed against the weights as of the start of its wave and the
  /// accumulated updates are applied in batch order, so the trained
  /// embeddings are byte-identical for every pool size. A null (or
  /// 1-thread) pool runs the same schedule inline — the serial path.
  ///
  /// Sequencing contract (pipelined ingest): Train mutates the weights that
  /// Embed reads, and successive calls chain incrementally, so callers must
  /// serialize Train calls in batch order and must not call Embed for an
  /// earlier batch once the next batch's Train has started.
  /// core::BatchPipeline honors this by keeping the whole preprocess stage
  /// (Train + vectorization) a serial chain on one thread; only the later
  /// cluster/extract stages — which read prebuilt feature matrices, never
  /// the model — overlap the next batch's training.
  void Train(const LabelCorpus& corpus, util::ThreadPool* pool = nullptr);

  size_t dim() const override { return options_.dim; }
  void Embed(pg::LabelSetToken token, float* out) const override;

  /// Cosine similarity between the embeddings of two tokens.
  float Similarity(pg::LabelSetToken a, pg::LabelSetToken b) const;

  /// Number of token rows currently allocated.
  size_t num_rows() const { return input_.size() / options_.dim; }

  /// Appends the trained model state — dim plus the input and output weight
  /// matrices as bit-exact float payloads — to `out` (util/binio framing).
  /// The embedder section of a PgHive state snapshot: restoring these rows
  /// and continuing training reproduces an uninterrupted run exactly,
  /// because Train has no other cross-call state.
  void AppendStateTo(std::string* out) const;

  /// Restores weights written by AppendStateTo. Rejects a dim mismatch with
  /// FailedPrecondition (the snapshot belongs to a differently-configured
  /// embedder) and corrupt payloads — truncation, matrix size mismatch, a
  /// row count that is not a whole number of dim-sized rows — with
  /// ParseError, leaving the model untouched either way.
  util::Status RestoreState(std::string_view bytes);

 private:
  void EnsureCapacity(size_t vocab_size);

  const pg::Vocabulary* vocab_;
  Word2VecOptions options_;
  std::vector<float> input_;   // num_tokens x dim (the embeddings).
  std::vector<float> output_;  // num_tokens x dim (context weights).
};

}  // namespace pghive::embed

#endif  // PGHIVE_EMBED_WORD2VEC_H_
