#ifndef PGHIVE_EMBED_EMBEDDER_H_
#define PGHIVE_EMBED_EMBEDDER_H_

#include <cstdint>
#include <vector>

#include "pg/vocabulary.h"

namespace pghive::embed {

/// Produces the d-dimensional label embeddings of §4.1. Tokens are the
/// label-set tokens of pg::Vocabulary (one token per distinct sorted label
/// combination). A missing label embeds as the zero vector.
class LabelEmbedder {
 public:
  virtual ~LabelEmbedder() = default;

  /// Embedding dimension d.
  virtual size_t dim() const = 0;

  /// Writes the embedding of `token` into out[0..dim). `token == kNoToken`
  /// (unlabeled element) writes zeros, per the paper.
  virtual void Embed(pg::LabelSetToken token, float* out) const = 0;

  /// Convenience: returns the embedding as a vector.
  std::vector<float> EmbedVec(pg::LabelSetToken token) const {
    std::vector<float> v(dim(), 0.0f);
    Embed(token, v.data());
    return v;
  }
};

/// Cosine similarity between two equal-length vectors (0 if either is zero).
float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b);

}  // namespace pghive::embed

#endif  // PGHIVE_EMBED_EMBEDDER_H_
