#include "embed/corpus.h"

namespace pghive::embed {

namespace {

LabelCorpus BuildFromIds(pg::PropertyGraph& graph,
                         const std::vector<pg::NodeId>& node_ids,
                         const std::vector<pg::EdgeId>& edge_ids) {
  LabelCorpus corpus;
  pg::Vocabulary& vocab = graph.vocab();
  std::vector<bool> node_in_edge(graph.num_nodes(), false);

  for (pg::EdgeId eid : edge_ids) {
    const pg::Edge& e = graph.edge(eid);
    pg::LabelSetToken src = vocab.TokenForLabelSet(graph.node(e.src).labels);
    pg::LabelSetToken et = vocab.TokenForLabelSet(e.labels);
    pg::LabelSetToken dst = vocab.TokenForLabelSet(graph.node(e.dst).labels);
    std::vector<pg::LabelSetToken> sentence;
    if (src != pg::kNoToken) sentence.push_back(src);
    if (et != pg::kNoToken) sentence.push_back(et);
    if (dst != pg::kNoToken) sentence.push_back(dst);
    if (sentence.size() >= 2) corpus.sentences.push_back(std::move(sentence));
    node_in_edge[e.src] = true;
    node_in_edge[e.dst] = true;
  }

  for (pg::NodeId nid : node_ids) {
    if (node_in_edge[nid]) continue;
    pg::LabelSetToken t = vocab.TokenForLabelSet(graph.node(nid).labels);
    if (t != pg::kNoToken) corpus.sentences.push_back({t});
  }

  corpus.vocab_size = vocab.num_tokens();
  return corpus;
}

}  // namespace

LabelCorpus BuildLabelCorpus(pg::PropertyGraph& graph) {
  pg::GraphBatch batch = pg::FullBatch(graph);
  return BuildFromIds(graph, batch.node_ids, batch.edge_ids);
}

LabelCorpus BuildLabelCorpus(pg::PropertyGraph& graph,
                             const pg::GraphBatch& batch) {
  return BuildFromIds(graph, batch.node_ids, batch.edge_ids);
}

LabelCorpus BuildLabelCorpus(const pg::PropertyGraph& graph,
                             const pg::ColumnStore& edge_cols,
                             const pg::ColumnStore& node_cols) {
  LabelCorpus corpus;
  std::vector<bool> node_in_edge(graph.num_nodes(), false);

  const size_t num_edges = edge_cols.num_rows();
  for (size_t i = 0; i < num_edges; ++i) {
    const pg::LabelSetToken src = edge_cols.src_tokens()[i];
    const pg::LabelSetToken et = edge_cols.tokens()[i];
    const pg::LabelSetToken dst = edge_cols.dst_tokens()[i];
    std::vector<pg::LabelSetToken> sentence;
    if (src != pg::kNoToken) sentence.push_back(src);
    if (et != pg::kNoToken) sentence.push_back(et);
    if (dst != pg::kNoToken) sentence.push_back(dst);
    if (sentence.size() >= 2) corpus.sentences.push_back(std::move(sentence));
    node_in_edge[edge_cols.src_ids()[i]] = true;
    node_in_edge[edge_cols.dst_ids()[i]] = true;
  }

  const size_t num_nodes = node_cols.num_rows();
  for (size_t i = 0; i < num_nodes; ++i) {
    if (node_in_edge[node_cols.ids()[i]]) continue;
    const pg::LabelSetToken t = node_cols.tokens()[i];
    if (t != pg::kNoToken) corpus.sentences.push_back({t});
  }

  corpus.vocab_size = graph.vocab().num_tokens();
  return corpus;
}

}  // namespace pghive::embed
