#include "embed/corpus.h"

namespace pghive::embed {

namespace {

LabelCorpus BuildFromIds(pg::PropertyGraph& graph,
                         const std::vector<pg::NodeId>& node_ids,
                         const std::vector<pg::EdgeId>& edge_ids) {
  LabelCorpus corpus;
  pg::Vocabulary& vocab = graph.vocab();
  std::vector<bool> node_in_edge(graph.num_nodes(), false);

  for (pg::EdgeId eid : edge_ids) {
    const pg::Edge& e = graph.edge(eid);
    pg::LabelSetToken src = vocab.TokenForLabelSet(graph.node(e.src).labels);
    pg::LabelSetToken et = vocab.TokenForLabelSet(e.labels);
    pg::LabelSetToken dst = vocab.TokenForLabelSet(graph.node(e.dst).labels);
    std::vector<pg::LabelSetToken> sentence;
    if (src != pg::kNoToken) sentence.push_back(src);
    if (et != pg::kNoToken) sentence.push_back(et);
    if (dst != pg::kNoToken) sentence.push_back(dst);
    if (sentence.size() >= 2) corpus.sentences.push_back(std::move(sentence));
    node_in_edge[e.src] = true;
    node_in_edge[e.dst] = true;
  }

  for (pg::NodeId nid : node_ids) {
    if (node_in_edge[nid]) continue;
    pg::LabelSetToken t = vocab.TokenForLabelSet(graph.node(nid).labels);
    if (t != pg::kNoToken) corpus.sentences.push_back({t});
  }

  corpus.vocab_size = vocab.num_tokens();
  return corpus;
}

}  // namespace

LabelCorpus BuildLabelCorpus(pg::PropertyGraph& graph) {
  pg::GraphBatch batch = pg::FullBatch(graph);
  return BuildFromIds(graph, batch.node_ids, batch.edge_ids);
}

LabelCorpus BuildLabelCorpus(pg::PropertyGraph& graph,
                             const pg::GraphBatch& batch) {
  return BuildFromIds(graph, batch.node_ids, batch.edge_ids);
}

}  // namespace pghive::embed
