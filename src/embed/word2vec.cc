#include "embed/word2vec.h"

#include <cmath>

#include "util/rng.h"
#include "util/status.h"

namespace pghive::embed {

namespace {

float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

Word2Vec::Word2Vec(const pg::Vocabulary* vocab, Word2VecOptions options)
    : vocab_(vocab), options_(options) {
  PGHIVE_CHECK(options_.dim > 0);
}

void Word2Vec::EnsureCapacity(size_t vocab_size) {
  size_t want = vocab_size * options_.dim;
  if (input_.size() >= want) return;
  size_t old_rows = input_.size() / options_.dim;
  input_.resize(want);
  output_.resize(want, 0.0f);
  // New rows: small random init derived from the token name so the starting
  // point is deterministic and stable across runs.
  for (size_t row = old_rows; row < vocab_size; ++row) {
    const std::string& name = vocab_->TokenName(static_cast<uint32_t>(row));
    uint64_t h = options_.seed;
    for (char c : name) {
      h = util::HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    }
    util::Rng rng(h);
    for (size_t d = 0; d < options_.dim; ++d) {
      input_[row * options_.dim + d] =
          static_cast<float>((rng.NextDouble() - 0.5) / options_.dim);
    }
  }
}

void Word2Vec::Train(const LabelCorpus& corpus) {
  EnsureCapacity(corpus.vocab_size);
  if (corpus.sentences.empty() || corpus.vocab_size == 0) return;

  const size_t dim = options_.dim;
  util::Rng rng(options_.seed ^ 0x5bd1e995ULL);

  // Unigram table for negative sampling (uniform over tokens is fine for
  // label vocabularies, which are tiny compared to text vocabularies).
  const size_t vocab_size = corpus.vocab_size;

  std::vector<float> grad(dim);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    size_t pairs = 0;
    for (const auto& sentence : corpus.sentences) {
      if (pairs >= options_.max_pairs_per_epoch) break;
      for (size_t i = 0; i < sentence.size(); ++i) {
        pg::LabelSetToken center = sentence[i];
        if (center == pg::kNoToken) continue;
        size_t lo = i >= options_.window ? i - options_.window : 0;
        size_t hi = std::min(sentence.size(), i + options_.window + 1);
        for (size_t j = lo; j < hi; ++j) {
          if (j == i) continue;
          pg::LabelSetToken context = sentence[j];
          if (context == pg::kNoToken) continue;
          ++pairs;
          float* v_in = &input_[center * dim];
          std::fill(grad.begin(), grad.end(), 0.0f);
          // One positive plus `negatives` negative updates.
          for (size_t n = 0; n <= options_.negatives; ++n) {
            uint32_t target;
            float label;
            if (n == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = static_cast<uint32_t>(rng.NextBounded(vocab_size));
              if (target == context) continue;
              label = 0.0f;
            }
            float* v_out = &output_[target * dim];
            float dot = 0.0f;
            for (size_t d = 0; d < dim; ++d) dot += v_in[d] * v_out[d];
            float g = (label - Sigmoid(dot)) * options_.learning_rate;
            for (size_t d = 0; d < dim; ++d) {
              grad[d] += g * v_out[d];
              v_out[d] += g * v_in[d];
            }
          }
          for (size_t d = 0; d < dim; ++d) v_in[d] += grad[d];
        }
      }
    }
  }
}

void Word2Vec::Embed(pg::LabelSetToken token, float* out) const {
  const size_t dim = options_.dim;
  if (token == pg::kNoToken ||
      static_cast<size_t>(token) * dim >= input_.size()) {
    for (size_t d = 0; d < dim; ++d) out[d] = 0.0f;
    return;
  }
  const float* row = &input_[token * dim];
  double norm2 = 0.0;
  for (size_t d = 0; d < dim; ++d) norm2 += static_cast<double>(row[d]) * row[d];
  double inv = norm2 > 1e-12 ? 1.0 / std::sqrt(norm2) : 0.0;
  for (size_t d = 0; d < dim; ++d) {
    out[d] = static_cast<float>(row[d] * inv);
  }
  if (options_.identity_weight > 0.0f) {
    // Deterministic unit vector derived from the token name.
    const std::string& name = vocab_->TokenName(token);
    uint64_t h = options_.seed ^ 0x1DE47171;
    for (char c : name) {
      h = util::HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    }
    util::Rng rng(h);
    std::vector<float> id(dim);
    double id_norm2 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      id[d] = static_cast<float>(rng.NextGaussian());
      id_norm2 += static_cast<double>(id[d]) * id[d];
    }
    double id_inv = id_norm2 > 1e-12 ? 1.0 / std::sqrt(id_norm2) : 0.0;
    double out_norm2 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      out[d] += static_cast<float>(options_.identity_weight * id[d] * id_inv);
      out_norm2 += static_cast<double>(out[d]) * out[d];
    }
    double out_inv = out_norm2 > 1e-12 ? 1.0 / std::sqrt(out_norm2) : 0.0;
    for (size_t d = 0; d < dim; ++d) {
      out[d] = static_cast<float>(out[d] * out_inv);
    }
  }
}

float Word2Vec::Similarity(pg::LabelSetToken a, pg::LabelSetToken b) const {
  std::vector<float> va(options_.dim), vb(options_.dim);
  Embed(a, va.data());
  Embed(b, vb.data());
  return CosineSimilarity(va, vb);
}

}  // namespace pghive::embed
