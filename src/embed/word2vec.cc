#include "embed/word2vec.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/binio.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pghive::embed {

namespace {

float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

/// One (center, context) skip-gram pair. Enumeration order is fixed by the
/// corpus, so a pair's global index is a stable identity the batching can
/// key on at every thread count.
struct TrainPair {
  uint32_t center;
  uint32_t context;
};

/// Walks the corpus in sentence order and collects every in-window pair,
/// stopping exactly at max_pairs_per_epoch. Every epoch trains on this same
/// list (only the negative-sample streams differ by epoch).
std::vector<TrainPair> EnumeratePairs(const LabelCorpus& corpus,
                                      const Word2VecOptions& options) {
  std::vector<TrainPair> pairs;
  for (const auto& sentence : corpus.sentences) {
    for (size_t i = 0; i < sentence.size(); ++i) {
      pg::LabelSetToken center = sentence[i];
      if (center == pg::kNoToken) continue;
      size_t lo = i >= options.window ? i - options.window : 0;
      size_t hi = std::min(sentence.size(), i + options.window + 1);
      for (size_t j = lo; j < hi; ++j) {
        if (j == i) continue;
        pg::LabelSetToken context = sentence[j];
        if (context == pg::kNoToken) continue;
        if (pairs.size() >= options.max_pairs_per_epoch) return pairs;
        pairs.push_back({center, context});
      }
    }
  }
  return pairs;
}

/// Sparse gradient of one minibatch, computed against the wave-start weight
/// snapshot. Scratch is owned per wave slot and reused across waves.
struct BatchGrad {
  /// Each pair's center row at compute time; the apply pass needs it after
  /// earlier batches may already have moved the live row.
  std::vector<float> center_snap;   // num_pairs x dim
  std::vector<float> center_delta;  // num_pairs x dim
  /// (output row, scaled error g) per positive/negative sample, appended in
  /// pair-then-sample order; counts[p] of them belong to pair p.
  std::vector<std::pair<uint32_t, float>> outputs;
  std::vector<uint32_t> counts;
  size_t num_pairs = 0;
};

/// Batches whose gradients are computed concurrently against one snapshot
/// before any update lands. Fixed (never derived from the pool size) so the
/// gradient staleness — and therefore the trained model — is identical at
/// every thread count.
constexpr size_t kBatchesPerWave = 16;

}  // namespace

Word2Vec::Word2Vec(const pg::Vocabulary* vocab, Word2VecOptions options)
    : vocab_(vocab), options_(options) {
  PGHIVE_CHECK(options_.dim > 0);
}

void Word2Vec::EnsureCapacity(size_t vocab_size) {
  size_t want = vocab_size * options_.dim;
  if (input_.size() >= want) return;
  size_t old_rows = input_.size() / options_.dim;
  input_.resize(want);
  output_.resize(want, 0.0f);
  // New rows: small random init derived from the token name so the starting
  // point is deterministic and stable across runs.
  for (size_t row = old_rows; row < vocab_size; ++row) {
    const std::string& name = vocab_->TokenName(static_cast<uint32_t>(row));
    uint64_t h = options_.seed;
    for (char c : name) {
      h = util::HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    }
    util::Rng rng(h);
    for (size_t d = 0; d < options_.dim; ++d) {
      input_[row * options_.dim + d] =
          static_cast<float>((rng.NextDouble() - 0.5) / options_.dim);
    }
  }
}

void Word2Vec::Train(const LabelCorpus& corpus, util::ThreadPool* pool) {
  EnsureCapacity(corpus.vocab_size);
  if (corpus.sentences.empty() || corpus.vocab_size == 0) return;

  const size_t dim = options_.dim;
  // Negative sampling is uniform over tokens (a unigram table buys nothing
  // for label vocabularies, which are tiny compared to text vocabularies).
  const size_t vocab_size = corpus.vocab_size;
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  const std::vector<TrainPair> pairs = EnumeratePairs(corpus, options_);
  if (pairs.empty()) return;
  const size_t num_batches = (pairs.size() + batch_size - 1) / batch_size;

  std::vector<BatchGrad> wave(std::min(kBatchesPerWave, num_batches));
  for (BatchGrad& grad : wave) {
    grad.center_snap.resize(batch_size * dim);
    grad.center_delta.resize(batch_size * dim);
    grad.counts.resize(batch_size);
    grad.outputs.reserve(batch_size * (options_.negatives + 1));
  }

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t wave_begin = 0; wave_begin < num_batches;
         wave_begin += kBatchesPerWave) {
      const size_t wave_end =
          std::min(num_batches, wave_begin + kBatchesPerWave);
      // Compute pass: nothing writes the weights until ParallelFor returns,
      // so every batch in the wave reads the same snapshot and its gradient
      // depends only on (epoch, batch index) — never on which worker ran it
      // or how the index range was chunked.
      util::ParallelFor(
          pool, wave_begin, wave_end, 1, [&](size_t b_lo, size_t b_hi) {
            for (size_t b = b_lo; b < b_hi; ++b) {
              BatchGrad& grad = wave[b - wave_begin];
              const size_t pair_begin = b * batch_size;
              const size_t pair_end =
                  std::min(pairs.size(), pair_begin + batch_size);
              grad.num_pairs = pair_end - pair_begin;
              grad.outputs.clear();
              std::fill_n(grad.center_delta.begin(), grad.num_pairs * dim,
                          0.0f);
              util::Rng rng(util::HashCombine(
                  util::HashCombine(options_.seed ^ 0x5bd1e995ULL, epoch),
                  b));
              for (size_t p = 0; p < grad.num_pairs; ++p) {
                const TrainPair& pair = pairs[pair_begin + p];
                const float* v_in = &input_[pair.center * dim];
                float* snap = &grad.center_snap[p * dim];
                std::copy(v_in, v_in + dim, snap);
                float* delta = &grad.center_delta[p * dim];
                uint32_t count = 0;
                // One positive plus `negatives` negative samples.
                for (size_t n = 0; n <= options_.negatives; ++n) {
                  uint32_t target;
                  float label;
                  if (n == 0) {
                    target = pair.context;
                    label = 1.0f;
                  } else {
                    target =
                        static_cast<uint32_t>(rng.NextBounded(vocab_size));
                    if (target == pair.context) continue;
                    label = 0.0f;
                  }
                  const float* v_out = &output_[target * dim];
                  float dot = 0.0f;
                  for (size_t d = 0; d < dim; ++d) dot += snap[d] * v_out[d];
                  float g = (label - Sigmoid(dot)) * options_.learning_rate;
                  for (size_t d = 0; d < dim; ++d) delta[d] += g * v_out[d];
                  grad.outputs.emplace_back(target, g);
                  ++count;
                }
                grad.counts[p] = count;
              }
            }
          });
      // Apply pass: the only weight writes, serialized on the calling
      // thread in batch-then-pair-then-sample order, so the float
      // accumulation order is the same at every pool size.
      for (size_t b = wave_begin; b < wave_end; ++b) {
        const BatchGrad& grad = wave[b - wave_begin];
        size_t off = 0;
        for (size_t p = 0; p < grad.num_pairs; ++p) {
          const float* snap = &grad.center_snap[p * dim];
          for (uint32_t k = 0; k < grad.counts[p]; ++k, ++off) {
            const auto& [target, g] = grad.outputs[off];
            float* v_out = &output_[target * dim];
            for (size_t d = 0; d < dim; ++d) v_out[d] += g * snap[d];
          }
          float* v_in = &input_[pairs[b * batch_size + p].center * dim];
          const float* delta = &grad.center_delta[p * dim];
          for (size_t d = 0; d < dim; ++d) v_in[d] += delta[d];
        }
      }
    }
  }
}

void Word2Vec::Embed(pg::LabelSetToken token, float* out) const {
  const size_t dim = options_.dim;
  if (token == pg::kNoToken ||
      static_cast<size_t>(token) * dim >= input_.size()) {
    for (size_t d = 0; d < dim; ++d) out[d] = 0.0f;
    return;
  }
  const float* row = &input_[token * dim];
  double norm2 = 0.0;
  for (size_t d = 0; d < dim; ++d) norm2 += static_cast<double>(row[d]) * row[d];
  double inv = norm2 > 1e-12 ? 1.0 / std::sqrt(norm2) : 0.0;
  for (size_t d = 0; d < dim; ++d) {
    out[d] = static_cast<float>(row[d] * inv);
  }
  if (options_.identity_weight > 0.0f) {
    // Deterministic unit vector derived from the token name.
    const std::string& name = vocab_->TokenName(token);
    uint64_t h = options_.seed ^ 0x1DE47171;
    for (char c : name) {
      h = util::HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    }
    util::Rng rng(h);
    std::vector<float> id(dim);
    double id_norm2 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      id[d] = static_cast<float>(rng.NextGaussian());
      id_norm2 += static_cast<double>(id[d]) * id[d];
    }
    double id_inv = id_norm2 > 1e-12 ? 1.0 / std::sqrt(id_norm2) : 0.0;
    double out_norm2 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      out[d] += static_cast<float>(options_.identity_weight * id[d] * id_inv);
      out_norm2 += static_cast<double>(out[d]) * out[d];
    }
    double out_inv = out_norm2 > 1e-12 ? 1.0 / std::sqrt(out_norm2) : 0.0;
    for (size_t d = 0; d < dim; ++d) {
      out[d] = static_cast<float>(out[d] * out_inv);
    }
  }
}

void Word2Vec::AppendStateTo(std::string* out) const {
  util::PutU64(out, options_.dim);
  util::PutF32Vector(out, input_);
  util::PutF32Vector(out, output_);
}

util::Status Word2Vec::RestoreState(std::string_view bytes) {
  util::ByteReader in(bytes);
  uint64_t dim = in.ReadU64();
  std::vector<float> input;
  std::vector<float> output;
  in.ReadF32Vector(&input);
  in.ReadF32Vector(&output);
  if (!in.ok() || !in.AtEnd()) {
    return util::Status::ParseError("word2vec snapshot: truncated or corrupt");
  }
  if (dim != options_.dim) {
    return util::Status::FailedPrecondition(
        "word2vec snapshot: dim " + std::to_string(dim) +
        " does not match the configured dim " +
        std::to_string(options_.dim));
  }
  if (input.size() != output.size() || input.size() % options_.dim != 0) {
    return util::Status::ParseError(
        "word2vec snapshot: weight matrices are inconsistent (" +
        std::to_string(input.size()) + " vs " +
        std::to_string(output.size()) + " floats)");
  }
  input_ = std::move(input);
  output_ = std::move(output);
  return util::Status::Ok();
}

float Word2Vec::Similarity(pg::LabelSetToken a, pg::LabelSetToken b) const {
  std::vector<float> va(options_.dim), vb(options_.dim);
  Embed(a, va.data());
  Embed(b, vb.data());
  return CosineSimilarity(va, vb);
}

}  // namespace pghive::embed
