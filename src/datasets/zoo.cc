#include "datasets/zoo.h"

#include <set>

#include "util/rng.h"

namespace pghive::datasets {

namespace {

using pg::DataType;

NodeTypeSpec NodeT(std::string name, std::vector<std::string> labels,
                   std::vector<PropertySpec> props, double weight = 1.0) {
  NodeTypeSpec t;
  t.name = std::move(name);
  t.labels = std::move(labels);
  t.properties = std::move(props);
  t.weight = weight;
  return t;
}

EdgeTypeSpec EdgeT(std::string name, std::vector<std::string> labels,
                   uint32_t src, uint32_t dst, EdgeCard card, double fan,
                   std::vector<PropertySpec> props = {}) {
  EdgeTypeSpec t;
  t.name = std::move(name);
  t.labels = std::move(labels);
  t.src_type = src;
  t.dst_type = dst;
  t.cardinality = card;
  t.fan = fan;
  t.properties = std::move(props);
  return t;
}

}  // namespace

DatasetSpec PoleSpec() {
  // POLE (Person-Object-Location-Event): small, flat, fully single-labeled.
  // Table 2: 61,521 nodes / 105,840 edges, 11 node types, 17 edge types,
  // 11 node labels, 16 edge labels, 17 node patterns, 16 edge patterns.
  DatasetSpec s;
  s.name = "POLE";
  s.real = false;
  s.default_nodes = 2500;
  s.paper_nodes = 61521;
  s.paper_edges = 105840;
  s.node_types = {
      NodeT("Person", {"Person"},
            {Prop("name", DataType::kString), Prop("surname", DataType::kString),
             Prop("nhs_no", DataType::kString),
             Prop("age", DataType::kInteger, 0.8)},
            3.0),
      NodeT("Officer", {"Officer"},
            {Prop("badge_no", DataType::kString), Prop("rank", DataType::kString),
             Prop("name", DataType::kString)},
            0.6),
      NodeT("Crime", {"Crime"},
            {Prop("crime_type", DataType::kString), Prop("date", DataType::kDate),
             Prop("charge", DataType::kString),
             Prop("last_outcome", DataType::kString, 0.7)},
            2.0),
      NodeT("Location", {"Location"},
            {Prop("address", DataType::kString), Prop("postcode", DataType::kString),
             Prop("latitude", DataType::kFloat), Prop("longitude", DataType::kFloat)},
            2.0),
      NodeT("Phone", {"Phone"}, {Prop("phoneNo", DataType::kString)}, 1.0),
      NodeT("PhoneCall", {"PhoneCall"},
            {Prop("call_date", DataType::kDate),
             Prop("call_duration", DataType::kInteger),
             Prop("call_time", DataType::kString),
             Prop("call_type", DataType::kString)},
            2.0),
      NodeT("Email", {"Email"}, {Prop("email_address", DataType::kString)}, 0.6),
      NodeT("Vehicle", {"Vehicle"},
            {Prop("make", DataType::kString), Prop("model", DataType::kString),
             Prop("reg", DataType::kString), Prop("year", DataType::kInteger, 0.6)},
            0.8),
      NodeT("Area", {"Area"}, {Prop("areaCode", DataType::kString)}, 0.3),
      NodeT("PostCode", {"PostCode"}, {Prop("code", DataType::kString)}, 0.8),
      NodeT("Object", {"Object"},
            {Prop("description", DataType::kString),
             Prop("object_type", DataType::kString, 0.5)},
            0.5),
  };
  s.edge_types = {
      EdgeT("KNOWS", {"KNOWS"}, 0, 0, EdgeCard::kManyToMany, 1.2),
      EdgeT("KNOWS_LW", {"KNOWS_LW"}, 0, 0, EdgeCard::kManyToMany, 0.6),
      EdgeT("FAMILY_REL", {"FAMILY_REL"}, 0, 0, EdgeCard::kManyToMany, 0.5,
            {Prop("rel_type", DataType::kString)}),
      EdgeT("KNOWS_PHONE", {"KNOWS_PHONE"}, 0, 4, EdgeCard::kManyToOne, 0.7),
      EdgeT("PARTY_TO", {"PARTY_TO"}, 0, 2, EdgeCard::kManyToMany, 0.8),
      EdgeT("INVESTIGATED_BY", {"INVESTIGATED_BY"}, 2, 1, EdgeCard::kManyToOne,
            0.9),
      EdgeT("OCCURRED_AT", {"OCCURRED_AT"}, 2, 3, EdgeCard::kManyToOne, 1.0),
      EdgeT("CURRENT_ADDRESS", {"CURRENT_ADDRESS"}, 0, 3, EdgeCard::kManyToOne,
            0.95),
      EdgeT("HAS_PHONE", {"HAS_PHONE"}, 0, 4, EdgeCard::kOneToOne, 0.8),
      EdgeT("HAS_EMAIL", {"HAS_EMAIL"}, 0, 6, EdgeCard::kOneToOne, 0.5),
      EdgeT("CALLER", {"CALLER"}, 5, 4, EdgeCard::kManyToOne, 1.0),
      EdgeT("CALLED", {"CALLED"}, 5, 4, EdgeCard::kManyToOne, 1.0),
      EdgeT("INVOLVED_IN", {"INVOLVED_IN"}, 7, 2, EdgeCard::kManyToMany, 0.4),
      EdgeT("LOCATION_IN_AREA", {"LOCATION_IN_AREA"}, 3, 8,
            EdgeCard::kManyToOne, 0.9),
      EdgeT("HAS_POSTCODE", {"HAS_POSTCODE"}, 3, 9, EdgeCard::kManyToOne, 0.9),
      EdgeT("POSTCODE_IN_AREA", {"POSTCODE_IN_AREA"}, 9, 8,
            EdgeCard::kManyToOne, 0.9),
      // 17 edge types from 16 labels: INVOLVED_IN is reused with different
      // endpoints (object vs person involvement).
      EdgeT("INVOLVED_IN_P", {"INVOLVED_IN"}, 0, 2, EdgeCard::kManyToMany,
            0.3),
  };
  return s;
}

namespace {

// Shared skeleton for the two connectome datasets (MB6 / FIB25): few types,
// heavy multi-labeling, and many optional numeric properties creating large
// pattern counts.
DatasetSpec ConnectomeSpec(std::string name, size_t paper_nodes,
                           size_t paper_edges, double optional_presence,
                           size_t extra_optionals) {
  DatasetSpec s;
  s.name = std::move(name);
  s.real = false;
  s.default_nodes = 4000;
  s.paper_nodes = paper_nodes;
  s.paper_edges = paper_edges;

  std::vector<PropertySpec> neuron_props = {
      Prop("bodyId", DataType::kInteger),
      Prop("status", DataType::kString, 0.9),
      Prop("pre", DataType::kInteger, optional_presence),
      Prop("post", DataType::kInteger, optional_presence),
      Prop("size", DataType::kInteger, 0.7),
  };
  for (size_t i = 0; i < extra_optionals; ++i) {
    neuron_props.push_back(
        Prop("roiInfo" + std::to_string(i), DataType::kFloat, 0.45));
  }
  s.node_types = {
      // 4 types over 10 labels: label sets overlap heavily, which is what
      // breaks per-label baselines.
      NodeT("Neuron", {"Neuron", "Cell", "Traced", "Named"}, neuron_props,
            3.0),
      NodeT("Segment", {"Segment", "Cell", "Fragment"},
            {Prop("bodyId", DataType::kInteger),
             Prop("size", DataType::kInteger, 0.8),
             Prop("quality", DataType::kFloat, 0.5)},
            2.0),
      NodeT("Synapse", {"Synapse", "Element", "PreSyn"},
            {Prop("location", DataType::kString),
             Prop("confidence", DataType::kFloat),
             Prop("synType", DataType::kString, 0.6)},
            4.0),
      NodeT("Meta", {"Meta"},
            {Prop("dataset", DataType::kString),
             Prop("lastDatabaseEdit", DataType::kDateTime)},
            0.05),
  };
  s.edge_types = {
      EdgeT("ConnectsTo_NN", {"ConnectsTo"}, 0, 0, EdgeCard::kManyToMany, 2.0,
            {Prop("weight", DataType::kInteger)}),
      EdgeT("ConnectsTo_NS", {"ConnectsTo"}, 0, 1, EdgeCard::kManyToMany, 0.8,
            {Prop("weight", DataType::kInteger, 0.8)}),
      EdgeT("SynapsesTo", {"SynapsesTo"}, 2, 2, EdgeCard::kManyToMany, 1.0),
      // 5 edge types over 3 labels: "From" is reused with both endpoint
      // orientations (Table 2 reports 3 edge labels for the connectomes).
      EdgeT("From_NS", {"From"}, 0, 2, EdgeCard::kOneToMany, 0.9),
      EdgeT("From_SN", {"From"}, 2, 0, EdgeCard::kManyToOne, 0.5),
  };
  return s;
}

}  // namespace

DatasetSpec Mb6Spec() {
  // MB6 mushroom body connectome. Table 2: 486,267 / 961,571, 4 node types,
  // 5 edge types, 10/3 labels, 52/4 patterns.
  return ConnectomeSpec("MB6", 486267, 961571, 0.6, 3);
}

DatasetSpec Fib25Spec() {
  // FIB25 medulla connectome. Table 2: 802,473 / 1,625,428, same type
  // structure, 31 node patterns.
  return ConnectomeSpec("FIB25", 802473, 1625428, 0.7, 2);
}

DatasetSpec HetioSpec() {
  // HET.IO biomedical graph. Table 2: 47,031 / 2,250,197 (dense), 11 node
  // types, 24 edge types, 12 node labels (every node carries the extra
  // integration label "HetionetNode"), 24 edge labels.
  DatasetSpec s;
  s.name = "HET.IO";
  s.real = true;
  s.default_nodes = 2500;
  s.paper_nodes = 47031;
  s.paper_edges = 2250197;
  auto base = [&](std::string label) {
    return std::vector<std::string>{std::move(label), "HetionetNode"};
  };
  s.node_types = {
      NodeT("Gene", base("Gene"),
            {Prop("identifier", DataType::kInteger),
             Prop("name", DataType::kString),
             Prop("chromosome", DataType::kString, 0.9)},
            4.0),
      NodeT("Disease", base("Disease"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString)},
            0.5),
      NodeT("Compound", base("Compound"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString),
             Prop("inchikey", DataType::kString, 0.95)},
            1.0),
      NodeT("Anatomy", base("Anatomy"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString), Prop("bto_id", DataType::kString, 0.4)},
            0.4),
      NodeT("BiologicalProcess", base("BiologicalProcess"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString)},
            2.0),
      NodeT("CellularComponent", base("CellularComponent"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString)},
            0.5),
      NodeT("MolecularFunction", base("MolecularFunction"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString)},
            0.8),
      NodeT("Pathway", base("Pathway"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString)},
            0.5),
      NodeT("PharmacologicClass", base("PharmacologicClass"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString),
             Prop("class_type", DataType::kString)},
            0.2),
      NodeT("SideEffect", base("SideEffect"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString)},
            1.0),
      NodeT("Symptom", base("Symptom"),
            {Prop("identifier", DataType::kString),
             Prop("name", DataType::kString)},
            0.3),
  };
  // 24 edge types, 24 labels, dense M:N biology relations.
  struct Rel {
    const char* label;
    uint32_t src, dst;
    double fan;
  };
  const Rel rels[] = {
      {"INTERACTS_GiG", 0, 0, 1.5},    {"REGULATES_GrG", 0, 0, 1.2},
      {"COVARIES_GcG", 0, 0, 0.8},     {"ASSOCIATES_DaG", 1, 0, 6.0},
      {"UPREGULATES_DuG", 1, 0, 4.0},  {"DOWNREGULATES_DdG", 1, 0, 4.0},
      {"TREATS_CtD", 2, 1, 1.0},       {"PALLIATES_CpD", 2, 1, 0.6},
      {"BINDS_CbG", 2, 0, 2.5},        {"UPREGULATES_CuG", 2, 0, 2.0},
      {"DOWNREGULATES_CdG", 2, 0, 2.0},{"RESEMBLES_CrC", 2, 2, 1.0},
      {"EXPRESSES_AeG", 3, 0, 8.0},    {"UPREGULATES_AuG", 3, 0, 3.0},
      {"DOWNREGULATES_AdG", 3, 0, 3.0},{"LOCALIZES_DlA", 1, 3, 2.0},
      {"PARTICIPATES_GpBP", 0, 4, 2.5},{"PARTICIPATES_GpCC", 0, 5, 1.5},
      {"PARTICIPATES_GpMF", 0, 6, 1.5},{"PARTICIPATES_GpPW", 0, 7, 1.0},
      {"INCLUDES_PCiC", 8, 2, 1.5},    {"CAUSES_CcSE", 2, 9, 4.0},
      {"PRESENTS_DpS", 1, 10, 2.0},    {"RESEMBLES_DrD", 1, 1, 1.0},
  };
  for (const Rel& r : rels) {
    // Hetionet metaedges share the integration metadata properties
    // {source, unbiased}; identical key sets across semantically distinct
    // relations are exactly what defeats structure-keyed baselines.
    s.edge_types.push_back(EdgeT(
        r.label, {r.label}, r.src, r.dst, EdgeCard::kManyToMany, r.fan,
        {Prop("source", DataType::kString, 0.9),
         Prop("unbiased", DataType::kBoolean, 0.95)}));
  }
  return s;
}

DatasetSpec IcijSpec() {
  // ICIJ offshore leaks. Table 2: 2,016,523 / 3,339,267, 5 node types,
  // 14 edge types, 6/14 labels, 208 node patterns (heavy heterogeneity from
  // integrating multiple leaks), 42 edge patterns.
  DatasetSpec s;
  s.name = "ICIJ";
  s.real = true;
  s.default_nodes = 6000;
  s.paper_nodes = 2016523;
  s.paper_edges = 3339267;
  // Many low-presence properties -> hundreds of distinct patterns. A few
  // properties carry mixed value types (integrated sources disagree), which
  // feeds the Fig. 8 outliers.
  s.node_types = {
      NodeT("Entity", {"Entity", "Offshore"},
            {Prop("name", DataType::kString),
             Prop("jurisdiction", DataType::kString, 0.8),
             Prop("incorporation_date", DataType::kDate, 0.6),
             Prop("inactivation_date", DataType::kDate, 0.3),
             Prop("struck_off_date", DataType::kDate, 0.25),
             MixedProp("ibcRUC", DataType::kInteger, 0.5, 0.08,
                       DataType::kString),
             Prop("status", DataType::kString, 0.7),
             Prop("service_provider", DataType::kString, 0.4),
             Prop("original_name", DataType::kString, 0.35)},
            3.0),
      NodeT("Officer", {"Officer"},
            {Prop("name", DataType::kString),
             Prop("country", DataType::kString, 0.6),
             MixedProp("icij_id", DataType::kString, 0.8, 0.1,
                       DataType::kInteger),
             Prop("valid_until", DataType::kDate, 0.4)},
            2.5),
      NodeT("Intermediary", {"Intermediary"},
            {Prop("name", DataType::kString),
             Prop("address", DataType::kString, 0.5),
             Prop("country", DataType::kString, 0.7),
             Prop("status", DataType::kString, 0.5)},
            0.8),
      NodeT("Address", {"Address"},
            {Prop("address", DataType::kString),
             Prop("country_codes", DataType::kString, 0.85),
             MixedProp("postcode", DataType::kString, 0.4, 0.25,
                       DataType::kInteger)},
            2.0),
      NodeT("Other", {"Other"},
            {Prop("name", DataType::kString),
             Prop("note", DataType::kString, 0.3),
             Prop("closed_date", DataType::kDate, 0.2)},
            0.4),
  };
  s.edge_types = {
      EdgeT("OFFICER_OF", {"officer_of"}, 1, 0, EdgeCard::kManyToMany, 1.2,
            {Prop("link", DataType::kString, 0.7),
             Prop("start_date", DataType::kDate, 0.3)}),
      EdgeT("INTERMEDIARY_OF", {"intermediary_of"}, 2, 0,
            EdgeCard::kOneToMany, 0.8),
      EdgeT("REGISTERED_ADDRESS_E", {"registered_address"}, 0, 3,
            EdgeCard::kManyToOne, 0.8),
      EdgeT("REGISTERED_ADDRESS_O", {"registered_address"}, 1, 3,
            EdgeCard::kManyToOne, 0.5),
      EdgeT("SIMILAR", {"similar"}, 0, 0, EdgeCard::kManyToMany, 0.3),
      EdgeT("SAME_NAME_AS", {"same_name_as"}, 0, 0, EdgeCard::kManyToMany,
            0.2),
      EdgeT("SAME_ID_AS", {"same_id_as"}, 1, 1, EdgeCard::kManyToMany, 0.15),
      EdgeT("PROBABLY_SAME_OFFICER", {"probably_same_officer_as"}, 1, 1,
            EdgeCard::kManyToMany, 0.2),
      EdgeT("UNDERLYING", {"underlying"}, 2, 4, EdgeCard::kManyToMany, 0.3),
      EdgeT("CONNECTED_TO", {"connected_to"}, 4, 0, EdgeCard::kManyToMany,
            0.4),
      EdgeT("SHAREHOLDER_OF", {"shareholder_of"}, 1, 0, EdgeCard::kManyToMany,
            0.5, {Prop("shares", DataType::kString, 0.5)}),
      EdgeT("DIRECTOR_OF", {"director_of"}, 1, 0, EdgeCard::kManyToMany, 0.4),
      EdgeT("BENEFICIARY_OF", {"beneficiary_of"}, 1, 0, EdgeCard::kManyToMany,
            0.3),
      EdgeT("SECRETARY_OF", {"secretary_of"}, 1, 0, EdgeCard::kManyToMany,
            0.2),
  };
  return s;
}

DatasetSpec Cord19Spec() {
  // CORD19 COVID knowledge graph. Table 2: 5,485,296 / 5,720,776, 16 node
  // types, 16 edge types, 16/16 labels, 89 node patterns.
  DatasetSpec s;
  s.name = "CORD19";
  s.real = true;
  s.default_nodes = 6000;
  s.paper_nodes = 5485296;
  s.paper_edges = 5720776;
  struct T {
    const char* label;
    double weight;
  };
  const T types[] = {{"Paper", 3.0},       {"Author", 4.0},
                     {"Affiliation", 1.0}, {"Abstract", 2.5},
                     {"BodyText", 3.0},    {"Citation", 2.0},
                     {"Journal", 0.3},     {"Gene", 1.0},
                     {"Protein", 0.8},     {"Disease", 0.4},
                     {"Pathway", 0.3},     {"Drug", 0.5},
                     {"ClinicalTrial", 0.3}, {"Patent", 0.2},
                     {"GeneSymbol", 0.8},  {"Fragment", 1.5}};
  int i = 0;
  for (const T& t : types) {
    static const char* kDistinct[16] = {
        "doi",      "orcid",    "grid_id",  "text",  "section", "ref_id",
        "issn",     "entrez",   "uniprot",  "mesh",  "kegg",    "drugbank",
        "nct_id",   "patent_no","hgnc",     "offset"};
    std::vector<PropertySpec> props = {Prop("id", DataType::kString),
                                       Prop("name", DataType::kString, 0.9),
                                       Prop(kDistinct[i], DataType::kString,
                                            0.95)};
    // Every other type gets extra optional fields; some carry mixed-typed
    // values from the heterogeneous ingest (Fig. 8 mid-bins).
    if (i % 2 == 0) {
      props.push_back(Prop("source", DataType::kString, 0.6));
      props.push_back(MixedProp("year", DataType::kInteger, 0.7, 0.12,
                                DataType::kFloat));
    }
    if (i % 3 == 0) {
      props.push_back(Prop("created", DataType::kDateTime, 0.5));
      props.push_back(MixedProp("score", DataType::kFloat, 0.4, 0.15,
                                DataType::kInteger));
    }
    s.node_types.push_back(NodeT(t.label, {t.label}, std::move(props),
                                 t.weight));
    ++i;
  }
  struct R {
    const char* label;
    uint32_t src, dst;
    EdgeCard card;
    double fan;
  };
  const R rels[] = {
      {"WROTE", 1, 0, EdgeCard::kManyToMany, 1.5},
      {"AFFILIATED_WITH", 1, 2, EdgeCard::kManyToOne, 0.8},
      {"HAS_ABSTRACT", 0, 3, EdgeCard::kOneToOne, 0.9},
      {"HAS_BODY", 0, 4, EdgeCard::kOneToMany, 0.9},
      {"CITES", 0, 5, EdgeCard::kManyToMany, 1.2},
      {"PUBLISHED_IN", 0, 6, EdgeCard::kManyToOne, 0.9},
      {"MENTIONS_GENE", 4, 7, EdgeCard::kManyToMany, 0.5},
      {"MENTIONS_PROTEIN", 4, 8, EdgeCard::kManyToMany, 0.4},
      {"MENTIONS_DISEASE", 4, 9, EdgeCard::kManyToMany, 0.4},
      {"IN_PATHWAY", 7, 10, EdgeCard::kManyToMany, 0.5},
      {"TARGETS", 11, 8, EdgeCard::kManyToMany, 0.6},
      {"TRIAL_FOR", 12, 11, EdgeCard::kManyToOne, 0.7},
      {"PATENT_ON", 13, 11, EdgeCard::kManyToMany, 0.4},
      {"HAS_SYMBOL", 7, 14, EdgeCard::kOneToOne, 0.9},
      {"HAS_FRAGMENT", 3, 15, EdgeCard::kOneToMany, 0.6},
      {"CODES_FOR", 7, 8, EdgeCard::kManyToMany, 0.5},
  };
  int e = 0;
  for (const R& r : rels) {
    // Mined relations carry shared extraction metadata (confidence scores),
    // so many distinct relations expose identical property-key sets.
    std::vector<PropertySpec> eprops;
    if (e % 2 == 0) {
      eprops.push_back(Prop("confidence", DataType::kFloat, 0.8));
    }
    s.edge_types.push_back(
        EdgeT(r.label, {r.label}, r.src, r.dst, r.card, r.fan,
              std::move(eprops)));
    ++e;
  }
  return s;
}

DatasetSpec LdbcSpec() {
  // LDBC SNB. Table 2: 3,181,724 / 12,505,476, 7 node types, 17 edge types,
  // 8/15 labels, 9 node patterns (regular structure).
  DatasetSpec s;
  s.name = "LDBC";
  s.real = false;
  s.default_nodes = 8000;
  s.paper_nodes = 3181724;
  s.paper_edges = 12505476;
  s.node_types = {
      NodeT("Person", {"Person"},
            {Prop("firstName", DataType::kString),
             Prop("lastName", DataType::kString),
             Prop("birthday", DataType::kDate),
             Prop("gender", DataType::kString),
             Prop("creationDate", DataType::kDateTime),
             Prop("browserUsed", DataType::kString, 0.95)},
            2.0),
      // Post and Comment both carry the shared "Message" label (8 labels
      // over 7 types).
      NodeT("Post", {"Post", "Message"},
            {Prop("content", DataType::kString, 0.8),
             Prop("imageFile", DataType::kString, 0.3),
             Prop("creationDate", DataType::kDateTime),
             Prop("length", DataType::kInteger)},
            4.0),
      NodeT("Comment", {"Comment", "Message"},
            {Prop("content", DataType::kString),
             Prop("creationDate", DataType::kDateTime),
             Prop("length", DataType::kInteger)},
            5.0),
      NodeT("Forum", {"Forum"},
            {Prop("title", DataType::kString),
             Prop("creationDate", DataType::kDateTime)},
            1.0),
      NodeT("Organisation", {"Organisation"},
            {Prop("name", DataType::kString), Prop("url", DataType::kString),
             Prop("orgType", DataType::kString)},
            0.4),
      NodeT("Place", {"Place"},
            {Prop("name", DataType::kString), Prop("url", DataType::kString),
             Prop("placeType", DataType::kString)},
            0.3),
      NodeT("Tag", {"Tag"},
            {Prop("name", DataType::kString), Prop("url", DataType::kString)},
            0.6),
  };
  s.edge_types = {
      EdgeT("KNOWS", {"KNOWS"}, 0, 0, EdgeCard::kManyToMany, 2.0,
            {Prop("creationDate", DataType::kDateTime)}),
      EdgeT("HAS_CREATOR_POST", {"HAS_CREATOR"}, 1, 0, EdgeCard::kManyToOne,
            1.0),
      EdgeT("HAS_CREATOR_COMMENT", {"HAS_CREATOR"}, 2, 0,
            EdgeCard::kManyToOne, 1.0),
      EdgeT("LIKES_POST", {"LIKES"}, 0, 1, EdgeCard::kManyToMany, 2.0,
            {Prop("creationDate", DataType::kDateTime)}),
      EdgeT("REPLY_OF_POST", {"REPLY_OF"}, 2, 1, EdgeCard::kManyToOne, 0.6),
      EdgeT("REPLY_OF_COMMENT", {"REPLY_OF"}, 2, 2, EdgeCard::kManyToOne, 0.4),
      EdgeT("CONTAINER_OF", {"CONTAINER_OF"}, 3, 1, EdgeCard::kOneToMany, 0.9),
      EdgeT("HAS_MEMBER", {"HAS_MEMBER"}, 3, 0, EdgeCard::kManyToMany, 4.0,
            {Prop("joinDate", DataType::kDateTime)}),
      EdgeT("HAS_MODERATOR", {"HAS_MODERATOR"}, 3, 0, EdgeCard::kManyToOne,
            0.9),
      EdgeT("HAS_INTEREST", {"HAS_INTEREST"}, 0, 6, EdgeCard::kManyToMany,
            1.5),
      EdgeT("HAS_TAG_POST", {"HAS_TAG"}, 1, 6, EdgeCard::kManyToMany, 0.8),
      EdgeT("STUDY_AT", {"STUDY_AT"}, 0, 4, EdgeCard::kManyToOne, 0.4,
            {Prop("classYear", DataType::kInteger)}),
      EdgeT("WORK_AT", {"WORK_AT"}, 0, 4, EdgeCard::kManyToOne, 0.7,
            {Prop("workFrom", DataType::kInteger)}),
      EdgeT("IS_LOCATED_IN", {"IS_LOCATED_IN"}, 0, 5, EdgeCard::kManyToOne,
            0.95),
      EdgeT("IS_PART_OF", {"IS_PART_OF"}, 5, 5, EdgeCard::kManyToOne, 0.5),
      EdgeT("HAS_TYPE", {"HAS_TYPE"}, 6, 6, EdgeCard::kManyToOne, 0.6),
      EdgeT("ORG_LOCATED_IN", {"ORG_LOCATED_IN"}, 4, 5, EdgeCard::kManyToOne,
            0.8),
  };
  return s;
}

DatasetSpec IypSpec() {
  // IYP internet yellow pages. Table 2: 44,539,999 / 251,432,812, 86 node
  // types over only 33 labels (types are label *combinations*), 25 edge
  // types, 1210/790 patterns. Types are built programmatically: a pool of
  // 33 base labels combined into 86 distinct 1-3 label sets, with shared
  // labels across types (the integration scenario that defeats label-keyed
  // baselines).
  DatasetSpec s;
  s.name = "IYP";
  s.real = true;
  s.default_nodes = 12000;
  s.paper_nodes = 44539999;
  s.paper_edges = 251432812;

  const char* base_labels[33] = {
      "AS",        "Prefix",    "IP",        "DomainName", "HostName",
      "Country",   "IXP",       "Facility",  "Organization", "Name",
      "Registry",  "OpaqueID",  "PeeringLAN", "Tag",       "Ranking",
      "URL",       "ASN",       "BGPCollector", "AtlasProbe", "AtlasMeasurement",
      "CaidaIXID", "PeeringdbID", "Estimate", "GeoLocation", "Resolver",
      "AuthoritativeNS", "CrawledDomain", "TopDomain", "HegemonyScore",
      "Network",   "Route",     "Point",     "Measurement"};

  util::Rng rng(0xC0FFEE);
  std::set<std::vector<std::string>> seen;
  const char* prop_pool[12] = {"name",  "asn",    "prefix",   "af",
                               "country", "value", "reference", "rank",
                               "timestamp", "source", "weight", "descr"};
  for (int t = 0; t < 86; ++t) {
    // Draw a distinct label combination of size 1-3.
    std::vector<std::string> labels;
    for (int attempt = 0; attempt < 200; ++attempt) {
      size_t count = 1 + rng.NextBounded(3);
      std::set<std::string> pick;
      while (pick.size() < count) {
        pick.insert(base_labels[rng.NextBounded(33)]);
      }
      labels.assign(pick.begin(), pick.end());
      if (seen.insert(labels).second) break;
    }
    std::vector<PropertySpec> props;
    size_t num_props = 2 + rng.NextBounded(4);
    std::set<size_t> picked;
    while (picked.size() < num_props) picked.insert(rng.NextBounded(12));
    for (size_t p : picked) {
      pg::DataType dt = pg::DataType::kString;
      if (p == 1 || p == 7) dt = pg::DataType::kInteger;
      if (p == 10) dt = pg::DataType::kFloat;
      if (p == 8) dt = pg::DataType::kDateTime;
      double presence = 0.4 + 0.6 * rng.NextDouble();
      if (p == 5 && rng.NextBool(0.3)) {
        props.push_back(MixedProp(prop_pool[p], pg::DataType::kInteger,
                                  presence, 0.1, pg::DataType::kString));
      } else {
        props.push_back(Prop(prop_pool[p], dt, presence));
      }
    }
    double weight = 0.2 + 3.0 * rng.NextDouble();
    s.node_types.push_back(NodeT("iyp_t" + std::to_string(t), labels,
                                 std::move(props), weight));
  }

  const char* edge_labels[25] = {
      "ORIGINATE",   "DEPENDS_ON",  "MANAGED_BY",  "MEMBER_OF",
      "PEERS_WITH",  "LOCATED_IN",  "COUNTRY",     "RESOLVES_TO",
      "PART_OF",     "ALIAS_OF",    "CATEGORIZED", "RANK",
      "ASSIGNED",    "AVAILABLE",   "WEBSITE",     "NAME",
      "QUERIED_FROM","TARGET",      "EXTERNAL_ID", "SIBLING_OF",
      "PREFIX_OF",   "ANNOUNCED_BY","HOSTED_IN",   "SERVES",
      "REGISTERED"};
  for (int e = 0; e < 25; ++e) {
    uint32_t src = static_cast<uint32_t>(rng.NextBounded(86));
    uint32_t dst = static_cast<uint32_t>(rng.NextBounded(86));
    EdgeCard card = rng.NextBool(0.6) ? EdgeCard::kManyToMany
                                      : EdgeCard::kManyToOne;
    double fan = card == EdgeCard::kManyToMany ? 2.0 + 4.0 * rng.NextDouble()
                                               : 0.4 + 0.6 * rng.NextDouble();
    std::vector<PropertySpec> props;
    if (rng.NextBool(0.5)) {
      props.push_back(Prop("reference_time", pg::DataType::kDateTime, 0.8));
    }
    if (rng.NextBool(0.3)) {
      props.push_back(Prop("count", pg::DataType::kInteger, 0.7));
    }
    s.edge_types.push_back(EdgeT(std::string("iyp_e") + std::to_string(e),
                                 {edge_labels[e]}, src, dst, card, fan,
                                 std::move(props)));
  }
  return s;
}

std::vector<DatasetSpec> Zoo() {
  return {PoleSpec(),  Mb6Spec(),    HetioSpec(), Fib25Spec(),
          IcijSpec(),  Cord19Spec(), LdbcSpec(),  IypSpec()};
}

util::StatusOr<DatasetSpec> ZooDataset(const std::string& name) {
  for (DatasetSpec& spec : Zoo()) {
    if (spec.name == name) return spec;
  }
  return util::Status::NotFound("unknown dataset: " + name);
}

}  // namespace pghive::datasets
