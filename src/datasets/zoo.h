#ifndef PGHIVE_DATASETS_ZOO_H_
#define PGHIVE_DATASETS_ZOO_H_

#include <string>
#include <vector>

#include "datasets/spec.h"
#include "util/status.h"

namespace pghive::datasets {

/// The eight evaluation datasets of the paper (Table 2), as synthetic specs
/// reproducing each dataset's schema *shape* — type counts, label counts,
/// multi-label structure, pattern multiplicity, heterogeneity — at laptop
/// scale. Nominal paper sizes are recorded in each spec for reporting.
///
/// Order matches Table 2: POLE, MB6, HET.IO, FIB25, ICIJ, CORD19, LDBC, IYP.
std::vector<DatasetSpec> Zoo();

/// A single dataset by name ("POLE", "MB6", ...). NotFound on bad names.
util::StatusOr<DatasetSpec> ZooDataset(const std::string& name);

/// Individual specs (exposed for targeted tests and examples).
DatasetSpec PoleSpec();     ///< Crime investigation; 11 flat types.
DatasetSpec Mb6Spec();      ///< Connectome; 4 multi-label types, 10 labels.
DatasetSpec HetioSpec();    ///< Biomedical; integration label on all nodes.
DatasetSpec Fib25Spec();    ///< Connectome; like MB6, more patterns.
DatasetSpec IcijSpec();     ///< Offshore leaks; heterogeneous, 200+ patterns.
DatasetSpec Cord19Spec();   ///< COVID KG; 16 types, mixed-typed values.
DatasetSpec LdbcSpec();     ///< Social network; 7 types, regular structure.
DatasetSpec IypSpec();      ///< Internet yellow pages; 86 types, 33 labels.

}  // namespace pghive::datasets

#endif  // PGHIVE_DATASETS_ZOO_H_
