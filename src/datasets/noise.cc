#include "datasets/noise.h"

#include "util/rng.h"

namespace pghive::datasets {

void InjectNoise(pg::PropertyGraph* graph, const NoiseConfig& config) {
  util::Rng rng(config.seed);
  auto degrade_properties = [&](pg::PropertyMap* props) {
    if (config.property_removal <= 0) return;
    auto keys = props->Keys();
    for (pg::PropKeyId key : keys) {
      if (rng.NextBool(config.property_removal)) props->Erase(key);
    }
  };
  for (pg::Node& node : graph->mutable_nodes()) {
    degrade_properties(&node.properties);
    if (config.label_availability < 1.0 &&
        !rng.NextBool(config.label_availability)) {
      node.labels.clear();
    }
  }
  for (pg::Edge& edge : graph->mutable_edges()) {
    degrade_properties(&edge.properties);
    if (config.label_availability < 1.0 &&
        !rng.NextBool(config.label_availability)) {
      edge.labels.clear();
    }
  }
}

}  // namespace pghive::datasets
