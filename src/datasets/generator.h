#ifndef PGHIVE_DATASETS_GENERATOR_H_
#define PGHIVE_DATASETS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "datasets/spec.h"
#include "pg/graph.h"
#include "util/rng.h"

namespace pghive::datasets {

/// Ground-truth type assignments produced alongside a generated graph.
struct GroundTruth {
  std::vector<uint32_t> node_type;  ///< node id -> NodeTypeSpec index.
  std::vector<uint32_t> edge_type;  ///< edge id -> EdgeTypeSpec index.
};

/// A generated dataset: the property graph plus its ground truth and the
/// spec that produced it.
struct Dataset {
  DatasetSpec spec;
  pg::PropertyGraph graph;
  GroundTruth truth;
};

/// Generates a dataset from a spec. `scale` multiplies spec.default_nodes;
/// the generator is fully deterministic in `seed`.
Dataset Generate(const DatasetSpec& spec, double scale, uint64_t seed);

/// Generates one property value of the given declared type. Dates, numbers
/// and strings are drawn from realistic ranges so datatype inference has
/// real work to do. Exposed for tests.
pg::Value GenerateValue(pg::DataType type, util::Rng* rng);

}  // namespace pghive::datasets

#endif  // PGHIVE_DATASETS_GENERATOR_H_
