#include "datasets/spec.h"

#include <set>

namespace pghive::datasets {

size_t DatasetSpec::num_node_labels() const {
  std::set<std::string> labels;
  for (const auto& t : node_types) {
    labels.insert(t.labels.begin(), t.labels.end());
  }
  return labels.size();
}

size_t DatasetSpec::num_edge_labels() const {
  std::set<std::string> labels;
  for (const auto& t : edge_types) {
    labels.insert(t.labels.begin(), t.labels.end());
  }
  return labels.size();
}

PropertySpec Prop(std::string key, pg::DataType type, double presence) {
  PropertySpec p;
  p.key = std::move(key);
  p.type = type;
  p.presence = presence;
  return p;
}

PropertySpec MixedProp(std::string key, pg::DataType type, double presence,
                       double mixed_rate, pg::DataType mixed_type) {
  PropertySpec p = Prop(std::move(key), type, presence);
  p.mixed_rate = mixed_rate;
  p.mixed_type = mixed_type;
  return p;
}

}  // namespace pghive::datasets
