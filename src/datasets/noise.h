#ifndef PGHIVE_DATASETS_NOISE_H_
#define PGHIVE_DATASETS_NOISE_H_

#include <cstdint>

#include "pg/graph.h"

namespace pghive::datasets {

/// The paper's noise model (§5): randomly remove a fraction of node/edge
/// properties, and retain labels on only a fraction of elements.
struct NoiseConfig {
  /// Probability that any individual property instance is deleted (0-0.4 in
  /// the paper's grid).
  double property_removal = 0.0;
  /// Probability that an element *keeps* its labels (1.0, 0.5, 0.0 in the
  /// paper's three label-availability scenarios). Elements losing labels
  /// lose all of them.
  double label_availability = 1.0;
  uint64_t seed = 99;
};

/// Applies the noise model in place. Ground truth is unaffected — noise only
/// obscures the observable structure.
void InjectNoise(pg::PropertyGraph* graph, const NoiseConfig& config);

}  // namespace pghive::datasets

#endif  // PGHIVE_DATASETS_NOISE_H_
