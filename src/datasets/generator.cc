#include "datasets/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/status.h"

namespace pghive::datasets {

pg::Value GenerateValue(pg::DataType type, util::Rng* rng) {
  switch (type) {
    case pg::DataType::kInteger:
      return pg::Value(static_cast<int64_t>(rng->NextBounded(1000000)));
    case pg::DataType::kFloat:
      return pg::Value(rng->NextDouble() * 1000.0 + 0.5);
    case pg::DataType::kBoolean:
      return pg::Value(rng->NextBool(0.5));
    case pg::DataType::kDate: {
      // Sized for snprintf's worst case over int arguments so
      // -Wformat-truncation is provably impossible.
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                    1970 + static_cast<int>(rng->NextBounded(55)),
                    1 + static_cast<int>(rng->NextBounded(12)),
                    1 + static_cast<int>(rng->NextBounded(28)));
      return pg::Value(std::string(buf));
    }
    case pg::DataType::kDateTime: {
      char buf[80];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d",
                    1970 + static_cast<int>(rng->NextBounded(55)),
                    1 + static_cast<int>(rng->NextBounded(12)),
                    1 + static_cast<int>(rng->NextBounded(28)),
                    static_cast<int>(rng->NextBounded(24)),
                    static_cast<int>(rng->NextBounded(60)),
                    static_cast<int>(rng->NextBounded(60)));
      return pg::Value(std::string(buf));
    }
    case pg::DataType::kNull:
    case pg::DataType::kString: {
      static const char* kWords[] = {"alpha", "bravo",  "cedar", "delta",
                                     "ember", "falcon", "grove", "harbor"};
      std::string s = kWords[rng->NextBounded(8)];
      s += '-';
      s += kWords[rng->NextBounded(8)];
      s += std::to_string(rng->NextBounded(100));
      // A trailing letter guarantees the value never parses as a number.
      s += 'x';
      return pg::Value(s);
    }
  }
  return pg::Value(std::string("value"));
}

namespace {

void AttachProperties(pg::PropertyGraph* graph, bool is_node, uint64_t id,
                      const std::vector<PropertySpec>& props,
                      util::Rng* rng) {
  for (const PropertySpec& spec : props) {
    if (!rng->NextBool(spec.presence)) continue;
    pg::DataType type = spec.type;
    if (spec.mixed_rate > 0 && rng->NextBool(spec.mixed_rate)) {
      type = spec.mixed_type;
    }
    pg::Value value = GenerateValue(type, rng);
    if (is_node) {
      graph->SetNodeProperty(id, spec.key, std::move(value));
    } else {
      graph->SetEdgeProperty(id, spec.key, std::move(value));
    }
  }
}

}  // namespace

Dataset Generate(const DatasetSpec& spec, double scale, uint64_t seed) {
  PGHIVE_CHECK(!spec.node_types.empty());
  Dataset dataset;
  dataset.spec = spec;
  util::Rng rng(seed);

  size_t total_nodes = std::max<size_t>(
      spec.node_types.size(),
      static_cast<size_t>(std::llround(
          static_cast<double>(spec.default_nodes) * std::max(0.01, scale))));

  // Allocate node counts proportional to weights (every type gets >= 1).
  double weight_sum = 0;
  for (const auto& t : spec.node_types) weight_sum += std::max(1e-9, t.weight);
  std::vector<size_t> counts(spec.node_types.size());
  size_t allocated = 0;
  for (size_t t = 0; t < spec.node_types.size(); ++t) {
    counts[t] = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               total_nodes * std::max(1e-9, spec.node_types[t].weight) /
               weight_sum)));
    allocated += counts[t];
  }
  // Adjust the largest type to land close to the target.
  if (allocated > total_nodes) {
    size_t overshoot = allocated - total_nodes;
    size_t biggest = 0;
    for (size_t t = 1; t < counts.size(); ++t) {
      if (counts[t] > counts[biggest]) biggest = t;
    }
    counts[biggest] -= std::min(counts[biggest] - 1, overshoot);
  }

  // Generate nodes, grouped by type; remember per-type id ranges.
  std::vector<std::vector<pg::NodeId>> nodes_of_type(spec.node_types.size());
  for (size_t t = 0; t < spec.node_types.size(); ++t) {
    const NodeTypeSpec& nt = spec.node_types[t];
    for (size_t i = 0; i < counts[t]; ++i) {
      pg::NodeId id = dataset.graph.AddNode(nt.labels);
      AttachProperties(&dataset.graph, true, id, nt.properties, &rng);
      dataset.truth.node_type.push_back(static_cast<uint32_t>(t));
      nodes_of_type[t].push_back(id);
    }
  }

  // Generate edges per edge-type spec.
  for (size_t t = 0; t < spec.edge_types.size(); ++t) {
    const EdgeTypeSpec& et = spec.edge_types[t];
    PGHIVE_CHECK(et.src_type < spec.node_types.size());
    PGHIVE_CHECK(et.dst_type < spec.node_types.size());
    const auto& srcs = nodes_of_type[et.src_type];
    const auto& dsts = nodes_of_type[et.dst_type];
    if (srcs.empty() || dsts.empty()) continue;
    auto add_edge = [&](pg::NodeId s, pg::NodeId d) {
      pg::EdgeId id = dataset.graph.AddEdge(s, d, et.labels);
      AttachProperties(&dataset.graph, false, id, et.properties, &rng);
      dataset.truth.edge_type.push_back(static_cast<uint32_t>(t));
    };
    switch (et.cardinality) {
      case EdgeCard::kOneToOne: {
        size_t n = std::min(srcs.size(), dsts.size());
        n = static_cast<size_t>(n * std::clamp(et.fan, 0.05, 1.0));
        for (size_t i = 0; i < n; ++i) add_edge(srcs[i], dsts[i]);
        break;
      }
      case EdgeCard::kManyToOne: {
        // Every covered source points at exactly one (shared) target.
        size_t n = static_cast<size_t>(srcs.size() *
                                       std::clamp(et.fan, 0.05, 1.0));
        for (size_t i = 0; i < n; ++i) {
          add_edge(srcs[i], dsts[rng.NextBounded(dsts.size())]);
        }
        break;
      }
      case EdgeCard::kOneToMany: {
        size_t n = static_cast<size_t>(dsts.size() *
                                       std::clamp(et.fan, 0.05, 1.0));
        for (size_t i = 0; i < n; ++i) {
          add_edge(srcs[rng.NextBounded(srcs.size())], dsts[i]);
        }
        break;
      }
      case EdgeCard::kManyToMany: {
        for (pg::NodeId s : srcs) {
          int degree = rng.NextPoisson(std::max(0.0, et.fan));
          for (int e = 0; e < degree; ++e) {
            add_edge(s, dsts[rng.NextBounded(dsts.size())]);
          }
        }
        break;
      }
    }
  }

  return dataset;
}

}  // namespace pghive::datasets
