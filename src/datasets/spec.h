#ifndef PGHIVE_DATASETS_SPEC_H_
#define PGHIVE_DATASETS_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pg/value.h"

namespace pghive::datasets {

/// Edge multiplicity classes used by the generator (mirrors the cardinality
/// classes PG-HIVE infers, so ground truth is known).
enum class EdgeCard {
  kOneToOne,
  kManyToOne,   // Every source has one target; targets are shared.
  kOneToMany,   // Every target has one source; sources fan out.
  kManyToMany,  // Poisson out-degree.
};

/// One property of a generated type.
struct PropertySpec {
  std::string key;
  pg::DataType type = pg::DataType::kString;
  /// Probability the property is present on an instance (optional props
  /// create the pattern multiplicity of Table 2).
  double presence = 1.0;
  /// Fraction of values generated with `mixed_type` instead of `type`
  /// (drives the datatype sampling-error distribution of Fig. 8: a small
  /// minority of off-type values promotes the full-scan join).
  double mixed_rate = 0.0;
  pg::DataType mixed_type = pg::DataType::kString;
};

/// One ground-truth node type.
struct NodeTypeSpec {
  std::string name;
  std::vector<std::string> labels;  ///< The type's label set (Def. 3.2).
  std::vector<PropertySpec> properties;
  double weight = 1.0;  ///< Relative share of instances.
};

/// One ground-truth edge type.
struct EdgeTypeSpec {
  std::string name;
  std::vector<std::string> labels;
  uint32_t src_type = 0;  ///< Index into DatasetSpec::node_types.
  uint32_t dst_type = 0;
  std::vector<PropertySpec> properties;
  EdgeCard cardinality = EdgeCard::kManyToMany;
  /// Mean out-degree for kManyToMany; otherwise coverage fraction of the
  /// driving side.
  double fan = 1.5;
};

/// A full synthetic dataset description: the schema shape of one of the
/// paper's eight evaluation datasets (Table 2) at laptop scale.
struct DatasetSpec {
  std::string name;
  bool real = false;        ///< The paper's R/S marker.
  size_t default_nodes = 4000;
  size_t paper_nodes = 0;   ///< Nominal size from Table 2 (documentation).
  size_t paper_edges = 0;
  std::vector<NodeTypeSpec> node_types;
  std::vector<EdgeTypeSpec> edge_types;

  size_t num_node_types() const { return node_types.size(); }
  size_t num_edge_types() const { return edge_types.size(); }

  /// Distinct labels across node / edge types.
  size_t num_node_labels() const;
  size_t num_edge_labels() const;
};

/// Convenience builders used by the zoo.
PropertySpec Prop(std::string key, pg::DataType type, double presence = 1.0);
PropertySpec MixedProp(std::string key, pg::DataType type, double presence,
                       double mixed_rate, pg::DataType mixed_type);

}  // namespace pghive::datasets

#endif  // PGHIVE_DATASETS_SPEC_H_
