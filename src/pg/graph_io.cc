#include "pg/graph_io.h"

#include <fstream>
#include <sstream>

namespace pghive::pg {

// Property strings are escaped so ';' '=' '\n' and '\\' survive round trips.
std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case ';':
        out += "\\s";
        break;
      case '=':
        out += "\\e";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case '\\':
          out.push_back('\\');
          break;
        case 's':
          out.push_back(';');
          break;
        case 'e':
          out.push_back('=');
          break;
        case 'n':
          out.push_back('\n');
          break;
        default:
          out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

namespace {

std::string LabelField(const Vocabulary& vocab,
                       const std::vector<LabelId>& labels) {
  if (labels.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out.push_back('|');
    out += EscapeField(vocab.LabelName(labels[i]));
  }
  return out;
}

std::string PropsField(const Vocabulary& vocab, const PropertyMap& props) {
  std::string out;
  bool first = true;
  for (const auto& [key, value] : props.entries()) {
    if (!first) out.push_back(';');
    first = false;
    out += EscapeField(vocab.KeyName(key));
    out.push_back('=');
    out += EscapeField(value.ToString());
  }
  return out;
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      cur.push_back(s[i]);
      cur.push_back(s[i + 1]);
      ++i;
    } else if (s[i] == sep) {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(s[i]);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

// Parses a value string back into a typed Value by probing formats.
Value ParseValue(const std::string& s) {
  if (s == "null") return Value();
  if (LooksLikeInteger(s)) return Value(static_cast<int64_t>(std::stoll(s)));
  if (LooksLikeFloat(s)) return Value(std::stod(s));
  if (s == "true") return Value(true);
  if (s == "false") return Value(false);
  return Value(s);
}

std::vector<std::string> ParseLabelsField(const std::string& field) {
  std::vector<std::string> labels;
  if (field == "-") return labels;
  for (const std::string& l : SplitOn(field, '|')) {
    if (!l.empty()) labels.push_back(UnescapeField(l));
  }
  return labels;
}

void ParsePropsField(const std::string& field, ElementRecord* record) {
  if (field.empty()) return;
  for (const std::string& pair : SplitOn(field, ';')) {
    if (pair.empty()) continue;
    auto kv = SplitOn(pair, '=');
    if (kv.size() != 2) continue;
    record->properties.emplace_back(UnescapeField(kv[0]),
                                    ParseValue(UnescapeField(kv[1])));
  }
}

}  // namespace

util::StatusOr<ElementRecord> ParseElementLine(const std::string& line) {
  std::istringstream ls(line);
  std::string kind;
  ls >> kind;
  ElementRecord record;
  std::string label_field, prop_field;
  if (kind == "N") {
    if (!(ls >> record.id >> label_field)) {
      return util::Status::ParseError("bad node line: " + line);
    }
  } else if (kind == "E") {
    record.is_edge = true;
    if (!(ls >> record.id >> record.src >> record.dst >> label_field)) {
      return util::Status::ParseError("bad edge line: " + line);
    }
  } else {
    return util::Status::ParseError("unknown record '" + kind + "'");
  }
  ls >> prop_field;
  record.labels = ParseLabelsField(label_field);
  ParsePropsField(prop_field, &record);
  return record;
}

std::string FormatNodeLine(const PropertyGraph& graph, const Node& node) {
  const Vocabulary& vocab = graph.vocab();
  std::ostringstream out;
  out << "N " << node.id << ' ' << LabelField(vocab, node.labels) << ' '
      << PropsField(vocab, node.properties);
  return out.str();
}

std::string FormatEdgeLine(const PropertyGraph& graph, const Edge& edge) {
  const Vocabulary& vocab = graph.vocab();
  std::ostringstream out;
  out << "E " << edge.id << ' ' << edge.src << ' ' << edge.dst << ' '
      << LabelField(vocab, edge.labels) << ' '
      << PropsField(vocab, edge.properties);
  return out.str();
}

std::string SaveGraphText(const PropertyGraph& graph) {
  std::ostringstream out;
  for (const Node& n : graph.nodes()) {
    out << FormatNodeLine(graph, n) << '\n';
  }
  for (const Edge& e : graph.edges()) {
    out << FormatEdgeLine(graph, e) << '\n';
  }
  return out.str();
}

util::Status SaveGraphFile(const PropertyGraph& graph,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << SaveGraphText(graph);
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Status LoadGraphTextInto(const std::string& text,
                               PropertyGraph* graph) {
  if (graph->num_nodes() != 0 || graph->num_edges() != 0) {
    return util::Status::FailedPrecondition(
        "LoadGraphTextInto needs a graph without nodes or edges");
  }
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    auto parsed = ParseElementLine(line);
    if (!parsed.ok()) {
      return util::Status::ParseError(parsed.status().message() + ", line " +
                                      std::to_string(line_no));
    }
    const ElementRecord& record = *parsed;
    if (!record.is_edge) {
      NodeId nid = graph->AddNode(record.labels);
      if (nid != record.id) {
        return util::Status::ParseError("node ids must be dense, line " +
                                        std::to_string(line_no));
      }
      for (const auto& [key, value] : record.properties) {
        graph->SetNodeProperty(nid, key, value);
      }
    } else {
      if (record.src >= graph->num_nodes() ||
          record.dst >= graph->num_nodes()) {
        return util::Status::ParseError("edge endpoint out of range, line " +
                                        std::to_string(line_no));
      }
      EdgeId eid = graph->AddEdge(record.src, record.dst, record.labels);
      if (eid != record.id) {
        return util::Status::ParseError("edge ids must be dense, line " +
                                        std::to_string(line_no));
      }
      for (const auto& [key, value] : record.properties) {
        graph->SetEdgeProperty(eid, key, value);
      }
    }
  }
  return util::Status::Ok();
}

util::StatusOr<PropertyGraph> LoadGraphText(const std::string& text) {
  PropertyGraph graph;
  util::Status status = LoadGraphTextInto(text, &graph);
  if (!status.ok()) return status;
  return graph;
}

util::StatusOr<PropertyGraph> LoadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadGraphText(buf.str());
}

}  // namespace pghive::pg
