#include "pg/graph_io.h"

#include <fstream>
#include <sstream>

namespace pghive::pg {

namespace {

// Property strings are escaped so ';' '=' '\n' and '\\' survive round trips.
std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case ';':
        out += "\\s";
        break;
      case '=':
        out += "\\e";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case '\\':
          out.push_back('\\');
          break;
        case 's':
          out.push_back(';');
          break;
        case 'e':
          out.push_back('=');
          break;
        case 'n':
          out.push_back('\n');
          break;
        default:
          out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string LabelField(const Vocabulary& vocab,
                       const std::vector<LabelId>& labels) {
  if (labels.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out.push_back('|');
    out += EscapeField(vocab.LabelName(labels[i]));
  }
  return out;
}

std::string PropsField(const Vocabulary& vocab, const PropertyMap& props) {
  std::string out;
  bool first = true;
  for (const auto& [key, value] : props.entries()) {
    if (!first) out.push_back(';');
    first = false;
    out += EscapeField(vocab.KeyName(key));
    out.push_back('=');
    out += EscapeField(value.ToString());
  }
  return out;
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      cur.push_back(s[i]);
      cur.push_back(s[i + 1]);
      ++i;
    } else if (s[i] == sep) {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(s[i]);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

// Parses a value string back into a typed Value by probing formats.
Value ParseValue(const std::string& s) {
  if (s == "null") return Value();
  if (LooksLikeInteger(s)) return Value(static_cast<int64_t>(std::stoll(s)));
  if (LooksLikeFloat(s)) return Value(std::stod(s));
  if (s == "true") return Value(true);
  if (s == "false") return Value(false);
  return Value(s);
}

}  // namespace

std::string SaveGraphText(const PropertyGraph& graph) {
  std::ostringstream out;
  const Vocabulary& vocab = graph.vocab();
  for (const Node& n : graph.nodes()) {
    out << "N " << n.id << ' ' << LabelField(vocab, n.labels) << ' '
        << PropsField(vocab, n.properties) << '\n';
  }
  for (const Edge& e : graph.edges()) {
    out << "E " << e.id << ' ' << e.src << ' ' << e.dst << ' '
        << LabelField(vocab, e.labels) << ' ' << PropsField(vocab, e.properties)
        << '\n';
  }
  return out.str();
}

util::Status SaveGraphFile(const PropertyGraph& graph,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open " + path);
  out << SaveGraphText(graph);
  if (!out) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<PropertyGraph> LoadGraphText(const std::string& text) {
  PropertyGraph graph;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    auto parse_props = [&](bool is_node, uint64_t id,
                           const std::string& field) {
      if (field.empty()) return;
      for (const std::string& pair : SplitOn(field, ';')) {
        if (pair.empty()) continue;
        auto kv = SplitOn(pair, '=');
        if (kv.size() != 2) continue;
        std::string key = UnescapeField(kv[0]);
        Value value = ParseValue(UnescapeField(kv[1]));
        if (is_node) {
          graph.SetNodeProperty(id, key, std::move(value));
        } else {
          graph.SetEdgeProperty(id, key, std::move(value));
        }
      }
    };
    auto parse_labels = [&](const std::string& field) {
      std::vector<std::string> labels;
      if (field == "-") return labels;
      for (const std::string& l : SplitOn(field, '|')) {
        if (!l.empty()) labels.push_back(UnescapeField(l));
      }
      return labels;
    };
    if (kind == "N") {
      uint64_t id;
      std::string label_field, prop_field;
      if (!(ls >> id >> label_field)) {
        return util::Status::ParseError("bad node line " +
                                        std::to_string(line_no));
      }
      ls >> prop_field;
      NodeId nid = graph.AddNode(parse_labels(label_field));
      if (nid != id) {
        return util::Status::ParseError("node ids must be dense, line " +
                                        std::to_string(line_no));
      }
      parse_props(true, nid, prop_field);
    } else if (kind == "E") {
      uint64_t id, src, dst;
      std::string label_field, prop_field;
      if (!(ls >> id >> src >> dst >> label_field)) {
        return util::Status::ParseError("bad edge line " +
                                        std::to_string(line_no));
      }
      ls >> prop_field;
      if (src >= graph.num_nodes() || dst >= graph.num_nodes()) {
        return util::Status::ParseError("edge endpoint out of range, line " +
                                        std::to_string(line_no));
      }
      EdgeId eid = graph.AddEdge(src, dst, parse_labels(label_field));
      if (eid != id) {
        return util::Status::ParseError("edge ids must be dense, line " +
                                        std::to_string(line_no));
      }
      parse_props(false, eid, prop_field);
    } else {
      return util::Status::ParseError("unknown record '" + kind + "' line " +
                                      std::to_string(line_no));
    }
  }
  return graph;
}

util::Result<PropertyGraph> LoadGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadGraphText(buf.str());
}

}  // namespace pghive::pg
