#ifndef PGHIVE_PG_BATCH_H_
#define PGHIVE_PG_BATCH_H_

#include <cstdint>
#include <vector>

#include "pg/graph.h"

namespace pghive::pg {

/// One batch G_s of a property-graph stream (§4.6): a subset of node ids and
/// edge ids of the underlying graph. Batches reference the full graph rather
/// than copying it, so incremental processing shares the vocabulary and the
/// endpoint labels of cross-batch edges remain resolvable.
struct GraphBatch {
  std::vector<NodeId> node_ids;
  std::vector<EdgeId> edge_ids;

  bool empty() const { return node_ids.empty() && edge_ids.empty(); }
  size_t size() const { return node_ids.size() + edge_ids.size(); }
};

/// Returns a single batch containing the entire graph (the static pipeline
/// is the 1-batch special case of Algorithm 1).
GraphBatch FullBatch(const PropertyGraph& graph);

/// Randomly partitions the graph into `num_batches` batches (the paper's
/// incremental evaluation uses 10 random batches). Every node and edge
/// appears in exactly one batch; an edge may arrive before or after its
/// endpoints, which the pipeline must tolerate (both the sequential
/// ProcessBatch loop and core::BatchPipeline do — endpoint labels resolve
/// through the full graph the batch references, so an early edge embeds
/// its endpoints' labels without needing their nodes to have streamed in).
/// tests/pg/batch_properties_test.cc pins the partition/determinism
/// invariants down over randomized shapes.
std::vector<GraphBatch> SplitIntoBatches(const PropertyGraph& graph,
                                         size_t num_batches, uint64_t seed);

}  // namespace pghive::pg

#endif  // PGHIVE_PG_BATCH_H_
