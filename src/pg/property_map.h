#ifndef PGHIVE_PG_PROPERTY_MAP_H_
#define PGHIVE_PG_PROPERTY_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "pg/value.h"

namespace pghive::pg {

/// Interned property-key id (see pg::Vocabulary).
using KeyId = uint32_t;

/// A compact key->value map stored as a flat vector sorted by key id.
/// Property counts per element are small (tens), so binary search over a
/// contiguous array beats a hash map in both space and time.
class PropertyMap {
 public:
  PropertyMap() = default;

  /// Inserts or overwrites.
  void Set(KeyId key, Value value);

  /// Returns the value for `key`, or nullptr if absent.
  const Value* Get(KeyId key) const;

  bool Has(KeyId key) const { return Get(key) != nullptr; }

  /// Removes `key` if present; returns whether it was present.
  bool Erase(KeyId key);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entries sorted by key id.
  const std::vector<std::pair<KeyId, Value>>& entries() const {
    return entries_;
  }

  /// The sorted key-id set of this map (Def. 3.5's K component).
  std::vector<KeyId> Keys() const;

 private:
  std::vector<std::pair<KeyId, Value>> entries_;
};

}  // namespace pghive::pg

#endif  // PGHIVE_PG_PROPERTY_MAP_H_
