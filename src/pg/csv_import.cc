#include "pg/csv_import.h"

#include <algorithm>
#include <cctype>

namespace pghive::pg {

namespace {

struct Column {
  std::string name;       // Property key ("" for control columns).
  std::string type_name;  // Declared type suffix, lowercased.
  enum Kind { kProperty, kId, kLabel, kStartId, kEndId, kType } kind = kProperty;
};

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

util::StatusOr<std::vector<Column>> ParseHeader(
    const std::vector<std::string>& header) {
  std::vector<Column> columns;
  for (const std::string& raw : header) {
    Column col;
    std::string name = raw;
    size_t colon = raw.find(':');
    std::string suffix;
    if (colon != std::string::npos) {
      name = raw.substr(0, colon);
      suffix = ToLower(raw.substr(colon + 1));
    }
    col.name = name;
    col.type_name = suffix;
    if (suffix == "id") {
      col.kind = Column::kId;
    } else if (suffix == "label") {
      col.kind = Column::kLabel;
    } else if (suffix == "start_id") {
      col.kind = Column::kStartId;
    } else if (suffix == "end_id") {
      col.kind = Column::kEndId;
    } else if (suffix == "type") {
      col.kind = Column::kType;
    } else {
      col.kind = Column::kProperty;
    }
    columns.push_back(std::move(col));
  }
  return columns;
}

std::vector<std::string> SplitLabels(const std::string& cell) {
  std::vector<std::string> labels;
  std::string cur;
  for (char c : cell) {
    if (c == ';') {
      if (!cur.empty()) labels.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) labels.push_back(std::move(cur));
  return labels;
}

}  // namespace

Value ParseCsvValue(const std::string& cell, const std::string& type_name) {
  std::string t = ToLower(type_name);
  if (t == "int" || t == "long") {
    if (LooksLikeInteger(cell)) {
      return Value(static_cast<int64_t>(std::stoll(cell)));
    }
    return Value(cell);
  }
  if (t == "float" || t == "double") {
    if (LooksLikeFloat(cell) || LooksLikeInteger(cell)) {
      return Value(std::stod(cell));
    }
    return Value(cell);
  }
  if (t == "boolean" || t == "bool") {
    if (LooksLikeBoolean(cell)) {
      return Value(cell.size() == 4);  // "true" has 4 chars.
    }
    return Value(cell);
  }
  // date / datetime / string: carried as strings; the inference pipeline
  // recognizes temporal formats (the paper's regex path).
  return Value(cell);
}

util::Status CsvGraphImporter::AddNodeTable(const util::CsvTable& table) {
  auto columns = ParseHeader(table.header);
  if (!columns.ok()) return columns.status();
  const auto& cols = columns.value();
  int id_col = -1, label_col = -1;
  for (size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].kind == Column::kId) id_col = static_cast<int>(c);
    if (cols[c].kind == Column::kLabel) label_col = static_cast<int>(c);
  }
  if (id_col < 0) {
    return util::Status::InvalidArgument("node table needs an :ID column");
  }
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (row.size() < cols.size()) {
      return util::Status::ParseError("short row " + std::to_string(r + 2));
    }
    const std::string& key = row[id_col];
    if (id_map_.count(key)) {
      return util::Status::InvalidArgument("duplicate node id '" + key + "'");
    }
    std::vector<std::string> labels;
    if (label_col >= 0) labels = SplitLabels(row[label_col]);
    NodeId id = graph_.AddNode(labels);
    id_map_[key] = id;
    for (size_t c = 0; c < cols.size(); ++c) {
      if (cols[c].kind != Column::kProperty || row[c].empty()) continue;
      graph_.SetNodeProperty(id, cols[c].name,
                             ParseCsvValue(row[c], cols[c].type_name));
    }
  }
  return util::Status::Ok();
}

util::Status CsvGraphImporter::AddEdgeTable(const util::CsvTable& table) {
  auto columns = ParseHeader(table.header);
  if (!columns.ok()) return columns.status();
  const auto& cols = columns.value();
  int start_col = -1, end_col = -1, type_col = -1;
  for (size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].kind == Column::kStartId) start_col = static_cast<int>(c);
    if (cols[c].kind == Column::kEndId) end_col = static_cast<int>(c);
    if (cols[c].kind == Column::kType) type_col = static_cast<int>(c);
  }
  if (start_col < 0 || end_col < 0) {
    return util::Status::InvalidArgument(
        "edge table needs :START_ID and :END_ID columns");
  }
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (row.size() < cols.size()) {
      return util::Status::ParseError("short row " + std::to_string(r + 2));
    }
    auto src_it = id_map_.find(row[start_col]);
    auto dst_it = id_map_.find(row[end_col]);
    if (src_it == id_map_.end() || dst_it == id_map_.end()) {
      return util::Status::NotFound("unknown endpoint in edge row " +
                                    std::to_string(r + 2));
    }
    std::vector<std::string> labels;
    if (type_col >= 0 && !row[type_col].empty()) {
      labels = SplitLabels(row[type_col]);
    }
    EdgeId id = graph_.AddEdge(src_it->second, dst_it->second, labels);
    for (size_t c = 0; c < cols.size(); ++c) {
      if (cols[c].kind != Column::kProperty || row[c].empty()) continue;
      graph_.SetEdgeProperty(id, cols[c].name,
                             ParseCsvValue(row[c], cols[c].type_name));
    }
  }
  return util::Status::Ok();
}

util::Status CsvGraphImporter::AddNodeFile(const std::string& path) {
  auto table = util::ReadCsvFile(path);
  if (!table.ok()) return table.status();
  return AddNodeTable(table.value());
}

util::Status CsvGraphImporter::AddEdgeFile(const std::string& path) {
  auto table = util::ReadCsvFile(path);
  if (!table.ok()) return table.status();
  return AddEdgeTable(table.value());
}

PropertyGraph CsvGraphImporter::TakeGraph() {
  PropertyGraph out = std::move(graph_);
  graph_ = PropertyGraph();
  id_map_.clear();
  return out;
}

}  // namespace pghive::pg
