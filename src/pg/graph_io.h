#ifndef PGHIVE_PG_GRAPH_IO_H_
#define PGHIVE_PG_GRAPH_IO_H_

#include <string>

#include "pg/graph.h"
#include "util/status.h"

namespace pghive::pg {

/// Serializes a property graph to a simple line-oriented text format
/// (one record per line) that round-trips through LoadGraphText:
///
///   N <id> <label|label|...or -> key=value;key=value
///   E <id> <src> <dst> <label|...or -> key=value;...
///
/// Values are rendered with Value::ToString and re-parsed by type probing,
/// matching how data arrives from a real PG store's CSV export.
std::string SaveGraphText(const PropertyGraph& graph);

/// Writes SaveGraphText output to a file.
util::Status SaveGraphFile(const PropertyGraph& graph,
                           const std::string& path);

/// Parses the SaveGraphText format.
util::Result<PropertyGraph> LoadGraphText(const std::string& text);

/// Reads a file written by SaveGraphFile.
util::Result<PropertyGraph> LoadGraphFile(const std::string& path);

}  // namespace pghive::pg

#endif  // PGHIVE_PG_GRAPH_IO_H_
