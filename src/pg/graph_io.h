#ifndef PGHIVE_PG_GRAPH_IO_H_
#define PGHIVE_PG_GRAPH_IO_H_

#include <string>
#include <utility>
#include <vector>

#include "pg/graph.h"
#include "util/status.h"

namespace pghive::pg {

/// One parsed graph-text record — a node or edge line detached from any
/// PropertyGraph, so stream consumers (pghived ingest) can route records
/// before materializing them. Labels and property keys stay as strings;
/// interning happens when the record is applied to a graph.
struct ElementRecord {
  bool is_edge = false;
  uint64_t id = 0;
  uint64_t src = 0;  ///< Edges only.
  uint64_t dst = 0;  ///< Edges only.
  std::vector<std::string> labels;
  std::vector<std::pair<std::string, Value>> properties;  ///< Line order.
};

/// Parses one "N ..." or "E ..." line of the SaveGraphText format. The
/// leading record kind must already be stripped of surrounding whitespace;
/// blank lines and '#' comments are the caller's concern.
util::StatusOr<ElementRecord> ParseElementLine(const std::string& line);

/// Renders one node / edge of `graph` as its graph-text line (no trailing
/// newline) — the record-level inverse of ParseElementLine.
std::string FormatNodeLine(const PropertyGraph& graph, const Node& node);
std::string FormatEdgeLine(const PropertyGraph& graph, const Edge& edge);

/// Escaping used for label and property fields: '\\' ';' '=' '\n' become
/// "\\\\" "\\s" "\\e" "\\n" so records survive line-oriented transports.
std::string EscapeField(const std::string& s);
std::string UnescapeField(const std::string& s);

/// Serializes a property graph to a simple line-oriented text format
/// (one record per line) that round-trips through LoadGraphText:
///
///   N <id> <label|label|...or -> key=value;key=value
///   E <id> <src> <dst> <label|...or -> key=value;...
///
/// Values are rendered with Value::ToString and re-parsed by type probing,
/// matching how data arrives from a real PG store's CSV export.
std::string SaveGraphText(const PropertyGraph& graph);

/// Writes SaveGraphText output to a file.
util::Status SaveGraphFile(const PropertyGraph& graph,
                           const std::string& path);

/// Parses the SaveGraphText format.
util::StatusOr<PropertyGraph> LoadGraphText(const std::string& text);

/// Parses the SaveGraphText format into an existing graph that has no nodes
/// or edges yet. The graph's vocabulary MAY already hold interned labels and
/// keys — replayed records then resolve to their existing ids — which is how
/// pghived's load-state path rebuilds a mid-stream graph after restoring the
/// snapshotted vocabulary (whose id order the stream preamble had fixed).
util::Status LoadGraphTextInto(const std::string& text, PropertyGraph* graph);

/// Reads a file written by SaveGraphFile.
util::StatusOr<PropertyGraph> LoadGraphFile(const std::string& path);

}  // namespace pghive::pg

#endif  // PGHIVE_PG_GRAPH_IO_H_
