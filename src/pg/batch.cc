#include "pg/batch.h"

#include "util/rng.h"
#include "util/status.h"

namespace pghive::pg {

GraphBatch FullBatch(const PropertyGraph& graph) {
  GraphBatch batch;
  batch.node_ids.reserve(graph.num_nodes());
  for (NodeId i = 0; i < graph.num_nodes(); ++i) batch.node_ids.push_back(i);
  batch.edge_ids.reserve(graph.num_edges());
  for (EdgeId i = 0; i < graph.num_edges(); ++i) batch.edge_ids.push_back(i);
  return batch;
}

std::vector<GraphBatch> SplitIntoBatches(const PropertyGraph& graph,
                                         size_t num_batches, uint64_t seed) {
  PGHIVE_CHECK(num_batches > 0);
  std::vector<GraphBatch> batches(num_batches);
  util::Rng rng(seed);
  auto node_perm = rng.Permutation(graph.num_nodes());
  auto edge_perm = rng.Permutation(graph.num_edges());
  for (size_t i = 0; i < node_perm.size(); ++i) {
    batches[i % num_batches].node_ids.push_back(node_perm[i]);
  }
  for (size_t i = 0; i < edge_perm.size(); ++i) {
    batches[i % num_batches].edge_ids.push_back(edge_perm[i]);
  }
  return batches;
}

}  // namespace pghive::pg
