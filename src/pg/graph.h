#ifndef PGHIVE_PG_GRAPH_H_
#define PGHIVE_PG_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pg/property_map.h"
#include "pg/vocabulary.h"

namespace pghive::pg {

class ColumnStore;

using NodeId = uint64_t;
using EdgeId = uint64_t;

constexpr NodeId kInvalidNode = UINT64_MAX;

/// A node of the property graph (Def. 3.1): a finite (possibly empty) label
/// set plus key-value properties.
struct Node {
  NodeId id = 0;
  std::vector<LabelId> labels;  // Sorted, deduplicated.
  PropertyMap properties;

  bool HasLabel(LabelId l) const;
};

/// A directed edge: rho(e) = (src, dst), labels, properties.
struct Edge {
  EdgeId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<LabelId> labels;  // Sorted, deduplicated.
  PropertyMap properties;

  bool HasLabel(LabelId l) const;
};

/// An in-memory directed property multigraph. Nodes and edges are stored in
/// dense vectors and addressed by index-valued ids, which is what the
/// vectorizer, the LSH clusterer, and the evaluation ground truth all key on.
///
/// The graph owns (a shared pointer to) the Vocabulary so several graphs or
/// batches derived from the same dataset can share one label/key universe.
class PropertyGraph {
 public:
  PropertyGraph() : vocab_(std::make_shared<Vocabulary>()) {}
  explicit PropertyGraph(std::shared_ptr<Vocabulary> vocab)
      : vocab_(std::move(vocab)) {}

  /// Adds a node with the given label names; returns its id.
  NodeId AddNode(const std::vector<std::string>& label_names);

  /// Adds a node with pre-interned labels; labels are sorted/deduplicated.
  NodeId AddNodeWithLabelIds(std::vector<LabelId> labels);

  /// Adds an edge; src/dst must be existing node ids.
  EdgeId AddEdge(NodeId src, NodeId dst,
                 const std::vector<std::string>& label_names);

  EdgeId AddEdgeWithLabelIds(NodeId src, NodeId dst,
                             std::vector<LabelId> labels);

  /// Sets a property on a node/edge by key name (interned on first use).
  void SetNodeProperty(NodeId id, std::string_view key, Value value);
  void SetEdgeProperty(EdgeId id, std::string_view key, Value value);

  Node& node(NodeId id) { return nodes_[id]; }
  const Node& node(NodeId id) const { return nodes_[id]; }
  Edge& edge(EdgeId id) { return edges_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Node>& mutable_nodes() { return nodes_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  Vocabulary& vocab() { return *vocab_; }
  const Vocabulary& vocab() const { return *vocab_; }
  std::shared_ptr<Vocabulary> vocab_ptr() const { return vocab_; }

  /// Out-/in-edge id lists (built lazily, invalidated by AddEdge).
  const std::vector<EdgeId>& OutEdges(NodeId id) const;
  const std::vector<EdgeId>& InEdges(NodeId id) const;

  /// Builds a struct-of-arrays snapshot of the given elements (see
  /// pg::ColumnStore). The rows stay the source of truth; the snapshot
  /// interns any unseen label-set tokens in canonical order. Defined in
  /// column_store.cc.
  ColumnStore BuildNodeColumns(const std::vector<NodeId>& ids,
                               bool with_values = false);
  ColumnStore BuildEdgeColumns(const std::vector<EdgeId>& ids,
                               bool with_values = false);

  /// Summary statistics used by Table 2 and the adaptive parameterization.
  struct Stats {
    size_t num_nodes = 0;
    size_t num_edges = 0;
    size_t num_node_labels = 0;     // Distinct labels appearing on nodes.
    size_t num_edge_labels = 0;     // Distinct labels appearing on edges.
    size_t num_node_patterns = 0;   // Distinct (label set, key set) pairs.
    size_t num_edge_patterns = 0;   // Distinct (labels, keys, endpoints).
    size_t num_node_keys = 0;       // Distinct property keys on nodes.
    size_t num_edge_keys = 0;       // Distinct property keys on edges.
    double avg_node_props = 0.0;
    double avg_edge_props = 0.0;
  };
  Stats ComputeStats() const;

 private:
  void EnsureAdjacency() const;

  std::shared_ptr<Vocabulary> vocab_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;

  // Lazily built adjacency.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<EdgeId>> out_edges_;
  mutable std::vector<std::vector<EdgeId>> in_edges_;
};

/// Normalizes a label id vector: sort + unique.
void NormalizeLabels(std::vector<LabelId>* labels);

}  // namespace pghive::pg

#endif  // PGHIVE_PG_GRAPH_H_
