#include "pg/column_store.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace pghive::pg {

size_t PresenceBitmap::RankBefore(size_t row) const {
  size_t rank = 0;
  const size_t full = row >> 6;
  for (size_t w = 0; w < full; ++w) {
    rank += static_cast<size_t>(std::popcount(words_[w]));
  }
  if ((row & 63) != 0) {
    const uint64_t mask = (1ULL << (row & 63)) - 1;
    rank += static_cast<size_t>(std::popcount(words_[full] & mask));
  }
  return rank;
}

Value PropertyColumn::ValueAt(size_t row) const {
  assert(present.Test(row));
  if (!valid.Test(row)) return Value();
  const size_t rank = present.RankBefore(row);
  switch (kind) {
    case ColumnKind::kBool:
      return Value(static_cast<bool>(bools[rank]));
    case ColumnKind::kInt:
      return Value(ints[rank]);
    case ColumnKind::kFloat:
      return Value(floats[rank]);
    case ColumnKind::kString:
      return Value(strings[rank]);
    case ColumnKind::kMixed:
      return values[rank];
    case ColumnKind::kEmpty:
      break;
  }
  return Value();
}

namespace {

/// The ColumnKind a single non-null Value stores as.
ColumnKind KindOf(const Value& v) {
  if (v.is_bool()) return ColumnKind::kBool;
  if (v.is_int()) return ColumnKind::kInt;
  if (v.is_float()) return ColumnKind::kFloat;
  return ColumnKind::kString;
}

}  // namespace

void ColumnStore::BuildPropertyColumns(
    const std::vector<const PropertyMap*>& rows, bool with_values) {
  const size_t n = rows.size();
  has_values_ = with_values;

  // Key CSR + the distinct-key universe in one pass; each row is already
  // sorted by key id.
  key_offsets_.assign(n + 1, 0);
  size_t total_keys = 0;
  for (size_t r = 0; r < n; ++r) {
    total_keys += rows[r]->size();
    key_offsets_[r + 1] = static_cast<uint32_t>(total_keys);
  }
  key_ids_.reserve(total_keys);
  PropKeyId max_key = 0;
  for (size_t r = 0; r < n; ++r) {
    for (const auto& [key, value] : rows[r]->entries()) {
      key_ids_.push_back(key);
      max_key = std::max(max_key, key);
    }
  }

  // Key ids come from the vocabulary — a small dense universe — so the
  // distinct set and the key -> column mapping are one O(max_key) scratch
  // table instead of an O(total log total) sort + per-entry binary search.
  std::vector<uint32_t> col_of;
  if (total_keys > 0) {
    constexpr uint32_t kAbsent = UINT32_MAX;
    col_of.assign(static_cast<size_t>(max_key) + 1, kAbsent);
    for (const PropKeyId key : key_ids_) col_of[key] = 0;
    uint32_t num_columns = 0;
    for (uint32_t& slot : col_of) {
      if (slot != kAbsent) slot = num_columns++;
    }
    columns_.resize(num_columns);
    for (size_t k = 0; k < col_of.size(); ++k) {
      if (col_of[k] == kAbsent) continue;
      PropertyColumn& col = columns_[col_of[k]];
      col.key = static_cast<PropKeyId>(k);
      col.present = PresenceBitmap(n);
      col.valid = PresenceBitmap(n);
    }
  }
  auto column_index = [&](PropKeyId key) {
    return static_cast<size_t>(col_of[key]);
  };
  for (size_t r = 0; r < n; ++r) {
    for (const auto& [key, value] : rows[r]->entries()) {
      PropertyColumn& col = columns_[column_index(key)];
      col.present.Set(r);
      if (!value.is_null()) col.valid.Set(r);
    }
  }

  if (!with_values) return;

  // Value pass: settle each column's kind over its non-null cells, then lay
  // the cells out densely (one slot per present row, defaults for nulls).
  std::vector<std::vector<const Value*>> cells(columns_.size());
  for (size_t r = 0; r < n; ++r) {
    for (const auto& [key, value] : rows[r]->entries()) {
      const size_t c = column_index(key);
      cells[c].push_back(&value);
      if (value.is_null()) continue;
      const ColumnKind k = KindOf(value);
      if (columns_[c].kind == ColumnKind::kEmpty) {
        columns_[c].kind = k;
      } else if (columns_[c].kind != k) {
        columns_[c].kind = ColumnKind::kMixed;
      }
    }
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    PropertyColumn& col = columns_[c];
    const size_t slots = cells[c].size();
    switch (col.kind) {
      case ColumnKind::kBool:
        col.bools.reserve(slots);
        for (const Value* v : cells[c]) {
          col.bools.push_back(v->is_null() ? 0 : (v->AsBool() ? 1 : 0));
        }
        break;
      case ColumnKind::kInt:
        col.ints.reserve(slots);
        for (const Value* v : cells[c]) {
          col.ints.push_back(v->is_null() ? 0 : v->AsInt());
        }
        break;
      case ColumnKind::kFloat:
        col.floats.reserve(slots);
        for (const Value* v : cells[c]) {
          col.floats.push_back(v->is_null() ? 0.0 : v->AsFloat());
        }
        break;
      case ColumnKind::kString:
        col.strings.reserve(slots);
        for (const Value* v : cells[c]) {
          col.strings.push_back(v->is_null() ? std::string() : v->AsString());
        }
        break;
      case ColumnKind::kMixed:
        col.values.reserve(slots);
        for (const Value* v : cells[c]) col.values.push_back(*v);
        break;
      case ColumnKind::kEmpty:
        break;
    }
  }
}

const PropertyColumn* ColumnStore::FindColumn(PropKeyId key) const {
  auto it = std::lower_bound(
      columns_.begin(), columns_.end(), key,
      [](const PropertyColumn& c, PropKeyId k) { return c.key < k; });
  if (it == columns_.end() || it->key != key) return nullptr;
  return &*it;
}

void ColumnStore::FillBinaryBlock(size_t lo, size_t hi, size_t max_key,
                                  float* data, size_t stride,
                                  size_t offset) const {
  for (const PropertyColumn& col : columns_) {
    if (col.key >= max_key) break;  // Columns are sorted by key id.
    const size_t key = col.key;
    col.present.ForEachSet(lo, hi, [&](size_t row) {
      data[(row - lo) * stride + offset + key] = 1.0f;
    });
  }
}

PropertyMap ColumnStore::RowProperties(size_t row) const {
  assert(has_values_);
  PropertyMap out;
  const uint32_t begin = key_offsets_[row];
  const uint32_t end = key_offsets_[row + 1];
  for (uint32_t k = begin; k < end; ++k) {
    const PropertyColumn* col = FindColumn(key_ids_[k]);
    out.Set(key_ids_[k], col->ValueAt(row));
  }
  return out;
}

ColumnStore ColumnStore::ForNodes(PropertyGraph& graph,
                                  const std::vector<NodeId>& ids,
                                  bool with_values) {
  ColumnStore store;
  store.ids_ = ids;
  store.tokens_.reserve(ids.size());
  std::vector<const PropertyMap*> rows;
  rows.reserve(ids.size());
  for (const NodeId id : ids) {
    const Node& n = graph.node(id);
    store.tokens_.push_back(graph.vocab().TokenForLabelSet(n.labels));
    rows.push_back(&n.properties);
  }
  store.BuildPropertyColumns(rows, with_values);
  return store;
}

ColumnStore ColumnStore::ForEdges(PropertyGraph& graph,
                                  const std::vector<EdgeId>& ids,
                                  bool with_values) {
  ColumnStore store;
  store.ids_ = ids;
  store.tokens_.reserve(ids.size());
  store.src_tokens_.reserve(ids.size());
  store.dst_tokens_.reserve(ids.size());
  store.src_ids_.reserve(ids.size());
  store.dst_ids_.reserve(ids.size());
  std::vector<const PropertyMap*> rows;
  rows.reserve(ids.size());
  Vocabulary& vocab = graph.vocab();
  for (const EdgeId id : ids) {
    const Edge& e = graph.edge(id);
    // Intern order per edge is (src, edge, dst) — the sentence order the
    // corpus builder emits, which pins Word2Vec token-id history.
    const LabelSetToken src = vocab.TokenForLabelSet(graph.node(e.src).labels);
    const LabelSetToken own = vocab.TokenForLabelSet(e.labels);
    const LabelSetToken dst = vocab.TokenForLabelSet(graph.node(e.dst).labels);
    store.src_tokens_.push_back(src);
    store.tokens_.push_back(own);
    store.dst_tokens_.push_back(dst);
    store.src_ids_.push_back(e.src);
    store.dst_ids_.push_back(e.dst);
    rows.push_back(&e.properties);
  }
  store.BuildPropertyColumns(rows, with_values);
  return store;
}

ColumnStore PropertyGraph::BuildNodeColumns(const std::vector<NodeId>& ids,
                                            bool with_values) {
  return ColumnStore::ForNodes(*this, ids, with_values);
}

ColumnStore PropertyGraph::BuildEdgeColumns(const std::vector<EdgeId>& ids,
                                            bool with_values) {
  return ColumnStore::ForEdges(*this, ids, with_values);
}

}  // namespace pghive::pg
