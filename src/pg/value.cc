#include "pg/value.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pghive::pg {

namespace {

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kFloat:
      return "FLOAT";
    case DataType::kBoolean:
      return "BOOLEAN";
    case DataType::kDate:
      return "DATE";
    case DataType::kDateTime:
      return "TIMESTAMP";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

DataType JoinDataTypes(DataType a, DataType b) {
  if (a == b) return a;
  if (a == DataType::kNull) return b;
  if (b == DataType::kNull) return a;
  auto is_numeric = [](DataType t) {
    return t == DataType::kInteger || t == DataType::kFloat;
  };
  if (is_numeric(a) && is_numeric(b)) return DataType::kFloat;
  auto is_temporal = [](DataType t) {
    return t == DataType::kDate || t == DataType::kDateTime;
  };
  if (is_temporal(a) && is_temporal(b)) return DataType::kDateTime;
  return DataType::kString;
}

bool LooksLikeInteger(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  if (i >= s.size()) return false;
  return AllDigits(s.substr(i));
}

bool LooksLikeFloat(std::string_view s) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  double out = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) return false;
  // Must contain a '.' 'e' or 'E' to be distinct from an integer literal.
  for (char c : s) {
    if (c == '.' || c == 'e' || c == 'E') return true;
  }
  return false;
}

bool LooksLikeBoolean(std::string_view s) {
  return EqualsIgnoreCase(s, "true") || EqualsIgnoreCase(s, "false");
}

bool LooksLikeDate(std::string_view s) {
  // ISO-8601: YYYY-MM-DD.
  if (s.size() == 10 && s[4] == '-' && s[7] == '-' &&
      AllDigits(s.substr(0, 4)) && AllDigits(s.substr(5, 2)) &&
      AllDigits(s.substr(8, 2))) {
    return true;
  }
  // D/M/YYYY or DD/MM/YYYY (the paper's "19/12/1999").
  size_t first = s.find('/');
  if (first == std::string_view::npos || first == 0 || first > 2) return false;
  size_t second = s.find('/', first + 1);
  if (second == std::string_view::npos) return false;
  size_t mid_len = second - first - 1;
  if (mid_len == 0 || mid_len > 2) return false;
  std::string_view year = s.substr(second + 1);
  if (year.size() != 4) return false;
  return AllDigits(s.substr(0, first)) &&
         AllDigits(s.substr(first + 1, mid_len)) && AllDigits(year);
}

bool LooksLikeDateTime(std::string_view s) {
  // YYYY-MM-DDTHH:MM:SS with optional suffix (fraction / zone).
  if (s.size() < 19) return false;
  if (!LooksLikeDate(s.substr(0, 10))) return false;
  if (s[10] != 'T' && s[10] != ' ') return false;
  return AllDigits(s.substr(11, 2)) && s[13] == ':' &&
         AllDigits(s.substr(14, 2)) && s[16] == ':' &&
         AllDigits(s.substr(17, 2));
}

DataType Value::InferType() const {
  if (is_null()) return DataType::kNull;
  if (is_bool()) return DataType::kBoolean;
  if (is_int()) return DataType::kInteger;
  if (is_float()) return DataType::kFloat;
  const std::string& s = AsString();
  // Priority-based inference (§4.4): numeric first, then boolean, then
  // temporal formats, defaulting to string.
  if (LooksLikeInteger(s)) return DataType::kInteger;
  if (LooksLikeFloat(s)) return DataType::kFloat;
  if (LooksLikeBoolean(s)) return DataType::kBoolean;
  if (LooksLikeDateTime(s)) return DataType::kDateTime;
  if (LooksLikeDate(s)) return DataType::kDate;
  return DataType::kString;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_int()) return std::to_string(AsInt());
  if (is_float()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", AsFloat());
    return buf;
  }
  return AsString();
}

}  // namespace pghive::pg
