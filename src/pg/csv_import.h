#ifndef PGHIVE_PG_CSV_IMPORT_H_
#define PGHIVE_PG_CSV_IMPORT_H_

#include <string>
#include <unordered_map>

#include "pg/graph.h"
#include "util/csv.h"
#include "util/status.h"

namespace pghive::pg {

/// Imports property graphs from the neo4j-admin bulk-import CSV convention,
/// which is how the paper's public datasets ship (MB6/FIB25 CSV dumps, LDBC
/// CSVs):
///
/// Node file header:  `id:ID,name,age:int,born:date,:LABEL`
///   - `:ID` column holds the node key (arbitrary string),
///   - `:LABEL` holds `;`-separated labels (may be empty),
///   - other columns are properties; an optional `:type` suffix declares
///     int|long|float|double|boolean|date|datetime|string (default string).
/// Relationship file header: `:START_ID,:END_ID,:TYPE,since:date,...`
///
/// Empty cells mean "property absent" (the natural source of optional
/// properties). Unknown node references in edge files are reported.
class CsvGraphImporter {
 public:
  CsvGraphImporter() = default;

  /// Adds all nodes of one node table. Node ids are remembered for edges.
  util::Status AddNodeTable(const util::CsvTable& table);

  /// Adds all relationships of one edge table.
  util::Status AddEdgeTable(const util::CsvTable& table);

  /// Convenience: reads files from disk.
  util::Status AddNodeFile(const std::string& path);
  util::Status AddEdgeFile(const std::string& path);

  /// Hands out the assembled graph (importer resets).
  PropertyGraph TakeGraph();

  size_t num_nodes() const { return graph_.num_nodes(); }
  size_t num_edges() const { return graph_.num_edges(); }

 private:
  PropertyGraph graph_;
  std::unordered_map<std::string, NodeId> id_map_;
};

/// Parses a single CSV cell into a typed Value according to the declared
/// column type ("int", "float", "boolean", "date", ... ; exposed for tests).
Value ParseCsvValue(const std::string& cell, const std::string& type_name);

}  // namespace pghive::pg

#endif  // PGHIVE_PG_CSV_IMPORT_H_
