#ifndef PGHIVE_PG_COLUMN_STORE_H_
#define PGHIVE_PG_COLUMN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pg/graph.h"
#include "pg/property_map.h"
#include "pg/value.h"

namespace pghive::pg {

/// One presence bit per row of a ColumnStore, packed into 64-bit words.
class PresenceBitmap {
 public:
  PresenceBitmap() = default;
  explicit PresenceBitmap(size_t rows)
      : rows_(rows), words_((rows + 63) / 64, 0) {}

  size_t rows() const { return rows_; }
  const std::vector<uint64_t>& words() const { return words_; }

  void Set(size_t row) { words_[row >> 6] |= 1ULL << (row & 63); }
  bool Test(size_t row) const {
    return (words_[row >> 6] >> (row & 63)) & 1ULL;
  }

  /// Number of set bits in [0, row) — the dense-array index ("present rank")
  /// of `row` in an Arrow-style column.
  size_t RankBefore(size_t row) const;

  /// Total set bits.
  size_t Count() const { return RankBefore(rows_); }

  /// Invokes fn(row) for every set bit in [lo, hi), ascending. Scans whole
  /// words, so absent stretches cost one test per 64 rows.
  template <typename Fn>
  void ForEachSet(size_t lo, size_t hi, Fn&& fn) const {
    if (lo >= hi) return;
    size_t w = lo >> 6;
    const size_t w_end = (hi + 63) >> 6;
    for (; w < w_end; ++w) {
      uint64_t word = words_[w];
      if (word == 0) continue;
      // Mask off bits outside [lo, hi) in the boundary words.
      if (w == (lo >> 6) && (lo & 63) != 0) {
        word &= ~0ULL << (lo & 63);
      }
      if (w == (hi >> 6) && (hi & 63) != 0) {
        word &= (1ULL << (hi & 63)) - 1;
      }
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn((w << 6) + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  size_t rows_ = 0;
  std::vector<uint64_t> words_;
};

/// Storage kind of a property column: the single Value alternative every
/// non-null cell holds, or kMixed when the key carries several.
enum class ColumnKind : uint8_t {
  kEmpty,   ///< All present cells are null.
  kBool,
  kInt,
  kFloat,
  kString,
  kMixed,
};

/// A struct-of-arrays property column: the rows of one ColumnStore that
/// carry `key`, Arrow-style. `present` marks rows carrying the key at all;
/// `valid` additionally clears rows whose stored value is null. Non-null
/// cell payloads live in exactly one typed dense array (per `kind`), with
/// one slot per *present* row — null cells keep a default-valued slot so the
/// present-rank of a row indexes the array directly.
///
/// Value columns are only materialized when the store is built with
/// with_values = true (round-trip, statistics, future datatype-inference
/// migration); the hot pipeline consumers read only tokens, the key CSR and
/// the presence bitmaps.
struct PropertyColumn {
  PropKeyId key = 0;
  ColumnKind kind = ColumnKind::kEmpty;
  PresenceBitmap present;
  PresenceBitmap valid;
  std::vector<uint8_t> bools;
  std::vector<int64_t> ints;
  std::vector<double> floats;
  std::vector<std::string> strings;
  /// kMixed fallback: the untyped cells, one per present row.
  std::vector<Value> values;

  /// Reconstructs the cell at `row` (which must be present): the stored
  /// Value, or a null Value for a null cell.
  Value ValueAt(size_t row) const;
};

/// A struct-of-arrays snapshot of one batch's elements (nodes or edges, in
/// batch order): interned label-set token-id arrays, a CSR of the per-row
/// sorted property-key sets, and one presence-bitmapped column per distinct
/// key — the contiguous layout the vectorize / LSH / corpus inner loops scan
/// instead of chasing per-row PropertyMap allocations (the
/// Arrow-table-per-property-set idea of KatanaGraph's RDGCore, scoped to a
/// batch).
///
/// Built once per batch from the row representation, which stays the source
/// of truth — row-oriented callers keep working unchanged. Building interns
/// label-set tokens sequentially in a canonical order (edges: src, edge, dst
/// per edge; nodes: row order), the same order the row path uses, so token
/// ids — and therefore every downstream schema — are identical whichever
/// representation feeds the pipeline.
class ColumnStore {
 public:
  ColumnStore() = default;

  size_t num_rows() const { return ids_.size(); }

  /// The element ids this store was built from, in row order.
  const std::vector<uint64_t>& ids() const { return ids_; }

  /// Label-set token per row (nodes: the node's token; edges: the edge's
  /// own token). kNoToken for unlabeled elements.
  const std::vector<LabelSetToken>& tokens() const { return tokens_; }

  /// Edge stores only: endpoint label-set tokens and endpoint node ids.
  const std::vector<LabelSetToken>& src_tokens() const { return src_tokens_; }
  const std::vector<LabelSetToken>& dst_tokens() const { return dst_tokens_; }
  const std::vector<NodeId>& src_ids() const { return src_ids_; }
  const std::vector<NodeId>& dst_ids() const { return dst_ids_; }

  /// CSR of the per-row property-key sets: row i's sorted keys are
  /// key_ids()[key_offsets()[i] .. key_offsets()[i+1]).
  const std::vector<uint32_t>& key_offsets() const { return key_offsets_; }
  const std::vector<PropKeyId>& key_ids() const { return key_ids_; }

  /// Property columns, sorted by key id.
  const std::vector<PropertyColumn>& columns() const { return columns_; }

  /// The column for `key`, or nullptr if no row carries it.
  const PropertyColumn* FindColumn(PropKeyId key) const;

  bool has_values() const { return has_values_; }

  /// Writes 1.0f into data[(row - lo) * stride + offset + key] for every
  /// (row, key) presence pair with key < max_key and row in [lo, hi) — the
  /// binary block of the §4.1 representation vectors as a per-column bitmap
  /// sweep. `data` points at the feature row of `lo`.
  void FillBinaryBlock(size_t lo, size_t hi, size_t max_key, float* data,
                       size_t stride, size_t offset) const;

  /// Reconstructs row `row`'s PropertyMap from the columns (requires
  /// with_values). Round-trip identity with the source rows is pinned by
  /// tests/pg/column_store_test.cc.
  PropertyMap RowProperties(size_t row) const;

  /// Builds the store for `ids` (in order) against `graph`. Interns any
  /// unseen label-set tokens (nodes: row order). with_values materializes
  /// the typed value arrays; the pipeline leaves them off.
  static ColumnStore ForNodes(PropertyGraph& graph,
                              const std::vector<NodeId>& ids,
                              bool with_values = false);

  /// Edge version; also captures endpoint tokens and ids. Interning order
  /// per edge is (src, edge, dst) — the corpus-builder order the Word2Vec
  /// token-id history depends on.
  static ColumnStore ForEdges(PropertyGraph& graph,
                              const std::vector<EdgeId>& ids,
                              bool with_values = false);

 private:
  void BuildPropertyColumns(
      const std::vector<const PropertyMap*>& rows, bool with_values);

  std::vector<uint64_t> ids_;
  std::vector<LabelSetToken> tokens_;
  std::vector<LabelSetToken> src_tokens_;
  std::vector<LabelSetToken> dst_tokens_;
  std::vector<NodeId> src_ids_;
  std::vector<NodeId> dst_ids_;
  std::vector<uint32_t> key_offsets_;
  std::vector<PropKeyId> key_ids_;
  std::vector<PropertyColumn> columns_;
  bool has_values_ = false;
};

}  // namespace pghive::pg

#endif  // PGHIVE_PG_COLUMN_STORE_H_
