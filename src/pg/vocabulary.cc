#include "pg/vocabulary.h"

#include <algorithm>

namespace pghive::pg {

LabelSetToken Vocabulary::TokenForLabelSet(const std::vector<LabelId>& labels) {
  if (labels.empty()) return kNoToken;
  std::vector<std::string_view> names;
  names.reserve(labels.size());
  for (LabelId id : labels) names.push_back(labels_.Get(id));
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::string joined;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) joined.push_back('|');
    joined.append(names[i]);
  }
  return tokens_.Intern(joined);
}

}  // namespace pghive::pg
