#include "pg/vocabulary.h"

#include <algorithm>
#include <array>

#include "util/binio.h"

namespace pghive::pg {

LabelSetToken Vocabulary::TokenForLabelSet(const std::vector<LabelId>& labels) {
  if (labels.empty()) return kNoToken;
  std::vector<std::string_view> names;
  names.reserve(labels.size());
  for (LabelId id : labels) names.push_back(labels_.Get(id));
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::string joined;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) joined.push_back('|');
    joined.append(names[i]);
  }
  return tokens_.Intern(joined);
}

void Vocabulary::AppendStateTo(std::string* out) const {
  for (const util::StringInterner* interner : {&labels_, &keys_, &tokens_}) {
    util::PutU64(out, interner->size());
    for (const std::string& s : interner->strings()) util::PutString(out, s);
  }
}

util::Status Vocabulary::RestoreState(std::string_view bytes) {
  util::ByteReader in(bytes);
  std::array<std::vector<std::string>, 3> lists;
  for (auto& list : lists) {
    uint64_t n = in.ReadU64();
    if (!in.SaneCount(n, 1)) break;
    list.reserve(n);
    for (uint64_t i = 0; i < n && in.ok(); ++i) {
      std::string s;
      in.ReadString(&s);
      list.push_back(std::move(s));
    }
  }
  if (!in.ok() || !in.AtEnd()) {
    return util::Status::ParseError(
        "vocabulary snapshot: truncated or corrupt");
  }
  const std::array<const util::StringInterner*, 3> current = {
      &labels_, &keys_, &tokens_};
  const std::array<const char*, 3> names = {"label", "key", "token"};
  for (size_t k = 0; k < 3; ++k) {
    const std::vector<std::string>& have = current[k]->strings();
    if (have.size() > lists[k].size()) {
      return util::Status::FailedPrecondition(
          "vocabulary snapshot: " + std::string(names[k]) +
          " universe is smaller than the live one (snapshot from a "
          "different graph?)");
    }
    for (size_t i = 0; i < have.size(); ++i) {
      if (have[i] != lists[k][i]) {
        return util::Status::FailedPrecondition(
            "vocabulary snapshot: " + std::string(names[k]) + " id " +
            std::to_string(i) + " is '" + have[i] + "' here but '" +
            lists[k][i] + "' in the snapshot (different graph?)");
      }
    }
    std::vector<std::string> sorted = lists[k];
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return util::Status::ParseError("vocabulary snapshot: duplicate " +
                                      std::string(names[k]));
    }
  }
  // Every check passed, so the Rebuilds below cannot fail and either all
  // three interners swap or none does.
  util::StringInterner* mut[3] = {&labels_, &keys_, &tokens_};
  for (size_t k = 0; k < 3; ++k) mut[k]->Rebuild(std::move(lists[k]));
  return util::Status::Ok();
}

}  // namespace pghive::pg
