#ifndef PGHIVE_PG_VOCABULARY_H_
#define PGHIVE_PG_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/string_interner.h"

namespace pghive::pg {

/// Interned label id.
using LabelId = uint32_t;

/// Interned property-key id (shared with PropertyMap).
using PropKeyId = uint32_t;

/// A token id for a *set* of labels (the sorted-concatenation token of §4.1).
using LabelSetToken = uint32_t;

constexpr uint32_t kNoToken = UINT32_MAX;

/// Interns the three string universes of a property graph:
///   - labels (L in Def. 3.1),
///   - property keys (K),
///   - label-set tokens: the paper sorts multi-label sets alphabetically and
///     concatenates them into one token so that {Student,Person} embeds as a
///     single word ("Person|Student").
///
/// The vocabulary is shared between the graph, the vectorizer, and the
/// embedder so that binary property vectors and label embeddings agree on
/// dimensions across batches (a requirement for incremental discovery).
class Vocabulary {
 public:
  Vocabulary() = default;

  LabelId InternLabel(std::string_view label) { return labels_.Intern(label); }
  PropKeyId InternKey(std::string_view key) { return keys_.Intern(key); }

  const std::string& LabelName(LabelId id) const { return labels_.Get(id); }
  const std::string& KeyName(PropKeyId id) const { return keys_.Get(id); }

  /// Returns StringInterner::kInvalidId when absent.
  LabelId FindLabel(std::string_view label) const {
    return labels_.Find(label);
  }
  PropKeyId FindKey(std::string_view key) const { return keys_.Find(key); }

  size_t num_labels() const { return labels_.size(); }
  size_t num_keys() const { return keys_.size(); }

  /// Canonical token for a label set: labels sorted by *name* and joined
  /// with '|'. An empty set returns kNoToken. The same set always maps to
  /// the same token regardless of input order.
  LabelSetToken TokenForLabelSet(const std::vector<LabelId>& labels);

  /// The token string ("Person|Student"). Valid token ids only.
  const std::string& TokenName(LabelSetToken token) const {
    return tokens_.Get(token);
  }

  size_t num_tokens() const { return tokens_.size(); }

  /// Appends all three interners (labels, keys, tokens) in id order — the
  /// vocabulary section of a PgHive state snapshot (util/binio framing).
  void AppendStateTo(std::string* out) const;

  /// Restores the interners from AppendStateTo bytes. Succeeds only when the
  /// current contents are position-consistent with the snapshot: every
  /// string interned so far must sit at the same id in the snapshot. That
  /// holds for an empty vocabulary (the pghived load-state path) and for one
  /// rebuilt by reloading the graph file the snapshotted run had loaded (the
  /// CLI --resume-from path); anything else means the snapshot belongs to a
  /// different graph and fails with FailedPrecondition, leaving the
  /// vocabulary untouched. Corrupt bytes fail with ParseError.
  util::Status RestoreState(std::string_view bytes);

 private:
  util::StringInterner labels_;
  util::StringInterner keys_;
  util::StringInterner tokens_;
};

}  // namespace pghive::pg

#endif  // PGHIVE_PG_VOCABULARY_H_
