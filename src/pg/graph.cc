#include "pg/graph.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/rng.h"
#include "util/status.h"

namespace pghive::pg {

void NormalizeLabels(std::vector<LabelId>* labels) {
  std::sort(labels->begin(), labels->end());
  labels->erase(std::unique(labels->begin(), labels->end()), labels->end());
}

bool Node::HasLabel(LabelId l) const {
  return std::binary_search(labels.begin(), labels.end(), l);
}

bool Edge::HasLabel(LabelId l) const {
  return std::binary_search(labels.begin(), labels.end(), l);
}

NodeId PropertyGraph::AddNode(const std::vector<std::string>& label_names) {
  std::vector<LabelId> ids;
  ids.reserve(label_names.size());
  for (const auto& name : label_names) ids.push_back(vocab_->InternLabel(name));
  return AddNodeWithLabelIds(std::move(ids));
}

NodeId PropertyGraph::AddNodeWithLabelIds(std::vector<LabelId> labels) {
  NormalizeLabels(&labels);
  Node n;
  n.id = nodes_.size();
  n.labels = std::move(labels);
  nodes_.push_back(std::move(n));
  adjacency_valid_ = false;
  return nodes_.back().id;
}

EdgeId PropertyGraph::AddEdge(NodeId src, NodeId dst,
                              const std::vector<std::string>& label_names) {
  std::vector<LabelId> ids;
  ids.reserve(label_names.size());
  for (const auto& name : label_names) ids.push_back(vocab_->InternLabel(name));
  return AddEdgeWithLabelIds(src, dst, std::move(ids));
}

EdgeId PropertyGraph::AddEdgeWithLabelIds(NodeId src, NodeId dst,
                                          std::vector<LabelId> labels) {
  PGHIVE_CHECK(src < nodes_.size() && dst < nodes_.size());
  NormalizeLabels(&labels);
  Edge e;
  e.id = edges_.size();
  e.src = src;
  e.dst = dst;
  e.labels = std::move(labels);
  edges_.push_back(std::move(e));
  adjacency_valid_ = false;
  return edges_.back().id;
}

void PropertyGraph::SetNodeProperty(NodeId id, std::string_view key,
                                    Value value) {
  PGHIVE_CHECK(id < nodes_.size());
  nodes_[id].properties.Set(vocab_->InternKey(key), std::move(value));
}

void PropertyGraph::SetEdgeProperty(EdgeId id, std::string_view key,
                                    Value value) {
  PGHIVE_CHECK(id < edges_.size());
  edges_[id].properties.Set(vocab_->InternKey(key), std::move(value));
}

void PropertyGraph::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  out_edges_.assign(nodes_.size(), {});
  in_edges_.assign(nodes_.size(), {});
  for (const Edge& e : edges_) {
    out_edges_[e.src].push_back(e.id);
    in_edges_[e.dst].push_back(e.id);
  }
  adjacency_valid_ = true;
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(NodeId id) const {
  EnsureAdjacency();
  return out_edges_[id];
}

const std::vector<EdgeId>& PropertyGraph::InEdges(NodeId id) const {
  EnsureAdjacency();
  return in_edges_[id];
}

PropertyGraph::Stats PropertyGraph::ComputeStats() const {
  Stats s;
  s.num_nodes = nodes_.size();
  s.num_edges = edges_.size();

  std::unordered_set<LabelId> node_labels;
  std::unordered_set<LabelId> edge_labels;
  std::unordered_set<PropKeyId> node_keys;
  std::unordered_set<PropKeyId> edge_keys;
  std::unordered_set<uint64_t> node_patterns;
  std::unordered_set<uint64_t> edge_patterns;

  auto pattern_hash = [](const std::vector<LabelId>& labels,
                         const std::vector<PropKeyId>& keys,
                         uint64_t extra) {
    uint64_t h = 0x51ed27fULL ^ extra;
    for (LabelId l : labels) h = util::HashCombine(h, 0x1000 + l);
    h = util::HashCombine(h, 0xABCDEFULL);
    for (PropKeyId k : keys) h = util::HashCombine(h, 0x2000 + k);
    return h;
  };

  size_t node_prop_total = 0;
  for (const Node& n : nodes_) {
    for (LabelId l : n.labels) node_labels.insert(l);
    auto keys = n.properties.Keys();
    for (PropKeyId k : keys) node_keys.insert(k);
    node_prop_total += keys.size();
    node_patterns.insert(pattern_hash(n.labels, keys, 0));
  }

  size_t edge_prop_total = 0;
  for (const Edge& e : edges_) {
    for (LabelId l : e.labels) edge_labels.insert(l);
    auto keys = e.properties.Keys();
    for (PropKeyId k : keys) edge_keys.insert(k);
    edge_prop_total += keys.size();
    // Edge patterns (Def. 3.6) also distinguish endpoint label sets.
    uint64_t src_h = 1, dst_h = 1;
    for (LabelId l : nodes_[e.src].labels) {
      src_h = util::HashCombine(src_h, l);
    }
    for (LabelId l : nodes_[e.dst].labels) {
      dst_h = util::HashCombine(dst_h, l);
    }
    edge_patterns.insert(
        pattern_hash(e.labels, keys, util::HashCombine(src_h, dst_h)));
  }

  s.num_node_labels = node_labels.size();
  s.num_edge_labels = edge_labels.size();
  s.num_node_keys = node_keys.size();
  s.num_edge_keys = edge_keys.size();
  s.num_node_patterns = node_patterns.size();
  s.num_edge_patterns = edge_patterns.size();
  s.avg_node_props =
      nodes_.empty() ? 0.0
                     : static_cast<double>(node_prop_total) / nodes_.size();
  s.avg_edge_props =
      edges_.empty() ? 0.0
                     : static_cast<double>(edge_prop_total) / edges_.size();
  return s;
}

}  // namespace pghive::pg
