#include "pg/shard_plan.h"

#include <algorithm>

namespace pghive::pg {

ShardPlan::ShardPlan(size_t num_shards, uint64_t seed, size_t vnodes_per_shard)
    : ring_(num_shards, vnodes_per_shard, seed) {}

std::vector<ShardBatch> ShardPlan::Partition(const PropertyGraph& graph,
                                             const GraphBatch& batch) const {
  std::vector<ShardBatch> shards(num_shards());
  for (uint32_t pos = 0; pos < batch.node_ids.size(); ++pos) {
    NodeId id = batch.node_ids[pos];
    ShardBatch& shard = shards[OwnerOfNode(id)];
    shard.batch.node_ids.push_back(id);
    shard.node_positions.push_back(pos);
  }
  for (uint32_t pos = 0; pos < batch.edge_ids.size(); ++pos) {
    EdgeId id = batch.edge_ids[pos];
    const Edge& edge = graph.edge(id);
    uint32_t owner = OwnerOfNode(edge.src);
    ShardBatch& shard = shards[owner];
    shard.batch.edge_ids.push_back(id);
    shard.edge_positions.push_back(pos);
    if (OwnerOfNode(edge.dst) != owner) shard.mirror_nodes.push_back(edge.dst);
  }
  for (ShardBatch& shard : shards) {
    std::sort(shard.mirror_nodes.begin(), shard.mirror_nodes.end());
    shard.mirror_nodes.erase(
        std::unique(shard.mirror_nodes.begin(), shard.mirror_nodes.end()),
        shard.mirror_nodes.end());
  }
  return shards;
}

}  // namespace pghive::pg
