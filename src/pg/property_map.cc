#include "pg/property_map.h"

#include <algorithm>

namespace pghive::pg {

namespace {

auto LowerBound(std::vector<std::pair<KeyId, Value>>& entries, KeyId key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const std::pair<KeyId, Value>& e, KeyId k) { return e.first < k; });
}

}  // namespace

void PropertyMap::Set(KeyId key, Value value) {
  auto it = LowerBound(entries_, key);
  if (it != entries_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, {key, std::move(value)});
  }
}

const Value* PropertyMap::Get(KeyId key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const std::pair<KeyId, Value>& e, KeyId k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) return &it->second;
  return nullptr;
}

bool PropertyMap::Erase(KeyId key) {
  auto it = LowerBound(entries_, key);
  if (it != entries_.end() && it->first == key) {
    entries_.erase(it);
    return true;
  }
  return false;
}

std::vector<KeyId> PropertyMap::Keys() const {
  std::vector<KeyId> keys;
  keys.reserve(entries_.size());
  for (const auto& [k, v] : entries_) keys.push_back(k);
  return keys;
}

}  // namespace pghive::pg
