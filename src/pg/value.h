#ifndef PGHIVE_PG_VALUE_H_
#define PGHIVE_PG_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace pghive::pg {

/// Property data types, ordered by the paper's priority-based inference
/// hierarchy (§4.4): INTEGER > FLOAT > BOOLEAN > DATE/DATETIME > STRING.
enum class DataType : uint8_t {
  kNull = 0,
  kInteger,
  kFloat,
  kBoolean,
  kDate,
  kDateTime,
  kString,
};

/// Name used in schema serialization ("INTEGER", "STRING", ...).
const char* DataTypeName(DataType t);

/// The least general type that covers both operands, used when generalizing
/// a property's type over many observed values:
///   - equal types join to themselves;
///   - INTEGER ∨ FLOAT = FLOAT;
///   - DATE ∨ DATETIME = DATETIME;
///   - anything else falls back to STRING (the paper's default).
DataType JoinDataTypes(DataType a, DataType b);

/// A property value: null, boolean, integer, float or string. Dates are
/// carried as strings and recognized by format, mirroring how values arrive
/// from a property-graph store export.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_float() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsFloat() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Infers the most specific data type of this single value, following the
  /// paper's hierarchy. String payloads are probed: integer literal, float
  /// literal, boolean literal, ISO date / datetime, else STRING.
  DataType InferType() const;

  /// Human-readable rendering (used by graph I/O and examples).
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// True if `s` is an ISO-8601 date (YYYY-MM-DD) or the common D/M/YYYY and
/// DD/MM/YYYY forms seen in the paper's running example.
bool LooksLikeDate(std::string_view s);

/// True if `s` is an ISO-8601 datetime (YYYY-MM-DDTHH:MM:SS, optional zone).
bool LooksLikeDateTime(std::string_view s);

/// True if `s` parses entirely as a (signed) decimal integer.
bool LooksLikeInteger(std::string_view s);

/// True if `s` parses entirely as a floating-point literal with a '.' or
/// exponent (pure integers are not floats).
bool LooksLikeFloat(std::string_view s);

/// True if `s` is "true" or "false" (case-insensitive).
bool LooksLikeBoolean(std::string_view s);

}  // namespace pghive::pg

#endif  // PGHIVE_PG_VALUE_H_
