#ifndef PGHIVE_PG_SHARD_PLAN_H_
#define PGHIVE_PG_SHARD_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pg/batch.h"
#include "pg/graph.h"
#include "util/consistent_hash.h"

namespace pghive::pg {

/// One shard's slice of a GraphBatch. The shard-local batch is itself a
/// GraphBatch — "a shard is just a batch that never crosses the partition" —
/// so every batch-scoped consumer (ColumnStore builds, the vectorizer, LSH
/// scans) works on a shard unchanged, against its own contiguous arrays.
struct ShardBatch {
  /// Shard-local node/edge id lists, preserving the parent batch's relative
  /// order. Order preservation is what lets per-shard results be scattered
  /// back into parent-batch positions deterministically.
  GraphBatch batch;

  /// Position of batch.node_ids[i] / batch.edge_ids[i] in the parent
  /// batch's node_ids / edge_ids. Strictly increasing.
  std::vector<uint32_t> node_positions;
  std::vector<uint32_t> edge_positions;

  /// Katana-style mirror bookkeeping: endpoints of shard-local edges that
  /// are owned by some other shard (this shard holds a read-only "mirror"
  /// of them while scanning its edges). Sorted, deduplicated. Nodes owned
  /// by this shard are never mirrors, even when they also appear as
  /// endpoints.
  std::vector<NodeId> mirror_nodes;
};

/// Deterministic consistent-hash partitioner for GraphBatches. Node
/// ownership is `ring.ShardFor(node id)`; an edge is routed with its source
/// endpoint (so per-shard edge scans read locally-owned sources), and any
/// remote endpoint it drags along is recorded in the owning shard's
/// mirror_nodes. The plan is a pure function of (num_shards, seed): the same
/// graph partitioned twice yields byte-identical ShardBatches.
class ShardPlan {
 public:
  explicit ShardPlan(
      size_t num_shards, uint64_t seed = 0x5AD5,
      size_t vnodes_per_shard = util::ConsistentHashRing::kDefaultVnodesPerShard);

  /// Shard owning node `id`, in [0, num_shards()).
  uint32_t OwnerOfNode(NodeId id) const { return ring_.ShardFor(id); }

  /// Shard owning edge `id`: the owner of its source endpoint.
  uint32_t OwnerOfEdge(const PropertyGraph& graph, EdgeId id) const {
    return OwnerOfNode(graph.edge(id).src);
  }

  /// Splits `batch` into exactly num_shards() ShardBatches (some possibly
  /// empty when num_shards exceeds the batch size). Every batch node lands
  /// in exactly one shard's node_ids and every batch edge in exactly one
  /// shard's edge_ids — an exact partition.
  std::vector<ShardBatch> Partition(const PropertyGraph& graph,
                                    const GraphBatch& batch) const;

  size_t num_shards() const { return ring_.num_shards(); }

 private:
  util::ConsistentHashRing ring_;
};

}  // namespace pghive::pg

#endif  // PGHIVE_PG_SHARD_PLAN_H_
