#ifndef PGHIVE_BASELINES_GMM_H_
#define PGHIVE_BASELINES_GMM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive::baselines {

/// EM options for the diagonal-covariance Gaussian mixture.
struct GmmOptions {
  size_t max_iterations = 25;
  double tolerance = 1e-3;   ///< Relative log-likelihood change to stop.
  double min_variance = 1e-2;
  uint64_t seed = 17;
};

/// Result of one EM fit.
struct GmmFit {
  std::vector<double> means;      ///< k x dim.
  std::vector<double> variances;  ///< k x dim.
  std::vector<double> weights;    ///< k.
  double log_likelihood = 0.0;
  size_t iterations = 0;
  size_t k = 0;
  size_t dim = 0;

  /// BIC = -2 logL + p ln n with p = k(2 dim) + (k-1) free parameters.
  double Bic(size_t n) const;
};

/// A diagonal-covariance Gaussian mixture model fit by EM, the clustering
/// core of the GMMSchema baseline (Bonifati et al., EDBT 2022). Means are
/// initialized from k distinct random data points.
class GaussianMixture {
 public:
  explicit GaussianMixture(GmmOptions options) : options_(options) {}

  /// Fits k components to `num` row-major points of dimension `dim`.
  GmmFit Fit(const std::vector<float>& data, size_t num, size_t dim,
             size_t k) const;

  /// Fits with caller-provided initial means (k x dim); variances start at
  /// the global per-dimension variance. Used by GMMSchema to seed one
  /// component per label group.
  GmmFit FitWithInit(const std::vector<float>& data, size_t num, size_t dim,
                     size_t k, const std::vector<double>& init_means) const;

  /// Hard-assigns each point to its most probable component.
  static std::vector<uint32_t> Assign(const GmmFit& fit,
                                      const std::vector<float>& data,
                                      size_t num);

 private:
  GmmOptions options_;
};

}  // namespace pghive::baselines

#endif  // PGHIVE_BASELINES_GMM_H_
