#include "baselines/schemi.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "util/union_find.h"

namespace pghive::baselines {

namespace {

double JaccardSets(const std::set<pg::PropKeyId>& a,
                   const std::set<pg::PropKeyId>& b) {
  // No structural evidence on either side -> no merge signal (property-less
  // types must not all collapse into one).
  if (a.empty() && b.empty()) return 0.0;
  size_t inter = 0;
  for (pg::PropKeyId k : a) inter += b.count(k);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

// Assigns each element to the cluster of its globally least frequent label
// (its "most specific" label), then runs refinement rounds that (a) rescan
// every instance against every type's accumulated key set and (b) merge
// types with high structural similarity.
template <typename ElementVec, typename LabelFreq>
void ClusterElements(const ElementVec& elements, const LabelFreq& label_freq,
                     const SchemiOptions& options,
                     std::vector<uint32_t>* assignment,
                     size_t* num_clusters) {
  const size_t n = elements.size();
  assignment->assign(n, 0);

  // Pattern registry: SchemI materializes every distinct (label set,
  // property-key set) pattern by scanning each instance against the list of
  // patterns discovered so far — the naive per-instance comparisons that
  // LSH-based clustering avoids. The registry feeds the type lattice; under
  // property noise the pattern count grows combinatorially, which is the
  // baseline's scalability weakness.
  struct RegisteredPattern {
    std::vector<pg::LabelId> labels;
    std::set<pg::PropKeyId> keys;
  };
  std::vector<RegisteredPattern> patterns;
  for (size_t i = 0; i < n; ++i) {
    std::set<pg::PropKeyId> keys;
    for (const auto& [key, value] : elements[i].properties.entries()) {
      keys.insert(key);
    }
    bool found = false;
    for (const RegisteredPattern& p : patterns) {
      if (p.labels == elements[i].labels && p.keys == keys) {
        found = true;
        break;
      }
    }
    if (!found) {
      patterns.push_back({elements[i].labels, std::move(keys)});
    }
  }

  // Initial grouping: one type per distinct specific label.
  std::unordered_map<pg::LabelId, uint32_t> label_to_type;
  std::vector<std::set<pg::PropKeyId>> type_keys;
  std::vector<uint32_t> initial(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto& labels = elements[i].labels;
    pg::LabelId specific = labels.front();
    size_t best_freq = SIZE_MAX;
    for (pg::LabelId l : labels) {
      size_t f = label_freq.at(l);
      if (f < best_freq) {
        best_freq = f;
        specific = l;
      }
    }
    auto [it, inserted] = label_to_type.try_emplace(
        specific, static_cast<uint32_t>(label_to_type.size()));
    if (inserted) type_keys.emplace_back();
    initial[i] = it->second;
    for (const auto& [key, value] : elements[i].properties.entries()) {
      type_keys[it->second].insert(key);
    }
  }

  // Map each pattern to the type owned by its specific label, so the
  // instance placement below can vote through patterns.
  std::vector<uint32_t> pattern_type(patterns.size(), 0);
  for (size_t p = 0; p < patterns.size(); ++p) {
    pg::LabelId specific = patterns[p].labels.front();
    size_t best_freq = SIZE_MAX;
    for (pg::LabelId l : patterns[p].labels) {
      size_t f = label_freq.at(l);
      if (f < best_freq) {
        best_freq = f;
        specific = l;
      }
    }
    pattern_type[p] = label_to_type[specific];
  }

  // Refinement: the published system places every instance in the pattern
  // lattice by comparing it against all registered patterns, then merges
  // structurally similar types. Each round costs O(N * P * K) — the naive
  // per-instance scans that PG-HIVE's single LSH pass avoids, and the
  // reason SchemI's runtime trails in Fig. 5 (pattern counts P grow with
  // noise, compounding the cost).
  util::UnionFind uf(type_keys.size());
  for (size_t round = 0; round < options.refinement_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      std::set<pg::PropKeyId> keys;
      for (const auto& [key, value] : elements[i].properties.entries()) {
        keys.insert(key);
      }
      uint32_t t = uf.Find(initial[i]);
      for (pg::PropKeyId k : keys) type_keys[t].insert(k);
      // Lattice placement: find the structurally closest pattern; when it
      // belongs to a different type and the match is strong, migrate.
      double best = -1.0;
      uint32_t best_type = t;
      for (size_t p = 0; p < patterns.size(); ++p) {
        double j = JaccardSets(keys, patterns[p].keys);
        if (j > best) {
          best = j;
          best_type = uf.Find(pattern_type[p]);
        }
      }
      if (best_type != t && best >= options.merge_threshold) {
        initial[i] = best_type;
      }
    }
    // (b) structural merge of similar types.
    for (size_t a = 0; a < type_keys.size(); ++a) {
      for (size_t b = a + 1; b < type_keys.size(); ++b) {
        uint32_t ra = uf.Find(static_cast<uint32_t>(a));
        uint32_t rb = uf.Find(static_cast<uint32_t>(b));
        if (ra == rb) continue;
        if (JaccardSets(type_keys[ra], type_keys[rb]) >=
            options.merge_threshold) {
          uf.Union(ra, rb);
          uint32_t root = uf.Find(ra);
          uint32_t other = root == ra ? rb : ra;
          type_keys[root].insert(type_keys[other].begin(),
                                 type_keys[other].end());
        }
      }
    }
  }

  auto comp = uf.ComponentIds();
  for (size_t i = 0; i < n; ++i) (*assignment)[i] = comp[initial[i]];
  *num_clusters = uf.num_sets();
}

}  // namespace

util::StatusOr<SchemiResult> SchemI::Discover(
    const pg::PropertyGraph& graph) const {
  if (graph.num_nodes() == 0) {
    return util::Status::FailedPrecondition("empty graph");
  }
  for (const pg::Node& node : graph.nodes()) {
    if (node.labels.empty()) {
      return util::Status::FailedPrecondition(
          "SchemI requires fully labeled nodes");
    }
  }
  for (const pg::Edge& edge : graph.edges()) {
    if (edge.labels.empty()) {
      return util::Status::FailedPrecondition(
          "SchemI requires fully labeled edges");
    }
  }

  // Global label frequencies (to pick the most specific label).
  std::map<pg::LabelId, size_t> node_label_freq;
  for (const pg::Node& node : graph.nodes()) {
    for (pg::LabelId l : node.labels) ++node_label_freq[l];
  }
  std::map<pg::LabelId, size_t> edge_label_freq;
  for (const pg::Edge& edge : graph.edges()) {
    for (pg::LabelId l : edge.labels) ++edge_label_freq[l];
  }

  SchemiResult result;
  ClusterElements(graph.nodes(), node_label_freq, options_,
                  &result.node_assignment, &result.num_node_clusters);
  if (graph.num_edges() > 0) {
    ClusterElements(graph.edges(), edge_label_freq, options_,
                    &result.edge_assignment, &result.num_edge_clusters);
  }
  return result;
}

}  // namespace pghive::baselines
