#ifndef PGHIVE_BASELINES_SCHEMI_H_
#define PGHIVE_BASELINES_SCHEMI_H_

#include <cstdint>
#include <vector>

#include "pg/graph.h"
#include "util/status.h"

namespace pghive::baselines {

/// SchemI baseline options.
struct SchemiOptions {
  /// Types whose property sets have Jaccard >= this are merged in the
  /// refinement step ("groups similar node types based on shared labels").
  /// The loose threshold is the baseline's documented inaccuracy source: it
  /// over-merges structurally similar but semantically distinct types, and
  /// under property noise the shrunken key sets trigger further spurious
  /// merges.
  double merge_threshold = 0.5;
  /// Refinement rounds: each round re-scans every instance against every
  /// current type (the naive per-instance comparisons that make SchemI
  /// ~2x slower than PG-HIVE's single LSH pass; Fig. 5).
  size_t refinement_rounds = 3;
};

/// Result of a SchemI run: node and edge clusterings.
struct SchemiResult {
  std::vector<uint32_t> node_assignment;  ///< node id -> cluster.
  std::vector<uint32_t> edge_assignment;  ///< edge id -> cluster.
  size_t num_node_clusters = 0;
  size_t num_edge_clusters = 0;
};

/// Reimplementation of the SchemI baseline (Lbath, Bonifati & Harmer, EDBT
/// 2021) as characterized in §2 of PG-HIVE: each distinct label is treated
/// as a separate type and similar types are grouped by shared structure.
///
/// Faithfully reproduced limitations:
///   - assumes all nodes and edges are labeled (FailedPrecondition
///     otherwise),
///   - multi-labeled elements are forced into a single-label type (we pick
///     the globally least frequent label as the most specific one), mixing
///     or fragmenting label-set-defined ground-truth types,
///   - edge types are keyed by label alone, ignoring endpoints,
///   - the structure-based merge step over-merges under noise.
class SchemI {
 public:
  explicit SchemI(SchemiOptions options) : options_(options) {}

  util::StatusOr<SchemiResult> Discover(const pg::PropertyGraph& graph) const;

 private:
  SchemiOptions options_;
};

}  // namespace pghive::baselines

#endif  // PGHIVE_BASELINES_SCHEMI_H_
