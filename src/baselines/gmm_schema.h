#ifndef PGHIVE_BASELINES_GMM_SCHEMA_H_
#define PGHIVE_BASELINES_GMM_SCHEMA_H_

#include <cstdint>
#include <vector>

#include "baselines/gmm.h"
#include "pg/graph.h"
#include "util/status.h"

namespace pghive::baselines {

/// GMMSchema baseline options.
struct GmmSchemaOptions {
  /// Sampling cap for the EM fit — the published system "applies sampling
  /// techniques to improve performance on large graphs"; the mixture is fit
  /// on at most this many nodes and then all nodes are hard-assigned.
  size_t fit_sample_cap = 2000;
  /// Hierarchical refinement: components whose 2-way split improves BIC are
  /// split recursively up to this depth (0 disables). Under noise the
  /// inflated within-type variance triggers more splits, reproducing both
  /// the accuracy collapse and the runtime growth the paper reports.
  size_t split_depth = 2;
  GmmOptions gmm;
  uint64_t seed = 23;
};

/// Result of a GMMSchema run: a node clustering only (the baseline does not
/// infer edge types; Table 1).
struct GmmSchemaResult {
  /// node id -> cluster id.
  std::vector<uint32_t> node_assignment;
  size_t num_clusters = 0;
  size_t em_iterations = 0;  ///< Total EM iterations (drives Fig. 5 shape).
};

/// Reimplementation of the GMMSchema baseline (Bonifati, Dumbrava & Mir,
/// EDBT 2022) as described in §2 of PG-HIVE: hierarchical Gaussian-mixture
/// clustering of nodes over their property distributions, with one initial
/// component per observed label set (labels seed the mixture; properties
/// drive EM).
///
/// Limitations faithfully reproduced:
///   - nodes only (no edge types),
///   - requires a fully labeled dataset: returns FailedPrecondition when any
///     node lacks labels,
///   - clustering quality hinges on property distributions, so missing/noisy
///     properties blur the mixture and EM misassigns (the paper's collapse
///     beyond 20% noise),
///   - samples for performance, affecting completeness.
class GmmSchema {
 public:
  explicit GmmSchema(GmmSchemaOptions options) : options_(options) {}

  util::StatusOr<GmmSchemaResult> Discover(const pg::PropertyGraph& graph) const;

 private:
  GmmSchemaOptions options_;
};

}  // namespace pghive::baselines

#endif  // PGHIVE_BASELINES_GMM_SCHEMA_H_
