#include "baselines/gmm_schema.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/rng.h"

namespace pghive::baselines {

namespace {

// Log density of a diagonal Gaussian (duplicated from gmm.cc's internals to
// keep the leaf-assignment step self-contained).
double LogGaussian(const float* x, const double* mean, const double* var,
                   size_t dim) {
  double log_p = -0.5 * static_cast<double>(dim) * std::log(2.0 * M_PI);
  for (size_t d = 0; d < dim; ++d) {
    double diff = static_cast<double>(x[d]) - mean[d];
    log_p += -0.5 * std::log(var[d]) - 0.5 * diff * diff / var[d];
  }
  return log_p;
}

// One leaf of the hierarchical mixture.
struct Leaf {
  std::vector<double> mean;
  std::vector<double> var;
  double weight = 1.0;
};

// Single-Gaussian BIC of a point set (the "don't split" alternative).
double SingleGaussianBic(const std::vector<float>& data, size_t num,
                         size_t dim, double min_var) {
  std::vector<double> mean(dim, 0.0), var(dim, min_var);
  for (size_t i = 0; i < num; ++i) {
    for (size_t d = 0; d < dim; ++d) mean[d] += data[i * dim + d];
  }
  for (auto& m : mean) m /= static_cast<double>(num);
  for (size_t i = 0; i < num; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      double diff = data[i * dim + d] - mean[d];
      var[d] += diff * diff / static_cast<double>(num);
    }
  }
  double ll = 0.0;
  for (size_t i = 0; i < num; ++i) {
    ll += LogGaussian(&data[i * dim], mean.data(), var.data(), dim);
  }
  double params = 2.0 * static_cast<double>(dim);
  return -2.0 * ll + params * std::log(std::max<size_t>(num, 2));
}

// Recursively splits a point set while the 2-component fit beats the
// 1-component BIC; appends resulting leaves.
void SplitRecursive(const GaussianMixture& gmm, const GmmOptions& gmm_opts,
                    const std::vector<float>& data, size_t num, size_t dim,
                    size_t depth, size_t* em_iterations,
                    std::vector<Leaf>* leaves) {
  auto make_leaf = [&]() {
    Leaf leaf;
    leaf.mean.assign(dim, 0.0);
    leaf.var.assign(dim, gmm_opts.min_variance);
    for (size_t i = 0; i < num; ++i) {
      for (size_t d = 0; d < dim; ++d) leaf.mean[d] += data[i * dim + d];
    }
    for (auto& m : leaf.mean) m /= static_cast<double>(std::max<size_t>(num, 1));
    for (size_t i = 0; i < num; ++i) {
      for (size_t d = 0; d < dim; ++d) {
        double diff = data[i * dim + d] - leaf.mean[d];
        leaf.var[d] += diff * diff / static_cast<double>(num);
      }
    }
    leaf.weight = static_cast<double>(num);
    leaves->push_back(std::move(leaf));
  };

  if (depth == 0 || num < 40) {
    make_leaf();
    return;
  }
  GmmFit split = gmm.Fit(data, num, dim, 2);
  *em_iterations += split.iterations;
  double bic1 = SingleGaussianBic(data, num, dim, gmm_opts.min_variance);
  if (split.k < 2 || split.Bic(num) >= bic1) {
    make_leaf();
    return;
  }
  auto assign = GaussianMixture::Assign(split, data, num);
  std::vector<float> part[2];
  size_t counts[2] = {0, 0};
  for (size_t i = 0; i < num; ++i) {
    part[assign[i]].insert(part[assign[i]].end(), &data[i * dim],
                           &data[(i + 1) * dim]);
    ++counts[assign[i]];
  }
  if (counts[0] == 0 || counts[1] == 0) {
    make_leaf();
    return;
  }
  SplitRecursive(gmm, gmm_opts, part[0], counts[0], dim, depth - 1,
                 em_iterations, leaves);
  SplitRecursive(gmm, gmm_opts, part[1], counts[1], dim, depth - 1,
                 em_iterations, leaves);
}

}  // namespace

util::StatusOr<GmmSchemaResult> GmmSchema::Discover(
    const pg::PropertyGraph& graph) const {
  const size_t n = graph.num_nodes();
  if (n == 0) {
    return util::Status::FailedPrecondition("empty graph");
  }
  for (const pg::Node& node : graph.nodes()) {
    if (node.labels.empty()) {
      return util::Status::FailedPrecondition(
          "GMMSchema requires fully labeled datasets");
    }
  }

  // Feature space: the binary property-presence vector. Labels seed the
  // mixture (one initial component per distinct label set) but EM runs on
  // the property distributions, which is what makes the baseline noise-
  // sensitive.
  pg::Vocabulary& vocab = const_cast<pg::PropertyGraph&>(graph).vocab();
  std::unordered_map<uint32_t, uint32_t> token_to_group;
  std::vector<uint32_t> node_group(n);
  for (pg::NodeId i = 0; i < n; ++i) {
    uint32_t token = vocab.TokenForLabelSet(graph.node(i).labels);
    auto [it, inserted] = token_to_group.try_emplace(
        token, static_cast<uint32_t>(token_to_group.size()));
    node_group[i] = it->second;
  }
  const size_t k = token_to_group.size();
  const size_t dim = std::max<size_t>(1, vocab.num_keys());

  std::vector<float> features(n * dim, 0.0f);
  for (pg::NodeId i = 0; i < n; ++i) {
    for (const auto& [key, value] : graph.node(i).properties.entries()) {
      if (key < dim) features[i * dim + key] = 1.0f;
    }
  }

  // Initial means: per label-group property means.
  std::vector<double> init_means(k * dim, 0.0);
  std::vector<size_t> group_sizes(k, 0);
  for (pg::NodeId i = 0; i < n; ++i) {
    ++group_sizes[node_group[i]];
    for (size_t d = 0; d < dim; ++d) {
      init_means[node_group[i] * dim + d] += features[i * dim + d];
    }
  }
  for (size_t g = 0; g < k; ++g) {
    if (group_sizes[g] == 0) continue;
    for (size_t d = 0; d < dim; ++d) {
      init_means[g * dim + d] /= static_cast<double>(group_sizes[g]);
    }
  }

  GmmSchemaResult result;
  GaussianMixture gmm(options_.gmm);
  util::Rng rng(options_.seed);

  // Fit on a sample, hierarchically refine, assign everything.
  size_t fit_n = std::min(n, options_.fit_sample_cap);
  std::vector<float> sample;
  const std::vector<float>* fit_data = &features;
  if (fit_n < n) {
    auto idx = rng.SampleWithoutReplacement(n, fit_n);
    sample.resize(fit_n * dim);
    for (size_t i = 0; i < fit_n; ++i) {
      std::copy_n(&features[idx[i] * dim], dim, &sample[i * dim]);
    }
    fit_data = &sample;
  }
  GmmFit base = gmm.FitWithInit(*fit_data, fit_n, dim, k, init_means);
  result.em_iterations = base.iterations;

  // Hierarchical step: split each base component's sample points while BIC
  // keeps improving.
  auto base_assign = GaussianMixture::Assign(base, *fit_data, fit_n);
  std::vector<Leaf> leaves;
  for (size_t c = 0; c < base.k; ++c) {
    std::vector<float> members;
    size_t count = 0;
    for (size_t i = 0; i < fit_n; ++i) {
      if (base_assign[i] != c) continue;
      members.insert(members.end(), &(*fit_data)[i * dim],
                     &(*fit_data)[(i + 1) * dim]);
      ++count;
    }
    if (count == 0) continue;
    SplitRecursive(gmm, options_.gmm, members, count, dim,
                   options_.split_depth, &result.em_iterations, &leaves);
  }
  if (leaves.empty()) {
    return util::Status::Internal("GMMSchema produced no clusters");
  }
  double total_weight = 0;
  for (const Leaf& leaf : leaves) total_weight += leaf.weight;

  // Final hard assignment of every node to its most probable leaf.
  result.node_assignment.assign(n, 0);
  for (pg::NodeId i = 0; i < n; ++i) {
    double best = -1e300;
    uint32_t best_leaf = 0;
    for (size_t l = 0; l < leaves.size(); ++l) {
      double lp = std::log(std::max(leaves[l].weight / total_weight, 1e-12)) +
                  LogGaussian(&features[i * dim], leaves[l].mean.data(),
                              leaves[l].var.data(), dim);
      if (lp > best) {
        best = lp;
        best_leaf = static_cast<uint32_t>(l);
      }
    }
    result.node_assignment[i] = best_leaf;
  }
  result.num_clusters = leaves.size();
  return result;
}

}  // namespace pghive::baselines
