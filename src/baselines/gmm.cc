#include "baselines/gmm.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/status.h"

namespace pghive::baselines {

double GmmFit::Bic(size_t n) const {
  double params = static_cast<double>(k) * (2.0 * static_cast<double>(dim)) +
                  static_cast<double>(k) - 1.0;
  return -2.0 * log_likelihood + params * std::log(std::max<size_t>(n, 2));
}

namespace {

// Log density of a diagonal Gaussian at x.
double LogGaussian(const float* x, const double* mean, const double* var,
                   size_t dim) {
  double log_p = -0.5 * static_cast<double>(dim) * std::log(2.0 * M_PI);
  for (size_t d = 0; d < dim; ++d) {
    double diff = static_cast<double>(x[d]) - mean[d];
    log_p += -0.5 * std::log(var[d]) - 0.5 * diff * diff / var[d];
  }
  return log_p;
}

double LogSumExp(const std::vector<double>& xs) {
  double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

}  // namespace

GmmFit GaussianMixture::Fit(const std::vector<float>& data, size_t num,
                            size_t dim, size_t k) const {
  return FitWithInit(data, num, dim, k, {});
}

GmmFit GaussianMixture::FitWithInit(const std::vector<float>& data,
                                    size_t num, size_t dim, size_t k,
                                    const std::vector<double>& init_means)
    const {
  PGHIVE_CHECK(data.size() == num * dim);
  PGHIVE_CHECK(k >= 1);
  k = std::min(k, num);

  GmmFit fit;
  fit.k = k;
  fit.dim = dim;
  fit.means.assign(k * dim, 0.0);
  fit.variances.assign(k * dim, 1.0);
  fit.weights.assign(k, 1.0 / static_cast<double>(k));

  // Global variance for initialization.
  std::vector<double> global_mean(dim, 0.0);
  for (size_t i = 0; i < num; ++i) {
    for (size_t d = 0; d < dim; ++d) global_mean[d] += data[i * dim + d];
  }
  for (auto& m : global_mean) m /= static_cast<double>(num);
  std::vector<double> global_var(dim, options_.min_variance);
  for (size_t i = 0; i < num; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      double diff = data[i * dim + d] - global_mean[d];
      global_var[d] += diff * diff / static_cast<double>(num);
    }
  }

  if (init_means.size() == k * dim) {
    for (size_t c = 0; c < k; ++c) {
      for (size_t d = 0; d < dim; ++d) {
        fit.means[c * dim + d] = init_means[c * dim + d];
        fit.variances[c * dim + d] = global_var[d];
      }
    }
  } else {
    util::Rng rng(options_.seed);
    auto seeds = rng.SampleWithoutReplacement(num, k);
    for (size_t c = 0; c < k; ++c) {
      for (size_t d = 0; d < dim; ++d) {
        fit.means[c * dim + d] = data[seeds[c] * dim + d];
        fit.variances[c * dim + d] = global_var[d];
      }
    }
  }

  std::vector<double> resp(num * k);
  std::vector<double> log_probs(k);
  double prev_ll = -1e300;
  for (size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    fit.iterations = iter;
    // E step.
    double ll = 0.0;
    for (size_t i = 0; i < num; ++i) {
      for (size_t c = 0; c < k; ++c) {
        log_probs[c] = std::log(std::max(fit.weights[c], 1e-12)) +
                       LogGaussian(&data[i * dim], &fit.means[c * dim],
                                   &fit.variances[c * dim], dim);
      }
      double lse = LogSumExp(log_probs);
      ll += lse;
      for (size_t c = 0; c < k; ++c) {
        resp[i * k + c] = std::exp(log_probs[c] - lse);
      }
    }
    fit.log_likelihood = ll;
    // M step.
    for (size_t c = 0; c < k; ++c) {
      double nk = 1e-9;
      for (size_t i = 0; i < num; ++i) nk += resp[i * k + c];
      fit.weights[c] = nk / static_cast<double>(num);
      for (size_t d = 0; d < dim; ++d) {
        double mean = 0.0;
        for (size_t i = 0; i < num; ++i) {
          mean += resp[i * k + c] * data[i * dim + d];
        }
        mean /= nk;
        double var = options_.min_variance;
        for (size_t i = 0; i < num; ++i) {
          double diff = data[i * dim + d] - mean;
          var += resp[i * k + c] * diff * diff / nk;
        }
        fit.means[c * dim + d] = mean;
        fit.variances[c * dim + d] = var;
      }
    }
    if (std::abs(ll - prev_ll) <
        options_.tolerance * (std::abs(prev_ll) + 1.0)) {
      break;
    }
    prev_ll = ll;
  }
  return fit;
}

std::vector<uint32_t> GaussianMixture::Assign(const GmmFit& fit,
                                              const std::vector<float>& data,
                                              size_t num) {
  std::vector<uint32_t> assignment(num, 0);
  for (size_t i = 0; i < num; ++i) {
    double best = -1e300;
    uint32_t best_c = 0;
    for (size_t c = 0; c < fit.k; ++c) {
      double lp = std::log(std::max(fit.weights[c], 1e-12)) +
                  LogGaussian(&data[i * fit.dim], &fit.means[c * fit.dim],
                              &fit.variances[c * fit.dim], fit.dim);
      if (lp > best) {
        best = lp;
        best_c = static_cast<uint32_t>(c);
      }
    }
    assignment[i] = best_c;
  }
  return assignment;
}

}  // namespace pghive::baselines
