#ifndef PGHIVE_UTIL_PARSE_H_
#define PGHIVE_UTIL_PARSE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace pghive::util {

/// Strict base-10 integer parsing: the whole string must be one integer
/// (no trailing junk, no empty input), replacing the bool/out-param parsers
/// the CLI used to carry. Garbage returns ParseError instead of silently
/// falling back — an ignored typo in a knob would quietly change what gets
/// measured or served.
StatusOr<int64_t> ParseInt64(const std::string& text);

/// ParseInt64 plus an inclusive range check (OutOfRange on violation).
/// `what` names the knob in the error message ("--threads", "shards").
StatusOr<int64_t> ParseInt64InRange(const std::string& text, int64_t min,
                                    int64_t max, const std::string& what);

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_PARSE_H_
