#ifndef PGHIVE_UTIL_PARALLEL_GROUP_BY_H_
#define PGHIVE_UTIL_PARALLEL_GROUP_BY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive::util {

class ThreadPool;

/// Groups `keys` into dense ids in [0, num_groups), assigned in order of
/// first occurrence — exactly the ids a serial first-seen hash-map scan
/// would produce, at every pool size.
///
/// Parallel scheme (radix group-by): items are scattered into shards by the
/// top bits of their key (keys are expected to be well-mixed hashes), each
/// shard resolves key -> lowest item index with that key concurrently, and a
/// final sequential pass renumbers representatives in first-occurrence
/// order. Only that last O(n) loop is serial; it is a branch-and-increment
/// scan, not a hash-map build.
///
/// A null pool, a 1-thread pool, or a small input runs the serial scan.
std::vector<uint32_t> ParallelRadixGroupBy(const std::vector<uint64_t>& keys,
                                           ThreadPool* pool = nullptr);

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_PARALLEL_GROUP_BY_H_
