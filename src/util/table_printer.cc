#include "util/table_printer.h"

#include <cstdio>

namespace pghive::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto append_row = [&](std::string* out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out->append(row[c]);
      out->append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!out->empty() && out->back() == ' ') out->pop_back();
    out->push_back('\n');
  };
  std::string out;
  append_row(&out, headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

void TablePrinter::Print() const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string TablePrinter::Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace pghive::util
