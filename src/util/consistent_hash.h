#ifndef PGHIVE_UTIL_CONSISTENT_HASH_H_
#define PGHIVE_UTIL_CONSISTENT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pghive::util {

/// Consistent-hash ring mapping 64-bit keys onto shards. Each shard owns
/// `vnodes_per_shard` points on a uint64 ring (hashed from (seed, shard,
/// vnode)); a key belongs to the shard owning the first ring point at or
/// after the key's hash, wrapping at the top of the ring. The layout is a
/// pure function of (num_shards, vnodes_per_shard, seed) — same inputs,
/// same ring, on every host — which is what makes a sharded discovery run
/// reproducible and lets a future multi-machine deployment agree on
/// ownership without coordination.
///
/// Virtual nodes keep shard loads balanced (±a few percent at the default
/// 64 vnodes) and, when shards are later added or removed, bound the keys
/// that change owner to roughly 1/num_shards of the space — the classic
/// consistent-hashing contract.
class ConsistentHashRing {
 public:
  static constexpr size_t kDefaultVnodesPerShard = 64;

  /// `num_shards` must be >= 1 (a 1-shard ring maps everything to shard 0).
  explicit ConsistentHashRing(size_t num_shards,
                              size_t vnodes_per_shard = kDefaultVnodesPerShard,
                              uint64_t seed = 0x5AD5);

  /// Shard owning `key`, in [0, num_shards()). O(log(num_shards * vnodes)).
  uint32_t ShardFor(uint64_t key) const;

  size_t num_shards() const { return num_shards_; }
  size_t vnodes_per_shard() const { return vnodes_per_shard_; }

 private:
  size_t num_shards_;
  size_t vnodes_per_shard_;
  uint64_t seed_;
  // (ring point, shard) sorted by point; ties broken by shard id so the
  // ring is a total order even under point collisions.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_CONSISTENT_HASH_H_
