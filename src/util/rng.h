#ifndef PGHIVE_UTIL_RNG_H_
#define PGHIVE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive::util {

/// Deterministic 64-bit PRNG (xoshiro256**, seeded via SplitMix64).
/// Every stochastic component in the library takes an explicit seed so all
/// experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBool(double p);

  /// Poisson(lambda) via Knuth for small lambda, normal approx otherwise.
  int NextPoisson(double lambda);

  /// Returns k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher-Yates shuffles the index range [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Derives an independent child generator (for per-component seeding).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// 64-bit mix used for stateless hashing of ids (SplitMix64 finalizer).
uint64_t Mix64(uint64_t x);

/// Combines two hashes.
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_RNG_H_
