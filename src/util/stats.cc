#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace pghive::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double HarmonicMean(double a, double b) {
  if (a + b <= 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

}  // namespace pghive::util
