#ifndef PGHIVE_UTIL_TABLE_PRINTER_H_
#define PGHIVE_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace pghive::util {

/// Renders aligned plain-text tables for the benchmark harness output
/// (the "same rows the paper reports" printouts).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; missing cells are blank, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header separator line.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

  /// Formats a double with the given number of decimals.
  static std::string Fmt(double v, int decimals = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_TABLE_PRINTER_H_
