#include "util/parse.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace pghive::util {

StatusOr<int64_t> ParseInt64(const std::string& text) {
  if (text.empty()) return Status::ParseError("empty integer");
  // strtoll silently skips leading whitespace; a knob value of " 3" should
  // be rejected like any other non-integer, not quietly accepted.
  if (std::isspace(static_cast<unsigned char>(text.front()))) {
    return Status::ParseError("'" + text + "' is not an integer");
  }
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::ParseError("'" + text + "' is not an integer");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("'" + text + "' overflows a 64-bit integer");
  }
  return static_cast<int64_t>(parsed);
}

StatusOr<int64_t> ParseInt64InRange(const std::string& text, int64_t min,
                                    int64_t max, const std::string& what) {
  StatusOr<int64_t> parsed = ParseInt64(text);
  if (!parsed.ok()) {
    return Status::ParseError(what + ": " + parsed.status().message());
  }
  if (*parsed < min || *parsed > max) {
    return Status::OutOfRange(what + " must be in [" + std::to_string(min) +
                              ", " + std::to_string(max) + "], got " + text);
  }
  return *parsed;
}

}  // namespace pghive::util
