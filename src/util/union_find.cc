#include "util/union_find.h"

#include <numeric>

#include "util/status.h"

namespace pghive::util {

UnionFind::UnionFind(size_t n)
    : parent_(n), rank_(n, 0), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

uint32_t UnionFind::Find(uint32_t x) {
  PGHIVE_CHECK(x < parent_.size());
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

std::vector<uint32_t> UnionFind::ComponentIds() {
  std::vector<uint32_t> ids(parent_.size(), UINT32_MAX);
  std::vector<uint32_t> root_to_id(parent_.size(), UINT32_MAX);
  uint32_t next = 0;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    uint32_t r = Find(i);
    if (root_to_id[r] == UINT32_MAX) root_to_id[r] = next++;
    ids[i] = root_to_id[r];
  }
  return ids;
}

}  // namespace pghive::util
