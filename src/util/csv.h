#ifndef PGHIVE_UTIL_CSV_H_
#define PGHIVE_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace pghive::util {

/// Splits one CSV line honoring double-quote escaping ("" inside quotes).
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Quotes a field if it contains a comma, quote, or newline.
std::string CsvEscape(const std::string& field);

/// Joins fields into one CSV line (no trailing newline).
std::string JoinCsvLine(const std::vector<std::string>& fields);

/// A fully-parsed CSV file: the header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Reads an entire CSV file; the first line is the header.
StatusOr<CsvTable> ReadCsvFile(const std::string& path);

/// Writes a CSV file (header + rows).
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_CSV_H_
