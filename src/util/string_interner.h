#ifndef PGHIVE_UTIL_STRING_INTERNER_H_
#define PGHIVE_UTIL_STRING_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pghive::util {

/// Maps strings to dense uint32 ids and back. Used to intern labels and
/// property keys so the hot pipeline paths work on integers.
///
/// Ids are assigned in first-seen order starting at 0 and are stable for the
/// lifetime of the interner.
class StringInterner {
 public:
  static constexpr uint32_t kInvalidId = UINT32_MAX;

  StringInterner() = default;

  /// Returns the id for `s`, interning it if unseen.
  uint32_t Intern(std::string_view s);

  /// Returns the id for `s`, or kInvalidId if it was never interned.
  uint32_t Find(std::string_view s) const;

  /// Returns the string for a valid id. Aborts on out-of-range ids.
  const std::string& Get(uint32_t id) const;

  bool Contains(std::string_view s) const { return Find(s) != kInvalidId; }
  size_t size() const { return strings_.size(); }
  bool empty() const { return strings_.empty(); }

  /// All interned strings in id order.
  const std::vector<std::string>& strings() const { return strings_; }

  /// Replaces the contents with `strings` (ids assigned by position),
  /// discarding whatever was interned before. Returns false — leaving the
  /// interner unchanged — if `strings` contains a duplicate, which can never
  /// come from a faithful snapshot. Snapshot restore uses this to put the id
  /// assignment back exactly as it was at save time.
  bool Rebuild(std::vector<std::string> strings);

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_STRING_INTERNER_H_
