#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>

namespace pghive::util {

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(ResolveThreads(num_threads)) {
  if (num_threads_ <= 1) return;
  // The calling thread executes chunks too (it helps drain the queue while
  // blocked in ParallelFor), so num_threads total parallelism needs only
  // num_threads - 1 workers.
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::HelpWhileWaiting(std::future<void>& future) {
  for (;;) {
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      return;
    }
    if (!RunOneTask()) {
      // Queue drained and the future still pending: the awaited task is
      // executing on another thread (a queued task cannot linger once the
      // queue is observed empty — it was popped). Block normally.
      future.wait();
      return;
    }
  }
}

namespace {

/// Completion state shared by the chunks of one ParallelFor call.
struct ForState {
  std::mutex mutex;
  std::condition_variable done;
  size_t remaining = 0;
  std::vector<std::exception_ptr> errors;
};

}  // namespace

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  if (workers_.empty() || range <= grain) {
    fn(begin, end);
    return;
  }

  const size_t num_chunks = (range + grain - 1) / grain;
  auto state = std::make_shared<ForState>();
  state->remaining = num_chunks;
  state->errors.assign(num_chunks, nullptr);
  // fn is captured by reference: this call blocks until every chunk has
  // completed, so the reference outlives all chunk tasks.
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * grain;
    const size_t hi = std::min(end, lo + grain);
    Enqueue([state, &fn, c, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        state->errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->remaining == 0) state->done.notify_all();
    });
  }

  // Help drain the queue while waiting. The popped task may belong to an
  // unrelated parallel section (or be a whole submitted pipeline track);
  // either way it never blocks on this chunk set, so progress is guaranteed.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->remaining == 0) break;
    }
    if (!RunOneTask()) {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->done.wait(lock, [&state] { return state->remaining == 0; });
      break;
    }
  }

  for (size_t c = 0; c < num_chunks; ++c) {
    if (state->errors[c]) std::rethrow_exception(state->errors[c]);
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (pool == nullptr) {
    if (end > begin) fn(begin, end);
    return;
  }
  pool->ParallelFor(begin, end, grain, fn);
}

}  // namespace pghive::util
