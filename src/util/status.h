#ifndef PGHIVE_UTIL_STATUS_H_
#define PGHIVE_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace pghive::util {

/// Error categories used across the library. The public API never throws;
/// fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIoError,
  kInternal,
};

/// Returns a short human-readable name for a status code ("OK", "NOT_FOUND").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-Status union: the return type of every fallible factory path
/// (graph loading, schema parsing, option parsing, session creation) so
/// errors propagate without sentinel values or bool/out-param pairs.
/// Access to value() / operator* on an error aborts, so callers must check
/// ok() (or use value_or) first.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : data_(std::move(value)) {}          // NOLINT(runtime/explicit)
  StatusOr(Status status) : data_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }
  /// The status code (kOk when this holds a value).
  StatusCode code() const { return status().code(); }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    if (ok()) return std::get<T>(data_);
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

/// Legacy spelling of StatusOr; new code should say StatusOr.
template <typename T>
using Result = StatusOr<T>;

}  // namespace pghive::util

/// Aborts with a message when `cond` is false. Used for internal invariants
/// only (never for user input, which goes through Status).
#define PGHIVE_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "PGHIVE_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#endif  // PGHIVE_UTIL_STATUS_H_
