#include "util/string_interner.h"

#include "util/status.h"

namespace pghive::util {

uint32_t StringInterner::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

uint32_t StringInterner::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return kInvalidId;
  return it->second;
}

const std::string& StringInterner::Get(uint32_t id) const {
  PGHIVE_CHECK(id < strings_.size());
  return strings_[id];
}

bool StringInterner::Rebuild(std::vector<std::string> strings) {
  std::unordered_map<std::string, uint32_t> index;
  index.reserve(strings.size());
  for (size_t i = 0; i < strings.size(); ++i) {
    if (!index.emplace(strings[i], static_cast<uint32_t>(i)).second) {
      return false;
    }
  }
  strings_ = std::move(strings);
  index_ = std::move(index);
  return true;
}

}  // namespace pghive::util
