#ifndef PGHIVE_UTIL_UNION_FIND_H_
#define PGHIVE_UTIL_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive::util {

/// Disjoint-set forest with path compression and union by rank. Used by the
/// OR-amplified LSH clustering and by MinHash banding.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// Returns the representative of x's set (with path compression).
  uint32_t Find(uint32_t x);

  /// Merges the sets containing a and b. Returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b);

  /// Number of elements.
  size_t size() const { return parent_.size(); }

  /// Number of disjoint sets currently.
  size_t num_sets() const { return num_sets_; }

  /// Returns, for every element, a dense component id in [0, num_sets).
  /// Component ids are assigned in order of first appearance.
  std::vector<uint32_t> ComponentIds();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_sets_;
};

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_UNION_FIND_H_
