#ifndef PGHIVE_UTIL_SIMD_H_
#define PGHIVE_UTIL_SIMD_H_

#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace pghive::util {

/// Dot product of two float spans accumulated in double precision over a
/// fixed 4-lane reduction tree: element i always lands in lane (i & 3) and
/// the lanes combine as (l0 + l1) + (l2 + l3).
///
/// The lane structure is the determinism contract: the AVX2 path (4 doubles
/// per vector, separate multiply and add — never FMA) and the scalar
/// fallback evaluate the exact same IEEE operation tree, so a build with
/// either path produces bit-identical sums. The scalar form is also what
/// auto-vectorizers turn into packed-double code on their own, which is the
/// point of handing the hot loops contiguous columns.
inline double DotF32(const float* a, const float* b, size_t n) {
#if defined(__AVX2__)
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d va = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    lanes[i & 3] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
#else
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes[0] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    lanes[1] += static_cast<double>(a[i + 1]) * static_cast<double>(b[i + 1]);
    lanes[2] += static_cast<double>(a[i + 2]) * static_cast<double>(b[i + 2]);
    lanes[3] += static_cast<double>(a[i + 3]) * static_cast<double>(b[i + 3]);
  }
  for (; i < n; ++i) {
    lanes[i & 3] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
#endif
}

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_SIMD_H_
