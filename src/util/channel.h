#ifndef PGHIVE_UTIL_CHANNEL_H_
#define PGHIVE_UTIL_CHANNEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pghive::util {

/// A bounded single-producer/single-consumer handoff queue: Push blocks
/// while the channel is full, Pop blocks while it is empty, and Close wakes
/// everyone up. Individual operations are mutex-protected, so extra threads
/// on either side would not corrupt the queue — but the WaitNotFull
/// reservation contract below (and with it the "at most capacity items
/// outside the consumer" memory bound) holds only with ONE producer: two
/// producers can both pass WaitNotFull on the same last slot and end up
/// building capacity+1 items. The pipelined batch executor uses the channel
/// to hand prepared batches from its single preprocess thread to the
/// coordinator with a fixed lookahead window.
///
/// Ordering contract: items pop in push order, and the mutex handoff gives
/// the consumer a happens-before edge on everything the producer wrote
/// before Push — which is what lets the pipeline pass mutable state
/// (vectorizer caches, feature matrices) across threads without extra
/// synchronization.
template <typename T>
class BoundedChannel {
 public:
  /// capacity == 0 is treated as 1 (a handoff slot must exist).
  explicit BoundedChannel(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Blocks until there is room or the channel closes. Returns false (and
  /// drops `value`) if the channel was closed — the producer's signal to
  /// stop early.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until the channel has room for a Push or is closed; returns
  /// false iff closed. Lets a single producer reserve its slot *before*
  /// building an expensive item, so at most `capacity` items exist outside
  /// the consumer at any instant (a bare blocking Push would let the
  /// producer hold one extra fully-built item while waiting). With one
  /// producer, a Push right after a true return never blocks.
  bool WaitNotFull() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    return !closed_;
  }

  /// Blocks until an item arrives or the channel closes. A closed channel
  /// still drains: buffered items are delivered before nullopt.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Idempotent. Pending and future Push calls return false; Pop drains the
  /// buffer and then returns nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_CHANNEL_H_
