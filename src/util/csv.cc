#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace pghive::util {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Skip CR in CRLF files.
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string JoinCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out.push_back(',');
    out += CsvEscape(fields[i]);
  }
  return out;
}

StatusOr<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = SplitCsvLine(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) return Status::ParseError("empty CSV file: " + path);
  return table;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << JoinCsvLine(table.header) << "\n";
  for (const auto& row : table.rows) out << JoinCsvLine(row) << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace pghive::util
