#ifndef PGHIVE_UTIL_TIMER_H_
#define PGHIVE_UTIL_TIMER_H_

#include <chrono>

namespace pghive::util {

/// Wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_TIMER_H_
