#include "util/consistent_hash.h"

#include <algorithm>

#include "util/rng.h"

namespace pghive::util {

ConsistentHashRing::ConsistentHashRing(size_t num_shards,
                                       size_t vnodes_per_shard, uint64_t seed)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      vnodes_per_shard_(vnodes_per_shard == 0 ? 1 : vnodes_per_shard),
      seed_(seed) {
  ring_.reserve(num_shards_ * vnodes_per_shard_);
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    for (size_t vnode = 0; vnode < vnodes_per_shard_; ++vnode) {
      uint64_t point =
          Mix64(HashCombine(HashCombine(seed_, shard), vnode));
      ring_.emplace_back(point, shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

uint32_t ConsistentHashRing::ShardFor(uint64_t key) const {
  if (num_shards_ == 1) return 0;
  uint64_t h = Mix64(key ^ seed_);
  // First ring point at or after h; wrap to the lowest point past the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace pghive::util
