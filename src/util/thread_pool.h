#ifndef PGHIVE_UTIL_THREAD_POOL_H_
#define PGHIVE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace pghive::util {

/// A fixed-size worker pool that every hot pipeline path drains into.
///
/// Determinism contract: ParallelFor splits [begin, end) into chunks whose
/// boundaries depend only on (begin, end, grain) — never on the worker count
/// or on scheduling — so any body that writes only locations derived from
/// its indices produces bit-identical output at every pool size. Stochastic
/// bodies must pre-split their RNG seeds per index or per chunk.
///
/// Nesting contract: a thread blocked in ParallelFor helps drain the shared
/// queue while it waits, so tasks may themselves call ParallelFor or Submit
/// on the same pool without deadlocking (nested parallel sections flatten
/// into the one queue).
class ThreadPool {
 public:
  /// num_threads == 0 sizes the pool to the hardware concurrency;
  /// num_threads == 1 spawns no workers and runs everything inline on the
  /// calling thread (exactly the serial pipeline).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The resolved parallelism (>= 1; 1 means fully inline).
  size_t num_threads() const { return num_threads_; }

  /// Schedules fn on the pool and returns its future. Exceptions thrown by
  /// fn surface on future.get(). With a 1-thread pool, fn runs inline.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return future;
    }
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(chunk_begin, chunk_end) over every grain-sized chunk of
  /// [begin, end) and blocks until all chunks finished. The calling thread
  /// executes chunks too. If several chunks throw, the exception of the
  /// lowest-index chunk is rethrown (deterministic regardless of timing).
  /// grain == 0 is treated as grain == 1; an empty range is a no-op.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Blocks until `future` is ready, running queued tasks while waiting.
  /// This is the nesting-contract wait: a task running ON a pool worker
  /// that waits for other pool work must wait through here — a plain
  /// future.get() does not drain the queue, so on a pool whose only free
  /// worker is the waiter the awaited task would never start (the pghived
  /// job-lane runner hit exactly this with a 2-thread pool). Does not
  /// consume the result: call future.get() afterwards (it is ready).
  void HelpWhileWaiting(std::future<void>& future);

  /// Resolves a user-facing thread knob: 0 -> hardware concurrency
  /// (at least 1), anything else verbatim.
  static size_t ResolveThreads(size_t requested);

 private:
  void Enqueue(std::function<void()> task);
  /// Pops and runs one queued task; returns false if the queue was empty.
  bool RunOneTask();
  void WorkerLoop();

  size_t num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// Pool-optional ParallelFor: a null pool (or a 1-thread pool) runs the
/// whole range inline, which is the serial path every caller falls back to.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_THREAD_POOL_H_
