#include "util/parallel_group_by.h"

#include <algorithm>
#include <unordered_map>

#include "util/thread_pool.h"

namespace pghive::util {

namespace {

/// Below this size the serial scan wins over shard setup.
constexpr size_t kSerialCutoff = 1 << 13;

std::vector<uint32_t> SerialGroupBy(const std::vector<uint64_t>& keys) {
  std::vector<uint32_t> assignment(keys.size());
  std::unordered_map<uint64_t, uint32_t> first;
  first.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto [it, inserted] =
        first.try_emplace(keys[i], static_cast<uint32_t>(first.size()));
    assignment[i] = it->second;
  }
  return assignment;
}

}  // namespace

std::vector<uint32_t> ParallelRadixGroupBy(const std::vector<uint64_t>& keys,
                                           ThreadPool* pool) {
  const size_t n = keys.size();
  const size_t threads = pool == nullptr ? 1 : pool->num_threads();
  if (threads <= 1 || n < kSerialCutoff) return SerialGroupBy(keys);

  // Shard count: a few shards per thread for load balance under skewed key
  // distributions, capped so the chunk x shard scatter stays small.
  size_t shards = 1;
  while (shards < threads * 4 && shards < 256) shards <<= 1;
  int shift = 64;
  for (size_t s = shards; s > 1; s >>= 1) --shift;

  // Phase 1 — scatter: each chunk routes its item indices (in order) into
  // per-shard lists. Chunks are disjoint, so no synchronization is needed,
  // and concatenating a shard's lists in chunk order recovers the global
  // item order within the shard.
  const size_t grain = std::max<size_t>(kSerialCutoff, n / (threads * 8));
  const size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::vector<std::vector<uint32_t>>> scatter(
      num_chunks, std::vector<std::vector<uint32_t>>(shards));
  pool->ParallelFor(0, num_chunks, 1, [&](size_t clo, size_t chi) {
    for (size_t c = clo; c < chi; ++c) {
      auto& lists = scatter[c];
      const size_t reserve = grain / shards + 8;
      for (auto& list : lists) list.reserve(reserve);
      const size_t lo = c * grain;
      const size_t hi = std::min(n, lo + grain);
      for (size_t i = lo; i < hi; ++i) {
        lists[keys[i] >> shift].push_back(static_cast<uint32_t>(i));
      }
    }
  });

  // Phase 2 — per-shard resolve: rep[i] = lowest item index sharing i's key.
  // Each shard owns a disjoint set of items, so rep writes never race.
  std::vector<uint32_t> rep(n);
  pool->ParallelFor(0, shards, 1, [&](size_t slo, size_t shi) {
    std::unordered_map<uint64_t, uint32_t> first;
    for (size_t s = slo; s < shi; ++s) {
      size_t count = 0;
      for (size_t c = 0; c < num_chunks; ++c) count += scatter[c][s].size();
      first.clear();
      first.reserve(count);
      for (size_t c = 0; c < num_chunks; ++c) {
        for (uint32_t i : scatter[c][s]) {
          auto [it, inserted] = first.try_emplace(keys[i], i);
          rep[i] = it->second;
        }
      }
    }
  });

  // Phase 3 — sequential renumber in first-occurrence order. rep[i] <= i,
  // so the representative's id is always assigned before it is read.
  std::vector<uint32_t> assignment(n);
  uint32_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    assignment[i] = rep[i] == i ? next++ : assignment[rep[i]];
  }
  return assignment;
}

}  // namespace pghive::util
