#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/status.h"

namespace pghive::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(&state);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t n) {
  PGHIVE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

int Rng::NextPoisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    double l = std::exp(-lambda);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation for large lambda.
  double v = lambda + std::sqrt(lambda) * NextGaussian();
  return v < 0 ? 0 : static_cast<int>(v + 0.5);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  PGHIVE_CHECK(k <= n);
  // Floyd's algorithm would need a set; for our sizes partial Fisher-Yates
  // over an index array is simple and fast enough.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  return SampleWithoutReplacement(n, n);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace pghive::util
