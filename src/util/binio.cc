#include "util/binio.h"

#include <cstring>

namespace pghive::util {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF32(std::string* out, float v) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s);
}

void PutU32Vector(std::string* out, const std::vector<uint32_t>& v) {
  PutU64(out, v.size());
  for (uint32_t x : v) PutU32(out, x);
}

void PutU64Vector(std::string* out, const std::vector<uint64_t>& v) {
  PutU64(out, v.size());
  for (uint64_t x : v) PutU64(out, x);
}

void PutU64Set(std::string* out, const std::set<uint64_t>& v) {
  PutU64(out, v.size());
  for (uint64_t x : v) PutU64(out, x);
}

void PutF32Vector(std::string* out, const std::vector<float>& v) {
  PutU64(out, v.size());
  for (float x : v) PutF32(out, x);
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const Crc32Table table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

uint8_t ByteReader::ReadU8() {
  if (!Has(1)) return 0;
  return static_cast<uint8_t>(bytes_[pos_++]);
}

uint32_t ByteReader::ReadU32() {
  if (!Has(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++])) << (8 * i);
  }
  return v;
}

uint64_t ByteReader::ReadU64() {
  if (!Has(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++])) << (8 * i);
  }
  return v;
}

float ByteReader::ReadF32() {
  uint32_t bits = ReadU32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0f;
}

double ByteReader::ReadF64() {
  uint64_t bits = ReadU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

uint64_t ByteReader::ReadVarint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (!Has(1)) return 0;
    uint8_t byte = static_cast<uint8_t>(bytes_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical trailing bits past 64 (shift 63 holds one bit).
      if (shift == 63 && (byte & 0x7e) != 0) {
        ok_ = false;
        return 0;
      }
      return v;
    }
  }
  ok_ = false;  // More than 10 continuation bytes: not a 64-bit varint.
  return 0;
}

bool ByteReader::SaneCount(uint64_t n, uint64_t width) {
  if (n > bytes_.size() || !Has(n * width)) {
    ok_ = false;
    return false;
  }
  return true;
}

std::string_view ByteReader::ReadBytes(size_t n) {
  if (!Has(n)) return {};
  std::string_view view = bytes_.substr(pos_, n);
  pos_ += n;
  return view;
}

bool ByteReader::ReadString(std::string* out) {
  uint64_t n = ReadVarint();
  if (!SaneCount(n, 1)) return false;
  out->assign(ReadBytes(n));
  return ok_;
}

bool ByteReader::ReadU32Vector(std::vector<uint32_t>* v) {
  uint64_t n = ReadU64();
  if (!SaneCount(n, 4)) return false;
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) v->push_back(ReadU32());
  return ok_;
}

bool ByteReader::ReadU64Vector(std::vector<uint64_t>* v) {
  uint64_t n = ReadU64();
  if (!SaneCount(n, 8)) return false;
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) v->push_back(ReadU64());
  return ok_;
}

bool ByteReader::ReadU64Set(std::set<uint64_t>* v) {
  uint64_t n = ReadU64();
  if (!SaneCount(n, 8)) return false;
  for (uint64_t i = 0; i < n; ++i) v->insert(ReadU64());
  return ok_;
}

bool ByteReader::ReadF32Vector(std::vector<float>* v) {
  uint64_t n = ReadU64();
  if (!SaneCount(n, 4)) return false;
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) v->push_back(ReadF32());
  return ok_;
}

void AppendSection(std::string* out, uint32_t id, std::string_view payload) {
  PutU32(out, id);
  PutU64(out, payload.size());
  out->append(payload);
  PutU32(out, Crc32(payload));
}

bool ReadSection(ByteReader* in, uint32_t* id, std::string_view* payload) {
  *id = in->ReadU32();
  uint64_t length = in->ReadU64();
  if (!in->SaneCount(length, 1)) return false;
  *payload = in->ReadBytes(length);
  uint32_t crc = in->ReadU32();
  if (!in->ok()) return false;
  if (crc != Crc32(*payload)) {
    in->Fail();
    return false;
  }
  return true;
}

}  // namespace pghive::util
