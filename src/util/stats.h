#ifndef PGHIVE_UTIL_STATS_H_
#define PGHIVE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace pghive::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a vector (0 if empty).
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (0 if fewer than 2 elements).
double StdDev(const std::vector<double>& xs);

/// p-th percentile (0 <= p <= 100) by linear interpolation of the sorted
/// copy. Returns 0 for an empty vector.
double Percentile(std::vector<double> xs, double p);

/// Harmonic mean of two non-negative values (the F1 combination rule).
double HarmonicMean(double a, double b);

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_STATS_H_
