#ifndef PGHIVE_UTIL_BINIO_H_
#define PGHIVE_UTIL_BINIO_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pghive::util {

/// Little-endian binary framing shared by every binary format in the repo —
/// the schema snapshot (core/serialize), the full-state snapshot
/// (core::PgHive::SaveState), schema-diff changefeed records
/// (core/schema_diff), and the pghived session state files. One reader/writer
/// pair keeps the bounds-checking discipline identical everywhere: a length
/// prefix is never trusted until it has been clamped against the remaining
/// payload, and framed sections carry a CRC-32 so a flipped bit anywhere in a
/// payload is caught before any structure is built from it.

// --- Fixed-width little-endian writers ---------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
/// IEEE-754 bit pattern, little-endian: round trips are bit-exact, which the
/// checkpoint/resume byte-identity guarantee depends on.
void PutF32(std::string* out, float v);
void PutF64(std::string* out, double v);
/// Unsigned LEB128.
void PutVarint(std::string* out, uint64_t v);
/// Varint length prefix + raw bytes.
void PutString(std::string* out, std::string_view s);

void PutU32Vector(std::string* out, const std::vector<uint32_t>& v);
void PutU64Vector(std::string* out, const std::vector<uint64_t>& v);
void PutU64Set(std::string* out, const std::set<uint64_t>& v);
void PutF32Vector(std::string* out, const std::vector<float>& v);

// --- CRC-32 (IEEE reflected polynomial, the zlib/ethernet one) ---------------

uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

// --- Reader ------------------------------------------------------------------

/// Sequential little-endian reader. Every Read* checks remaining bytes; the
/// first failure latches into ok() so callers can string reads together and
/// test once at the end. Reads after a failure return zero values and never
/// advance, so a truncated or hostile payload can't walk out of bounds or
/// trigger a huge allocation.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return ok_ ? bytes_.size() - pos_ : 0; }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  void Fail() { ok_ = false; }

  /// True iff at least `n` bytes remain; latches failure otherwise.
  bool Has(size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) ok_ = false;
    return ok_;
  }

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadF32();
  double ReadF64();
  uint64_t ReadVarint();

  /// Clamps an untrusted element count before any reserve()/resize(): a
  /// valid count can never exceed the remaining payload, so this also blocks
  /// n*width overflow. Latches failure when the count is insane.
  bool SaneCount(uint64_t n, uint64_t width);

  /// A view of the next `n` bytes (valid while the source outlives it).
  std::string_view ReadBytes(size_t n);

  /// Varint length prefix (SaneCount-clamped) + raw bytes.
  bool ReadString(std::string* out);

  bool ReadU32Vector(std::vector<uint32_t>* v);
  bool ReadU64Vector(std::vector<uint64_t>* v);
  bool ReadU64Set(std::set<uint64_t>* v);
  bool ReadF32Vector(std::vector<float>* v);

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- CRC-framed sections -----------------------------------------------------

/// One section: u32 id, u64 payload length, payload bytes, u32 CRC-32 of the
/// payload. The snapshot formats are a flat sequence of these; unknown ids
/// can be skipped without understanding their contents, which is how the
/// formats stay extensible under the version/compat policy.
void AppendSection(std::string* out, uint32_t id, std::string_view payload);

/// Reads the next section header + payload and verifies the CRC. On
/// truncation, an insane length, or a CRC mismatch the reader latches
/// failure and false is returned.
bool ReadSection(ByteReader* in, uint32_t* id, std::string_view* payload);

}  // namespace pghive::util

#endif  // PGHIVE_UTIL_BINIO_H_
