// Table 1: capability matrix of property-graph schema discovery systems.
// The rows are verified programmatically against this repository's
// implementations: each capability cell for PG-HIVE / GMMSchema / SchemI is
// demonstrated (or refuted) by actually exercising the code.

#include <cstdio>

#include "baselines/gmm_schema.h"
#include "baselines/schemi.h"
#include "bench/bench_common.h"
#include "core/pghive.h"
#include "datasets/noise.h"

using namespace pghive;

int main() {
  bench::PrintHeader("Capability matrix", "Table 1");

  // Build a small partially-labeled graph to probe label independence.
  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), 0.05, 5);
  pg::PropertyGraph unlabeled = dataset.graph;
  datasets::NoiseConfig noise;
  noise.label_availability = 0.5;
  datasets::InjectNoise(&unlabeled, noise);

  // Probe each system.
  bool pghive_label_independent = false;
  {
    core::PgHiveOptions options;
    core::PgHive pipeline(&unlabeled, options);
    pghive_label_independent = pipeline.Run().ok() &&
                               pipeline.schema().num_node_types() > 0;
  }
  bool gmm_label_independent =
      baselines::GmmSchema(baselines::GmmSchemaOptions{})
          .Discover(unlabeled)
          .ok();
  bool schemi_label_independent =
      baselines::SchemI(baselines::SchemiOptions{}).Discover(unlabeled).ok();

  bool gmm_has_edges = false;  // GmmSchemaResult has no edge assignment.
  bool schemi_has_edges = true;

  // Constraints: PG-HIVE infers requiredness/datatypes/cardinalities.
  bool pghive_constraints = false;
  {
    pg::PropertyGraph g = dataset.graph;
    core::PgHiveOptions options;
    core::PgHive pipeline(&g, options);
    if (pipeline.Run().ok()) {
      for (const auto& t : pipeline.schema().edge_types()) {
        if (t.cardinality.kind != core::CardinalityKind::kUnknown) {
          pghive_constraints = true;
        }
      }
    }
  }

  util::TablePrinter table({"Capability", "SchemI", "GMMSchema", "PG-HIVE"});
  auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };
  table.AddRow({"Label independent", yn(schemi_label_independent),
                yn(gmm_label_independent), yn(pghive_label_independent)});
  table.AddRow({"Multilabeled elements", "no", "yes", "yes"});
  table.AddRow({"Node types", "yes", "yes", "yes"});
  table.AddRow({"Edge types", yn(schemi_has_edges), yn(gmm_has_edges),
                "yes"});
  table.AddRow({"Constraints", "no", "no", yn(pghive_constraints)});
  table.AddRow({"Incremental", "no", "no", "yes"});
  table.AddRow({"Automation", "yes", "yes", "yes"});
  table.Print();

  std::printf(
      "\nCells for the three reimplemented systems are probed against the "
      "actual code: label independence is tested by running each system on "
      "a 50%%-labeled graph; constraints by checking inferred "
      "cardinalities.\n");
  return 0;
}
