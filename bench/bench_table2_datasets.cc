// Table 2: dataset statistics. Prints, for every zoo dataset, the generated
// (scaled) statistics next to the nominal sizes the paper reports, plus the
// schema-shape columns (types / labels / patterns) that the synthetic specs
// are designed to reproduce.

#include <cstdio>

#include "bench/bench_common.h"

using namespace pghive;

int main() {
  double scale = eval::EnvScale();
  bench::PrintHeader("Dataset statistics", "Table 2");
  std::printf("scale factor: %.2f (set PGHIVE_SCALE to change)\n\n", scale);

  util::TablePrinter table({"Dataset", "Nodes", "Edges", "NodeTypes",
                            "EdgeTypes", "NodeLabels", "EdgeLabels",
                            "NodePat", "EdgePat", "R/S", "Paper nodes",
                            "Paper edges"});
  for (datasets::Dataset& d : bench::GenerateZoo(scale)) {
    pg::PropertyGraph::Stats stats = d.graph.ComputeStats();
    table.AddRow({d.spec.name, std::to_string(stats.num_nodes),
                  std::to_string(stats.num_edges),
                  std::to_string(d.spec.num_node_types()),
                  std::to_string(d.spec.num_edge_types()),
                  std::to_string(stats.num_node_labels),
                  std::to_string(stats.num_edge_labels),
                  std::to_string(stats.num_node_patterns),
                  std::to_string(stats.num_edge_patterns),
                  d.spec.real ? "R" : "S",
                  std::to_string(d.spec.paper_nodes),
                  std::to_string(d.spec.paper_edges)});
  }
  table.Print();
  return 0;
}
