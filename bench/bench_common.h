#ifndef PGHIVE_BENCH_BENCH_COMMON_H_
#define PGHIVE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <vector>

#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "eval/harness.h"
#include "util/table_printer.h"

namespace pghive::bench {

/// Generates all eight zoo datasets at the environment scale. Seeds are
/// fixed so every bench sees the same graphs.
inline std::vector<datasets::Dataset> GenerateZoo(double scale) {
  std::vector<datasets::Dataset> out;
  uint64_t seed = 0xD5;
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    out.push_back(datasets::Generate(spec, scale, seed++));
  }
  return out;
}

/// The paper's noise grid (Fig. 4/5): property removal fractions.
inline std::vector<double> NoiseGrid() { return {0.0, 0.1, 0.2, 0.3, 0.4}; }

/// The paper's label-availability scenarios.
inline std::vector<double> LabelGrid() { return {1.0, 0.5, 0.0}; }

/// All four compared methods.
inline std::vector<eval::Method> AllMethods() {
  return {eval::Method::kPgHiveElsh, eval::Method::kPgHiveMinHash,
          eval::Method::kGmmSchema, eval::Method::kSchemI};
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s of PG-HIVE, EDBT 2026)\n", title, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace pghive::bench

#endif  // PGHIVE_BENCH_BENCH_COMMON_H_
