// Figure 5: execution time until type discovery on each dataset across
// noise levels (0-40%), 100% label availability. Expected shape: PG-HIVE
// noise-insensitive; GMMSchema grows with noise (more clusters -> more EM
// work); SchemI slowest due to its naive per-instance scans.

#include <cstdio>

#include "bench/bench_common.h"

using namespace pghive;

int main() {
  double scale = eval::EnvScale();
  bench::PrintHeader("Execution time until type discovery (ms)", "Figure 5");
  auto zoo = bench::GenerateZoo(scale);

  util::TablePrinter table(
      {"Dataset", "Method", "0%", "10%", "20%", "30%", "40%"});
  double pghive_total = 0, schemi_total = 0;
  size_t schemi_cases = 0;
  for (datasets::Dataset& d : zoo) {
    for (eval::Method m : bench::AllMethods()) {
      std::vector<std::string> row = {d.spec.name, eval::MethodName(m)};
      for (double noise : bench::NoiseGrid()) {
        eval::RunConfig config;
        config.method = m;
        config.noise = noise;
        config.label_availability = 1.0;
        config.seed = 0xF517 + static_cast<uint64_t>(noise * 100);
        eval::RunResult r = eval::RunMethod(d, config);
        if (!r.ok) {
          row.push_back("n/a");
          continue;
        }
        row.push_back(util::TablePrinter::Fmt(r.discovery_ms, 1));
        if (m == eval::Method::kPgHiveElsh) pghive_total += r.discovery_ms;
        if (m == eval::Method::kSchemI) {
          schemi_total += r.discovery_ms;
          ++schemi_cases;
        }
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  if (pghive_total > 0 && schemi_cases > 0) {
    std::printf(
        "\nSchemI / PG-HIVE-ELSH total-time ratio: %.2fx "
        "(paper: PG-HIVE up to 1.95x faster on average)\n",
        schemi_total / pghive_total);
  }
  return 0;
}
