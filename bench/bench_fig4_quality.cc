// Figure 4: F1*-scores across all noise levels (0-40%) and label
// availability scenarios (100/50/0%), for nodes and edges, all methods, all
// eight datasets. GMMSchema and SchemI only produce results at 100% labels
// (they require fully labeled data), exactly as in the paper.

#include <cstdio>

#include "bench/bench_common.h"

using namespace pghive;

int main() {
  double scale = eval::EnvScale();
  bench::PrintHeader("Schema quality vs noise and label availability",
                     "Figure 4");
  auto zoo = bench::GenerateZoo(scale);

  for (double labels : bench::LabelGrid()) {
    std::printf("\n### %.0f%% label information\n\n",
                labels * 100);
    for (const char* side : {"nodes", "edges"}) {
      bool edges = side[0] == 'e';
      util::TablePrinter table({"Dataset", "Method", "0%", "10%", "20%",
                                "30%", "40%"});
      for (datasets::Dataset& d : zoo) {
        for (eval::Method m : bench::AllMethods()) {
          if (edges && m == eval::Method::kGmmSchema) continue;
          std::vector<std::string> row = {d.spec.name, eval::MethodName(m)};
          for (double noise : bench::NoiseGrid()) {
            eval::RunConfig config;
            config.method = m;
            config.noise = noise;
            config.label_availability = labels;
            config.seed = 0xF1617 + static_cast<uint64_t>(noise * 100);
            eval::RunResult r = eval::RunMethod(d, config);
            if (!r.ok || (edges && !r.has_edge_result)) {
              row.push_back("n/a");
            } else {
              row.push_back(util::TablePrinter::Fmt(
                  edges ? r.edge_f1.f1 : r.node_f1.f1));
            }
          }
          table.AddRow(std::move(row));
        }
      }
      std::printf("--- F1* (%s) ---\n", side);
      table.Print();
      std::printf("\n");
    }
  }
  return 0;
}
