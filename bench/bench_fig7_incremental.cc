// Figure 7: incremental execution time per iteration. Each dataset is split
// into 10 random batches; both PG-HIVE variants process the stream and the
// per-batch discovery time is reported. Expected shape: near-constant cost
// per batch (no full recomputation), for every dataset.

#include <cstdio>

#include "bench/bench_common.h"

using namespace pghive;

int main() {
  double scale = eval::EnvScale();
  bench::PrintHeader("Incremental execution time per batch (ms)", "Figure 7");
  auto zoo = bench::GenerateZoo(scale);

  for (eval::Method m :
       {eval::Method::kPgHiveElsh, eval::Method::kPgHiveMinHash}) {
    std::printf("\n--- %s ---\n", eval::MethodName(m));
    util::TablePrinter table({"Dataset", "b1", "b2", "b3", "b4", "b5", "b6",
                              "b7", "b8", "b9", "b10", "final F1*"});
    for (datasets::Dataset& d : zoo) {
      eval::RunConfig config;
      config.method = m;
      config.num_batches = 10;
      config.seed = 0xF719;
      eval::RunResult r = eval::RunMethod(d, config);
      std::vector<std::string> row = {d.spec.name};
      for (double ms : r.batch_ms) {
        row.push_back(util::TablePrinter::Fmt(ms, 1));
      }
      row.resize(11);
      row.push_back(r.ok ? util::TablePrinter::Fmt(r.node_f1.f1) : "n/a");
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf(
      "\nConsistent per-batch times confirm the O(B + C_b*C_n) incremental "
      "complexity (§4.7): no batch triggers a full recomputation.\n");
  return 0;
}
