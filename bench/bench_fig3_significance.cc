// Figure 3: statistical significance analysis. Collects the F1*-scores of
// the 40 fully-labeled test cases (8 datasets x 5 noise levels), computes
// average ranks per method and the Nemenyi critical difference, separately
// for nodes (4 methods) and edges (3 methods; GMMSchema discovers no edge
// types).

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/ranks.h"

using namespace pghive;

int main() {
  double scale = eval::EnvScale();
  bench::PrintHeader("Statistical significance of F1*-scores", "Figure 3");
  auto zoo = bench::GenerateZoo(scale);

  // scores[method][case].
  std::vector<eval::Method> node_methods = bench::AllMethods();
  std::vector<eval::Method> edge_methods = {eval::Method::kPgHiveElsh,
                                            eval::Method::kPgHiveMinHash,
                                            eval::Method::kSchemI};
  std::vector<std::vector<double>> node_scores(node_methods.size());
  std::vector<std::vector<double>> edge_scores(edge_methods.size());

  for (datasets::Dataset& d : zoo) {
    for (double noise : bench::NoiseGrid()) {
      for (size_t m = 0; m < node_methods.size(); ++m) {
        eval::RunConfig config;
        config.method = node_methods[m];
        config.noise = noise;
        config.label_availability = 1.0;
        config.seed = 0xF316 + static_cast<uint64_t>(noise * 100);
        eval::RunResult r = eval::RunMethod(d, config);
        node_scores[m].push_back(r.ok ? r.node_f1.f1 : -1.0);
        for (size_t e = 0; e < edge_methods.size(); ++e) {
          if (edge_methods[e] != node_methods[m]) continue;
          edge_scores[e].push_back(
              r.ok && r.has_edge_result ? r.edge_f1.f1 : -1.0);
        }
      }
    }
  }

  auto report = [](const char* side,
                   const std::vector<eval::Method>& methods,
                   const std::vector<std::vector<double>>& scores) {
    auto ranks = eval::AverageRanks(scores);
    size_t n = scores[0].size();
    double cd = eval::NemenyiCriticalDifference(methods.size(), n);
    std::printf("\n--- %s: average ranks over %zu cases (CD@0.05 = %.3f) ---\n",
                side, n, cd);
    util::TablePrinter table({"Method", "Avg rank", "Mean F1*"});
    for (size_t m = 0; m < methods.size(); ++m) {
      double mean = 0;
      for (double s : scores[m]) mean += s;
      mean /= static_cast<double>(n);
      table.AddRow({eval::MethodName(methods[m]),
                    util::TablePrinter::Fmt(ranks[m], 2),
                    util::TablePrinter::Fmt(mean)});
    }
    table.Print();
    // Pairwise significance vs the best-ranked method.
    size_t best = 0;
    for (size_t m = 1; m < methods.size(); ++m) {
      if (ranks[m] < ranks[best]) best = m;
    }
    for (size_t m = 0; m < methods.size(); ++m) {
      if (m == best) continue;
      std::printf("  %s vs %s: rank delta %.2f -> %s\n",
                  eval::MethodName(methods[best]), eval::MethodName(methods[m]),
                  ranks[m] - ranks[best],
                  ranks[m] - ranks[best] > cd ? "SIGNIFICANT"
                                              : "not significant");
    }
  };

  report("nodes", node_methods, node_scores);
  report("edges", edge_methods, edge_scores);
  return 0;
}
