// Figure 6: F1* heatmaps sweeping the ELSH parameters (T, alpha-scale) per
// dataset at 100% labels / 0% noise, for nodes and edges, with the adaptive
// choice marked. Expected shape: smaller buckets over-separate (harmless
// under F1*), larger buckets and few tables merge distinct patterns and
// lower F1*; the adaptive point lands near the best cell.

#include <cstdio>

#include "bench/bench_common.h"

using namespace pghive;

int main() {
  double scale = eval::EnvScale();
  bench::PrintHeader("ELSH parameter sweep (T x bucket scale) vs adaptive",
                     "Figure 6");
  auto zoo = bench::GenerateZoo(scale);

  const size_t t_grid[] = {5, 10, 20, 30, 40};
  const double b_scale[] = {0.5, 1.0, 2.0, 3.0};  // x adaptive bucket length.

  for (datasets::Dataset& d : zoo) {
    // First, the adaptive run (also yields the adaptive b for scaling).
    eval::RunConfig adaptive_config;
    adaptive_config.method = eval::Method::kPgHiveElsh;
    adaptive_config.seed = 0xF618;
    eval::RunResult adaptive = eval::RunMethod(d, adaptive_config);

    // Recover the adaptive bucket length from a pipeline probe.
    pg::PropertyGraph probe = d.graph;
    core::PgHiveOptions popt;
    core::PgHive pipeline(&probe, popt);
    (void)pipeline.ProcessBatch(pg::FullBatch(probe));
    double b_node = pipeline.last_stats().node_params.bucket_length;
    size_t t_node = pipeline.last_stats().node_params.num_tables;

    std::printf("\n--- %s (adaptive: b=%.2f, T=%zu, node F1*=%.3f, "
                "edge F1*=%.3f) ---\n",
                d.spec.name.c_str(), b_node, t_node,
                adaptive.ok ? adaptive.node_f1.f1 : -1,
                adaptive.ok ? adaptive.edge_f1.f1 : -1);
    util::TablePrinter table({"b x", "T=5", "T=10", "T=20", "T=30", "T=40"});
    for (double bs : b_scale) {
      std::vector<std::string> row = {util::TablePrinter::Fmt(bs, 1)};
      for (size_t t : t_grid) {
        eval::RunConfig config;
        config.method = eval::Method::kPgHiveElsh;
        config.adaptive = false;
        config.bucket_length = b_node * bs;
        config.num_tables = t;
        config.seed = 0xF618;
        eval::RunResult r = eval::RunMethod(d, config);
        row.push_back(r.ok ? util::TablePrinter::Fmt(r.node_f1.f1) : "n/a");
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
