// Figure 8: distribution of datatype-inference sampling errors across
// datasets for both clustering variants. For every discovered property the
// sampled per-value inference is compared against the full-scan joined
// type; errors are binned into [0,0.05), [0.05,0.10), [0.10,0.20), >=0.20
// and normalized by the number of properties. Expected shape: most
// properties in the lowest bin; heterogeneous datasets (ICIJ, CORD19, IYP)
// contribute the outliers.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/datatype_inference.h"
#include "core/pghive.h"

using namespace pghive;

int main() {
  double scale = eval::EnvScale();
  bench::PrintHeader("Datatype inference sampling error distribution",
                     "Figure 8");
  auto zoo = bench::GenerateZoo(scale);

  for (core::ClusterMethod method :
       {core::ClusterMethod::kElsh, core::ClusterMethod::kMinHash}) {
    std::printf("\n--- %s ---\n",
                method == core::ClusterMethod::kElsh ? "ELSH" : "MinHash");
    util::TablePrinter table(
        {"Dataset", "props", "[0,.05)", "[.05,.10)", "[.10,.20)", ">=.20"});
    for (datasets::Dataset& d : zoo) {
      pg::PropertyGraph graph = d.graph;
      core::PgHiveOptions options;
      options.method = method;
      options.seed = 0xF820;
      core::PgHive pipeline(&graph, options);
      if (!pipeline.Run().ok()) continue;

      core::DataTypeOptions dt;
      dt.sample = true;
      dt.sample_fraction = 0.1;
      dt.min_sample = 1000;
      core::SamplingErrorReport report =
          core::ComputeSamplingErrors(graph, pipeline.schema(), dt);
      auto bins = report.BinFractions();
      table.AddRow({d.spec.name, std::to_string(report.errors.size()),
                    util::TablePrinter::Fmt(bins[0]),
                    util::TablePrinter::Fmt(bins[1]),
                    util::TablePrinter::Fmt(bins[2]),
                    util::TablePrinter::Fmt(bins[3])});
    }
    table.Print();
  }
  return 0;
}
