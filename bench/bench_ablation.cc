// Ablation study over the design choices DESIGN.md calls out:
//   A1: AND vs OR amplification of the LSH tables,
//   A2: Word2Vec vs hash label embedder,
//   A3: Jaccard threshold theta of Algorithm 2 (paper fixes 0.9),
//   A4: adaptive vs fixed LSH parameters,
//   A5: the merging step itself (LSH clusters evaluated raw vs merged).
// Run on a representative subset of the zoo at 20% noise / 50% labels — the
// regime where the design choices matter most.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/pghive.h"
#include "lsh/clustering.h"

using namespace pghive;

namespace {

struct Variant {
  const char* name;
  core::PgHiveOptions options;
};

double RunVariant(const datasets::Dataset& dataset,
                  const core::PgHiveOptions& base, double noise,
                  double labels, bool* edge_out, double* edge_f1) {
  pg::PropertyGraph graph = dataset.graph;
  datasets::NoiseConfig config;
  config.property_removal = noise;
  config.label_availability = labels;
  config.seed = 0xAB1;
  datasets::InjectNoise(&graph, config);
  core::PgHive pipeline(&graph, base);
  if (!pipeline.Run().ok()) return -1;
  auto node =
      eval::MajorityF1(pipeline.NodeAssignment(), dataset.truth.node_type);
  auto edge =
      eval::MajorityF1(pipeline.EdgeAssignment(), dataset.truth.edge_type);
  *edge_out = true;
  *edge_f1 = edge.f1;
  return node.f1;
}

}  // namespace

int main() {
  double scale = eval::EnvScale();
  bench::PrintHeader("Ablation of PG-HIVE design choices",
                     "DESIGN.md design-choice index");
  const char* names[] = {"POLE", "MB6", "ICIJ", "IYP"};
  std::vector<datasets::Dataset> data;
  for (const char* name : names) {
    data.push_back(
        datasets::Generate(datasets::ZooDataset(name).value(), scale, 0xA1));
  }
  const double noise = 0.2, labels = 0.5;
  std::printf("regime: %d%% property noise, %d%% label availability\n\n",
              20, 50);

  std::vector<Variant> variants;
  {
    Variant v{"baseline (AND, w2v, theta=.9, adaptive)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"OR amplification", {}};
    v.options.amplification = lsh::Amplification::kOr;
    variants.push_back(v);
  }
  {
    Variant v{"hash embedder", {}};
    v.options.embedder = core::EmbedderKind::kHash;
    variants.push_back(v);
  }
  {
    Variant v{"theta = 0.5 (loose merge)", {}};
    v.options.jaccard_threshold = 0.5;
    variants.push_back(v);
  }
  {
    Variant v{"theta = 1.0 (exact merge)", {}};
    v.options.jaccard_threshold = 1.0;
    variants.push_back(v);
  }
  {
    Variant v{"fixed b=2.0, T=20", {}};
    v.options.adaptive = false;
    v.options.bucket_length = 2.0;
    v.options.num_tables = 20;
    variants.push_back(v);
  }
  {
    Variant v{"MinHash clustering", {}};
    v.options.method = core::ClusterMethod::kMinHash;
    variants.push_back(v);
  }

  util::TablePrinter table({"Variant", "POLE n/e", "MB6 n/e", "ICIJ n/e",
                            "IYP n/e"});
  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.name};
    for (auto& dataset : data) {
      bool has_edge = false;
      double edge_f1 = 0;
      double node_f1 = RunVariant(dataset, variant.options, noise, labels,
                                  &has_edge, &edge_f1);
      row.push_back(util::TablePrinter::Fmt(node_f1, 2) + "/" +
                    util::TablePrinter::Fmt(edge_f1, 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\nReading: AND amplification + Word2Vec + theta=0.9 (the paper's "
      "choices) should dominate or match every ablated variant; OR "
      "amplification risks chain-merging, theta=0.5 over-merges distinct "
      "types, theta=1.0 strands noisy unlabeled clusters as abstract types "
      "(harmless for F1* but inflating the type count).\n");
  return 0;
}
