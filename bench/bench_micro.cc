// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: ELSH hashing, MinHash signatures, the vectorizer, Word2Vec
// training, GMM EM steps, and the type-extraction merge.

#include <benchmark/benchmark.h>

#include "baselines/gmm.h"
#include "core/pghive.h"
#include "core/type_extraction.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "embed/word2vec.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash.h"
#include "util/rng.h"

using namespace pghive;

namespace {

std::vector<float> RandomMatrix(size_t num, size_t dim, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(num * dim);
  for (auto& x : data) x = static_cast<float>(rng.NextGaussian());
  return data;
}

void BM_ElshHash(benchmark::State& state) {
  const size_t num = 4096, dim = static_cast<size_t>(state.range(0));
  auto data = RandomMatrix(num, dim, 1);
  lsh::EuclideanLshParams params;
  params.num_tables = 20;
  lsh::EuclideanLsh hasher(dim, params);
  for (auto _ : state) {
    auto sigs = hasher.HashAll(data, num);
    benchmark::DoNotOptimize(sigs);
  }
  state.SetItemsProcessed(state.iterations() * num);
}
BENCHMARK(BM_ElshHash)->Arg(16)->Arg(64)->Arg(128);

void BM_ElshCluster(benchmark::State& state) {
  const size_t num = static_cast<size_t>(state.range(0)), dim = 64;
  auto data = RandomMatrix(num, dim, 2);
  lsh::EuclideanLshParams params;
  params.num_tables = 20;
  lsh::EuclideanLsh hasher(dim, params);
  for (auto _ : state) {
    auto clusters = hasher.Cluster(data, num);
    benchmark::DoNotOptimize(clusters);
  }
  state.SetItemsProcessed(state.iterations() * num);
}
BENCHMARK(BM_ElshCluster)->Arg(1024)->Arg(8192);

void BM_MinHashSignature(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<std::vector<uint64_t>> sets(2048);
  for (auto& set : sets) {
    size_t n = 4 + rng.NextBounded(12);
    for (size_t i = 0; i < n; ++i) set.push_back(rng.NextBounded(500));
  }
  lsh::MinHashParams params;
  params.num_hashes = static_cast<size_t>(state.range(0));
  lsh::MinHashLsh hasher(params);
  for (auto _ : state) {
    auto sigs = hasher.SignatureAll(sets);
    benchmark::DoNotOptimize(sigs);
  }
  state.SetItemsProcessed(state.iterations() * sets.size());
}
BENCHMARK(BM_MinHashSignature)->Arg(16)->Arg(32);

void BM_Word2VecTrain(benchmark::State& state) {
  auto dataset = datasets::Generate(datasets::LdbcSpec(), 0.25, 4);
  for (auto _ : state) {
    embed::LabelCorpus corpus = embed::BuildLabelCorpus(dataset.graph);
    embed::Word2VecOptions options;
    embed::Word2Vec model(&dataset.graph.vocab(), options);
    model.Train(corpus);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_Word2VecTrain);

void BM_GmmEm(benchmark::State& state) {
  const size_t num = 1024, dim = 32, k = 8;
  auto data = RandomMatrix(num, dim, 5);
  baselines::GmmOptions options;
  options.max_iterations = 10;
  baselines::GaussianMixture gmm(options);
  for (auto _ : state) {
    auto fit = gmm.Fit(data, num, dim, k);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_GmmEm);

void BM_FullPipeline(benchmark::State& state) {
  auto dataset = datasets::Generate(datasets::PoleSpec(), 0.5, 6);
  for (auto _ : state) {
    pg::PropertyGraph graph = dataset.graph;
    core::PgHiveOptions options;
    core::PgHive pipeline(&graph, options);
    benchmark::DoNotOptimize(pipeline.Run());
  }
}
BENCHMARK(BM_FullPipeline);

}  // namespace

BENCHMARK_MAIN();
