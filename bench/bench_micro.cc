// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: ELSH hashing, MinHash signatures, the vectorizer, Word2Vec
// training, GMM EM steps, the type-extraction merge, and thread sweeps of
// the parallel vectorize/cluster stages.
//
// Besides the google-benchmark CLI, the binary has two perf-tracking modes:
//
//   bench_micro --speedup_json=FILE [--speedup_scale=S]
//
// runs embed (Word2Vec training) + vectorize + cluster + group (signature
// group-by in isolation) + ingest (multi-batch pipelined incremental
// discovery) on an LDBC-like graph (>= 100k elements at the default scale)
// at 1/2/4/hw threads and writes per-stage speedup JSON, plus a shard
// stage sweeping --shards at 1/2/4 at a fixed hardware-thread budget (its
// "threads" JSON field carries the shard count). Every entry also carries
// "eps" (absolute single-run throughput in elements/sec) so bench_diff
// --mode=eps can gate on throughput drops the ratio gate misses.
//
//   bench_micro --rowcol_json=PREFIX [--speedup_scale=S]
//
// times the four data-plane stages (vectorize, hash, group, embed) single-
// threaded on the row path and the columnar path of the same graph, writing
// PREFIX.row.json and PREFIX.col.json in the sweep format; bench_diff
// ROW.json COL.json --mode=eps then gates "columnar not slower than row" —
// a same-run, same-machine comparison, so the absolute gate is sound even
// on heterogeneous CI runners.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "baselines/gmm.h"
#include "core/batch_pipeline.h"
#include "core/pghive.h"
#include "core/type_extraction.h"
#include "core/vectorizer.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "embed/hash_embedder.h"
#include "embed/word2vec.h"
#include "lsh/clustering.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace pghive;

namespace {

std::vector<float> RandomMatrix(size_t num, size_t dim, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(num * dim);
  for (auto& x : data) x = static_cast<float>(rng.NextGaussian());
  return data;
}

void BM_ElshHash(benchmark::State& state) {
  const size_t num = 4096, dim = static_cast<size_t>(state.range(0));
  auto data = RandomMatrix(num, dim, 1);
  lsh::EuclideanLshParams params;
  params.num_tables = 20;
  lsh::EuclideanLsh hasher(dim, params);
  for (auto _ : state) {
    auto sigs = hasher.HashAll(data, num);
    benchmark::DoNotOptimize(sigs);
  }
  state.SetItemsProcessed(state.iterations() * num);
}
BENCHMARK(BM_ElshHash)->Arg(16)->Arg(64)->Arg(128);

void BM_ElshCluster(benchmark::State& state) {
  const size_t num = static_cast<size_t>(state.range(0)), dim = 64;
  auto data = RandomMatrix(num, dim, 2);
  lsh::EuclideanLshParams params;
  params.num_tables = 20;
  lsh::EuclideanLsh hasher(dim, params);
  for (auto _ : state) {
    auto clusters = hasher.Cluster(data, num);
    benchmark::DoNotOptimize(clusters);
  }
  state.SetItemsProcessed(state.iterations() * num);
}
BENCHMARK(BM_ElshCluster)->Arg(1024)->Arg(8192);

void BM_MinHashSignature(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<std::vector<uint64_t>> sets(2048);
  for (auto& set : sets) {
    size_t n = 4 + rng.NextBounded(12);
    for (size_t i = 0; i < n; ++i) set.push_back(rng.NextBounded(500));
  }
  lsh::MinHashParams params;
  params.num_hashes = static_cast<size_t>(state.range(0));
  lsh::MinHashLsh hasher(params);
  for (auto _ : state) {
    auto sigs = hasher.SignatureAll(sets);
    benchmark::DoNotOptimize(sigs);
  }
  state.SetItemsProcessed(state.iterations() * sets.size());
}
BENCHMARK(BM_MinHashSignature)->Arg(16)->Arg(32);

void BM_Word2VecTrain(benchmark::State& state) {
  auto dataset = datasets::Generate(datasets::LdbcSpec(), 0.25, 4);
  for (auto _ : state) {
    embed::LabelCorpus corpus = embed::BuildLabelCorpus(dataset.graph);
    embed::Word2VecOptions options;
    embed::Word2Vec model(&dataset.graph.vocab(), options);
    model.Train(corpus);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_Word2VecTrain);

void BM_GmmEm(benchmark::State& state) {
  const size_t num = 1024, dim = 32, k = 8;
  auto data = RandomMatrix(num, dim, 5);
  baselines::GmmOptions options;
  options.max_iterations = 10;
  baselines::GaussianMixture gmm(options);
  for (auto _ : state) {
    auto fit = gmm.Fit(data, num, dim, k);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_GmmEm);

void BM_FullPipeline(benchmark::State& state) {
  auto dataset = datasets::Generate(datasets::PoleSpec(), 0.5, 6);
  for (auto _ : state) {
    pg::PropertyGraph graph = dataset.graph;
    core::PgHiveOptions options;
    core::PgHive pipeline(&graph, options);
    benchmark::DoNotOptimize(pipeline.Run());
  }
}
BENCHMARK(BM_FullPipeline);

// ---- Thread sweeps (Arg = thread count; 0 = hardware concurrency) -------

size_t SweepThreads(benchmark::State& state) {
  return util::ThreadPool::ResolveThreads(
      static_cast<size_t>(state.range(0)));
}

void BM_VectorizeThreads(benchmark::State& state) {
  auto dataset = datasets::Generate(datasets::LdbcSpec(), 2.0, 7);
  embed::HashEmbedder embedder(&dataset.graph.vocab(), 8, 11);
  size_t threads = SweepThreads(state);
  util::ThreadPool pool(threads);
  core::Vectorizer vectorizer(&dataset.graph, &embedder,
                              threads > 1 ? &pool : nullptr);
  pg::GraphBatch batch = pg::FullBatch(dataset.graph);
  for (auto _ : state) {
    auto nodes = vectorizer.NodeFeatures(batch);
    auto edges = vectorizer.EdgeFeatures(batch);
    benchmark::DoNotOptimize(nodes);
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(
      state.iterations() *
      (batch.node_ids.size() + batch.edge_ids.size()));
}
BENCHMARK(BM_VectorizeThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

void BM_ElshClusterThreads(benchmark::State& state) {
  const size_t num = 32768, dim = 64;
  auto data = RandomMatrix(num, dim, 9);
  lsh::EuclideanLshParams params;
  params.num_tables = 20;
  lsh::EuclideanLsh hasher(dim, params);
  size_t threads = SweepThreads(state);
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    auto clusters =
        hasher.Cluster(data, num, threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(clusters);
  }
  state.SetItemsProcessed(state.iterations() * num);
}
BENCHMARK(BM_ElshClusterThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

void BM_Word2VecTrainByThreads(benchmark::State& state) {
  auto dataset = datasets::Generate(datasets::LdbcSpec(), 1.0, 4);
  embed::LabelCorpus corpus = embed::BuildLabelCorpus(dataset.graph);
  size_t threads = SweepThreads(state);
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    embed::Word2VecOptions options;
    embed::Word2Vec model(&dataset.graph.vocab(), options);
    model.Train(corpus, threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_Word2VecTrainByThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

void BM_IngestPipelineByThreads(benchmark::State& state) {
  // Multi-batch incremental ingest through the pipelined executor:
  // Arg0 = thread count (0 = hardware), Arg1 = pipeline depth. Depth > 1
  // overlaps batch i+1's preprocess with batch i's cluster/extract.
  auto dataset = datasets::Generate(datasets::LdbcSpec(), 1.0, 4);
  auto batches = pg::SplitIntoBatches(dataset.graph, 8, 17);
  for (auto _ : state) {
    pg::PropertyGraph graph = dataset.graph;
    core::PgHiveOptions options;
    options.num_threads = static_cast<size_t>(state.range(0));
    options.pipeline_depth = static_cast<size_t>(state.range(1));
    core::PgHive hive(&graph, options);
    core::BatchPipeline pipeline(&hive);
    benchmark::DoNotOptimize(pipeline.Run(batches));
    benchmark::DoNotOptimize(hive.Finish());
  }
  state.SetItemsProcessed(state.iterations() *
                          (dataset.graph.num_nodes() +
                           dataset.graph.num_edges()));
}
BENCHMARK(BM_IngestPipelineByThreads)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 3})
    ->Args({0, 3});

void BM_SignatureGroupByThreads(benchmark::State& state) {
  // Heavily duplicated signatures (~64 items per distinct row) — the
  // realistic load for the grouping stage, which is map-bound, not
  // hash-bound.
  const size_t num = 262144, t = 20, distinct = 4096;
  util::Rng rng(13);
  std::vector<uint64_t> rows(distinct * t);
  for (auto& x : rows) x = rng.NextU64();
  std::vector<uint64_t> sigs(num * t);
  for (size_t i = 0; i < num; ++i) {
    const uint64_t* row = &rows[rng.NextBounded(distinct) * t];
    std::copy(row, row + t, &sigs[i * t]);
  }
  size_t threads = SweepThreads(state);
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    auto clusters = lsh::ClusterBySignature(sigs, num, t,
                                            threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(clusters);
  }
  state.SetItemsProcessed(state.iterations() * num);
}
BENCHMARK(BM_SignatureGroupByThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

// ---- Speedup sweep mode (perf-tracking JSON artifact) -------------------

struct StageTimes {
  const char* stage;
  std::vector<size_t> threads;
  std::vector<double> ms;
  /// Elements one run of this stage processes; elements/sec = this / (ms/1e3).
  size_t elements = 0;
};

double MinMillis(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

double MinMillisOf3(const std::function<void()>& fn) {
  return MinMillis(3, fn);
}

double ElementsPerSec(size_t elements, double ms) {
  return static_cast<double>(elements) * 1000.0 / std::max(1e-9, ms);
}

/// Writes stages in the sweep JSON format bench_diff's ParseBenchJson reads
/// (entry names "<stage>/threads=<n>"). Shared by the thread sweep and the
/// row-vs-columnar artifacts so both gate through the same parser.
int WriteStagesJson(const std::string& json_path, const char* benchmark_name,
                    double scale, size_t nodes, size_t edges,
                    const StageTimes* const* stages, size_t num_stages) {
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"%s\",\n"
               "  \"scale\": %g,\n  \"nodes\": %zu,\n  \"edges\": %zu,\n"
               "  \"hardware_threads\": %zu,\n  \"stages\": [",
               benchmark_name, scale, nodes, edges,
               util::ThreadPool::ResolveThreads(0));
  for (size_t s = 0; s < num_stages; ++s) {
    const StageTimes& st = *stages[s];
    std::fprintf(out, "%s\n    {\"stage\": \"%s\", \"results\": [",
                 s ? "," : "", st.stage);
    for (size_t i = 0; i < st.threads.size(); ++i) {
      std::fprintf(out,
                   "%s\n      {\"threads\": %zu, \"ms\": %.3f, "
                   "\"speedup\": %.3f, \"eps\": %.1f}",
                   i ? "," : "", st.threads[i], st.ms[i],
                   st.ms[0] / std::max(1e-9, st.ms[i]),
                   ElementsPerSec(st.elements, st.ms[i]));
    }
    std::fprintf(out, "\n    ]}");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

int RunSpeedupSweep(const std::string& json_path, double scale) {
  datasets::Dataset dataset = datasets::Generate(datasets::LdbcSpec(), scale, 7);
  pg::GraphBatch batch = pg::FullBatch(dataset.graph);
  const size_t elements = batch.node_ids.size() + batch.edge_ids.size();
  std::fprintf(stderr, "speedup sweep: %zu nodes + %zu edges = %zu elements\n",
               batch.node_ids.size(), batch.edge_ids.size(), elements);

  embed::HashEmbedder embedder(&dataset.graph.vocab(), 8, 11);
  // The Word2Vec corpus is thread-count-invariant; build it once so the
  // embed stage times training only.
  embed::LabelCorpus corpus = embed::BuildLabelCorpus(dataset.graph);
  // Intern every token (and build vocab columns) once, outside the timings.
  // Features and signatures are thread-count-invariant, so this warmup pass
  // also provides the fixed input of the grouping stage.
  lsh::EuclideanLshParams lsh_params;
  lsh_params.num_tables = 20;
  core::Vectorizer warmup(&dataset.graph, &embedder, nullptr);
  core::FeatureMatrix warm_nodes = warmup.NodeFeatures(batch);
  core::FeatureMatrix warm_edges = warmup.EdgeFeatures(batch);
  lsh::EuclideanLsh warm_node_hasher(warm_nodes.dim, lsh_params);
  lsh::EuclideanLsh warm_edge_hasher(warm_edges.dim, lsh_params);
  std::vector<uint64_t> node_sigs =
      warm_node_hasher.HashAll(warm_nodes.data, warm_nodes.num);
  std::vector<uint64_t> edge_sigs =
      warm_edge_hasher.HashAll(warm_edges.data, warm_edges.num);

  std::vector<size_t> counts = {1, 2, 4,
                                util::ThreadPool::ResolveThreads(0)};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  // The ingest stage runs full multi-batch incremental discovery, which is
  // far heavier per rep than the isolated primitives above, so it uses its
  // own fixed-size graph (~30k elements) regardless of --speedup_scale.
  datasets::Dataset ingest_dataset =
      datasets::Generate(datasets::LdbcSpec(), 1.0, 7);
  std::vector<pg::GraphBatch> ingest_batches =
      pg::SplitIntoBatches(ingest_dataset.graph, 6, 17);

  StageTimes embed_stage{"embed", {}, {}, corpus.sentences.size()};
  StageTimes vectorize{"vectorize", {}, {}, elements};
  StageTimes cluster{"cluster", {}, {}, elements};
  StageTimes group{"group", {}, {}, warm_nodes.num + warm_edges.num};
  StageTimes ingest{"ingest", {}, {},
                    ingest_dataset.graph.num_nodes() +
                        ingest_dataset.graph.num_edges()};
  for (size_t threads : counts) {
    util::ThreadPool pool(threads);
    util::ThreadPool* p = threads > 1 ? &pool : nullptr;
    embed_stage.threads.push_back(threads);
    embed_stage.ms.push_back(MinMillisOf3([&] {
      // A fresh model per rep: Train is incremental, and the sweep should
      // time the same cold-start training at every thread count.
      embed::Word2Vec model(&dataset.graph.vocab(), {});
      model.Train(corpus, p);
      benchmark::DoNotOptimize(model);
    }));
    core::Vectorizer vectorizer(&dataset.graph, &embedder, p);
    core::FeatureMatrix node_features, edge_features;
    vectorize.threads.push_back(threads);
    vectorize.ms.push_back(MinMillisOf3([&] {
      node_features = vectorizer.NodeFeatures(batch);
      edge_features = vectorizer.EdgeFeatures(batch);
    }));
    lsh::EuclideanLsh node_hasher(node_features.dim, lsh_params);
    lsh::EuclideanLsh edge_hasher(edge_features.dim, lsh_params);
    cluster.threads.push_back(threads);
    cluster.ms.push_back(MinMillisOf3([&] {
      auto nc = node_hasher.Cluster(node_features.data, node_features.num, p);
      auto ec = edge_hasher.Cluster(edge_features.data, edge_features.num, p);
      benchmark::DoNotOptimize(nc);
      benchmark::DoNotOptimize(ec);
    }));
    // Grouping in isolation, on the precomputed signatures (the cluster
    // stage above times hashing + grouping together).
    group.threads.push_back(threads);
    group.ms.push_back(MinMillisOf3([&] {
      auto ng = lsh::ClusterBySignature(node_sigs, warm_nodes.num,
                                        lsh_params.num_tables, p);
      auto eg = lsh::ClusterBySignature(edge_sigs, warm_edges.num,
                                        lsh_params.num_tables, p);
      benchmark::DoNotOptimize(ng);
      benchmark::DoNotOptimize(eg);
    }));
    // End-to-end pipelined multi-batch ingest at depth 3: the speedup over
    // 1 thread combines in-stage parallelism with cross-batch overlap (at
    // 1 thread BatchPipeline degenerates to the sequential loop — the
    // baseline the paper's Fig. 7 story starts from). A fresh graph copy
    // per rep resets the vocabulary and Word2Vec state so every thread
    // count ingests the identical stream.
    ingest.threads.push_back(threads);
    ingest.ms.push_back(MinMillisOf3([&] {
      pg::PropertyGraph ingest_graph = ingest_dataset.graph;
      core::PgHiveOptions ingest_options;
      ingest_options.num_threads = threads;
      ingest_options.pipeline_depth = 3;
      core::PgHive hive(&ingest_graph, ingest_options);
      core::BatchPipeline ingest_pipeline(&hive);
      benchmark::DoNotOptimize(ingest_pipeline.Run(ingest_batches));
      benchmark::DoNotOptimize(hive.Finish());
    }));
  }

  // Shard-count sweep at a fixed thread budget (hardware concurrency) on
  // the same ~30k-element ingest graph: the scaling curve of consistent-
  // hash sharded discovery as --shards grows. The sweep JSON schema has no
  // second axis, so the `threads` field of these entries carries the SHARD
  // count ("shard/threads=4" = 4 shards) — bench_diff then tracks the
  // curve automatically. shards=1 is the unsharded baseline, so `speedup`
  // reads as the end-to-end gain (or partitioning overhead) of sharding.
  StageTimes shard{"shard", {}, {},
                   ingest_dataset.graph.num_nodes() +
                       ingest_dataset.graph.num_edges()};
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
    shard.threads.push_back(num_shards);
    shard.ms.push_back(MinMillisOf3([&] {
      pg::PropertyGraph shard_graph = ingest_dataset.graph;
      core::PgHiveOptions shard_options;
      shard_options.num_threads = 0;  // Hardware concurrency, fixed.
      shard_options.pipeline_depth = 3;
      shard_options.num_shards = num_shards;
      core::PgHive hive(&shard_graph, shard_options);
      core::BatchPipeline shard_pipeline(&hive);
      benchmark::DoNotOptimize(shard_pipeline.Run(ingest_batches));
      benchmark::DoNotOptimize(hive.Finish());
    }));
  }

  const StageTimes* stages[] = {&embed_stage, &vectorize, &cluster, &group,
                                &ingest,      &shard};
  const size_t num_stages = sizeof(stages) / sizeof(stages[0]);
  if (WriteStagesJson(json_path, "pghive_parallel_sweep", scale,
                      batch.node_ids.size(), batch.edge_ids.size(), stages,
                      num_stages) != 0) {
    return 1;
  }
  for (size_t s = 0; s < num_stages; ++s) {
    const StageTimes& st = *stages[s];
    for (size_t i = 0; i < st.threads.size(); ++i) {
      std::fprintf(stderr, "  %-10s threads=%zu  %8.2f ms  (%.2fx)\n",
                   st.stage, st.threads[i], st.ms[i], st.ms[0] / st.ms[i]);
    }
  }
  return 0;
}

// ---- Row-vs-columnar data-plane bench (single-threaded throughput) ------

int RunRowColBench(const std::string& prefix, double scale) {
  // The row and columnar sides race each other within one run, so the
  // eps gate sees their raw delta directly; min-of-7 (vs the sweep's
  // min-of-3) squeezes timer noise on the sub-10ms stages.
  constexpr int kRowColReps = 7;
  datasets::Dataset dataset = datasets::Generate(datasets::LdbcSpec(), scale, 7);
  pg::GraphBatch batch = pg::FullBatch(dataset.graph);
  const size_t elements = batch.node_ids.size() + batch.edge_ids.size();
  std::fprintf(stderr, "rowcol bench: %zu nodes + %zu edges = %zu elements\n",
               batch.node_ids.size(), batch.edge_ids.size(), elements);

  embed::HashEmbedder embedder(&dataset.graph.vocab(), 8, 11);
  // Intern every token once so both planes measure steady-state throughput,
  // not first-touch vocabulary growth.
  {
    core::Vectorizer warmup(&dataset.graph, &embedder, nullptr);
    auto nf = warmup.NodeFeatures(batch);
    auto ef = warmup.EdgeFeatures(batch);
    benchmark::DoNotOptimize(nf);
    benchmark::DoNotOptimize(ef);
  }
  lsh::EuclideanLshParams lsh_params;
  lsh_params.num_tables = 20;
  lsh::MinHashParams minhash_params;

  for (int plane = 0; plane < 2; ++plane) {
    const bool columnar = plane == 1;
    StageTimes vectorize{"vectorize", {1}, {}, elements};
    StageTimes hash{"hash", {1}, {}, elements};
    StageTimes group{"group", {1}, {}, elements};
    StageTimes embed_stage{"embed", {1}, {}, 0};

    // Vectorize from a fresh instance per rep, so the columnar side is
    // charged for building its column stores, not just sweeping them.
    vectorize.ms.push_back(MinMillis(kRowColReps, [&] {
      core::Vectorizer v(&dataset.graph, &embedder, nullptr, columnar);
      auto nf = v.NodeFeatures(batch);
      auto ef = v.EdgeFeatures(batch);
      benchmark::DoNotOptimize(nf);
      benchmark::DoNotOptimize(ef);
    }));

    // The remaining stages run on fixed precomputed inputs of their plane.
    core::Vectorizer vectorizer(&dataset.graph, &embedder, nullptr, columnar);
    core::FeatureMatrix node_features = vectorizer.NodeFeatures(batch);
    core::FeatureMatrix edge_features = vectorizer.EdgeFeatures(batch);
    lsh::EuclideanLsh node_hasher(node_features.dim, lsh_params);
    lsh::EuclideanLsh edge_hasher(edge_features.dim, lsh_params);
    lsh::MinHashLsh minhasher(minhash_params);
    std::vector<std::vector<uint64_t>> node_sets, edge_sets;
    core::ElementSetCsr node_csr, edge_csr;
    if (columnar) {
      node_csr = vectorizer.NodeSetSpans(batch);
      edge_csr = vectorizer.EdgeSetSpans(batch);
    } else {
      node_sets = vectorizer.NodeSets(batch);
      edge_sets = vectorizer.EdgeSets(batch);
    }
    std::vector<uint64_t> node_sigs, edge_sigs;
    hash.ms.push_back(MinMillis(kRowColReps, [&] {
      node_sigs = node_hasher.HashAll(node_features.data, node_features.num);
      edge_sigs = edge_hasher.HashAll(edge_features.data, edge_features.num);
      std::vector<uint64_t> node_min, edge_min;
      if (columnar) {
        node_min = minhasher.SignatureAll(lsh::SetSpans{
            node_csr.elements.data(), node_csr.offsets.data(),
            node_csr.num()});
        edge_min = minhasher.SignatureAll(lsh::SetSpans{
            edge_csr.elements.data(), edge_csr.offsets.data(),
            edge_csr.num()});
      } else {
        node_min = minhasher.SignatureAll(node_sets);
        edge_min = minhasher.SignatureAll(edge_sets);
      }
      benchmark::DoNotOptimize(node_min);
      benchmark::DoNotOptimize(edge_min);
    }));
    group.ms.push_back(MinMillis(kRowColReps, [&] {
      auto ng = lsh::ClusterBySignature(node_sigs, node_features.num,
                                        lsh_params.num_tables, nullptr);
      auto eg = lsh::ClusterBySignature(edge_sigs, edge_features.num,
                                        lsh_params.num_tables, nullptr);
      benchmark::DoNotOptimize(ng);
      benchmark::DoNotOptimize(eg);
    }));
    // Corpus construction (the Word2Vec input build; training itself is
    // plane-independent). The columnar overload reads prebuilt token
    // columns; the row overload walks rows. The vocabulary is fully warm,
    // so the row side mutates nothing either.
    embed_stage.ms.push_back(MinMillis(kRowColReps, [&] {
      embed::LabelCorpus corpus =
          columnar ? embed::BuildLabelCorpus(dataset.graph,
                                             vectorizer.EdgeColumns(batch),
                                             vectorizer.NodeColumns(batch))
                   : embed::BuildLabelCorpus(dataset.graph, batch);
      embed_stage.elements = corpus.sentences.size();
      benchmark::DoNotOptimize(corpus);
    }));

    const StageTimes* stages[] = {&vectorize, &hash, &group, &embed_stage};
    const size_t num_stages = sizeof(stages) / sizeof(stages[0]);
    const std::string path =
        prefix + (columnar ? ".col.json" : ".row.json");
    if (WriteStagesJson(path, columnar ? "pghive_rowcol_columnar"
                                       : "pghive_rowcol_row",
                        scale, batch.node_ids.size(), batch.edge_ids.size(),
                        stages, num_stages) != 0) {
      return 1;
    }
    for (size_t s = 0; s < num_stages; ++s) {
      const StageTimes& st = *stages[s];
      std::fprintf(stderr, "  %-10s %-8s  %8.2f ms  %12.0f elements/sec\n",
                   st.stage, columnar ? "columnar" : "row", st.ms[0],
                   ElementsPerSec(st.elements, st.ms[0]));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, rowcol_prefix;
  double scale = 8.0;  // >= 100k elements on the LDBC-like zoo graph.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--speedup_json=", 15) == 0) {
      json_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--rowcol_json=", 14) == 0) {
      rowcol_prefix = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--speedup_scale=", 16) == 0) {
      scale = std::atof(argv[i] + 16);
    }
  }
  if (!json_path.empty()) return RunSpeedupSweep(json_path, scale);
  if (!rowcol_prefix.empty()) return RunRowColBench(rowcol_prefix, scale);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
