# Translates PGHIVE_SANITIZE ("address", "undefined", "thread", or a
# comma-separated combination such as "address,undefined") into compile and
# link flags stored in PGHIVE_SANITIZER_FLAGS. thread cannot be combined with
# address.

set(PGHIVE_SANITIZER_FLAGS "")

if(PGHIVE_SANITIZE)
  string(REPLACE "," ";" _pghive_sanitizers "${PGHIVE_SANITIZE}")
  set(_pghive_fsanitize "")
  foreach(_sanitizer IN LISTS _pghive_sanitizers)
    string(STRIP "${_sanitizer}" _sanitizer)
    if(NOT _sanitizer MATCHES "^(address|undefined|thread)$")
      message(FATAL_ERROR
        "PGHIVE_SANITIZE: unknown sanitizer '${_sanitizer}' "
        "(expected address, undefined, or thread)")
    endif()
    list(APPEND _pghive_fsanitize ${_sanitizer})
  endforeach()

  if("thread" IN_LIST _pghive_fsanitize AND "address" IN_LIST _pghive_fsanitize)
    message(FATAL_ERROR "PGHIVE_SANITIZE: thread and address are incompatible")
  endif()

  list(JOIN _pghive_fsanitize "," _pghive_fsanitize_arg)
  set(PGHIVE_SANITIZER_FLAGS
    -fsanitize=${_pghive_fsanitize_arg} -fno-omit-frame-pointer)
  message(STATUS "pghive: sanitizers enabled: ${_pghive_fsanitize_arg}")
endif()
