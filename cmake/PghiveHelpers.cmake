# Shared target configuration for every pghive library / executable.
#
# pghive_target_defaults(<target>) applies the include layout (sources use
# "util/...", "core/..." relative to src/, and bench uses "bench/..." relative
# to the repo root), the warning policy, and the PGHIVE_SANITIZE flags.
#
# pghive_add_layer(<name> DEPS <layers...>) defines one src/<layer> static
# library named pghive_<name> (aliased pghive::<name>) from the .cc files in
# the calling directory.

set(PGHIVE_WARNING_FLAGS -Wall -Wextra)
if(PGHIVE_WERROR)
  list(APPEND PGHIVE_WARNING_FLAGS -Werror)
endif()
if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU"
   AND CMAKE_CXX_COMPILER_VERSION VERSION_LESS 13)
  # GCC 12 emits false-positive maybe-uninitialized warnings for the inactive
  # alternative of std::variant under -O2 (util::Result<T> trips it), and
  # false-positive -Wrestrict on inlined std::string concatenation
  # (GCC PR105329, fixed in 13). Both stay enabled on GCC >= 13 and clang.
  list(APPEND PGHIVE_WARNING_FLAGS -Wno-maybe-uninitialized -Wno-restrict)
endif()

function(pghive_target_defaults target)
  target_include_directories(${target} PUBLIC
    ${PROJECT_SOURCE_DIR}/src
    ${PROJECT_SOURCE_DIR})
  target_compile_options(${target} PRIVATE
    ${PGHIVE_WARNING_FLAGS}
    ${PGHIVE_SANITIZER_FLAGS})
  target_link_options(${target} PRIVATE ${PGHIVE_SANITIZER_FLAGS})
endfunction()

function(pghive_add_layer name)
  cmake_parse_arguments(ARG "" "" "DEPS" ${ARGN})
  file(GLOB _sources CONFIGURE_DEPENDS ${CMAKE_CURRENT_SOURCE_DIR}/*.cc)
  add_library(pghive_${name} STATIC ${_sources})
  add_library(pghive::${name} ALIAS pghive_${name})
  pghive_target_defaults(pghive_${name})
  foreach(_dep IN LISTS ARG_DEPS)
    target_link_libraries(pghive_${name} PUBLIC pghive::${_dep})
  endforeach()
endfunction()
