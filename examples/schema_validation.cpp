// Schema-as-a-contract workflow: discover a schema from a trusted snapshot,
// export it, parse it back (as a downstream service would), and validate an
// evolved graph containing violations — demonstrating the validator, the
// PG-Schema parser, and the deletion-aware incremental API together.
//
//   $ ./schema_validation

#include <cstdio>

#include "core/pghive.h"
#include "core/pgschema_parser.h"
#include "core/removal.h"
#include "core/serialize.h"
#include "core/validator.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"

using namespace pghive;

int main() {
  // 1. Discover the schema of a trusted POLE snapshot.
  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), 0.3, 17);
  core::PgHiveOptions options;
  core::PgHive pipeline(&dataset.graph, options);
  if (!pipeline.Run().ok()) return 1;
  std::printf("discovered %zu node types, %zu edge types\n",
              pipeline.schema().num_node_types(),
              pipeline.schema().num_edge_types());

  // 2. Export and re-parse the schema (the contract travels as text).
  std::string contract = core::SerializePgSchema(
      pipeline.schema(), dataset.graph.vocab(), core::SchemaMode::kStrict);
  auto parsed = core::ParsePgSchema(contract, &dataset.graph.vocab());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("contract round-tripped: %zu node types, %zu edge types\n",
              parsed.value().num_node_types(),
              parsed.value().num_edge_types());

  // 3. The graph evolves: a malformed ingestion adds rule-breaking data.
  pg::PropertyGraph evolved = dataset.graph;
  pg::NodeId rogue = evolved.AddNode({"Person"});  // Missing mandatory props.
  evolved.SetNodeProperty(rogue, "name", pg::Value("Mallory"));
  pg::NodeId alien = evolved.AddNode({"Satellite"});  // Unknown type.
  (void)alien;

  core::ValidatorOptions vopts;
  core::SchemaValidator validator(&pipeline.schema(), vopts);
  core::ValidationReport report = validator.Validate(evolved);
  std::printf("\nvalidating evolved graph: %s\n", report.Summary().c_str());
  for (const core::Violation& v : report.violations) {
    std::printf("  [%s] %s %llu: %s\n", core::ViolationKindName(v.kind),
                v.is_edge ? "edge" : "node",
                static_cast<unsigned long long>(v.element_id),
                v.detail.c_str());
  }

  // 4. Deletions shrink the schema (the incremental extension): remove every
  // Vehicle node and watch the type disappear.
  pg::GraphBatch removals;
  pg::LabelId vehicle = dataset.graph.vocab().FindLabel("Vehicle");
  for (const pg::Node& n : dataset.graph.nodes()) {
    if (n.HasLabel(vehicle)) removals.node_ids.push_back(n.id);
  }
  core::RemovalResult removed =
      core::RemoveBatch(dataset.graph, removals, &pipeline.mutable_schema());
  std::printf(
      "\nremoved %zu Vehicle nodes -> %zu types dropped, schema now has %zu "
      "node types\n",
      removed.nodes_removed, removed.node_types_dropped,
      pipeline.schema().num_node_types());
  return 0;
}
