// Heterogeneous-integration scenario (ICIJ-like): schema discovery under
// 30% property noise and 50% label availability, where the published
// baselines cannot run at all. Compares PG-HIVE (ELSH & MinHash) against
// GMMSchema and SchemI on the clean and degraded variants.
//
//   $ ./noisy_integration

#include <cstdio>

#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "eval/harness.h"
#include "util/table_printer.h"

using namespace pghive;

int main() {
  datasets::Dataset dataset =
      datasets::Generate(datasets::IcijSpec(), /*scale=*/0.5, /*seed=*/3);
  std::printf("ICIJ-like graph: %zu nodes, %zu edges\n\n",
              dataset.graph.num_nodes(), dataset.graph.num_edges());

  util::TablePrinter table(
      {"method", "noise", "labels", "node F1*", "edge F1*", "time(ms)"});
  const eval::Method methods[] = {
      eval::Method::kPgHiveElsh, eval::Method::kPgHiveMinHash,
      eval::Method::kGmmSchema, eval::Method::kSchemI};
  struct Cell {
    double noise, labels;
  };
  const Cell cells[] = {{0.0, 1.0}, {0.3, 1.0}, {0.3, 0.5}};

  for (const Cell& cell : cells) {
    for (eval::Method m : methods) {
      eval::RunConfig config;
      config.method = m;
      config.noise = cell.noise;
      config.label_availability = cell.labels;
      config.seed = 99;
      eval::RunResult r = eval::RunMethod(dataset, config);
      table.AddRow({eval::MethodName(m),
                    util::TablePrinter::Fmt(cell.noise * 100, 0) + "%",
                    util::TablePrinter::Fmt(cell.labels * 100, 0) + "%",
                    r.ok ? util::TablePrinter::Fmt(r.node_f1.f1) : "n/a",
                    r.ok && r.has_edge_result
                        ? util::TablePrinter::Fmt(r.edge_f1.f1)
                        : "n/a",
                    r.ok ? util::TablePrinter::Fmt(r.discovery_ms, 1) : "-"});
    }
  }
  table.Print();
  std::printf(
      "\nNote: GMMSchema and SchemI require fully labeled data; they report "
      "n/a at 50%% label availability, while PG-HIVE still discovers the "
      "schema (the paper's headline capability).\n");
  return 0;
}
