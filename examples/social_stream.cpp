// Incremental discovery on a streaming social network (LDBC-like):
// the graph arrives in 10 random batches and the schema is refined after
// each one, demonstrating the monotone schema chain of §4.6.
//
//   $ ./social_stream

#include <cstdio>

#include "core/pghive.h"
#include "core/serialize.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/batch.h"

using namespace pghive;

int main() {
  datasets::Dataset dataset =
      datasets::Generate(datasets::LdbcSpec(), /*scale=*/0.25, /*seed=*/7);
  std::printf("LDBC-like stream: %zu nodes, %zu edges\n",
              dataset.graph.num_nodes(), dataset.graph.num_edges());

  core::PgHiveOptions options;
  core::PgHive pipeline(&dataset.graph, options);

  auto batches = pg::SplitIntoBatches(dataset.graph, 10, /*seed=*/11);
  for (size_t i = 0; i < batches.size(); ++i) {
    auto status = pipeline.ProcessBatch(batches[i]);
    if (!status.ok()) {
      std::fprintf(stderr, "batch %zu failed: %s\n", i,
                   status.ToString().c_str());
      return 1;
    }
    std::printf(
        "batch %2zu: +%5zu elements -> %2zu node types, %2zu edge types "
        "(%.1f ms)\n",
        i + 1, batches[i].size(), pipeline.schema().num_node_types(),
        pipeline.schema().num_edge_types(),
        pipeline.last_stats().discovery_ms());
  }

  // Final post-processing: constraints, data types, cardinalities.
  (void)pipeline.Finish();
  std::printf("\n%s\n",
              core::DescribeSchema(pipeline.schema(), dataset.graph.vocab())
                  .c_str());
  return 0;
}
