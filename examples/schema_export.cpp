// Schema serialization: discover the schema of a POLE-like crime graph and
// export it as PG-Schema (both LOOSE and STRICT modes) and XSD (§4.5).
//
//   $ ./schema_export [output_prefix]
//
// Writes <prefix>.loose.pgs, <prefix>.strict.pgs and <prefix>.xsd
// (default prefix "pole_schema").

#include <cstdio>
#include <fstream>
#include <string>

#include "core/pghive.h"
#include "core/serialize.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"

using namespace pghive;

int main(int argc, char** argv) {
  std::string prefix = argc > 1 ? argv[1] : "pole_schema";

  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), /*scale=*/0.5, /*seed=*/21);

  core::PgHiveOptions options;
  auto schema = core::DiscoverSchema(&dataset.graph, options);
  if (!schema.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  const pg::Vocabulary& vocab = dataset.graph.vocab();
  struct Out {
    std::string path;
    std::string content;
  };
  const Out outputs[] = {
      {prefix + ".loose.pgs",
       core::SerializePgSchema(schema.value(), vocab,
                               core::SchemaMode::kLoose)},
      {prefix + ".strict.pgs",
       core::SerializePgSchema(schema.value(), vocab,
                               core::SchemaMode::kStrict)},
      {prefix + ".xsd", core::SerializeXsd(schema.value(), vocab)},
  };
  for (const Out& out : outputs) {
    std::ofstream f(out.path);
    f << out.content;
    std::printf("wrote %s (%zu bytes)\n", out.path.c_str(),
                out.content.size());
  }

  std::printf("\n--- STRICT preview ---\n%.2000s\n", outputs[1].content.c_str());
  return 0;
}
