// Quickstart: build the paper's running example graph (Fig. 1) by hand, run
// PG-HIVE schema discovery, and print the discovered schema.
//
//   $ ./quickstart
//
// Demonstrates: graph construction, the one-call DiscoverSchema API, and the
// schema inspection helpers.

#include <cstdio>

#include "core/pghive.h"
#include "core/serialize.h"
#include "pg/graph.h"

using pghive::core::DiscoverSchema;
using pghive::core::PgHiveOptions;
using pghive::pg::PropertyGraph;
using pghive::pg::Value;

int main() {
  PropertyGraph graph;

  // People (Alice arrives unlabeled, as in Fig. 1).
  auto bob = graph.AddNode({"Person"});
  graph.SetNodeProperty(bob, "name", Value("Bob"));
  graph.SetNodeProperty(bob, "gender", Value("male"));
  graph.SetNodeProperty(bob, "bday", Value("1980-05-02"));

  auto alice = graph.AddNode({});  // Unlabeled!
  graph.SetNodeProperty(alice, "name", Value("Alice"));
  graph.SetNodeProperty(alice, "gender", Value("female"));
  graph.SetNodeProperty(alice, "bday", Value("1999-12-19"));

  auto john = graph.AddNode({"Person"});
  graph.SetNodeProperty(john, "name", Value("John"));
  graph.SetNodeProperty(john, "gender", Value("male"));
  graph.SetNodeProperty(john, "bday", Value("2005-09-24"));

  // Posts with two structural variants (same label, different patterns).
  auto post1 = graph.AddNode({"Post"});
  graph.SetNodeProperty(post1, "imgFile", Value("screenshot.png"));
  auto post2 = graph.AddNode({"Post"});
  graph.SetNodeProperty(post2, "content", Value("bazinga!"));

  auto org = graph.AddNode({"Org"});
  graph.SetNodeProperty(org, "url", Value("example.com"));
  graph.SetNodeProperty(org, "name", Value("Example"));

  auto place = graph.AddNode({"Place"});
  graph.SetNodeProperty(place, "name", Value("Greece"));

  auto knows1 = graph.AddEdge(alice, john, {"KNOWS"});
  graph.SetEdgeProperty(knows1, "since", Value("2025-01-01"));
  graph.AddEdge(bob, alice, {"KNOWS"});
  graph.AddEdge(alice, post1, {"LIKES"});
  graph.AddEdge(john, post2, {"LIKES"});
  auto works = graph.AddEdge(bob, org, {"WORKS_AT"});
  graph.SetEdgeProperty(works, "from", Value(static_cast<int64_t>(2000)));
  graph.AddEdge(org, place, {"LOCATED_IN"});

  // Discover the schema with default (adaptive ELSH) options.
  PgHiveOptions options;
  auto schema = DiscoverSchema(&graph, options);
  if (!schema.ok()) {
    std::fprintf(stderr, "discovery failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n",
              DescribeSchema(schema.value(), graph.vocab()).c_str());
  std::printf("--- PG-Schema (STRICT) ---\n%s\n",
              SerializePgSchema(schema.value(), graph.vocab(),
                                pghive::core::SchemaMode::kStrict)
                  .c_str());
  return 0;
}
