// Session durability: SaveState at a batch boundary, CreateFromState in a
// fresh manager (a restarted pghived), stream the remaining batches, and the
// final schema must be byte-identical to the uninterrupted session's. Plus
// the schema changefeed long-poll semantics and corruption rejection.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/schema_diff.h"
#include "pg/batch.h"
#include "pg/graph.h"
#include "service/client.h"
#include "service/session.h"
#include "service/session_manager.h"
#include "util/binio.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pghive::service {
namespace {

pg::PropertyGraph SocialGraph() {
  pg::PropertyGraph g;
  auto ann = g.AddNode({"Person"});
  g.SetNodeProperty(ann, "name", pg::Value("Ann"));
  g.SetNodeProperty(ann, "age", pg::Value(static_cast<int64_t>(31)));
  auto bo = g.AddNode({"Person"});
  g.SetNodeProperty(bo, "name", pg::Value("Bo"));
  auto cy = g.AddNode({"Person"});
  g.SetNodeProperty(cy, "name", pg::Value("Cy"));
  auto p1 = g.AddNode({"Post"});
  g.SetNodeProperty(p1, "text", pg::Value("hi"));
  auto p2 = g.AddNode({"Post"});
  g.SetNodeProperty(p2, "text", pg::Value("yo"));
  g.AddEdge(ann, bo, {"KNOWS"});
  g.AddEdge(bo, cy, {"KNOWS"});
  g.AddEdge(ann, p1, {"WROTE"});
  g.AddEdge(cy, p2, {"WROTE"});
  return g;
}

std::string UninterruptedSessionPgs(size_t batches) {
  SessionManager manager(nullptr);
  auto session = manager.CreateSession({});
  EXPECT_TRUE(session.ok());
  pg::PropertyGraph graph = SocialGraph();
  for (const std::string& payload : BuildIngestPayloads(graph, batches)) {
    EXPECT_TRUE((*session)->SubmitIngest(payload).ok());
  }
  auto final_snapshot = (*session)->FinalSnapshot();
  EXPECT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
  return final_snapshot.ok() ? (*final_snapshot)->pgs_strict : std::string();
}

TEST(SessionStateTest, SaveRestoreContinueMatchesUninterrupted) {
  const size_t batches = 4;
  const std::string expected = UninterruptedSessionPgs(batches);
  ASSERT_FALSE(expected.empty());

  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, batches);

  // First half into one manager (one daemon lifetime)...
  std::string state;
  {
    util::ThreadPool pool(2);
    SessionManager manager(&pool);
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok());
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE((*session)->SubmitIngest(payloads[i]).ok());
    }
    auto bytes = (*session)->SaveState();
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    state = *bytes;
  }

  // ... second half into a fresh manager (the restarted daemon).
  util::ThreadPool pool(2);
  SessionManager manager(&pool);
  auto restored = manager.CreateSessionFromState(state);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->batches_ingested(), 2u);
  for (size_t i = 2; i < batches; ++i) {
    ASSERT_TRUE((*restored)->SubmitIngest(payloads[i]).ok());
  }
  auto final_snapshot = (*restored)->FinalSnapshot();
  ASSERT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
  EXPECT_EQ((*final_snapshot)->pgs_strict, expected);
  EXPECT_EQ((*final_snapshot)->batches, batches);
}

TEST(SessionStateTest, SaveAtEveryBoundaryRestoresIdentically) {
  const size_t batches = 3;
  const std::string expected = UninterruptedSessionPgs(batches);
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, batches);

  for (size_t at = 1; at <= batches; ++at) {
    SessionManager saver(nullptr);
    auto session = saver.CreateSession({});
    ASSERT_TRUE(session.ok());
    for (size_t i = 0; i < at; ++i) {
      ASSERT_TRUE((*session)->SubmitIngest(payloads[i]).ok());
    }
    auto bytes = (*session)->SaveState();
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

    SessionManager restorer(nullptr);
    auto restored = restorer.CreateSessionFromState(*bytes);
    ASSERT_TRUE(restored.ok())
        << "at " << at << ": " << restored.status().ToString();
    for (size_t i = at; i < batches; ++i) {
      ASSERT_TRUE((*restored)->SubmitIngest(payloads[i]).ok());
    }
    auto final_snapshot = (*restored)->FinalSnapshot();
    ASSERT_TRUE(final_snapshot.ok());
    EXPECT_EQ((*final_snapshot)->pgs_strict, expected) << "at " << at;
  }
}

TEST(SessionStateTest, FinishedSessionRestoresFinished) {
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, 2);
  SessionManager saver(nullptr);
  auto session = saver.CreateSession({});
  ASSERT_TRUE(session.ok());
  for (const auto& p : payloads) {
    ASSERT_TRUE((*session)->SubmitIngest(p).ok());
  }
  auto final_snapshot = (*session)->FinalSnapshot();
  ASSERT_TRUE(final_snapshot.ok());
  auto bytes = (*session)->SaveState();
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  SessionManager restorer(nullptr);
  auto restored = restorer.CreateSessionFromState(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto snapshot = (*restored)->Snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->is_final);
  EXPECT_EQ(snapshot->pgs_strict, (*final_snapshot)->pgs_strict);
  // A finished session stays finished: further ingest is rejected.
  EXPECT_FALSE((*restored)->SubmitIngest(payloads[0]).ok());
}

TEST(SessionStateTest, RejectsGarbageAndCorruptState) {
  SessionManager manager(nullptr);
  EXPECT_FALSE(manager.CreateSessionFromState("").ok());
  EXPECT_FALSE(manager.CreateSessionFromState("not a session file").ok());

  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, 2);
  ASSERT_TRUE((*session)->SubmitIngest(payloads[0]).ok());
  auto bytes = (*session)->SaveState();
  ASSERT_TRUE(bytes.ok());

  // Truncations and bit flips never restore.
  for (size_t len : {size_t{4}, size_t{10}, bytes->size() / 2,
                     bytes->size() - 1}) {
    EXPECT_FALSE(manager.CreateSessionFromState(bytes->substr(0, len)).ok())
        << "len " << len;
  }
  std::string corrupt = *bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x10);
  EXPECT_FALSE(manager.CreateSessionFromState(corrupt).ok());
}

TEST(SessionStateTest, ChangefeedDeliversDiffsInVersionOrder) {
  SessionManager manager(nullptr);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, 2);
  for (const auto& p : payloads) {
    ASSERT_TRUE((*session)->SubmitIngest(p).ok());
  }
  (*session)->Drain();

  auto feed = (*session)->WaitForDiffs(/*after_version=*/0, /*timeout_ms=*/0);
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  auto records = core::ParseSchemaDiffStream(*feed);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].version_to, 1u);
  EXPECT_EQ((*records)[1].version_to, 2u);
  EXPECT_EQ((*records)[1].version_from, 1u);
  // The first record introduces types; it must not be empty.
  EXPECT_FALSE((*records)[0].empty());

  // Subscribing from the middle returns only the newer record.
  auto tail = (*session)->WaitForDiffs(1, 0);
  ASSERT_TRUE(tail.ok());
  auto tail_records = core::ParseSchemaDiffStream(*tail);
  ASSERT_TRUE(tail_records.ok());
  ASSERT_EQ(tail_records->size(), 1u);
  EXPECT_EQ((*tail_records)[0].version_to, 2u);

  // Caught up: a zero-timeout poll returns empty, not an error.
  auto empty = (*session)->WaitForDiffs(2, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  // Finish publishes one more version (the final post-processed schema).
  ASSERT_TRUE((*session)->FinalSnapshot().ok());
  auto final_feed = (*session)->WaitForDiffs(2, 0);
  ASSERT_TRUE(final_feed.ok());
  auto final_records = core::ParseSchemaDiffStream(*final_feed);
  ASSERT_TRUE(final_records.ok());
  ASSERT_EQ(final_records->size(), 1u);
  EXPECT_EQ((*final_records)[0].version_to, 3u);
}

TEST(SessionStateTest, NewerVersionWithAppendedSectionRestores) {
  // Same forward-compat policy as the "PGHS" hive snapshot: a newer "PGHD"
  // writer may only append optional sections, so a bumped u32 version word
  // (little-endian, offset 4) plus an unknown trailing section must restore
  // on today's binary and resume byte-identically.
  const size_t batches = 3;
  const std::string expected = UninterruptedSessionPgs(batches);
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, batches);

  SessionManager saver(nullptr);
  auto session = saver.CreateSession({});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->SubmitIngest(payloads[0]).ok());
  auto bytes = (*session)->SaveState();
  ASSERT_TRUE(bytes.ok());

  std::string future = *bytes;
  future[4] = 2;
  util::AppendSection(&future, /*id=*/999, "optional payload from v2");

  SessionManager restorer(nullptr);
  auto restored = restorer.CreateSessionFromState(future);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->batches_ingested(), 1u);
  for (size_t i = 1; i < batches; ++i) {
    ASSERT_TRUE((*restored)->SubmitIngest(payloads[i]).ok());
  }
  auto final_snapshot = (*restored)->FinalSnapshot();
  ASSERT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
  EXPECT_EQ((*final_snapshot)->pgs_strict, expected);

  // Versions below ours are malformed, not futuristic.
  std::string ancient = *bytes;
  ancient[4] = 0;
  EXPECT_FALSE(restorer.CreateSessionFromState(ancient).ok());
}

TEST(SessionStateTest, RestoredSessionPrunesOldFeedWindow) {
  // The feed backlog does not survive a restart: a subscriber resuming from
  // a pre-restart version gets OutOfRange and must refetch the schema.
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, 2);
  SessionManager saver(nullptr);
  auto session = saver.CreateSession({});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->SubmitIngest(payloads[0]).ok());
  auto bytes = (*session)->SaveState();
  ASSERT_TRUE(bytes.ok());

  SessionManager restorer(nullptr);
  auto restored = restorer.CreateSessionFromState(*bytes);
  ASSERT_TRUE(restored.ok());
  auto stale = (*restored)->WaitForDiffs(/*after_version=*/0, 0);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), util::StatusCode::kOutOfRange);

  // From the restored version onward the feed works again.
  ASSERT_TRUE((*restored)->SubmitIngest(payloads[1]).ok());
  (*restored)->Drain();
  auto fresh = (*restored)->WaitForDiffs(/*after_version=*/1, 0);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  auto records = core::ParseSchemaDiffStream(*fresh);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].version_to, 2u);
}

}  // namespace
}  // namespace pghive::service
