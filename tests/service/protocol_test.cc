// Wire-protocol unit tests: request/response framing round trips, body byte
// counts, and the transport-independent RequestHandler driven directly
// against a SessionManager (null pool — everything runs inline).

#include "service/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "core/schema_diff.h"
#include "pg/graph.h"
#include "service/client.h"
#include "service/session_manager.h"
#include "util/status.h"

namespace pghive::service {
namespace {

TEST(ProtocolTest, ParseRequestLineSplitsCommandAndArgs) {
  auto request = ParseRequestLine("ingest-batch s1 42");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->command, "ingest-batch");
  ASSERT_EQ(request->args.size(), 2u);
  EXPECT_EQ(request->args[0], "s1");
  EXPECT_EQ(request->args[1], "42");
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("   ").ok());
}

TEST(ProtocolTest, RequestBodyBytesOnlyForBodyCommands) {
  auto ping = ParseRequestLine("ping");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(*RequestBodyBytes(*ping), 0u);

  auto ingest = ParseRequestLine("ingest-batch s1 17");
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(*RequestBodyBytes(*ingest), 17u);

  auto validate = ParseRequestLine("validate s1 strict 5");
  ASSERT_TRUE(validate.ok());
  EXPECT_EQ(*RequestBodyBytes(*validate), 5u);

  auto missing = ParseRequestLine("ingest-batch");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(RequestBodyBytes(*missing).ok());

  auto garbage = ParseRequestLine("ingest-batch s1 banana");
  ASSERT_TRUE(garbage.ok());
  EXPECT_FALSE(RequestBodyBytes(*garbage).ok());
}

TEST(ProtocolTest, ResponseRoundTripPlain) {
  Response response;
  response.info = "session s1";
  std::string wire = FormatResponse(response);
  EXPECT_EQ(wire, "OK session s1\n");

  Response parsed;
  size_t body_bytes = 99;
  ASSERT_TRUE(
      ParseResponseLine("OK session s1", &parsed, &body_bytes).ok());
  EXPECT_TRUE(parsed.status.ok());
  EXPECT_EQ(parsed.info, "session s1");
  EXPECT_FALSE(parsed.has_body);
  EXPECT_EQ(body_bytes, 0u);
}

TEST(ProtocolTest, ResponseRoundTripWithBody) {
  Response response;
  response.info = "schema final version 3 batches 2";
  response.has_body = true;
  response.body = "CREATE GRAPH TYPE ...";
  std::string wire = FormatResponse(response);
  EXPECT_EQ(wire, "OK schema final version 3 batches 2 body 21\n" +
                      response.body + "\n");

  Response parsed;
  size_t body_bytes = 0;
  std::string line = wire.substr(0, wire.find('\n'));
  ASSERT_TRUE(ParseResponseLine(line, &parsed, &body_bytes).ok());
  EXPECT_TRUE(parsed.has_body);
  EXPECT_EQ(body_bytes, 21u);
  EXPECT_EQ(parsed.info, "schema final version 3 batches 2");
}

TEST(ProtocolTest, ErrorResponsesEscapeAndCarryTheCode) {
  Response response;
  response.status = util::Status::NotFound("no session; try create-session");
  std::string wire = FormatResponse(response);
  // The semicolon is escaped so the message stays one line-safe token run.
  EXPECT_EQ(wire.find('\n'), wire.size() - 1);

  Response parsed;
  size_t body_bytes = 0;
  std::string line = wire.substr(0, wire.size() - 1);
  ASSERT_TRUE(ParseResponseLine(line, &parsed, &body_bytes).ok());
  EXPECT_FALSE(parsed.status.ok());
  EXPECT_NE(parsed.status.message().find("NOT_FOUND"), std::string::npos);
  EXPECT_NE(parsed.status.message().find("no session; try create-session"),
            std::string::npos);
}

TEST(ProtocolTest, ParseResponseLineRejectsUnknownTag) {
  Response parsed;
  size_t body_bytes = 0;
  EXPECT_FALSE(ParseResponseLine("HELLO world", &parsed, &body_bytes).ok());
  EXPECT_FALSE(ParseResponseLine("", &parsed, &body_bytes).ok());
}

// --- RequestHandler against a real SessionManager (inline jobs). ---

class HandlerTest : public ::testing::Test {
 protected:
  HandlerTest() : manager_(nullptr), handler_(&manager_) {}

  Response Run(const std::string& line, const std::string& body = "") {
    auto request = ParseRequestLine(line);
    EXPECT_TRUE(request.ok()) << line;
    request->body = body;
    return handler_.Handle(*request);
  }

  /// The id token of a "session <id> ..." response.
  static std::string SessionIdOf(const Response& response) {
    std::string rest = response.info.substr(std::string("session ").size());
    return rest.substr(0, rest.find(' '));
  }

  SessionManager manager_;
  RequestHandler handler_;
};

TEST_F(HandlerTest, PingPong) {
  Response response = Run("ping");
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.info, "pong");
}

TEST_F(HandlerTest, UnknownCommandErrors) {
  Response response = Run("frobnicate");
  EXPECT_FALSE(response.status.ok());
}

TEST_F(HandlerTest, CreateSessionParsesKnobsAndRejectsBadOnes) {
  Response ok = Run("create-session threads=2 method=minhash");
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.info,
            "session s1 proto " + std::to_string(kProtocolVersion));

  EXPECT_FALSE(Run("create-session threads=banana").status.ok());
  EXPECT_FALSE(Run("create-session notaknob=1").status.ok());
  EXPECT_FALSE(Run("create-session justatoken").status.ok());
}

TEST_F(HandlerTest, CreateSessionProtocolHandshake) {
  // Clients at or below the server's protocol version are accepted; the
  // proto flag itself never reaches the options parser.
  EXPECT_TRUE(Run("create-session proto=1").status.ok());
  EXPECT_TRUE(Run("create-session proto=" +
                  std::to_string(kProtocolVersion) + " threads=2")
                  .status.ok());

  // A newer client gets a clear FailedPrecondition, not a misparse later.
  Response newer = Run("create-session proto=" +
                       std::to_string(kProtocolVersion + 1));
  ASSERT_FALSE(newer.status.ok());
  EXPECT_EQ(newer.status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(newer.status.message().find("protocol"), std::string::npos);

  EXPECT_FALSE(Run("create-session proto=0").status.ok());
  EXPECT_FALSE(Run("create-session proto=banana").status.ok());
}

TEST_F(HandlerTest, FullSessionLifecycleOverTheHandler) {
  pg::PropertyGraph g;
  auto a = g.AddNode({"Person"});
  g.SetNodeProperty(a, "name", pg::Value("Ann"));
  auto b = g.AddNode({"Person"});
  g.SetNodeProperty(b, "name", pg::Value("Bo"));
  g.AddEdge(a, b, {"KNOWS"});
  auto payloads = BuildIngestPayloads(g, /*num_batches=*/1);

  Response created = Run("create-session");
  ASSERT_TRUE(created.status.ok());
  const std::string id = SessionIdOf(created);

  Response ingested = Run("ingest-batch " + id + " " +
                              std::to_string(payloads[0].size()),
                          payloads[0]);
  ASSERT_TRUE(ingested.status.ok()) << ingested.status.ToString();
  EXPECT_EQ(ingested.info, "batch 1");

  Response schema = Run("get-schema " + id + " pgs");
  ASSERT_TRUE(schema.status.ok()) << schema.status.ToString();
  EXPECT_TRUE(schema.has_body);
  EXPECT_NE(schema.body.find("CREATE GRAPH TYPE"), std::string::npos);
  EXPECT_NE(schema.info.find("schema final"), std::string::npos);

  // The discovered schema validates against its own graph.
  Response valid = Run(
      "validate " + id + " strict " + std::to_string(schema.body.size()),
      schema.body);
  ASSERT_TRUE(valid.status.ok()) << valid.status.ToString();
  EXPECT_EQ(valid.info, "valid");

  Response closed = Run("close " + id);
  EXPECT_TRUE(closed.status.ok());
  EXPECT_FALSE(Run("get-schema " + id + " pgs").status.ok());
}

TEST_F(HandlerTest, SnapshotFormReturnsLatestWithoutFinishing) {
  pg::PropertyGraph g;
  auto a = g.AddNode({"Person"});
  g.SetNodeProperty(a, "name", pg::Value("Ann"));
  auto b = g.AddNode({"Person"});
  g.SetNodeProperty(b, "name", pg::Value("Bo"));
  auto payloads = BuildIngestPayloads(g, /*num_batches=*/2);
  ASSERT_EQ(payloads.size(), 2u);

  Response created = Run("create-session");
  ASSERT_TRUE(created.status.ok());
  const std::string id = SessionIdOf(created);

  // Before any batch: no snapshot.
  EXPECT_FALSE(Run("get-schema " + id + " pgs snapshot").status.ok());

  Response first = Run("ingest-batch " + id + " " +
                           std::to_string(payloads[0].size()),
                       payloads[0]);
  ASSERT_TRUE(first.status.ok());

  Response snapshot = Run("get-schema " + id + " pgs snapshot");
  ASSERT_TRUE(snapshot.status.ok()) << snapshot.status.ToString();
  EXPECT_NE(snapshot.info.find("schema snapshot"), std::string::npos);
  EXPECT_NE(snapshot.info.find("batches 1"), std::string::npos);

  // The snapshot read did not finish the stream: batch 2 still ingests.
  Response second = Run("ingest-batch " + id + " " +
                            std::to_string(payloads[1].size()),
                        payloads[1]);
  EXPECT_TRUE(second.status.ok()) << second.status.ToString();
}

TEST_F(HandlerTest, SaveAndLoadStateRoundTripOverTheHandler) {
  pg::PropertyGraph g;
  auto a = g.AddNode({"Person"});
  g.SetNodeProperty(a, "name", pg::Value("Ann"));
  auto b = g.AddNode({"Person"});
  g.SetNodeProperty(b, "name", pg::Value("Bo"));
  g.AddEdge(a, b, {"KNOWS"});
  auto payloads = BuildIngestPayloads(g, /*num_batches=*/2);
  ASSERT_EQ(payloads.size(), 2u);

  Response created = Run("create-session");
  ASSERT_TRUE(created.status.ok());
  const std::string id = SessionIdOf(created);
  ASSERT_TRUE(Run("ingest-batch " + id + " " +
                      std::to_string(payloads[0].size()),
                  payloads[0])
                  .status.ok());

  const std::string path = ::testing::TempDir() + "/handler_state.bin";
  Response saved = Run("save-state " + id + " " + path);
  ASSERT_TRUE(saved.status.ok()) << saved.status.ToString();
  EXPECT_NE(saved.info.find("saved " + id + " bytes "), std::string::npos);

  // Finish the original session: the ground truth schema.
  ASSERT_TRUE(Run("ingest-batch " + id + " " +
                      std::to_string(payloads[1].size()),
                  payloads[1])
                  .status.ok());
  Response expected = Run("get-schema " + id + " pgs");
  ASSERT_TRUE(expected.status.ok());

  // A second manager/handler pair simulates the restarted daemon.
  SessionManager fresh_manager(nullptr);
  RequestHandler restarted(&fresh_manager);
  auto RunRestarted = [&](const std::string& line, const std::string& body) {
    auto request = ParseRequestLine(line);
    EXPECT_TRUE(request.ok()) << line;
    request->body = body;
    return restarted.Handle(*request);
  };
  Response loaded = RunRestarted("load-state " + path, "");
  ASSERT_TRUE(loaded.status.ok()) << loaded.status.ToString();
  EXPECT_NE(loaded.info.find("batches 1"), std::string::npos);
  const std::string restored_id = SessionIdOf(loaded);
  ASSERT_TRUE(RunRestarted("ingest-batch " + restored_id + " " +
                               std::to_string(payloads[1].size()),
                           payloads[1])
                  .status.ok());
  Response resumed = RunRestarted("get-schema " + restored_id + " pgs", "");
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_EQ(resumed.body, expected.body);

  // Bad paths stay errors, not crashes.
  EXPECT_FALSE(Run("save-state nosuch " + path).status.ok());
  EXPECT_FALSE(Run("save-state " + id).status.ok());
  EXPECT_FALSE(
      RunRestarted("load-state " + path + ".does-not-exist", "").status.ok());
}

TEST_F(HandlerTest, SessionInfoReportsBatchesForResume) {
  pg::PropertyGraph g;
  auto a = g.AddNode({"Person"});
  g.SetNodeProperty(a, "name", pg::Value("Ann"));
  auto b = g.AddNode({"Person"});
  g.SetNodeProperty(b, "name", pg::Value("Bo"));
  g.AddEdge(a, b, {"KNOWS"});
  auto payloads = BuildIngestPayloads(g, /*num_batches=*/2);

  Response created = Run("create-session");
  ASSERT_TRUE(created.status.ok());
  const std::string id = SessionIdOf(created);

  // Mirrors the load-state reply shape so resuming clients parse one form.
  Response empty = Run("session-info " + id);
  ASSERT_TRUE(empty.status.ok()) << empty.status.ToString();
  EXPECT_EQ(empty.info, "session " + id + " batches 0");

  ASSERT_TRUE(Run("ingest-batch " + id + " " +
                      std::to_string(payloads[0].size()),
                  payloads[0])
                  .status.ok());
  Response one = Run("session-info " + id);
  ASSERT_TRUE(one.status.ok());
  EXPECT_EQ(one.info, "session " + id + " batches 1");

  Response missing = Run("session-info nosuch");
  ASSERT_FALSE(missing.status.ok());
  EXPECT_EQ(missing.status.code(), util::StatusCode::kNotFound);
  EXPECT_FALSE(Run("session-info").status.ok());
  EXPECT_FALSE(Run("session-info " + id + " extra").status.ok());
}

TEST_F(HandlerTest, SubscribeChangefeedReturnsParseableRecords) {
  pg::PropertyGraph g;
  auto a = g.AddNode({"Person"});
  g.SetNodeProperty(a, "name", pg::Value("Ann"));
  auto b = g.AddNode({"Person"});
  g.SetNodeProperty(b, "name", pg::Value("Bo"));
  g.AddEdge(a, b, {"KNOWS"});
  auto payloads = BuildIngestPayloads(g, /*num_batches=*/1);

  Response created = Run("create-session");
  ASSERT_TRUE(created.status.ok());
  const std::string id = SessionIdOf(created);
  ASSERT_TRUE(Run("ingest-batch " + id + " " +
                      std::to_string(payloads[0].size()),
                  payloads[0])
                  .status.ok());

  Response feed = Run("subscribe-changefeed " + id + " 0 0");
  ASSERT_TRUE(feed.status.ok()) << feed.status.ToString();
  EXPECT_TRUE(feed.has_body);
  auto records = core::ParseSchemaDiffStream(feed.body);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].version_to, 1u);

  // Caught up: empty body, still OK.
  Response empty = Run("subscribe-changefeed " + id + " 1 0");
  ASSERT_TRUE(empty.status.ok());
  EXPECT_TRUE(empty.body.empty());

  EXPECT_FALSE(Run("subscribe-changefeed " + id + " banana 0").status.ok());
  EXPECT_FALSE(Run("subscribe-changefeed " + id).status.ok());
  EXPECT_FALSE(Run("subscribe-changefeed nosuch 0 0").status.ok());
}

TEST_F(HandlerTest, UnknownSessionAndBadFormsError) {
  EXPECT_FALSE(Run("get-schema nosuch pgs").status.ok());
  EXPECT_FALSE(Run("ingest-batch nosuch 0").status.ok());
  EXPECT_FALSE(Run("close nosuch").status.ok());

  Response created = Run("create-session");
  ASSERT_TRUE(created.status.ok());
  EXPECT_FALSE(Run("get-schema s1 hieroglyphs").status.ok());
  EXPECT_FALSE(Run("validate s1 sorta 0").status.ok());
}

}  // namespace
}  // namespace pghive::service
