// service/net: the loopback TCP plumbing under pghived. The contract under
// test: reads on a closed or moved-from SocketStream surface the same
// NotFound("connection closed") an orderly peer disconnect does — callers
// branch on NotFound to mean "peer went away", so an EBADF IoError from
// recv(-1, ...) would misclassify every post-close read as a hard failure.

#include "service/net.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <utility>

#include "util/status.h"

namespace pghive::service {
namespace {

/// A connected loopback socket pair: client stream + raw server fd.
struct LoopbackPair {
  SocketStream client{-1};
  int server_fd = -1;

  LoopbackPair() {
    auto listen_fd = ListenTcp(0);
    EXPECT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
    auto port = BoundPort(*listen_fd);
    EXPECT_TRUE(port.ok());
    auto client_fd = ConnectTcp(*port);
    EXPECT_TRUE(client_fd.ok()) << client_fd.status().ToString();
    client = SocketStream(*client_fd);
    server_fd = ::accept(*listen_fd, nullptr, nullptr);
    EXPECT_GE(server_fd, 0);
    ::close(*listen_fd);
  }

  ~LoopbackPair() {
    if (server_fd >= 0) ::close(server_fd);
  }
};

TEST(SocketStreamTest, ReadsOnClosedStreamReturnNotFound) {
  SocketStream stream(-1);
  ASSERT_TRUE(stream.closed());

  auto line = stream.ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), util::StatusCode::kNotFound);

  std::string body;
  util::Status read = stream.ReadExact(4, &body);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), util::StatusCode::kNotFound);

  // Writes are a different story: the caller asked to send bytes that can
  // never arrive, which is an IO failure, not a quiet disconnect.
  EXPECT_EQ(stream.WriteAll("ping\n").code(), util::StatusCode::kIoError);
}

TEST(SocketStreamTest, MovedFromStreamReadsReturnNotFound) {
  LoopbackPair pair;
  SocketStream taken = std::move(pair.client);
  ASSERT_TRUE(pair.client.closed());
  ASSERT_FALSE(taken.closed());

  auto line = pair.client.ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), util::StatusCode::kNotFound);

  // The stream the fd moved into still works.
  ASSERT_EQ(::send(pair.server_fd, "pong\n", 5, 0), 5);
  auto live = taken.ReadLine();
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(*live, "pong");
}

TEST(SocketStreamTest, LineAndExactReadsOverLoopback) {
  LoopbackPair pair;
  const std::string wire = "hello\r\nworld\nBODY";
  ASSERT_EQ(::send(pair.server_fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  auto first = pair.client.ReadLine();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "hello");  // \r stripped with the \n.
  auto second = pair.client.ReadLine();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "world");

  std::string body;
  ASSERT_TRUE(pair.client.ReadExact(4, &body).ok());
  EXPECT_EQ(body, "BODY");
}

TEST(SocketStreamTest, OrderlyPeerCloseIsNotFoundAfterFinalLine) {
  LoopbackPair pair;
  // Trailing bytes without a newline still count as the last line...
  ASSERT_EQ(::send(pair.server_fd, "tail", 4, 0), 4);
  ::close(pair.server_fd);
  pair.server_fd = -1;

  auto tail = pair.client.ReadLine();
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_EQ(*tail, "tail");

  // ... and the EOF after them is the orderly-disconnect NotFound.
  auto eof = pair.client.ReadLine();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), util::StatusCode::kNotFound);

  // Closing our own side keeps every later read on the NotFound contract.
  pair.client.Close();
  auto closed = pair.client.ReadLine();
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace pghive::service
