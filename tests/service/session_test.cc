// Session / SessionManager tests: lifecycle (create / lookup / close /
// capacity), the streamed-equals-one-shot schema identity, snapshot
// versioning, error latching, and post-finish rejection. Runs with a real
// shared pool to exercise the lane scheduling, plus inline where noted.

#include "service/session.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "core/pghive.h"
#include "core/serialize.h"
#include "pg/batch.h"
#include "pg/graph.h"
#include "service/client.h"
#include "service/session_manager.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pghive::service {
namespace {

pg::PropertyGraph SocialGraph() {
  pg::PropertyGraph g;
  auto ann = g.AddNode({"Person"});
  g.SetNodeProperty(ann, "name", pg::Value("Ann"));
  g.SetNodeProperty(ann, "age", pg::Value(static_cast<int64_t>(31)));
  auto bo = g.AddNode({"Person"});
  g.SetNodeProperty(bo, "name", pg::Value("Bo"));
  g.SetNodeProperty(bo, "age", pg::Value(static_cast<int64_t>(44)));
  auto cy = g.AddNode({});
  g.SetNodeProperty(cy, "name", pg::Value("Cy"));
  g.SetNodeProperty(cy, "age", pg::Value(static_cast<int64_t>(19)));
  auto p1 = g.AddNode({"Post"});
  g.SetNodeProperty(p1, "text", pg::Value("hi"));
  auto p2 = g.AddNode({"Post"});
  g.SetNodeProperty(p2, "text", pg::Value("yo"));
  g.AddEdge(ann, bo, {"KNOWS"});
  g.AddEdge(bo, cy, {"KNOWS"});
  g.AddEdge(ann, p1, {"WROTE"});
  g.AddEdge(cy, p2, {"WROTE"});
  return g;
}

/// The schema a one-shot multi-batch CLI-style run produces for `graph`.
std::string OneShotPgs(size_t batches) {
  pg::PropertyGraph graph = SocialGraph();
  core::PgHiveOptions options;
  core::PgHive pipeline(&graph, options);
  if (batches <= 1) {
    EXPECT_TRUE(pipeline.Run().ok());
  } else {
    for (const auto& batch :
         pg::SplitIntoBatches(graph, batches, /*seed=*/1)) {
      EXPECT_TRUE(pipeline.ProcessBatch(batch).ok());
    }
    EXPECT_TRUE(pipeline.Finish().ok());
  }
  return core::SerializePgSchema(pipeline.schema(), graph.vocab(),
                                 core::SchemaMode::kStrict);
}

TEST(SessionManagerTest, CreateLookupCloseLifecycle) {
  SessionManager manager(nullptr);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->id(), "s1");
  EXPECT_EQ(manager.num_sessions(), 1u);

  auto found = manager.Lookup("s1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->get(), session->get());
  EXPECT_FALSE(manager.Lookup("s2").ok());

  EXPECT_TRUE(manager.Close("s1").ok());
  EXPECT_EQ(manager.num_sessions(), 0u);
  EXPECT_FALSE(manager.Lookup("s1").ok());
  EXPECT_FALSE(manager.Close("s1").ok());

  // Ids never recycle.
  auto next = manager.CreateSession({});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ((*next)->id(), "s2");
}

TEST(SessionManagerTest, EnforcesMaxSessions) {
  SessionManager::Options options;
  options.max_sessions = 2;
  SessionManager manager(nullptr, options);
  ASSERT_TRUE(manager.CreateSession({}).ok());
  ASSERT_TRUE(manager.CreateSession({}).ok());
  auto third = manager.CreateSession({});
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), util::StatusCode::kFailedPrecondition);
  // Closing frees a slot.
  ASSERT_TRUE(manager.Close("s1").ok());
  EXPECT_TRUE(manager.CreateSession({}).ok());
}

TEST(SessionManagerTest, RejectsBadOptionFlags) {
  SessionManager manager(nullptr);
  EXPECT_FALSE(manager.CreateSession({{"threads", "-3"}}).ok());
  EXPECT_FALSE(manager.CreateSession({{"no-such-knob", "1"}}).ok());
  EXPECT_EQ(manager.num_sessions(), 0u);
}

TEST(SessionTest, StreamedScheduleMatchesOneShot) {
  const std::string expected = OneShotPgs(/*batches=*/3);
  util::ThreadPool pool(4);
  SessionManager manager(&pool);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());

  pg::PropertyGraph graph = SocialGraph();
  for (const std::string& payload :
       BuildIngestPayloads(graph, /*num_batches=*/3)) {
    auto seq = (*session)->SubmitIngest(payload);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  }
  auto final_snapshot = (*session)->FinalSnapshot();
  ASSERT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
  EXPECT_TRUE((*final_snapshot)->is_final);
  EXPECT_EQ((*final_snapshot)->batches, 3u);
  EXPECT_EQ((*final_snapshot)->pgs_strict, expected);

  // The binary form reconstructs the same schema structure.
  auto schema = core::ParseSchemaBinary((*final_snapshot)->binary);
  ASSERT_TRUE(schema.ok());
  EXPECT_GT(schema->num_node_types(), 0u);
}

TEST(SessionTest, SnapshotsVersionMonotonicallyAndNeverBlockIngest) {
  util::ThreadPool pool(2);
  SessionManager manager(&pool);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());

  EXPECT_EQ((*session)->Snapshot(), nullptr);
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, /*num_batches=*/2);
  ASSERT_TRUE((*session)->SubmitIngest(payloads[0]).ok());
  (*session)->Drain();
  auto first = (*session)->Snapshot();
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(first->is_final);
  EXPECT_EQ(first->batches, 1u);

  ASSERT_TRUE((*session)->SubmitIngest(payloads[1]).ok());
  auto final_snapshot = (*session)->FinalSnapshot();
  ASSERT_TRUE(final_snapshot.ok());
  EXPECT_GT((*final_snapshot)->version, first->version);
  // The first snapshot is immutable: still batch 1's view.
  EXPECT_EQ(first->batches, 1u);
  EXPECT_FALSE(first->is_final);
}

TEST(SessionTest, IngestAfterFinalSnapshotIsRejected) {
  SessionManager manager(nullptr);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, /*num_batches=*/1);
  ASSERT_TRUE((*session)->SubmitIngest(payloads[0]).ok());
  ASSERT_TRUE((*session)->FinalSnapshot().ok());

  auto late = (*session)->SubmitIngest(payloads[0]);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(SessionTest, BadPayloadLatchesErrorAndRejectsFurtherIngest) {
  SessionManager manager(nullptr);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->SubmitIngest("this is not a payload\n").ok());
  (*session)->Drain();
  EXPECT_FALSE((*session)->status().ok());
  EXPECT_FALSE((*session)->SubmitIngest("G 1 0\n").ok());
  EXPECT_FALSE((*session)->FinalSnapshot().ok());
}

TEST(SessionTest, FinalSnapshotFailsOnIncompleteStream) {
  SessionManager manager(nullptr);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  // Declares 2 nodes but only materializes one.
  ASSERT_TRUE((*session)->SubmitIngest("G 2 0\nN 0 Person name=x\n").ok());
  auto final_snapshot = (*session)->FinalSnapshot();
  EXPECT_FALSE(final_snapshot.ok());
}

TEST(SessionTest, ValidateUsesAVocabCopy) {
  util::ThreadPool pool(2);
  SessionManager manager(&pool);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  // Fully labeled graph: unlabeled nodes merge into a labeled type, which
  // strict validation then (correctly) flags — irrelevant to this test.
  pg::PropertyGraph graph;
  auto ann = graph.AddNode({"Person"});
  graph.SetNodeProperty(ann, "name", pg::Value("Ann"));
  auto bo = graph.AddNode({"Person"});
  graph.SetNodeProperty(bo, "name", pg::Value("Bo"));
  graph.AddEdge(ann, bo, {"KNOWS"});
  auto payloads = BuildIngestPayloads(graph, /*num_batches=*/1);
  ASSERT_TRUE((*session)->SubmitIngest(payloads[0]).ok());
  auto final_snapshot = (*session)->FinalSnapshot();
  ASSERT_TRUE(final_snapshot.ok());

  // A schema full of labels the session never saw: validation must fail
  // gracefully without interning them into the session's vocabulary.
  const std::string foreign =
      "CREATE GRAPH TYPE Foreign STRICT {\n"
      "  (ZzyzxType : Zzyzx {quux STRING})\n"
      "}\n";
  auto result = (*session)->Validate(foreign, /*strict=*/true);
  if (result.ok()) {
    EXPECT_FALSE(result->conforms);
  }
  // The session's own schema still validates cleanly afterwards.
  auto own = (*session)->Validate((*final_snapshot)->pgs_strict,
                                  /*strict=*/true);
  ASSERT_TRUE(own.ok()) << own.status().ToString();
  EXPECT_TRUE(own->conforms) << own->report;
}

}  // namespace
}  // namespace pghive::service
