// Daemon-owned durability: a SessionManager given a checkpoint_dir writes
// scheduled "PGHD" snapshots and changefeed segment files on its own
// authority, a fresh manager over the same directory restores every session
// under its original id, and subscribers can replay the *full* changefeed —
// including versions evicted from the in-memory backlog — byte-identically
// across the restart. No client save-state/load-state anywhere in this file.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/schema_diff.h"
#include "pg/graph.h"
#include "service/client.h"
#include "service/session.h"
#include "service/session_manager.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pghive::service {
namespace {

namespace fs = std::filesystem;

pg::PropertyGraph SocialGraph() {
  pg::PropertyGraph g;
  auto ann = g.AddNode({"Person"});
  g.SetNodeProperty(ann, "name", pg::Value("Ann"));
  g.SetNodeProperty(ann, "age", pg::Value(static_cast<int64_t>(31)));
  auto bo = g.AddNode({"Person"});
  g.SetNodeProperty(bo, "name", pg::Value("Bo"));
  auto cy = g.AddNode({"Person"});
  g.SetNodeProperty(cy, "name", pg::Value("Cy"));
  auto p1 = g.AddNode({"Post"});
  g.SetNodeProperty(p1, "text", pg::Value("hi"));
  auto p2 = g.AddNode({"Post"});
  g.SetNodeProperty(p2, "text", pg::Value("yo"));
  g.AddEdge(ann, bo, {"KNOWS"});
  g.AddEdge(bo, cy, {"KNOWS"});
  g.AddEdge(ann, p1, {"WROTE"});
  g.AddEdge(cy, p2, {"WROTE"});
  return g;
}

/// A fresh, empty checkpoint directory unique to the calling test.
std::string FreshCheckpointDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "durable_session_" + name;
  fs::remove_all(dir);
  return dir;
}

SessionManager::Options DurableOptions(const std::string& dir,
                                       uint64_t checkpoint_every = 1,
                                       size_t feed_backlog = 256) {
  SessionManager::Options options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = checkpoint_every;
  options.feed_backlog = feed_backlog;
  return options;
}

std::string UninterruptedSessionPgs(size_t batches) {
  SessionManager manager(nullptr);
  auto session = manager.CreateSession({});
  EXPECT_TRUE(session.ok());
  pg::PropertyGraph graph = SocialGraph();
  for (const std::string& payload : BuildIngestPayloads(graph, batches)) {
    EXPECT_TRUE((*session)->SubmitIngest(payload).ok());
  }
  auto final_snapshot = (*session)->FinalSnapshot();
  EXPECT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
  return final_snapshot.ok() ? (*final_snapshot)->pgs_strict : std::string();
}

TEST(DurableSessionTest, ScheduledCheckpointRestoresAcrossManagers) {
  const size_t batches = 4;
  const std::string expected = UninterruptedSessionPgs(batches);
  ASSERT_FALSE(expected.empty());
  const std::string dir = FreshCheckpointDir("scheduled");
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, batches);

  // Half the stream into a durable manager; the daemon dies (no explicit
  // save, no CheckpointAll — only the every-2-batches scheduled write).
  {
    SessionManager manager(nullptr, DurableOptions(dir, /*checkpoint_every=*/2));
    ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok());
    EXPECT_EQ((*session)->id(), "s1");
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE((*session)->SubmitIngest(payloads[i]).ok());
    }
    (*session)->Drain();
    EXPECT_TRUE(fs::exists(dir + "/s1.pghd"));
  }

  // The restarted daemon: restore finds s1 under its original id, the
  // remaining batches stream in, and the schema is byte-identical.
  SessionManager manager(nullptr, DurableOptions(dir, 2));
  ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
  auto restored = manager.Lookup("s1");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->batches_ingested(), 2u);
  // Ids continue past everything seen on disk — s1 is never recycled.
  auto fresh = manager.CreateSession({});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->id(), "s2");
  for (size_t i = 2; i < batches; ++i) {
    ASSERT_TRUE((*restored)->SubmitIngest(payloads[i]).ok());
  }
  auto final_snapshot = (*restored)->FinalSnapshot();
  ASSERT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
  EXPECT_EQ((*final_snapshot)->pgs_strict, expected);
}

TEST(DurableSessionTest, FinishCheckpointsEvenOffSchedule) {
  const std::string dir = FreshCheckpointDir("finish");
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, 2);
  std::string expected;
  {
    // checkpoint_every=100 never fires on 2 batches; Finish must still
    // write the final snapshot.
    SessionManager manager(nullptr, DurableOptions(dir, 100));
    ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok());
    for (const auto& p : payloads) {
      ASSERT_TRUE((*session)->SubmitIngest(p).ok());
    }
    auto final_snapshot = (*session)->FinalSnapshot();
    ASSERT_TRUE(final_snapshot.ok());
    expected = (*final_snapshot)->pgs_strict;
    EXPECT_TRUE(fs::exists(dir + "/s1.pghd"));
  }

  SessionManager manager(nullptr, DurableOptions(dir, 100));
  ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
  auto restored = manager.Lookup("s1");
  ASSERT_TRUE(restored.ok());
  auto snapshot = (*restored)->Snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->is_final);
  EXPECT_EQ(snapshot->pgs_strict, expected);
}

TEST(DurableSessionTest, FeedServedFromDiskPastTheBacklog) {
  const size_t batches = 4;
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, batches);

  // Ground truth: an all-in-memory session with a roomy backlog.
  std::string expected_feed;
  {
    SessionManager manager(nullptr);
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok());
    for (const auto& p : payloads) {
      ASSERT_TRUE((*session)->SubmitIngest(p).ok());
    }
    ASSERT_TRUE((*session)->FinalSnapshot().ok());
    auto feed = (*session)->WaitForDiffs(/*after_version=*/0, 0);
    ASSERT_TRUE(feed.ok());
    expected_feed = *feed;
  }

  // A 2-record window over 5 published versions: 1..3 are long evicted, so
  // serving from version 0 must splice the segment file in front of the
  // in-memory tail — and produce the exact bytes the roomy session buffered.
  const std::string dir = FreshCheckpointDir("disk_feed");
  SessionManager manager(nullptr,
                         DurableOptions(dir, 1, /*feed_backlog=*/2));
  ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  for (const auto& p : payloads) {
    ASSERT_TRUE((*session)->SubmitIngest(p).ok());
  }
  ASSERT_TRUE((*session)->FinalSnapshot().ok());

  auto feed = (*session)->WaitForDiffs(0, 0);
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  EXPECT_EQ(*feed, expected_feed);
  auto records = core::ParseSchemaDiffStream(*feed);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), batches + 1);  // +1 for the Finish publish.
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].version_to, i + 1);
  }

  // Mid-stream subscriptions splice correctly too.
  auto tail = (*session)->WaitForDiffs(2, 0);
  ASSERT_TRUE(tail.ok());
  auto tail_records = core::ParseSchemaDiffStream(*tail);
  ASSERT_TRUE(tail_records.ok());
  ASSERT_EQ(tail_records->size(), batches - 1);
  EXPECT_EQ((*tail_records)[0].version_to, 3u);
}

TEST(DurableSessionTest, FullFeedHistorySurvivesRestartByteIdentically) {
  const size_t batches = 4;
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, batches);
  const std::string dir = FreshCheckpointDir("feed_restart");

  std::string before;
  {
    SessionManager manager(nullptr, DurableOptions(dir, 1, 2));
    ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok());
    for (const auto& p : payloads) {
      ASSERT_TRUE((*session)->SubmitIngest(p).ok());
    }
    ASSERT_TRUE((*session)->FinalSnapshot().ok());
    auto feed = (*session)->WaitForDiffs(0, 0);
    ASSERT_TRUE(feed.ok());
    before = *feed;
    ASSERT_FALSE(before.empty());
  }

  // After the restart every version predates the (empty) in-memory window,
  // so the whole history comes off disk — and it is the same bytes. This is
  // exactly what protocol v2 clients got OutOfRange for
  // (SessionStateTest.RestoredSessionPrunesOldFeedWindow pins that the
  // non-durable path still does).
  SessionManager manager(nullptr, DurableOptions(dir, 1, 2));
  ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
  auto restored = manager.Lookup("s1");
  ASSERT_TRUE(restored.ok());
  auto after = (*restored)->WaitForDiffs(0, 0);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, before);

  // And the feed keeps extending seamlessly past the restart... but a
  // finished session has nothing left to publish; resubscribing from the
  // last version is a clean empty poll, not an error.
  auto caught_up = (*restored)->WaitForDiffs(batches + 1, 0);
  ASSERT_TRUE(caught_up.ok());
  EXPECT_TRUE(caught_up->empty());
}

TEST(DurableSessionTest, RestartMidStreamExtendsTheSameFeedFile) {
  const size_t batches = 4;
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, batches);
  const std::string dir = FreshCheckpointDir("feed_extend");

  std::string ground_truth;
  {
    SessionManager manager(nullptr);
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok());
    for (const auto& p : payloads) {
      ASSERT_TRUE((*session)->SubmitIngest(p).ok());
    }
    ASSERT_TRUE((*session)->FinalSnapshot().ok());
    auto feed = (*session)->WaitForDiffs(0, 0);
    ASSERT_TRUE(feed.ok());
    ground_truth = *feed;
  }

  {
    SessionManager manager(nullptr, DurableOptions(dir, 1, 2));
    ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok());
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE((*session)->SubmitIngest(payloads[i]).ok());
    }
    (*session)->Drain();
  }

  SessionManager manager(nullptr, DurableOptions(dir, 1, 2));
  ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
  auto restored = manager.Lookup("s1");
  ASSERT_TRUE(restored.ok());
  for (size_t i = 2; i < batches; ++i) {
    ASSERT_TRUE((*restored)->SubmitIngest(payloads[i]).ok());
  }
  ASSERT_TRUE((*restored)->FinalSnapshot().ok());
  auto feed = (*restored)->WaitForDiffs(0, 0);
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  // Versions 1-2 written before the restart, 3-5 after: one contiguous
  // history, byte-identical to the uninterrupted session's feed.
  EXPECT_EQ(*feed, ground_truth);
}

TEST(DurableSessionTest, CloseDeletesCheckpointAndFeedFiles) {
  const std::string dir = FreshCheckpointDir("close");
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, 2);
  SessionManager manager(nullptr, DurableOptions(dir, 1, 1));
  ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  for (const auto& p : payloads) {
    ASSERT_TRUE((*session)->SubmitIngest(p).ok());
  }
  ASSERT_TRUE((*session)->FinalSnapshot().ok());
  ASSERT_TRUE(fs::exists(dir + "/s1.pghd"));
  ASSERT_TRUE(fs::exists(dir + "/s1.feed"));

  ASSERT_TRUE(manager.Close("s1").ok());
  EXPECT_FALSE(fs::exists(dir + "/s1.pghd"));
  EXPECT_FALSE(fs::exists(dir + "/s1.feed"));
}

TEST(DurableSessionTest, OrphanFeedFileReservesItsSessionId) {
  // A session that published a feed but died before its first snapshot
  // leaves an orphan .feed; its id must not be handed to an unrelated new
  // session, which would inherit the dead session's history.
  const std::string dir = FreshCheckpointDir("orphan");
  fs::create_directories(dir);
  std::ofstream(dir + "/s7.feed", std::ios::binary) << "leftover";

  SessionManager manager(nullptr, DurableOptions(dir));
  ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
  EXPECT_EQ(manager.num_sessions(), 0u);  // No snapshot, nothing restored.
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->id(), "s8");
}

TEST(DurableSessionTest, CorruptCheckpointFailsRestoreLoudly) {
  const std::string dir = FreshCheckpointDir("corrupt");
  fs::create_directories(dir);
  std::ofstream(dir + "/s1.pghd", std::ios::binary) << "not a session file";

  SessionManager manager(nullptr, DurableOptions(dir));
  util::Status status = manager.RestoreFromCheckpointDir();
  ASSERT_FALSE(status.ok());
  // The error names the offending file: an operator needs to know which
  // tenant's snapshot is bad before deciding to delete it.
  EXPECT_NE(status.message().find("s1.pghd"), std::string::npos);
}

TEST(DurableSessionTest, TornFeedTailIsDroppedOnRestore) {
  const size_t batches = 3;
  pg::PropertyGraph graph = SocialGraph();
  auto payloads = BuildIngestPayloads(graph, batches);
  const std::string dir = FreshCheckpointDir("torn");

  {
    SessionManager manager(nullptr, DurableOptions(dir, 1, 1));
    ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok());
    for (const auto& p : payloads) {
      ASSERT_TRUE((*session)->SubmitIngest(p).ok());
    }
    (*session)->Drain();
  }

  // Simulate a torn write: chop the last 5 bytes off the segment file. The
  // restored session must reconcile (drop the torn record) and still serve
  // a clean, contiguous prefix rather than erroring or serving garbage.
  const std::string feed_path = dir + "/s1.feed";
  ASSERT_TRUE(fs::exists(feed_path));
  const auto full_size = fs::file_size(feed_path);
  fs::resize_file(feed_path, full_size - 5);

  SessionManager manager(nullptr, DurableOptions(dir, 1, 1));
  ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
  auto restored = manager.Lookup("s1");
  ASSERT_TRUE(restored.ok());
  // Version 3's record was torn away and the checkpoint already covers
  // batch 3, so nothing will ever re-publish it: the history has a permanent
  // hole. Subscribers behind the hole get OutOfRange (refetch the schema,
  // resubscribe) — never a feed with a version silently missing.
  auto stale = (*restored)->WaitForDiffs(0, 0);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), util::StatusCode::kOutOfRange);

  // From the checkpointed version onward the feed is clean: Finish
  // publishes version 4 and a subscriber at 3 sees exactly it.
  ASSERT_TRUE((*restored)->FinalSnapshot().ok());
  auto feed = (*restored)->WaitForDiffs(batches, 0);
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  auto records = core::ParseSchemaDiffStream(*feed);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].version_to, batches + 1);
}

}  // namespace
}  // namespace pghive::service
