// GraphAssembler unit tests: the ingest-payload grammar (G header, vocab
// preamble, N/R/M/E records), its error paths, and the end-to-end identity
// that BuildIngestPayloads + ApplyPayload reconstruct the original graph —
// same dense ids, same intern order, same text serialization.

#include "service/assembler.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "pg/batch.h"
#include "pg/graph.h"
#include "pg/graph_io.h"
#include "service/client.h"
#include "util/status.h"

namespace pghive::service {
namespace {

pg::PropertyGraph SmallGraph() {
  pg::PropertyGraph g;
  auto a = g.AddNode({"Person"});
  g.SetNodeProperty(a, "name", pg::Value("Ann"));
  auto b = g.AddNode({"Person", "Admin"});
  g.SetNodeProperty(b, "name", pg::Value("Bo"));
  auto c = g.AddNode({"Post"});
  g.SetNodeProperty(c, "score", pg::Value(static_cast<int64_t>(7)));
  auto e = g.AddEdge(a, c, {"LIKES"});
  g.SetEdgeProperty(e, "when", pg::Value("2020"));
  g.AddEdge(b, a, {"KNOWS"});
  return g;
}

std::string GraphText(const pg::PropertyGraph& g) {
  return pg::SaveGraphText(g);
}

TEST(GraphAssemblerTest, SinglePayloadRebuildsGraphExactly) {
  pg::PropertyGraph original = SmallGraph();
  auto payloads = BuildIngestPayloads(original, /*num_batches=*/1);
  ASSERT_EQ(payloads.size(), 1u);

  pg::PropertyGraph rebuilt;
  GraphAssembler assembler(&rebuilt);
  pg::GraphBatch batch;
  ASSERT_TRUE(assembler.ApplyPayload(payloads[0], &batch).ok());
  EXPECT_TRUE(assembler.CheckComplete().ok());
  EXPECT_EQ(batch.node_ids.size(), original.num_nodes());
  EXPECT_EQ(batch.edge_ids.size(), original.num_edges());
  // Same dense ids, labels, properties, and vocab intern order.
  EXPECT_EQ(GraphText(rebuilt), GraphText(original));
}

TEST(GraphAssemblerTest, MultiBatchRebuildIsExactAndCoversEveryElement) {
  pg::PropertyGraph original = SmallGraph();
  auto payloads = BuildIngestPayloads(original, /*num_batches=*/3);
  ASSERT_EQ(payloads.size(), 3u);

  pg::PropertyGraph rebuilt;
  GraphAssembler assembler(&rebuilt);
  size_t member_nodes = 0;
  size_t member_edges = 0;
  for (size_t i = 0; i < payloads.size(); ++i) {
    pg::GraphBatch batch;
    ASSERT_TRUE(assembler.ApplyPayload(payloads[i], &batch).ok())
        << "batch " << i;
    member_nodes += batch.node_ids.size();
    member_edges += batch.edge_ids.size();
  }
  EXPECT_TRUE(assembler.CheckComplete().ok());
  // Every element is a member of exactly one batch (R lines materialize
  // early but membership stays with the owning batch via M markers).
  EXPECT_EQ(member_nodes, original.num_nodes());
  EXPECT_EQ(member_edges, original.num_edges());
  EXPECT_EQ(GraphText(rebuilt), GraphText(original));
}

TEST(GraphAssemblerTest, BatchMembersMatchSplitIntoBatchesOrder) {
  pg::PropertyGraph original = SmallGraph();
  auto expected = pg::SplitIntoBatches(original, 2, /*seed=*/1);
  auto payloads = BuildIngestPayloads(original, /*num_batches=*/2, /*seed=*/1);
  ASSERT_EQ(payloads.size(), expected.size());

  pg::PropertyGraph rebuilt;
  GraphAssembler assembler(&rebuilt);
  for (size_t i = 0; i < payloads.size(); ++i) {
    pg::GraphBatch batch;
    ASSERT_TRUE(assembler.ApplyPayload(payloads[i], &batch).ok());
    EXPECT_EQ(batch.node_ids, expected[i].node_ids) << "batch " << i;
    EXPECT_EQ(batch.edge_ids, expected[i].edge_ids) << "batch " << i;
  }
}

TEST(GraphAssemblerTest, RejectsRecordsBeforeHeader) {
  pg::PropertyGraph g;
  GraphAssembler assembler(&g);
  pg::GraphBatch batch;
  EXPECT_FALSE(assembler.ApplyPayload("N 0 Person name=x\n", &batch).ok());
}

TEST(GraphAssemblerTest, RejectsDuplicateHeader) {
  pg::PropertyGraph g;
  GraphAssembler assembler(&g);
  pg::GraphBatch batch;
  ASSERT_TRUE(assembler.ApplyPayload("G 1 0\n", &batch).ok());
  EXPECT_FALSE(assembler.ApplyPayload("G 1 0\n", &batch).ok());
}

TEST(GraphAssemblerTest, RejectsOutOfRangeAndDoubleMaterialization) {
  pg::PropertyGraph g;
  GraphAssembler assembler(&g);
  pg::GraphBatch batch;
  ASSERT_TRUE(assembler.ApplyPayload("G 2 0\nN 0 Person -\n", &batch).ok());
  // Id beyond the declared size.
  EXPECT_FALSE(assembler.ApplyPayload("N 5 Person -\n", &batch).ok());
  // Same node twice.
  EXPECT_FALSE(assembler.ApplyPayload("N 0 Person -\n", &batch).ok());
}

TEST(GraphAssemblerTest, MembershipMarkerRequiresMaterializedNode) {
  pg::PropertyGraph g;
  GraphAssembler assembler(&g);
  pg::GraphBatch batch;
  ASSERT_TRUE(assembler.ApplyPayload("G 2 0\n", &batch).ok());
  EXPECT_FALSE(assembler.ApplyPayload("M 1\n", &batch).ok());
  ASSERT_TRUE(assembler.ApplyPayload("R 1 Person -\n", &batch).ok());
  EXPECT_TRUE(batch.node_ids.empty());  // R is not a member.
  EXPECT_TRUE(assembler.ApplyPayload("M 1\n", &batch).ok());
  EXPECT_EQ(batch.node_ids.size(), 1u);
}

TEST(GraphAssemblerTest, EdgeNeedsMaterializedEndpoints) {
  pg::PropertyGraph g;
  GraphAssembler assembler(&g);
  pg::GraphBatch batch;
  ASSERT_TRUE(assembler.ApplyPayload("G 2 1\nN 0 A -\n", &batch).ok());
  EXPECT_FALSE(assembler.ApplyPayload("E 0 0 1 REL -\n", &batch).ok());
  ASSERT_TRUE(assembler.ApplyPayload("N 1 B -\n", &batch).ok());
  EXPECT_TRUE(assembler.ApplyPayload("E 0 0 1 REL -\n", &batch).ok());
  EXPECT_TRUE(assembler.CheckComplete().ok());
}

TEST(GraphAssemblerTest, CheckCompleteReportsUnfilledElements) {
  pg::PropertyGraph g;
  GraphAssembler assembler(&g);
  pg::GraphBatch batch;
  ASSERT_TRUE(assembler.ApplyPayload("G 2 0\nN 0 A -\n", &batch).ok());
  auto status = assembler.CheckComplete();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(GraphAssemblerTest, HeaderRejectsAbsurdDeclaredSizes) {
  // Untrusted declared sizes are clamped before the placeholder loop would
  // try to allocate them: a hostile G header fails with OutOfRange instead
  // of out-of-memory.
  pg::PropertyGraph g;
  GraphAssembler assembler(&g);
  pg::GraphBatch batch;
  auto nodes = assembler.ApplyPayload("G 999999999999 0\n", &batch);
  ASSERT_FALSE(nodes.ok());
  EXPECT_EQ(nodes.code(), util::StatusCode::kOutOfRange);
  auto edges = assembler.ApplyPayload("G 1 999999999999\n", &batch);
  ASSERT_FALSE(edges.ok());
  EXPECT_EQ(edges.code(), util::StatusCode::kOutOfRange);
  EXPECT_EQ(g.num_nodes(), 0u);
}

TEST(GraphAssemblerTest, StateRoundTripResumesMidStream) {
  pg::PropertyGraph original = SmallGraph();
  auto payloads = BuildIngestPayloads(original, /*num_batches=*/3);

  // Stream the first batch, snapshot the progress bitmaps. (R lines pull
  // edge endpoints forward, so even one batch may fill most of the graph —
  // the bitmaps, not a count, are what the resume depends on.)
  pg::PropertyGraph first_graph;
  GraphAssembler first(&first_graph);
  {
    pg::GraphBatch batch;
    ASSERT_TRUE(first.ApplyPayload(payloads[0], &batch).ok());
  }
  std::string state;
  first.AppendStateTo(&state);

  // Restore into a fresh assembler over the replayed graph; the remaining
  // batches complete the stream exactly as the uninterrupted one would.
  pg::PropertyGraph replayed;
  auto reload = pg::LoadGraphText(pg::SaveGraphText(first_graph));
  ASSERT_TRUE(reload.ok());
  replayed = *std::move(reload);
  GraphAssembler second(&replayed);
  ASSERT_TRUE(second.RestoreState(state).ok());
  EXPECT_EQ(second.nodes_filled(), first.nodes_filled());
  EXPECT_EQ(second.edges_filled(), first.edges_filled());
  for (size_t i = 1; i < payloads.size(); ++i) {
    pg::GraphBatch batch;
    ASSERT_TRUE(second.ApplyPayload(payloads[i], &batch).ok()) << i;
  }
  EXPECT_TRUE(second.CheckComplete().ok());
  EXPECT_EQ(GraphText(replayed), GraphText(original));
}

TEST(GraphAssemblerTest, RestoreStateRejectsMismatchAndCorruption) {
  pg::PropertyGraph original = SmallGraph();
  auto payloads = BuildIngestPayloads(original, /*num_batches=*/1);
  pg::PropertyGraph rebuilt;
  GraphAssembler assembler(&rebuilt);
  pg::GraphBatch batch;
  ASSERT_TRUE(assembler.ApplyPayload(payloads[0], &batch).ok());
  std::string state;
  assembler.AppendStateTo(&state);

  // Bitmap sizes must match the graph the state is restored onto.
  pg::PropertyGraph wrong_size;
  wrong_size.AddNode({"Person"});
  GraphAssembler mismatched(&wrong_size);
  auto mismatch = mismatched.RestoreState(state);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), util::StatusCode::kFailedPrecondition);

  // Truncations and a poisoned sized flag are ParseError.
  pg::PropertyGraph target;
  auto reload = pg::LoadGraphText(pg::SaveGraphText(rebuilt));
  ASSERT_TRUE(reload.ok());
  target = *std::move(reload);
  GraphAssembler fresh(&target);
  for (size_t len = 0; len < state.size(); ++len) {
    auto truncated = fresh.RestoreState(state.substr(0, len));
    ASSERT_FALSE(truncated.ok()) << "len " << len;
    EXPECT_EQ(truncated.code(), util::StatusCode::kParseError);
  }
  std::string bad_flag = state;
  bad_flag[0] = 2;
  EXPECT_EQ(fresh.RestoreState(bad_flag).code(),
            util::StatusCode::kParseError);
  // A failed restore leaves the assembler untouched and still usable.
  ASSERT_TRUE(fresh.RestoreState(state).ok());
  EXPECT_TRUE(fresh.CheckComplete().ok());
}

TEST(GraphAssemblerTest, VocabPreambleSurvivesNamesWithSpaces) {
  // V lines carry the name as the rest of the line, so vocabulary entries
  // with spaces intern in the right order (N/E record fields are
  // whitespace-delimited and cannot carry them — same as graph text files).
  pg::PropertyGraph g;
  GraphAssembler assembler(&g);
  pg::GraphBatch batch;
  ASSERT_TRUE(
      assembler.ApplyPayload("G 0 0\nV L Known For\nV K full name\n", &batch)
          .ok());
  ASSERT_EQ(g.vocab().num_labels(), 1u);
  EXPECT_EQ(g.vocab().LabelName(0), "Known For");
  ASSERT_EQ(g.vocab().num_keys(), 1u);
  EXPECT_EQ(g.vocab().KeyName(0), "full name");
}

}  // namespace
}  // namespace pghive::service
