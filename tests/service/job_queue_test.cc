// JobQueue unit tests: per-lane FIFO ordering (the determinism contract),
// cross-lane concurrency on a shared pool, drain semantics, and shutdown
// rejection. Lane-ordering assertions run under both the inline (null pool)
// and pooled paths.

#include "service/job_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace pghive::service {
namespace {

TEST(JobQueueTest, NullPoolRunsJobsInlineInOrder) {
  JobQueue queue(nullptr);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Submit("lane", [&order, i] { order.push_back(i); }));
  }
  // Inline path: jobs already ran on the submitting thread.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(JobQueueTest, LaneJobsRunInSubmissionOrderOnPool) {
  util::ThreadPool pool(4);
  JobQueue queue(&pool);
  std::mutex mutex;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.Submit("s1", [&, i] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    }));
  }
  queue.DrainLane("s1");
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(JobQueueTest, LanesInterleaveButNeverReorderInternally) {
  util::ThreadPool pool(4);
  JobQueue queue(&pool);
  std::mutex mutex;
  std::vector<std::pair<std::string, int>> events;
  for (int i = 0; i < 50; ++i) {
    for (const std::string lane : {"a", "b", "c"}) {
      ASSERT_TRUE(queue.Submit(lane, [&, lane, i] {
        std::lock_guard<std::mutex> lock(mutex);
        events.emplace_back(lane, i);
      }));
    }
  }
  queue.Drain();
  EXPECT_EQ(events.size(), 150u);
  // Per-lane order is strict regardless of global interleaving.
  std::map<std::string, int> last;
  for (const auto& [lane, seq] : events) {
    auto it = last.find(lane);
    if (it != last.end()) {
      EXPECT_LT(it->second, seq) << "lane " << lane;
    }
    last[lane] = seq;
  }
}

TEST(JobQueueTest, OneLaneNeverHoldsMoreThanOnePoolSlot) {
  util::ThreadPool pool(4);
  JobQueue queue(&pool);
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(queue.Submit("only", [&] {
      int now = ++active;
      int seen = max_active.load();
      while (now > seen && !max_active.compare_exchange_weak(seen, now)) {
      }
      --active;
    }));
  }
  queue.Drain();
  EXPECT_EQ(max_active.load(), 1);
}

TEST(JobQueueTest, DrainWaitsForAllLanes) {
  util::ThreadPool pool(2);
  JobQueue queue(&pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(queue.Submit("l" + std::to_string(i % 4), [&] { ++done; }));
  }
  queue.Drain();
  EXPECT_EQ(done.load(), 20);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(JobQueueTest, ShutdownRejectsFurtherSubmissions) {
  util::ThreadPool pool(2);
  JobQueue queue(&pool);
  std::atomic<int> ran{0};
  ASSERT_TRUE(queue.Submit("lane", [&] { ++ran; }));
  queue.Shutdown();
  EXPECT_EQ(ran.load(), 1);  // Shutdown drains first.
  EXPECT_FALSE(queue.Submit("lane", [&] { ++ran; }));
  EXPECT_EQ(ran.load(), 1);  // Rejected job never ran.
  queue.Shutdown();          // Idempotent.
}

TEST(JobQueueTest, JobExceptionDoesNotWedgeTheLane) {
  util::ThreadPool pool(2);
  JobQueue queue(&pool);
  std::atomic<int> ran{0};
  ASSERT_TRUE(queue.Submit("lane", [] { throw std::runtime_error("boom"); }));
  ASSERT_TRUE(queue.Submit("lane", [&] { ++ran; }));
  queue.Drain();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace pghive::service
