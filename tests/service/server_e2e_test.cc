// End-to-end pghived tests over a real loopback socket: a PghivedServer on
// an ephemeral port, driven by PghivedClient — the exact pair the daemon
// binary and `pghive client` wrap. Pins the headline guarantee: a schema
// streamed over TCP in batches is byte-identical to the one-shot run.

#include "service/server.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/pghive.h"
#include "core/serialize.h"
#include "pg/batch.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "service/client.h"
#include "util/status.h"

namespace pghive::service {
namespace {

struct OneShot {
  std::string pgs;
  std::string xsd;
};

OneShot OneShotDiscovery(double scale, size_t batches) {
  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), scale, /*seed=*/7);
  core::PgHiveOptions options;
  core::PgHive pipeline(&dataset.graph, options);
  if (batches <= 1) {
    EXPECT_TRUE(pipeline.Run().ok());
  } else {
    // Same split the client streams: SplitIntoBatches with the CLI seed.
    for (const auto& batch :
         pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/1)) {
      EXPECT_TRUE(pipeline.ProcessBatch(batch).ok());
    }
    EXPECT_TRUE(pipeline.Finish().ok());
  }
  OneShot out;
  out.pgs = core::SerializePgSchema(pipeline.schema(), dataset.graph.vocab(),
                                    core::SchemaMode::kStrict);
  out.xsd = core::SerializeXsd(pipeline.schema(), dataset.graph.vocab());
  return out;
}

TEST(ServerE2eTest, PingAndUnknownSession) {
  PghivedServer server({});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = PghivedClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_FALSE(client->GetSchema("nosuch").ok());
  server.Stop();
}

TEST(ServerE2eTest, StreamedSchemaIsByteIdenticalToOneShot) {
  const double kScale = 0.1;
  OneShot expected = OneShotDiscovery(kScale, /*batches=*/4);
  ASSERT_FALSE(expected.pgs.empty());

  PghivedServer server({});
  ASSERT_TRUE(server.Start().ok());
  auto client = PghivedClient::Connect(server.port());
  ASSERT_TRUE(client.ok());

  auto session = client->CreateSession({});
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), kScale, /*seed=*/7);
  auto payloads = BuildIngestPayloads(dataset.graph, /*num_batches=*/4);
  ASSERT_EQ(payloads.size(), 4u);
  for (size_t i = 0; i < payloads.size(); ++i) {
    auto seq = client->IngestBatch(*session, payloads[i]);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(*seq, i + 1);
  }

  auto pgs = client->GetSchema(*session, "pgs");
  ASSERT_TRUE(pgs.ok()) << pgs.status().ToString();
  EXPECT_EQ(*pgs, expected.pgs);

  auto xsd = client->GetSchema(*session, "xsd");
  ASSERT_TRUE(xsd.ok());
  EXPECT_EQ(*xsd, expected.xsd);

  // The binary form parses back into a structurally sane schema.
  auto binary = client->GetSchema(*session, "binary");
  ASSERT_TRUE(binary.ok());
  auto parsed = core::ParseSchemaBinary(*binary);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed->num_node_types(), 0u);

  // The streamed schema validates against the streamed graph.
  auto verdict = client->Validate(*session, /*strict=*/true, *pgs);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict->conforms) << verdict->report;

  EXPECT_TRUE(client->CloseSession(*session).ok());
  server.Stop();
}

TEST(ServerE2eTest, ConcurrentClientsGetIndependentSessions) {
  PghivedServer server({});
  ASSERT_TRUE(server.Start().ok());

  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), 0.05, /*seed=*/7);
  auto payloads = BuildIngestPayloads(dataset.graph, /*num_batches=*/2);

  constexpr int kClients = 4;
  std::vector<std::string> schemas(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = PghivedClient::Connect(server.port());
      ASSERT_TRUE(client.ok());
      auto session = client->CreateSession({});
      ASSERT_TRUE(session.ok());
      for (const std::string& payload : payloads) {
        ASSERT_TRUE(client->IngestBatch(*session, payload).ok());
      }
      auto pgs = client->GetSchema(*session, "pgs");
      ASSERT_TRUE(pgs.ok()) << pgs.status().ToString();
      schemas[c] = *pgs;
      EXPECT_TRUE(client->CloseSession(*session).ok());
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(schemas[c], schemas[0]) << "client " << c;
  }
  EXPECT_FALSE(schemas[0].empty());
  server.Stop();
}

TEST(ServerE2eTest, StopDrainsAndIsIdempotent) {
  PghivedServer server({});
  ASSERT_TRUE(server.Start().ok());
  auto client = PghivedClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto session = client->CreateSession({});
  ASSERT_TRUE(session.ok());

  pg::PropertyGraph graph;
  auto a = graph.AddNode({"A"});
  auto b = graph.AddNode({"B"});
  graph.AddEdge(a, b, {"REL"});
  auto payloads = BuildIngestPayloads(graph, 1);
  ASSERT_TRUE(client->IngestBatch(*session, payloads[0]).ok());

  server.Stop();
  server.Stop();  // Idempotent.
  // The connection is gone after shutdown.
  EXPECT_FALSE(client->Ping().ok());
}

}  // namespace
}  // namespace pghive::service
