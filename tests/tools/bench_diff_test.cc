#include "tools/bench_diff_lib.h"

#include <gtest/gtest.h>

#include <string>

namespace pghive::tools {
namespace {

constexpr const char* kSweepJson = R"({
  "benchmark": "pghive_parallel_sweep",
  "scale": 4,
  "nodes": 100,
  "edges": 200,
  "hardware_threads": 8,
  "stages": [
    {"stage": "vectorize", "results": [
      {"threads": 1, "ms": 100.0, "speedup": 1.0},
      {"threads": 2, "ms": 55.0, "speedup": 1.818}
    ]},
    {"stage": "group", "results": [
      {"threads": 1, "ms": 40.0, "speedup": 1.0}
    ]}
  ]
})";

TEST(ParseBenchJsonTest, SweepFormat) {
  auto parsed = ParseBenchJson(kSweepJson);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& entries = *parsed;
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "vectorize/threads=1");
  EXPECT_DOUBLE_EQ(entries[0].ms, 100.0);
  EXPECT_DOUBLE_EQ(entries[0].speedup, 1.0);
  EXPECT_EQ(entries[1].name, "vectorize/threads=2");
  EXPECT_DOUBLE_EQ(entries[1].speedup, 1.818);
  EXPECT_EQ(entries[2].name, "group/threads=1");
  EXPECT_DOUBLE_EQ(entries[2].ms, 40.0);
}

TEST(ParseBenchJsonTest, GoogleBenchmarkEntriesHaveNoSpeedup) {
  auto parsed = ParseBenchJson(
      R"({"benchmarks": [{"name": "BM_X", "real_time": 1e6}]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_DOUBLE_EQ((*parsed)[0].speedup, 0.0);
}

TEST(ParseBenchJsonTest, GoogleBenchmarkFormatConvertsUnits) {
  auto parsed = ParseBenchJson(R"({
    "context": {"host_name": "ci"},
    "benchmarks": [
      {"name": "BM_ElshHash/16", "run_type": "iteration",
       "real_time": 2.5e6, "cpu_time": 2.4e6, "time_unit": "ns"},
      {"name": "BM_ElshHash/16_mean", "run_type": "aggregate",
       "real_time": 2.5e6, "time_unit": "ns"},
      {"name": "BM_GmmEm", "real_time": 3.0, "time_unit": "ms"}
    ]
  })");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& entries = *parsed;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "BM_ElshHash/16");
  EXPECT_DOUBLE_EQ(entries[0].ms, 2.5);  // ns -> ms; aggregate row skipped.
  EXPECT_DOUBLE_EQ(entries[1].ms, 3.0);
}

TEST(ParseBenchJsonTest, MalformedInputFailsWithParseError) {
  auto truncated = ParseBenchJson("{\"stages\": [");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), util::StatusCode::kParseError);
  EXPECT_FALSE(truncated.status().message().empty());

  auto unknown = ParseBenchJson("{\"other\": 1}");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(unknown.status().message().find("unrecognized"),
            std::string::npos);
}

TEST(DiffEntriesTest, MatchesByNameAndSkipsUnpaired) {
  std::vector<BenchEntry> baseline = {{"a", 100.0}, {"gone", 5.0},
                                      {"b", 50.0}};
  std::vector<BenchEntry> current = {{"b", 60.0}, {"a", 90.0},
                                     {"new", 7.0}};
  auto rows = DiffEntries(baseline, current);
  ASSERT_EQ(rows.size(), 2u);  // "gone" and "new" are not comparable.
  EXPECT_EQ(rows[0].name, "a");
  EXPECT_DOUBLE_EQ(rows[0].delta_pct, -10.0);
  EXPECT_EQ(rows[1].name, "b");
  EXPECT_DOUBLE_EQ(rows[1].delta_pct, 20.0);
}

TEST(IsRegressionTest, SingleRowPredicate) {
  EXPECT_TRUE(IsRegression({"x", 100.0, 120.0, 20.0}, 10.0));
  EXPECT_FALSE(IsRegression({"x", 100.0, 105.0, 5.0}, 10.0));
  EXPECT_FALSE(IsRegression({"x", 0.0, 105.0, 0.0}, 10.0));
}

TEST(AnyRegressionTest, ThresholdIsStrict) {
  std::vector<DiffRow> rows = {{"x", 100.0, 110.0, 10.0}};
  EXPECT_FALSE(AnyRegression(rows, 10.0));  // Exactly at threshold: pass.
  rows[0].cur_ms = 110.1;
  rows[0].delta_pct = 10.1;
  EXPECT_TRUE(AnyRegression(rows, 10.0));   // Past threshold: fail.
  EXPECT_FALSE(AnyRegression(rows, 25.0));  // Looser gate: pass.
}

TEST(AnyRegressionTest, ImprovementAndZeroBaselineNeverRegress) {
  std::vector<DiffRow> rows = {
      {"faster", 100.0, 50.0, -50.0},
      {"zero-base", 0.0, 50.0, 0.0},
  };
  EXPECT_FALSE(AnyRegression(rows, 10.0));
}

TEST(AnyRegressionTest, SyntheticTenPercentInjection) {
  // The acceptance scenario: a >10% slowdown injected into one stage of an
  // otherwise identical sweep must trip the gate.
  auto baseline = ParseBenchJson(kSweepJson);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::string regressed_json = kSweepJson;
  size_t pos = regressed_json.find("\"ms\": 40.0");
  ASSERT_NE(pos, std::string::npos);
  regressed_json.replace(pos, 10, "\"ms\": 45.0");  // group: +12.5%.
  auto current = ParseBenchJson(regressed_json);
  ASSERT_TRUE(current.ok()) << current.status().ToString();
  auto rows = DiffEntries(*baseline, *current);
  EXPECT_TRUE(AnyRegression(rows, 10.0));
  EXPECT_FALSE(AnyRegression(DiffEntries(*baseline, *baseline), 10.0));
}

TEST(DiffEntriesTest, CarriesSpeedupRatiosWhenBothSidesHaveThem) {
  std::vector<BenchEntry> baseline = {{"s/threads=2", 50.0, 2.0},
                                      {"plain", 10.0, 0.0}};
  std::vector<BenchEntry> current = {{"s/threads=2", 52.0, 1.5},
                                     {"plain", 10.0, 0.0}};
  auto rows = DiffEntries(baseline, current);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].base_speedup, 2.0);
  EXPECT_DOUBLE_EQ(rows[0].cur_speedup, 1.5);
  EXPECT_DOUBLE_EQ(rows[0].speedup_drop_pct, 25.0);  // 2.0x -> 1.5x.
  EXPECT_DOUBLE_EQ(rows[1].base_speedup, 0.0);       // No ratio data.
}

TEST(IsRegressionTest, SpeedupRatioMode) {
  DiffRow dropped{"x", 50.0, 48.0, -4.0, 2.0, 1.5, 25.0};
  // The same row through the two lenses: ms got *faster* while scaling got
  // worse — exactly the case the ratio mode exists to catch.
  EXPECT_FALSE(IsRegression(dropped, 20.0, GateMode::kAbsoluteMs));
  EXPECT_TRUE(IsRegression(dropped, 20.0, GateMode::kSpeedupRatio));
  EXPECT_FALSE(IsRegression(dropped, 25.0, GateMode::kSpeedupRatio));  // Strict.

  DiffRow improved{"x", 50.0, 40.0, -20.0, 2.0, 2.5, -25.0};
  EXPECT_FALSE(IsRegression(improved, 10.0, GateMode::kSpeedupRatio));

  // Entries without ratio data (google-benchmark format, threads=1 rows
  // whose baseline carries no speedup) never regress in ratio mode.
  DiffRow no_ratio{"x", 50.0, 500.0, 900.0};
  EXPECT_FALSE(IsRegression(no_ratio, 10.0, GateMode::kSpeedupRatio));
}

TEST(ParseBenchJsonTest, SweepEntriesCarryThroughput) {
  auto parsed = ParseBenchJson(R"({
    "stages": [
      {"stage": "vectorize", "results": [
        {"threads": 1, "ms": 100.0, "speedup": 1.0, "eps": 250000.5},
        {"threads": 2, "ms": 55.0, "speedup": 1.818}
      ]}
    ]
  })");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& entries = *parsed;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_DOUBLE_EQ(entries[0].eps, 250000.5);
  EXPECT_DOUBLE_EQ(entries[1].eps, 0.0);  // "eps" is optional.
}

TEST(DiffEntriesTest, CarriesThroughputWhenBothSidesHaveIt) {
  std::vector<BenchEntry> baseline = {{"v", 100.0, 1.0, 200000.0},
                                      {"plain", 10.0, 0.0, 0.0}};
  std::vector<BenchEntry> current = {{"v", 125.0, 1.0, 160000.0},
                                     {"plain", 10.0, 0.0, 123.0}};
  auto rows = DiffEntries(baseline, current);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].base_eps, 200000.0);
  EXPECT_DOUBLE_EQ(rows[0].cur_eps, 160000.0);
  EXPECT_DOUBLE_EQ(rows[0].eps_drop_pct, 20.0);  // 200k -> 160k e/s.
  EXPECT_DOUBLE_EQ(rows[1].base_eps, 0.0);  // One-sided data: no comparison.
}

TEST(IsRegressionTest, ThroughputMode) {
  // Scaling intact (speedups equal) while every thread count got uniformly
  // slower — invisible to the ratio gate, exactly what eps mode catches.
  DiffRow uniform_slowdown{"x", 100.0, 125.0, 25.0, 1.0,     1.0,
                           0.0, 200000.0, 160000.0, 20.0};
  EXPECT_FALSE(IsRegression(uniform_slowdown, 10.0, GateMode::kSpeedupRatio));
  EXPECT_TRUE(IsRegression(uniform_slowdown, 10.0, GateMode::kThroughput));
  EXPECT_FALSE(IsRegression(uniform_slowdown, 20.0,
                            GateMode::kThroughput));  // Strict threshold.

  DiffRow improved{"x", 100.0, 80.0, -20.0, 1.0, 1.0, 0.0,
                   200000.0, 250000.0, -25.0};
  EXPECT_FALSE(IsRegression(improved, 10.0, GateMode::kThroughput));

  // Entries without throughput data never regress in eps mode.
  DiffRow no_eps{"x", 100.0, 900.0, 800.0};
  EXPECT_FALSE(IsRegression(no_eps, 10.0, GateMode::kThroughput));
}

TEST(IsIdenticalCodeStageTest, MatchesStagePrefix) {
  EXPECT_TRUE(IsIdenticalCodeStage("group"));
  EXPECT_TRUE(IsIdenticalCodeStage("group/threads=1"));
  EXPECT_TRUE(IsIdenticalCodeStage("group/threads=8"));
  EXPECT_FALSE(IsIdenticalCodeStage("vectorize/threads=1"));
  EXPECT_FALSE(IsIdenticalCodeStage("grouping/threads=1"));  // Exact stage.
  EXPECT_FALSE(IsIdenticalCodeStage("hash"));
  EXPECT_FALSE(IsIdenticalCodeStage(""));
}

// The group stage runs identical code on both data planes, so a huge eps
// swing there is pure noise: never a throughput regression, while the same
// numbers on a real stage still trip the gate — and other gate modes are
// unaffected by the skip list.
TEST(IsRegressionTest, ThroughputModeSkipsIdenticalCodeStages) {
  DiffRow noisy_group{"group/threads=2", 100.0, 150.0, 50.0, 0.0, 0.0,
                      0.0, 200000.0, 100000.0, 50.0};
  EXPECT_FALSE(IsRegression(noisy_group, 10.0, GateMode::kThroughput));
  EXPECT_TRUE(IsRegression(noisy_group, 10.0, GateMode::kAbsoluteMs));

  DiffRow same_numbers_real_stage{"vectorize/threads=2", 100.0, 150.0, 50.0,
                                  0.0, 0.0, 0.0, 200000.0, 100000.0, 50.0};
  EXPECT_TRUE(
      IsRegression(same_numbers_real_stage, 10.0, GateMode::kThroughput));

  EXPECT_TRUE(RegressedNames({noisy_group, same_numbers_real_stage}, 10.0,
                             GateMode::kThroughput) ==
              std::vector<std::string>{"vectorize/threads=2"});
}

TEST(MarkdownTableTest, ThroughputModeShowsElementsPerSec) {
  std::vector<DiffRow> rows = {
      {"vectorize/threads=1", 100.0, 125.0, 25.0, 0.0, 0.0, 0.0,
       200000.0, 160000.0, 20.0},
      {"embed/threads=1", 30.0, 29.0, -3.3, 0.0, 0.0, 0.0,
       400000.0, 410000.0, -2.5},
  };
  std::string table = MarkdownTable(rows, 10.0, GateMode::kThroughput);
  EXPECT_NE(table.find("elem/s"), std::string::npos);
  EXPECT_NE(table.find("| vectorize/threads=1 | 200000 | 160000 | +20.0% |"),
            std::string::npos);
  EXPECT_NE(table.find("regression"), std::string::npos);
  EXPECT_NE(table.find("✅ ok"), std::string::npos);
}

TEST(RegressedNamesTest, CollectsFlaggedRowsInOrder) {
  std::vector<DiffRow> rows = {
      {"a", 100.0, 150.0, 50.0},
      {"b", 100.0, 101.0, 1.0},
      {"c", 100.0, 130.0, 30.0},
  };
  auto names = RegressedNames(rows, 10.0, GateMode::kAbsoluteMs);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "c");
  EXPECT_TRUE(RegressedNames(rows, 10.0, GateMode::kSpeedupRatio).empty());
}

TEST(ConsecutiveRegressionsTest, FirstTripWarnsSecondTripFails) {
  // Run N: "group" trips for the first time -> no failures, only a warning.
  std::vector<std::string> prior;
  auto failures = ConsecutiveRegressions({"group/threads=4"}, prior);
  EXPECT_TRUE(failures.empty());

  // Run N+1: "group" trips again -> fails; a newly tripped stage does not.
  prior = {"group/threads=4"};
  failures =
      ConsecutiveRegressions({"vectorize/threads=2", "group/threads=4"}, prior);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0], "group/threads=4");

  // Run N+2: the stage recovered -> nothing fails even though it is still
  // in the prior list.
  EXPECT_TRUE(ConsecutiveRegressions({}, prior).empty());
}

TEST(MarkdownTableTest, SpeedupModeShowsRatiosAndWarnThenFailStatus) {
  std::vector<DiffRow> rows = {
      {"group/threads=4", 40.0, 42.0, 5.0, 3.0, 2.0, 33.3},
      {"vectorize/threads=4", 55.0, 54.0, -1.8, 3.5, 2.4, 31.4},
      {"embed/threads=4", 30.0, 29.0, -3.3, 3.0, 2.9, 3.3},
  };
  std::vector<std::string> prior = {"group/threads=4"};
  std::string table = MarkdownTable(rows, 20.0, GateMode::kSpeedupRatio,
                                    &prior);
  EXPECT_NE(table.find("baseline speedup"), std::string::npos);
  EXPECT_NE(table.find("| group/threads=4 | 3.00x | 2.00x | +33.3% |"),
            std::string::npos);
  EXPECT_NE(table.find("2nd consecutive"), std::string::npos);  // group.
  EXPECT_NE(table.find("warn (first trip)"), std::string::npos);  // vectorize.
  EXPECT_NE(table.find("✅ ok"), std::string::npos);  // embed.
}

TEST(MarkdownTableTest, FlagsRegressionsPastThreshold) {
  std::vector<DiffRow> rows = {
      {"group/threads=2", 40.0, 48.0, 20.0},
      {"vectorize/threads=2", 55.0, 54.0, -1.8},
  };
  std::string table = MarkdownTable(rows, 10.0);
  EXPECT_NE(table.find("| group/threads=2 | 40.000 | 48.000 | +20.0% |"),
            std::string::npos);
  EXPECT_NE(table.find("regression"), std::string::npos);
  EXPECT_NE(table.find("ok"), std::string::npos);
}

TEST(MarkdownTableTest, EmptyDiffRendersPlaceholder) {
  std::string table = MarkdownTable({}, 10.0);
  EXPECT_NE(table.find("no comparable entries"), std::string::npos);
}

}  // namespace
}  // namespace pghive::tools
