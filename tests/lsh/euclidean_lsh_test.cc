#include "lsh/euclidean_lsh.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace pghive::lsh {
namespace {

std::vector<float> RandomUnit(size_t dim, util::Rng* rng) {
  std::vector<float> v(dim);
  double norm2 = 0;
  for (auto& x : v) {
    x = static_cast<float>(rng->NextGaussian());
    norm2 += static_cast<double>(x) * x;
  }
  for (auto& x : v) x = static_cast<float>(x / std::sqrt(norm2));
  return v;
}

TEST(EuclideanLshTest, IdenticalVectorsAlwaysCollide) {
  EuclideanLshParams params;
  params.num_tables = 20;
  EuclideanLsh hasher(8, params);
  util::Rng rng(1);
  auto v = RandomUnit(8, &rng);
  std::vector<uint64_t> h1(20), h2(20);
  hasher.Hash(v.data(), h1.data());
  hasher.Hash(v.data(), h2.data());
  EXPECT_EQ(h1, h2);
}

TEST(EuclideanLshTest, HashingIsDeterministicInSeed) {
  EuclideanLshParams params;
  params.seed = 99;
  EuclideanLsh a(8, params), b(8, params);
  util::Rng rng(2);
  auto v = RandomUnit(8, &rng);
  std::vector<uint64_t> ha(params.num_tables), hb(params.num_tables);
  a.Hash(v.data(), ha.data());
  b.Hash(v.data(), hb.data());
  EXPECT_EQ(ha, hb);
}

// The collision rate in a single table decreases as distance grows.
TEST(EuclideanLshTest, CollisionRateDecreasesWithDistance) {
  const size_t dim = 16;
  EuclideanLshParams params;
  params.bucket_length = 1.0;
  params.num_tables = 1;
  EuclideanLsh hasher(dim, params);
  util::Rng rng(3);
  auto rate_at = [&](double distance) {
    int collisions = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
      auto a = RandomUnit(dim, &rng);
      auto dir = RandomUnit(dim, &rng);
      std::vector<float> b(dim);
      for (size_t d = 0; d < dim; ++d) {
        b[d] = a[d] + static_cast<float>(distance) * dir[d];
      }
      uint64_t ha, hb;
      hasher.Hash(a.data(), &ha);
      hasher.Hash(b.data(), &hb);
      collisions += ha == hb;
    }
    return collisions / 2000.0;
  };
  double near = rate_at(0.2);
  double mid = rate_at(1.0);
  double far = rate_at(4.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

// Empirical single-table collision rates match the p-stable closed form.
class CollisionProbabilityTest : public ::testing::TestWithParam<double> {};

TEST_P(CollisionProbabilityTest, MatchesClosedForm) {
  const double distance = GetParam();
  const size_t dim = 24;
  EuclideanLshParams params;
  params.bucket_length = 1.5;
  params.num_tables = 1;
  params.seed = 77;
  EuclideanLsh hasher(dim, params);
  util::Rng rng(4);
  int collisions = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    auto a = RandomUnit(dim, &rng);
    auto dir = RandomUnit(dim, &rng);
    std::vector<float> b(dim);
    for (size_t d = 0; d < dim; ++d) {
      b[d] = a[d] + static_cast<float>(distance) * dir[d];
    }
    uint64_t ha, hb;
    hasher.Hash(a.data(), &ha);
    hasher.Hash(b.data(), &hb);
    collisions += ha == hb;
  }
  double expected =
      EuclideanLsh::CollisionProbability(distance, params.bucket_length);
  EXPECT_NEAR(collisions / static_cast<double>(trials), expected, 0.05)
      << "distance " << distance;
}

INSTANTIATE_TEST_SUITE_P(Distances, CollisionProbabilityTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

TEST(CollisionProbabilityTest, Boundaries) {
  EXPECT_DOUBLE_EQ(EuclideanLsh::CollisionProbability(0.0, 1.0), 1.0);
  double p_small_b = EuclideanLsh::CollisionProbability(1.0, 0.1);
  double p_large_b = EuclideanLsh::CollisionProbability(1.0, 10.0);
  EXPECT_LT(p_small_b, 0.1);
  EXPECT_GT(p_large_b, 0.9);
}

// AND amplification: more tables can only refine the clustering.
TEST(EuclideanLshTest, MoreTablesRefineAndClustering) {
  const size_t dim = 8, num = 200;
  util::Rng rng(5);
  std::vector<float> data(num * dim);
  for (auto& x : data) x = static_cast<float>(rng.NextGaussian());

  EuclideanLshParams p1;
  p1.num_tables = 2;
  p1.bucket_length = 3.0;
  EuclideanLshParams p2 = p1;
  p2.num_tables = 16;
  size_t c1 = EuclideanLsh(dim, p1).Cluster(data, num).num_clusters();
  size_t c2 = EuclideanLsh(dim, p2).Cluster(data, num).num_clusters();
  EXPECT_LE(c1, c2);
}

// Smaller buckets separate more (the Fig. 6 monotonicity).
TEST(EuclideanLshTest, SmallerBucketsSeparateMore) {
  const size_t dim = 8, num = 300;
  util::Rng rng(6);
  std::vector<float> data(num * dim);
  for (auto& x : data) x = static_cast<float>(rng.NextGaussian());
  EuclideanLshParams wide;
  wide.bucket_length = 8.0;
  wide.num_tables = 4;
  EuclideanLshParams narrow = wide;
  narrow.bucket_length = 0.25;
  size_t c_wide = EuclideanLsh(dim, wide).Cluster(data, num).num_clusters();
  size_t c_narrow =
      EuclideanLsh(dim, narrow).Cluster(data, num).num_clusters();
  EXPECT_LT(c_wide, c_narrow);
}

TEST(EuclideanLshTest, OrModeMergesMoreThanAndMode) {
  const size_t dim = 8, num = 300;
  util::Rng rng(7);
  std::vector<float> data(num * dim);
  for (auto& x : data) x = static_cast<float>(rng.NextGaussian());
  EuclideanLshParams and_params;
  and_params.num_tables = 8;
  and_params.amplification = Amplification::kAnd;
  EuclideanLshParams or_params = and_params;
  or_params.amplification = Amplification::kOr;
  size_t c_and =
      EuclideanLsh(dim, and_params).Cluster(data, num).num_clusters();
  size_t c_or = EuclideanLsh(dim, or_params).Cluster(data, num).num_clusters();
  EXPECT_LE(c_or, c_and);
}

TEST(EuclideanLshTest, WellSeparatedClustersAreRecovered) {
  // Three tight blobs far apart: AND clustering with a moderate bucket must
  // recover exactly three clusters.
  const size_t dim = 8;
  util::Rng rng(8);
  std::vector<float> data;
  std::vector<uint32_t> truth;
  for (int blob = 0; blob < 3; ++blob) {
    for (int i = 0; i < 50; ++i) {
      for (size_t d = 0; d < dim; ++d) {
        double center = blob == 0 ? 0.0 : (blob == 1 ? 20.0 : -20.0);
        data.push_back(
            static_cast<float>(center + 0.01 * rng.NextGaussian()));
      }
      truth.push_back(blob);
    }
  }
  EuclideanLshParams params;
  params.bucket_length = 5.0;
  params.num_tables = 10;
  auto clusters = EuclideanLsh(dim, params).Cluster(data, 150);
  // Bucket boundaries may occasionally split a blob, but blobs must never
  // mix: every cluster is pure, and the blobs land in distinct clusters.
  EXPECT_GE(clusters.num_clusters(), 3u);
  EXPECT_LE(clusters.num_clusters(), 6u);
  for (uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    uint32_t blob = truth[clusters.members(c)[0]];
    for (uint32_t member : clusters.members(c)) {
      EXPECT_EQ(truth[member], blob);
    }
  }
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(50));
  EXPECT_NE(clusters.cluster_of(50), clusters.cluster_of(100));
}

}  // namespace
}  // namespace pghive::lsh
