#include "lsh/minhash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace pghive::lsh {
namespace {

TEST(MinHashTest, IdenticalSetsShareSignature) {
  MinHashLsh hasher(MinHashParams{});
  std::vector<uint64_t> set = {1, 5, 9};
  std::vector<uint64_t> s1(hasher.params().num_hashes);
  std::vector<uint64_t> s2(hasher.params().num_hashes);
  hasher.Signature(set, s1.data());
  hasher.Signature(set, s2.data());
  EXPECT_EQ(s1, s2);
}

TEST(MinHashTest, SignatureIsOrderInvariant) {
  MinHashLsh hasher(MinHashParams{});
  std::vector<uint64_t> a = {1, 5, 9};
  std::vector<uint64_t> b = {9, 1, 5};
  std::vector<uint64_t> sa(hasher.params().num_hashes);
  std::vector<uint64_t> sb(hasher.params().num_hashes);
  hasher.Signature(a, sa.data());
  hasher.Signature(b, sb.data());
  EXPECT_EQ(sa, sb);
}

TEST(MinHashTest, EmptySetsOnlyCollideWithEmptySets) {
  MinHashParams params;
  MinHashLsh hasher(params);
  std::vector<std::vector<uint64_t>> sets = {{}, {}, {1}, {1, 2}};
  auto clusters = hasher.Cluster(sets);
  EXPECT_EQ(clusters.cluster_of(0), clusters.cluster_of(1));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(2));
}

TEST(MinHashTest, DisjointSetsRarelyAgree) {
  MinHashParams params;
  params.num_hashes = 32;
  MinHashLsh hasher(params);
  std::vector<uint64_t> a = {1, 2, 3, 4};
  std::vector<uint64_t> b = {100, 200, 300, 400};
  std::vector<uint64_t> sa(32), sb(32);
  hasher.Signature(a, sa.data());
  hasher.Signature(b, sb.data());
  EXPECT_LT(MinHashLsh::EstimateJaccard(sa.data(), sb.data(), 32), 0.15);
}

// Property: the fraction of agreeing signature slots estimates Jaccard.
class JaccardEstimationTest : public ::testing::TestWithParam<double> {};

TEST_P(JaccardEstimationTest, SignatureAgreementTracksJaccard) {
  const double target = GetParam();
  // Build two sets with |A|=|B|=200 and controlled overlap:
  // J = o / (400 - o)  =>  o = 400 J / (1 + J).
  const size_t size = 200;
  size_t overlap = static_cast<size_t>(2.0 * size * target / (1.0 + target));
  std::vector<uint64_t> a, b;
  for (size_t i = 0; i < size; ++i) a.push_back(i);
  for (size_t i = 0; i < overlap; ++i) b.push_back(i);
  for (size_t i = 0; i < size - overlap; ++i) b.push_back(10000 + i);
  double exact = ExactJaccard(
      [&] {
        auto s = a;
        std::sort(s.begin(), s.end());
        return s;
      }(),
      [&] {
        auto s = b;
        std::sort(s.begin(), s.end());
        return s;
      }());

  MinHashParams params;
  params.num_hashes = 256;  // Many hashes for a tight estimate.
  MinHashLsh hasher(params);
  std::vector<uint64_t> sa(256), sb(256);
  hasher.Signature(a, sa.data());
  hasher.Signature(b, sb.data());
  double estimate = MinHashLsh::EstimateJaccard(sa.data(), sb.data(), 256);
  EXPECT_NEAR(estimate, exact, 0.08) << "target J = " << target;
}

INSTANTIATE_TEST_SUITE_P(Similarities, JaccardEstimationTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(MinHashTest, AndClusteringGroupsIdenticalSetsOnly) {
  MinHashParams params;
  params.amplification = Amplification::kAnd;
  MinHashLsh hasher(params);
  std::vector<std::vector<uint64_t>> sets = {{1, 2}, {1, 2}, {1, 2, 3}};
  auto clusters = hasher.Cluster(sets);
  EXPECT_EQ(clusters.cluster_of(0), clusters.cluster_of(1));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(2));
}

TEST(MinHashTest, BandingMergesHighlySimilarSets) {
  MinHashParams params;
  params.num_hashes = 24;
  params.rows_per_band = 4;
  params.amplification = Amplification::kOr;
  MinHashLsh hasher(params);
  // 19/21 overlap: J = 0.905, above the banding threshold (1/6)^(1/4)=0.64.
  std::vector<uint64_t> big;
  for (uint64_t i = 0; i < 20; ++i) big.push_back(i);
  auto near = big;
  near[0] = 999;
  // Disjoint set stays apart.
  std::vector<uint64_t> other = {500, 501, 502, 503, 504};
  auto clusters = hasher.Cluster({big, near, other});
  EXPECT_EQ(clusters.cluster_of(0), clusters.cluster_of(1));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(2));
}

TEST(MinHashTest, BandingThresholdFormula) {
  MinHashParams params;
  params.num_hashes = 24;
  params.rows_per_band = 4;  // 6 bands.
  MinHashLsh hasher(params);
  EXPECT_NEAR(hasher.BandingThreshold(), std::pow(1.0 / 6.0, 0.25), 1e-9);
}

TEST(MinHashTest, RowsPerBandClampedToNumHashes) {
  MinHashParams params;
  params.num_hashes = 8;
  params.rows_per_band = 100;
  MinHashLsh hasher(params);
  EXPECT_EQ(hasher.params().rows_per_band, 8u);
}

// ---- Banding edge cases (serial and pooled paths must agree) ------------

MinHashLsh BandingHasher(size_t num_hashes = 12, size_t rows_per_band = 3) {
  MinHashParams params;
  params.num_hashes = num_hashes;
  params.rows_per_band = rows_per_band;
  params.amplification = Amplification::kOr;
  return MinHashLsh(params);
}

TEST(MinHashBandingEdgeCaseTest, EmptyInput) {
  MinHashLsh hasher = BandingHasher();
  util::ThreadPool pool(4);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    auto clusters = hasher.Cluster(std::vector<std::vector<uint64_t>>{}, p);
    EXPECT_EQ(clusters.num_items(), 0u);
    EXPECT_EQ(clusters.num_clusters(), 0u);
  }
}

TEST(MinHashBandingEdgeCaseTest, SingleSet) {
  MinHashLsh hasher = BandingHasher();
  util::ThreadPool pool(4);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    auto clusters = hasher.Cluster({{1, 2, 3}}, p);
    EXPECT_EQ(clusters.num_clusters(), 1u);
    EXPECT_EQ(clusters.cluster_of(0), 0u);
  }
}

TEST(MinHashBandingEdgeCaseTest, AllSetsCollide) {
  MinHashLsh hasher = BandingHasher();
  std::vector<std::vector<uint64_t>> sets(100, {4, 8, 15, 16, 23, 42});
  util::ThreadPool pool(8);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    auto clusters = hasher.Cluster(sets, p);
    EXPECT_EQ(clusters.num_clusters(), 1u);
    EXPECT_EQ(clusters.members(0).size(), sets.size());
  }
}

TEST(MinHashBandingEdgeCaseTest, SingleHashSingleRowBand) {
  // t=1, r=1: one band of one row; sets cluster iff their single minhash
  // slots agree.
  MinHashLsh hasher = BandingHasher(/*num_hashes=*/1, /*rows_per_band=*/1);
  std::vector<std::vector<uint64_t>> sets = {{1, 2}, {1, 2}, {900}};
  util::ThreadPool pool(4);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    auto clusters = hasher.Cluster(sets, p);
    EXPECT_EQ(clusters.cluster_of(0), clusters.cluster_of(1));
    EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(2));
  }
}

// ---- Flat-span (CSR) overloads -----------------------------------------
//
// The SetSpans entry points walk one contiguous element array instead of
// nested vectors; signatures and clusters must be identical — including the
// empty-set sentinel rows.

SetSpans SpansOf(const std::vector<std::vector<uint64_t>>& sets,
                 std::vector<uint64_t>* elements,
                 std::vector<uint32_t>* offsets) {
  elements->clear();
  offsets->assign(1, 0);
  for (const auto& set : sets) {
    elements->insert(elements->end(), set.begin(), set.end());
    offsets->push_back(static_cast<uint32_t>(elements->size()));
  }
  return SetSpans{elements->data(), offsets->data(), sets.size()};
}

TEST(MinHashSpanTest, SpanSignaturesMatchNestedSignatures) {
  util::Rng rng(31);
  std::vector<std::vector<uint64_t>> sets(257);
  for (size_t i = 1; i < sets.size(); ++i) {  // sets[0] stays empty.
    const size_t n = rng.NextBounded(9);
    for (size_t e = 0; e < n; ++e) sets[i].push_back(rng.NextBounded(400));
  }
  MinHashParams params;
  params.num_hashes = 16;
  MinHashLsh hasher(params);
  std::vector<uint64_t> elements;
  std::vector<uint32_t> offsets;
  SetSpans spans = SpansOf(sets, &elements, &offsets);
  util::ThreadPool pool(4);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    EXPECT_EQ(hasher.SignatureAll(spans, p), hasher.SignatureAll(sets, p));
  }
}

TEST(MinHashSpanTest, SpanClusteringMatchesNestedClustering) {
  util::Rng rng(37);
  std::vector<std::vector<uint64_t>> sets(180);
  for (auto& set : sets) {
    // Few distinct shapes so real collisions happen.
    const size_t shape = rng.NextBounded(6);
    for (size_t e = 0; e <= shape; ++e) set.push_back(shape * 10 + e);
  }
  sets[17].clear();
  sets[99].clear();
  std::vector<uint64_t> elements;
  std::vector<uint32_t> offsets;
  SetSpans spans = SpansOf(sets, &elements, &offsets);
  for (Amplification amp : {Amplification::kAnd, Amplification::kOr}) {
    MinHashParams params;
    params.num_hashes = 12;
    params.rows_per_band = 3;
    params.amplification = amp;
    MinHashLsh hasher(params);
    auto nested = hasher.Cluster(sets);
    auto flat = hasher.Cluster(spans);
    ASSERT_EQ(flat.num_items(), nested.num_items());
    for (size_t i = 0; i < sets.size(); ++i) {
      EXPECT_EQ(flat.cluster_of(i), nested.cluster_of(i)) << i;
    }
  }
}

TEST(MinHashSpanTest, EmptySpanInput) {
  MinHashLsh hasher = BandingHasher();
  auto clusters = hasher.Cluster(SetSpans{nullptr, nullptr, 0});
  EXPECT_EQ(clusters.num_items(), 0u);
}

TEST(ExactJaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(ExactJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(ExactJaccard({1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ExactJaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(ExactJaccard({1, 2}, {2, 3}), 1.0 / 3.0);
}

}  // namespace
}  // namespace pghive::lsh
