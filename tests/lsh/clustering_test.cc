#include "lsh/clustering.h"

#include <gtest/gtest.h>

namespace pghive::lsh {
namespace {

TEST(ClusterSetTest, BuildsMembersFromAssignment) {
  ClusterSet clusters(std::vector<uint32_t>{0, 1, 0, 2, 1});
  EXPECT_EQ(clusters.num_items(), 5u);
  EXPECT_EQ(clusters.num_clusters(), 3u);
  EXPECT_EQ(clusters.members(0), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(clusters.members(1), (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(clusters.members(2), (std::vector<uint32_t>{3}));
  EXPECT_EQ(clusters.cluster_of(3), 2u);
}

TEST(ClusterSetTest, EmptyAssignment) {
  ClusterSet clusters;
  EXPECT_EQ(clusters.num_items(), 0u);
  EXPECT_EQ(clusters.num_clusters(), 0u);
}

TEST(ClusterBySignatureTest, GroupsIdenticalSignatures) {
  // 4 items, T=2. Items 0 and 2 share signatures; 1 and 3 are unique.
  std::vector<uint64_t> sigs = {7, 8, 1, 2, 7, 8, 7, 9};
  auto clusters = ClusterBySignature(sigs, 4, 2);
  EXPECT_EQ(clusters.num_clusters(), 3u);
  EXPECT_EQ(clusters.cluster_of(0), clusters.cluster_of(2));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(1));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(3));
}

TEST(ClusterBySignatureTest, PartialAgreementIsNotEnough) {
  // AND semantics: agreeing on one of two tables does not cluster.
  std::vector<uint64_t> sigs = {7, 8, 7, 9};
  auto clusters = ClusterBySignature(sigs, 2, 2);
  EXPECT_EQ(clusters.num_clusters(), 2u);
}

TEST(ClusterByAnyCollisionTest, SingleTableAgreementSuffices) {
  std::vector<uint64_t> sigs = {7, 8, 7, 9};
  auto clusters = ClusterByAnyCollision(sigs, 2, 2);
  EXPECT_EQ(clusters.num_clusters(), 1u);
}

TEST(ClusterByAnyCollisionTest, TransitiveChaining) {
  // a~b in table 0, b~c in table 1 -> all three together.
  std::vector<uint64_t> sigs = {
      1, 10,   // a
      1, 20,   // b
      2, 20,   // c
      3, 30,   // d isolated
  };
  auto clusters = ClusterByAnyCollision(sigs, 4, 2);
  EXPECT_EQ(clusters.cluster_of(0), clusters.cluster_of(1));
  EXPECT_EQ(clusters.cluster_of(1), clusters.cluster_of(2));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(3));
  EXPECT_EQ(clusters.num_clusters(), 2u);
}

TEST(ClusterByAnyCollisionTest, BucketsAreTableScoped) {
  // Same bucket value in *different* tables must not link items.
  std::vector<uint64_t> sigs = {
      5, 99,   // a: table0 bucket 5
      88, 5,   // b: table1 bucket 5
  };
  auto clusters = ClusterByAnyCollision(sigs, 2, 2);
  EXPECT_EQ(clusters.num_clusters(), 2u);
}

}  // namespace
}  // namespace pghive::lsh
