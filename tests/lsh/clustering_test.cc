#include "lsh/clustering.h"

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace pghive::lsh {
namespace {

TEST(ClusterSetTest, BuildsMembersFromAssignment) {
  ClusterSet clusters(std::vector<uint32_t>{0, 1, 0, 2, 1});
  EXPECT_EQ(clusters.num_items(), 5u);
  EXPECT_EQ(clusters.num_clusters(), 3u);
  EXPECT_EQ(clusters.members(0), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(clusters.members(1), (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(clusters.members(2), (std::vector<uint32_t>{3}));
  EXPECT_EQ(clusters.cluster_of(3), 2u);
}

TEST(ClusterSetTest, EmptyAssignment) {
  ClusterSet clusters;
  EXPECT_EQ(clusters.num_items(), 0u);
  EXPECT_EQ(clusters.num_clusters(), 0u);
}

TEST(ClusterBySignatureTest, GroupsIdenticalSignatures) {
  // 4 items, T=2. Items 0 and 2 share signatures; 1 and 3 are unique.
  std::vector<uint64_t> sigs = {7, 8, 1, 2, 7, 8, 7, 9};
  auto clusters = ClusterBySignature(sigs, 4, 2);
  EXPECT_EQ(clusters.num_clusters(), 3u);
  EXPECT_EQ(clusters.cluster_of(0), clusters.cluster_of(2));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(1));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(3));
}

TEST(ClusterBySignatureTest, PartialAgreementIsNotEnough) {
  // AND semantics: agreeing on one of two tables does not cluster.
  std::vector<uint64_t> sigs = {7, 8, 7, 9};
  auto clusters = ClusterBySignature(sigs, 2, 2);
  EXPECT_EQ(clusters.num_clusters(), 2u);
}

TEST(ClusterByAnyCollisionTest, SingleTableAgreementSuffices) {
  std::vector<uint64_t> sigs = {7, 8, 7, 9};
  auto clusters = ClusterByAnyCollision(sigs, 2, 2);
  EXPECT_EQ(clusters.num_clusters(), 1u);
}

TEST(ClusterByAnyCollisionTest, TransitiveChaining) {
  // a~b in table 0, b~c in table 1 -> all three together.
  std::vector<uint64_t> sigs = {
      1, 10,   // a
      1, 20,   // b
      2, 20,   // c
      3, 30,   // d isolated
  };
  auto clusters = ClusterByAnyCollision(sigs, 4, 2);
  EXPECT_EQ(clusters.cluster_of(0), clusters.cluster_of(1));
  EXPECT_EQ(clusters.cluster_of(1), clusters.cluster_of(2));
  EXPECT_NE(clusters.cluster_of(0), clusters.cluster_of(3));
  EXPECT_EQ(clusters.num_clusters(), 2u);
}

TEST(ClusterByAnyCollisionTest, BucketsAreTableScoped) {
  // Same bucket value in *different* tables must not link items.
  std::vector<uint64_t> sigs = {
      5, 99,   // a: table0 bucket 5
      88, 5,   // b: table1 bucket 5
  };
  auto clusters = ClusterByAnyCollision(sigs, 2, 2);
  EXPECT_EQ(clusters.num_clusters(), 2u);
}

// ---- Edge cases (serial and pooled paths must agree) --------------------

TEST(ClusteringEdgeCaseTest, EmptyInput) {
  util::ThreadPool pool(4);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    EXPECT_EQ(ClusterBySignature({}, 0, 3, p).num_items(), 0u);
    EXPECT_EQ(ClusterBySignature({}, 0, 3, p).num_clusters(), 0u);
    EXPECT_EQ(ClusterByAnyCollision({}, 0, 3, p).num_items(), 0u);
    EXPECT_EQ(ClusterByAnyCollision({}, 0, 3, p).num_clusters(), 0u);
  }
}

TEST(ClusteringEdgeCaseTest, SingleItem) {
  util::ThreadPool pool(4);
  std::vector<uint64_t> sigs = {11, 22, 33};
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    auto and_clusters = ClusterBySignature(sigs, 1, 3, p);
    EXPECT_EQ(and_clusters.num_clusters(), 1u);
    EXPECT_EQ(and_clusters.cluster_of(0), 0u);
    auto or_clusters = ClusterByAnyCollision(sigs, 1, 3, p);
    EXPECT_EQ(or_clusters.num_clusters(), 1u);
    EXPECT_EQ(or_clusters.members(0), (std::vector<uint32_t>{0}));
  }
}

TEST(ClusteringEdgeCaseTest, AllItemsCollide) {
  const size_t num = 200, t = 4;
  std::vector<uint64_t> sigs(num * t);
  for (size_t i = 0; i < num; ++i) {
    for (size_t k = 0; k < t; ++k) sigs[i * t + k] = 77 + k;
  }
  util::ThreadPool pool(8);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    EXPECT_EQ(ClusterBySignature(sigs, num, t, p).num_clusters(), 1u);
    auto or_clusters = ClusterByAnyCollision(sigs, num, t, p);
    EXPECT_EQ(or_clusters.num_clusters(), 1u);
    EXPECT_EQ(or_clusters.members(0).size(), num);
  }
}

TEST(ClusteringEdgeCaseTest, SingleTable) {
  // t=1: AND and OR semantics coincide — identical partitions, identical
  // first-occurrence ids.
  std::vector<uint64_t> sigs = {4, 9, 4, 2, 9, 4};
  util::ThreadPool pool(4);
  for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr), &pool}) {
    auto and_clusters = ClusterBySignature(sigs, 6, 1, p);
    auto or_clusters = ClusterByAnyCollision(sigs, 6, 1, p);
    EXPECT_EQ(and_clusters.assignment(), or_clusters.assignment());
    EXPECT_EQ(and_clusters.assignment(),
              (std::vector<uint32_t>{0, 1, 0, 2, 1, 0}));
  }
}

}  // namespace
}  // namespace pghive::lsh
