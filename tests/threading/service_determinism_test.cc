// The pghived multi-tenant determinism guarantee: N sessions streaming
// interleaved batches through one SessionManager on one shared ThreadPool
// each produce a final schema byte-identical to a one-shot run on the same
// dataset. Lives in the threading suite so the TSan CI job races the lane
// scheduler, snapshot publication, and cross-session pool sharing.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pghive.h"
#include "core/serialize.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/batch.h"
#include "service/client.h"
#include "service/session.h"
#include "service/session_manager.h"
#include "util/thread_pool.h"

namespace pghive {
namespace {

struct Tenant {
  datasets::DatasetSpec spec;
  double scale;
  size_t batches;
};

std::string OneShotPgs(const Tenant& tenant) {
  datasets::Dataset dataset =
      datasets::Generate(tenant.spec, tenant.scale, /*seed=*/13);
  core::PgHiveOptions options;
  core::PgHive pipeline(&dataset.graph, options);
  if (tenant.batches <= 1) {
    EXPECT_TRUE(pipeline.Run().ok());
  } else {
    for (const auto& batch :
         pg::SplitIntoBatches(dataset.graph, tenant.batches, /*seed=*/1)) {
      EXPECT_TRUE(pipeline.ProcessBatch(batch).ok());
    }
    EXPECT_TRUE(pipeline.Finish().ok());
  }
  return core::SerializePgSchema(pipeline.schema(), dataset.graph.vocab(),
                                 core::SchemaMode::kStrict);
}

TEST(ServiceDeterminismTest, ConcurrentTenantsMatchOneShotByteForByte) {
  // A slice of the paper's zoo (Table 2) with different shapes: flat types,
  // multi-label structure, and heterogeneous patterns.
  const std::vector<Tenant> tenants = {
      {datasets::PoleSpec(), 0.08, 3},
      {datasets::Mb6Spec(), 0.08, 2},
      {datasets::LdbcSpec(), 0.05, 4},
      {datasets::IcijSpec(), 0.04, 2},
  };

  std::vector<std::string> expected(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    expected[i] = OneShotPgs(tenants[i]);
    ASSERT_FALSE(expected[i].empty()) << tenants[i].spec.name;
  }

  util::ThreadPool pool(4);
  service::SessionManager manager(&pool);

  // Every tenant streams from its own thread; batches from different
  // sessions interleave arbitrarily on the shared pool, batches within a
  // session stay in submission order via its job lane.
  std::vector<std::string> streamed(tenants.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < tenants.size(); ++i) {
    threads.emplace_back([&, i] {
      auto session = manager.CreateSession({});
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      datasets::Dataset dataset =
          datasets::Generate(tenants[i].spec, tenants[i].scale, /*seed=*/13);
      for (const std::string& payload : service::BuildIngestPayloads(
               dataset.graph, tenants[i].batches)) {
        auto seq = (*session)->SubmitIngest(payload);
        ASSERT_TRUE(seq.ok()) << seq.status().ToString();
      }
      auto final_snapshot = (*session)->FinalSnapshot();
      ASSERT_TRUE(final_snapshot.ok()) << final_snapshot.status().ToString();
      streamed[i] = (*final_snapshot)->pgs_strict;
    });
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < tenants.size(); ++i) {
    EXPECT_EQ(streamed[i], expected[i])
        << tenants[i].spec.name << " (tenant " << i << ")";
  }
}

TEST(ServiceDeterminismTest, SnapshotReadersRaceIngestSafely) {
  util::ThreadPool pool(4);
  service::SessionManager manager(&pool);
  auto session = manager.CreateSession({});
  ASSERT_TRUE(session.ok());

  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), 0.08, /*seed=*/13);
  auto payloads = service::BuildIngestPayloads(dataset.graph, 6);

  // Readers hammer Snapshot() while the writer streams; every observed
  // snapshot must be internally consistent (a fully rendered batch view).
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      while (!done.load()) {
        auto snapshot = (*session)->Snapshot();
        if (snapshot == nullptr) continue;
        EXPECT_GE(snapshot->version, last_version);
        last_version = snapshot->version;
        EXPECT_FALSE(snapshot->pgs_strict.empty());
        EXPECT_GE(snapshot->batches, 1u);
      }
    });
  }
  for (const std::string& payload : payloads) {
    ASSERT_TRUE((*session)->SubmitIngest(payload).ok());
  }
  auto final_snapshot = (*session)->FinalSnapshot();
  done = true;
  for (auto& t : readers) t.join();
  ASSERT_TRUE(final_snapshot.ok());
  EXPECT_TRUE((*final_snapshot)->is_final);
  EXPECT_EQ((*final_snapshot)->batches, payloads.size());
}

}  // namespace
}  // namespace pghive
