// The parallel LSH grouping stage (radix group-by, per-table/per-band
// bucket maps + ordered union replay) must produce cluster assignments
// byte-identical to the serial scan at every pool size — on real zoo
// feature matrices, not just synthetic keys.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/vectorizer.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "embed/hash_embedder.h"
#include "lsh/clustering.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash.h"
#include "pg/batch.h"
#include "util/parallel_group_by.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pghive {
namespace {

constexpr size_t kThreadCounts[] = {2, 8};

void ExpectGroupingMatchesSerial(const std::vector<uint64_t>& sigs,
                                 size_t num, size_t t,
                                 const std::string& what) {
  auto and_serial = lsh::ClusterBySignature(sigs, num, t, nullptr);
  auto or_serial = lsh::ClusterByAnyCollision(sigs, num, t, nullptr);
  for (size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(lsh::ClusterBySignature(sigs, num, t, &pool).assignment(),
              and_serial.assignment())
        << what << " AND threads=" << threads;
    EXPECT_EQ(lsh::ClusterByAnyCollision(sigs, num, t, &pool).assignment(),
              or_serial.assignment())
        << what << " OR threads=" << threads;
  }
}

TEST(GroupingDeterminismTest, ZooFeatureSignaturesAcrossThreadCounts) {
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    datasets::Dataset dataset = datasets::Generate(spec, /*scale=*/0.1,
                                                   /*seed=*/23);
    embed::HashEmbedder embedder(&dataset.graph.vocab(), 8, 17);
    core::Vectorizer vectorizer(&dataset.graph, &embedder, nullptr);
    pg::GraphBatch batch = pg::FullBatch(dataset.graph);
    core::FeatureMatrix features = vectorizer.NodeFeatures(batch);
    if (features.num == 0) continue;
    lsh::EuclideanLshParams params;
    params.num_tables = 12;
    lsh::EuclideanLsh hasher(features.dim, params);
    auto sigs = hasher.HashAll(features.data, features.num);
    ExpectGroupingMatchesSerial(sigs, features.num, params.num_tables,
                                spec.name);
  }
}

TEST(GroupingDeterminismTest, MinHashBandingAcrossThreadCounts) {
  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), /*scale=*/0.2, /*seed=*/31);
  embed::HashEmbedder embedder(&dataset.graph.vocab(), 8, 17);
  core::Vectorizer vectorizer(&dataset.graph, &embedder, nullptr);
  pg::GraphBatch batch = pg::FullBatch(dataset.graph);
  auto sets = vectorizer.NodeSets(batch);
  lsh::MinHashParams params;
  params.num_hashes = 24;
  params.rows_per_band = 4;
  params.amplification = lsh::Amplification::kOr;
  lsh::MinHashLsh hasher(params);
  auto serial = hasher.Cluster(sets, nullptr);
  for (size_t threads : kThreadCounts) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(hasher.Cluster(sets, &pool).assignment(), serial.assignment())
        << "threads=" << threads;
  }
}

TEST(GroupingDeterminismTest, SkewedShardDistributionsAcrossThreadCounts) {
  // Degenerate radix distributions: all-identical keys and small unmixed
  // keys both route every item into a single shard, so the parallel path
  // runs with maximal imbalance — it must stay race-free (this suite is
  // under the TSan label) and serial-identical.
  const size_t n = 40000;
  std::vector<uint64_t> identical(n, util::Mix64(42));
  std::vector<uint64_t> unmixed(n);
  for (size_t i = 0; i < n; ++i) unmixed[i] = i % 97;
  for (const auto& keys : {identical, unmixed}) {
    auto serial = util::ParallelRadixGroupBy(keys, nullptr);
    for (size_t threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      EXPECT_EQ(util::ParallelRadixGroupBy(keys, &pool), serial)
          << "threads=" << threads;
    }
  }
}

TEST(GroupingDeterminismTest, LargeSyntheticSignaturesAcrossThreadCounts) {
  // Big enough that the radix path (not the serial cutoff) is exercised,
  // with heavy duplication so the renumber pass actually merges.
  const size_t num = 60000, t = 8, distinct = 500;
  util::Rng rng(5);
  std::vector<uint64_t> rows(distinct * t);
  for (auto& x : rows) x = rng.NextU64();
  std::vector<uint64_t> sigs(num * t);
  for (size_t i = 0; i < num; ++i) {
    const uint64_t* row = &rows[rng.NextBounded(distinct) * t];
    for (size_t k = 0; k < t; ++k) sigs[i * t + k] = row[k];
  }
  ExpectGroupingMatchesSerial(sigs, num, t, "synthetic");
}

}  // namespace
}  // namespace pghive
