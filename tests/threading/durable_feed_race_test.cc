// Durable changefeed under contention: subscribers long-poll a session whose
// in-memory backlog is tiny (2 records), so catching up routinely splices
// the on-disk feed segment in front of the in-memory tail while the writer
// is still publishing — the publish-time "spill before visibility" invariant
// under race. Scheduled checkpoints fire concurrently (the SIGTERM
// CheckpointAll path). Lives in the threading suite so the TSan CI job
// races the segment-file append, the backlog eviction, and the disk reads.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/schema_diff.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "service/client.h"
#include "service/session.h"
#include "service/session_manager.h"
#include "util/thread_pool.h"

namespace pghive {
namespace {

TEST(DurableFeedRaceTest, SubscribersSpliceDiskAndMemoryWhileIngestRuns) {
  const std::string dir =
      ::testing::TempDir() + "durable_feed_race";
  std::filesystem::remove_all(dir);

  service::SessionManager::Options options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 1;
  options.feed_backlog = 2;

  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), 0.08, /*seed=*/13);
  auto payloads = service::BuildIngestPayloads(dataset.graph, 6);
  const uint64_t final_version = payloads.size() + 1;  // Finish publishes.

  util::ThreadPool pool(4);
  std::vector<std::string> collected(3);
  {
    service::SessionManager manager(&pool, options);
    ASSERT_TRUE(manager.RestoreFromCheckpointDir().ok());
    auto session = manager.CreateSession({});
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    // Each subscriber walks the feed from version 0 to the final version,
    // verifying every reply parses and the version sequence never skips.
    std::vector<std::thread> subscribers;
    for (size_t s = 0; s < collected.size(); ++s) {
      subscribers.emplace_back([&, s] {
        uint64_t after = 0;
        while (after < final_version) {
          auto reply = (*session)->WaitForDiffs(after, /*timeout_ms=*/50);
          ASSERT_TRUE(reply.ok()) << reply.status().ToString();
          if (reply->empty()) continue;
          auto records = core::ParseSchemaDiffStream(*reply);
          ASSERT_TRUE(records.ok()) << records.status().ToString();
          for (const core::SchemaDiff& diff : *records) {
            EXPECT_EQ(diff.version_to, after + 1);
            after = diff.version_to;
          }
          collected[s] += *reply;
        }
      });
    }

    for (const std::string& payload : payloads) {
      ASSERT_TRUE((*session)->SubmitIngest(payload).ok());
      // The SIGTERM-drain path, mid-stream: checkpoints must coexist with
      // live subscribers and in-flight ingest.
      ASSERT_TRUE(manager.CheckpointAll().ok());
    }
    ASSERT_TRUE((*session)->FinalSnapshot().ok());
    for (auto& t : subscribers) t.join();

    for (size_t s = 1; s < collected.size(); ++s) {
      EXPECT_EQ(collected[s], collected[0]) << "subscriber " << s;
    }
  }

  // The restarted daemon serves the identical full history from disk alone.
  service::SessionManager restarted(&pool, options);
  ASSERT_TRUE(restarted.RestoreFromCheckpointDir().ok());
  auto restored = restarted.Lookup("s1");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto history = (*restored)->WaitForDiffs(0, 0);
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(*history, collected[0]);
}

}  // namespace
}  // namespace pghive
