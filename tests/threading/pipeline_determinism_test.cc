// The pipelined batch executor's determinism guarantee: BatchPipeline must
// produce a schema byte-identical to the sequential ProcessBatch loop at
// every (thread count x pipeline depth) combination — the preprocess of
// batch i+1 overlapping the extract of batch i must be unobservable in the
// output. Runs under the `threaded` label so the TSan CI job races the
// preprocess thread against the coordinator.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/pghive.h"
#include "core/serialize.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/batch.h"

namespace pghive {
namespace {

struct Discovery {
  std::string pgs;
  std::string xsd;
  std::vector<uint32_t> node_assignment;
  std::vector<uint32_t> edge_assignment;
};

core::PgHiveOptions BaseOptions(core::ClusterMethod method,
                                size_t num_threads, size_t depth,
                                bool post_each_batch) {
  core::PgHiveOptions options;
  options.method = method;
  options.num_threads = num_threads;
  options.pipeline_depth = depth;
  options.post_process_each_batch = post_each_batch;
  options.datatype_options.sample = true;
  options.datatype_options.min_sample = 50;  // Force the sampling path.
  return options;
}

Discovery Serialize(const core::PgHive& pipeline,
                    const pg::PropertyGraph& graph) {
  Discovery out;
  out.pgs = core::SerializePgSchema(pipeline.schema(), graph.vocab(),
                                    core::SchemaMode::kStrict);
  out.xsd = core::SerializeXsd(pipeline.schema(), graph.vocab());
  out.node_assignment = pipeline.NodeAssignment();
  out.edge_assignment = pipeline.EdgeAssignment();
  return out;
}

// The ground truth: the strictly sequential ProcessBatch loop, single
// threaded. Each run regenerates the dataset so vocabularies never leak
// across runs.
Discovery SequentialDiscover(const datasets::DatasetSpec& spec, double scale,
                             core::ClusterMethod method, size_t batches,
                             bool post_each_batch) {
  datasets::Dataset dataset = datasets::Generate(spec, scale, /*seed=*/99);
  core::PgHive pipeline(&dataset.graph,
                        BaseOptions(method, 1, 1, post_each_batch));
  for (const auto& batch :
       pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/5)) {
    EXPECT_TRUE(pipeline.ProcessBatch(batch).ok());
  }
  EXPECT_TRUE(pipeline.Finish().ok());
  return Serialize(pipeline, dataset.graph);
}

Discovery PipelinedDiscover(const datasets::DatasetSpec& spec, double scale,
                            core::ClusterMethod method, size_t batches,
                            size_t num_threads, size_t depth,
                            bool post_each_batch) {
  datasets::Dataset dataset = datasets::Generate(spec, scale, /*seed=*/99);
  core::PgHive pipeline(&dataset.graph,
                        BaseOptions(method, num_threads, depth,
                                    post_each_batch));
  core::BatchPipeline executor(&pipeline);
  EXPECT_EQ(executor.depth(), depth);
  auto split = pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/5);
  EXPECT_TRUE(executor.Run(split).ok());
  EXPECT_EQ(executor.batch_stats().size(), split.size());
  EXPECT_TRUE(pipeline.Finish().ok());
  return Serialize(pipeline, dataset.graph);
}

void ExpectPipelineMatchesSequential(const datasets::DatasetSpec& spec,
                                     double scale,
                                     core::ClusterMethod method,
                                     size_t batches, bool post_each_batch) {
  Discovery sequential =
      SequentialDiscover(spec, scale, method, batches, post_each_batch);
  ASSERT_FALSE(sequential.pgs.empty());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t depth : {size_t{1}, size_t{2}, size_t{4}}) {
      Discovery pipelined = PipelinedDiscover(
          spec, scale, method, batches, threads, depth, post_each_batch);
      EXPECT_EQ(pipelined.pgs, sequential.pgs)
          << spec.name << " threads=" << threads << " depth=" << depth;
      EXPECT_EQ(pipelined.xsd, sequential.xsd)
          << spec.name << " threads=" << threads << " depth=" << depth;
      EXPECT_EQ(pipelined.node_assignment, sequential.node_assignment)
          << spec.name << " threads=" << threads << " depth=" << depth;
      EXPECT_EQ(pipelined.edge_assignment, sequential.edge_assignment)
          << spec.name << " threads=" << threads << " depth=" << depth;
    }
  }
}

TEST(PipelineDeterminismTest, ElshIdenticalOnAllZooDatasets) {
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    ExpectPipelineMatchesSequential(spec, /*scale=*/0.04,
                                    core::ClusterMethod::kElsh,
                                    /*batches=*/3,
                                    /*post_each_batch=*/false);
  }
}

TEST(PipelineDeterminismTest, MinHashIdentical) {
  ExpectPipelineMatchesSequential(datasets::PoleSpec(), /*scale=*/0.1,
                                  core::ClusterMethod::kMinHash,
                                  /*batches=*/4,
                                  /*post_each_batch=*/false);
}

// post_process_each_batch refreshes constraints/datatypes/cardinalities
// after every batch; under overlap those refreshes must still happen in
// batch order (they run on the coordinator), so the final schema matches
// the sequential loop byte for byte.
TEST(PipelineDeterminismTest, PerBatchPostProcessingIdentical) {
  ExpectPipelineMatchesSequential(datasets::LdbcSpec(), /*scale=*/0.1,
                                  core::ClusterMethod::kElsh,
                                  /*batches=*/4,
                                  /*post_each_batch=*/true);
}

// More batches than the depth window, and a depth far beyond the batch
// count, both behave: the window just stays partially empty.
TEST(PipelineDeterminismTest, DepthBeyondBatchCount) {
  Discovery sequential = SequentialDiscover(
      datasets::Mb6Spec(), 0.1, core::ClusterMethod::kElsh, 3, false);
  Discovery deep = PipelinedDiscover(datasets::Mb6Spec(), 0.1,
                                     core::ClusterMethod::kElsh, 3,
                                     /*num_threads=*/4, /*depth=*/16, false);
  EXPECT_EQ(deep.pgs, sequential.pgs);
  EXPECT_EQ(deep.node_assignment, sequential.node_assignment);
}

// Hardware-default thread count (0 resolves to whatever the host has) with
// overlap enabled must also match.
TEST(PipelineDeterminismTest, HardwareDefaultWithOverlapMatchesSequential) {
  Discovery sequential = SequentialDiscover(
      datasets::IcijSpec(), 0.1, core::ClusterMethod::kElsh, 4, false);
  Discovery hw = PipelinedDiscover(datasets::IcijSpec(), 0.1,
                                   core::ClusterMethod::kElsh, 4,
                                   /*num_threads=*/0, /*depth=*/3, false);
  EXPECT_EQ(hw.pgs, sequential.pgs);
  EXPECT_EQ(hw.edge_assignment, sequential.edge_assignment);
}

// An adversarial hand-built split: every edge arrives one batch before its
// endpoints (batch 0 = all edges, batch 1 = all nodes, plus an empty tail
// batch). Batches reference the full graph, so endpoint labels resolve
// either way — the pipeline must neither crash nor diverge from the
// sequential loop.
TEST(PipelineDeterminismTest, EdgesBeforeEndpointsTolerated) {
  auto make_graph = [] {
    datasets::Dataset dataset =
        datasets::Generate(datasets::PoleSpec(), 0.05, 3);
    return std::move(dataset.graph);
  };
  auto make_batches = [](const pg::PropertyGraph& graph) {
    std::vector<pg::GraphBatch> batches(3);
    for (pg::EdgeId e = 0; e < graph.num_edges(); ++e) {
      batches[0].edge_ids.push_back(e);
    }
    for (pg::NodeId n = 0; n < graph.num_nodes(); ++n) {
      batches[1].node_ids.push_back(n);
    }
    return batches;  // batches[2] stays empty on purpose.
  };

  pg::PropertyGraph sequential_graph = make_graph();
  core::PgHive sequential(
      &sequential_graph,
      BaseOptions(core::ClusterMethod::kElsh, 1, 1, false));
  for (const auto& batch : make_batches(sequential_graph)) {
    ASSERT_TRUE(sequential.ProcessBatch(batch).ok());
  }
  ASSERT_TRUE(sequential.Finish().ok());

  pg::PropertyGraph pipelined_graph = make_graph();
  core::PgHive pipelined(
      &pipelined_graph,
      BaseOptions(core::ClusterMethod::kElsh, 4, 2, false));
  core::BatchPipeline executor(&pipelined);
  auto batches = make_batches(pipelined_graph);
  ASSERT_TRUE(executor.Run(batches).ok());
  ASSERT_TRUE(pipelined.Finish().ok());

  EXPECT_EQ(core::SerializePgSchema(pipelined.schema(),
                                    pipelined_graph.vocab(),
                                    core::SchemaMode::kStrict),
            core::SerializePgSchema(sequential.schema(),
                                    sequential_graph.vocab(),
                                    core::SchemaMode::kStrict));
  EXPECT_EQ(pipelined.NodeAssignment(), sequential.NodeAssignment());
}

}  // namespace
}  // namespace pghive
