// Checkpoint/resume determinism under concurrency: a run interrupted at a
// BatchPipeline barrier, snapshotted with PgHive::SaveState, and resumed in
// a fresh hive must finish with a schema byte-identical to the
// uninterrupted sequential run — at every (thread count x pipeline depth)
// combination, on every zoo dataset. Runs under the `threaded` label so the
// TSan CI job checks that snapshotting at a barrier really does observe
// quiescent pipeline state.

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/pghive.h"
#include "core/serialize.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/batch.h"

namespace pghive {
namespace {

core::PgHiveOptions MakeOptions(size_t num_threads, size_t depth) {
  core::PgHiveOptions options;
  options.num_threads = num_threads;
  options.pipeline_depth = depth;
  options.datatype_options.sample = true;
  options.datatype_options.min_sample = 50;
  return options;
}

std::string SchemaBytes(const core::PgHive& hive,
                        const pg::PropertyGraph& graph) {
  return core::SerializePgSchema(hive.schema(), graph.vocab(),
                                 core::SchemaMode::kStrict) +
         core::SerializeXsd(hive.schema(), graph.vocab());
}

// The uninterrupted ground truth: one pipelined run over all batches.
std::string UninterruptedRun(const datasets::DatasetSpec& spec,
                             size_t batches) {
  datasets::Dataset dataset = datasets::Generate(spec, /*scale=*/0.04,
                                                 /*seed=*/99);
  core::PgHive hive(&dataset.graph, MakeOptions(1, 1));
  core::BatchPipeline executor(&hive);
  auto split = pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/5);
  EXPECT_TRUE(executor.Run(split).ok());
  EXPECT_TRUE(hive.Finish().ok());
  return SchemaBytes(hive, dataset.graph);
}

// Runs the first `checkpoint_at` batches pipelined, snapshots at the
// barrier, restores into a fresh hive (same threads/depth), and finishes
// with the rest.
std::string CheckpointedRun(const datasets::DatasetSpec& spec, size_t batches,
                            size_t checkpoint_at, size_t num_threads,
                            size_t depth) {
  std::string snapshot;
  {
    datasets::Dataset dataset = datasets::Generate(spec, /*scale=*/0.04,
                                                   /*seed=*/99);
    core::PgHive hive(&dataset.graph, MakeOptions(num_threads, depth));
    core::BatchPipeline executor(&hive);
    auto split = pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/5);
    std::vector<pg::GraphBatch> head(
        std::make_move_iterator(split.begin()),
        std::make_move_iterator(split.begin() + checkpoint_at));
    EXPECT_TRUE(executor.Run(head).ok());
    std::ostringstream sink;
    EXPECT_TRUE(hive.SaveState(sink).ok());
    snapshot = sink.str();
  }

  datasets::Dataset dataset = datasets::Generate(spec, /*scale=*/0.04,
                                                 /*seed=*/99);
  core::PgHive hive(&dataset.graph, MakeOptions(num_threads, depth));
  std::istringstream source(snapshot);
  auto restored = hive.RestoreState(source);
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
  if (!restored.ok()) return {};
  auto split = pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/5);
  std::vector<pg::GraphBatch> tail(
      std::make_move_iterator(split.begin() + static_cast<long>(*restored)),
      std::make_move_iterator(split.end()));
  core::BatchPipeline executor(&hive);
  EXPECT_TRUE(executor.Run(tail).ok());
  EXPECT_TRUE(hive.Finish().ok());
  return SchemaBytes(hive, dataset.graph);
}

TEST(CheckpointDeterminismTest, ResumeIdenticalOnAllZooDatasets) {
  const size_t batches = 4;
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    std::string expected = UninterruptedRun(spec, batches);
    ASSERT_FALSE(expected.empty()) << spec.name;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (size_t depth : {size_t{1}, size_t{4}}) {
        EXPECT_EQ(CheckpointedRun(spec, batches, /*checkpoint_at=*/2,
                                  threads, depth),
                  expected)
            << spec.name << " threads=" << threads << " depth=" << depth;
      }
    }
  }
}

// A snapshot taken under one execution plan must resume under a different
// one: the plan knobs are byte-identity-neutral, so save at (8 threads,
// depth 4) and resume at (1 thread, depth 1) — and vice versa — both land
// on the sequential schema.
TEST(CheckpointDeterminismTest, PlanChangeAcrossResume) {
  const datasets::DatasetSpec spec = datasets::PoleSpec();
  const size_t batches = 4;
  std::string expected = UninterruptedRun(spec, batches);

  std::string snapshot;
  {
    datasets::Dataset dataset = datasets::Generate(spec, 0.04, 99);
    core::PgHive hive(&dataset.graph, MakeOptions(8, 4));
    core::BatchPipeline executor(&hive);
    auto split = pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/5);
    split.resize(2);
    ASSERT_TRUE(executor.Run(split).ok());
    std::ostringstream sink;
    ASSERT_TRUE(hive.SaveState(sink).ok());
    snapshot = sink.str();
  }

  datasets::Dataset dataset = datasets::Generate(spec, 0.04, 99);
  core::PgHive hive(&dataset.graph, MakeOptions(1, 1));
  std::istringstream source(snapshot);
  auto restored = hive.RestoreState(source);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(*restored, 2u);
  auto split = pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/5);
  std::vector<pg::GraphBatch> tail(split.begin() + 2, split.end());
  core::BatchPipeline executor(&hive);
  ASSERT_TRUE(executor.Run(tail).ok());
  ASSERT_TRUE(hive.Finish().ok());
  EXPECT_EQ(SchemaBytes(hive, dataset.graph), expected);
}

}  // namespace
}  // namespace pghive
