#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace pghive::util {
namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  auto future = pool.Submit([caller] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return 42;
  });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(4);
  auto future = pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(future.get(), "done");
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(4);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanRangeIsOneInlineChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(3, 10, 100, [&](size_t lo, size_t hi) {
    chunks.emplace_back(lo, hi);  // Single chunk: no synchronization needed.
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 3u);
  EXPECT_EQ(chunks[0].second, 10u);
}

TEST(ThreadPoolTest, ParallelForZeroGrainTreatedAsOne) {
  ThreadPool pool(2);
  std::vector<int> out(10, 0);
  pool.ParallelFor(0, out.size(), 0, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) out[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelOutputMatchesSerial) {
  constexpr size_t kN = 50000;
  auto fill = [](ThreadPool* pool, std::vector<uint64_t>* out) {
    out->assign(kN, 0);
    ParallelFor(pool, 0, kN, 128, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) (*out)[i] = i * i + 1;
    });
  };
  std::vector<uint64_t> serial;
  fill(nullptr, &serial);
  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<uint64_t> parallel;
    fill(&pool, &parallel);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestChunkException) {
  ThreadPool pool(4);
  // Every chunk throws its own chunk id; the contract is that the
  // lowest-index chunk's exception wins regardless of completion order.
  std::string what;
  try {
    pool.ParallelFor(0, 64, 4, [&](size_t lo, size_t) {
      throw std::runtime_error(std::to_string(lo));
    });
    FAIL() << "expected ParallelFor to throw";
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  EXPECT_EQ(what, "0");
}

TEST(ThreadPoolTest, ParallelForSingleFailingChunkStillFinishesOthers) {
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  EXPECT_THROW(
      pool.ParallelFor(0, kN, 16,
                       [&](size_t lo, size_t hi) {
                         for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
                         if (lo == 1024) throw std::logic_error("one bad chunk");
                       }),
      std::logic_error);
  // All chunks ran to completion despite the failure.
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForInsideSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  // Mirrors the pipeline shape: two submitted tracks, each fanning out a
  // ParallelFor on the same pool.
  std::vector<int> a(10000, 0), b(10000, 0);
  auto track = [&pool](std::vector<int>* out) {
    pool.ParallelFor(0, out->size(), 64, [out](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) (*out)[i] = static_cast<int>(i % 7);
    });
  };
  auto fa = pool.Submit([&] { track(&a); });
  track(&b);
  fa.get();
  EXPECT_EQ(a, b);
}

TEST(ThreadPoolTest, NestedParallelForInsideParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::vector<int>> rows(16);
  pool.ParallelFor(0, rows.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      rows[r].assign(512, 0);
      pool.ParallelFor(0, rows[r].size(), 32, [&rows, r](size_t il, size_t ih) {
        for (size_t i = il; i < ih; ++i) rows[r][i] = static_cast<int>(r + i);
      });
    }
  });
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t i = 0; i < rows[r].size(); ++i) {
      ASSERT_EQ(rows[r][i], static_cast<int>(r + i));
    }
  }
}

TEST(ThreadPoolTest, ManyConcurrentSubmits) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([t] { return t * 3; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 3LL * kTasks * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace pghive::util
