// PipelineStats accounting under cross-batch overlap: every stage time is
// measured on the thread that ran the stage, so per-batch stats must stay
// internally consistent (non-negative, totals = sum of stages, hive totals
// = sum over batches) even while batch i+1's preprocess races batch i's
// extract — and per-batch post-processing must keep refreshing datatypes
// in batch order.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/pghive.h"
#include "core/schema.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/batch.h"

namespace pghive {
namespace {

core::PgHiveOptions OverlapOptions(bool post_each_batch) {
  core::PgHiveOptions options;
  options.num_threads = 4;
  options.pipeline_depth = 3;
  options.post_process_each_batch = post_each_batch;
  return options;
}

TEST(PipelineStatsTest, PerBatchStatsConsistentUnderOverlap) {
  datasets::Dataset dataset =
      datasets::Generate(datasets::LdbcSpec(), 0.2, 21);
  core::PgHive hive(&dataset.graph, OverlapOptions(false));
  core::BatchPipeline executor(&hive);
  auto batches = pg::SplitIntoBatches(dataset.graph, 5, 9);
  ASSERT_TRUE(executor.Run(batches).ok());

  const auto& stats = executor.batch_stats();
  ASSERT_EQ(stats.size(), batches.size());
  double preprocess_sum = 0, cluster_sum = 0, extract_sum = 0, post_sum = 0;
  size_t node_cluster_sum = 0, edge_cluster_sum = 0;
  for (size_t i = 0; i < stats.size(); ++i) {
    const core::PipelineStats& s = stats[i];
    EXPECT_GE(s.preprocess_ms, 0.0) << "batch " << i;
    EXPECT_GE(s.cluster_ms, 0.0) << "batch " << i;
    EXPECT_GE(s.extract_ms, 0.0) << "batch " << i;
    EXPECT_GE(s.post_process_ms, 0.0) << "batch " << i;
    // total_ms/discovery_ms are derived sums of the stage fields.
    EXPECT_DOUBLE_EQ(s.total_ms(), s.preprocess_ms + s.cluster_ms +
                                       s.extract_ms + s.post_process_ms);
    EXPECT_DOUBLE_EQ(s.discovery_ms(),
                     s.preprocess_ms + s.cluster_ms + s.extract_ms);
    // Without per-batch post-processing the post stage never ran.
    EXPECT_EQ(s.post_process_ms, 0.0) << "batch " << i;
    // Non-empty batches did real preprocess + cluster work.
    if (!batches[i].empty()) {
      EXPECT_GT(s.node_clusters + s.edge_clusters, 0u) << "batch " << i;
    }
    preprocess_sum += s.preprocess_ms;
    cluster_sum += s.cluster_ms;
    extract_sum += s.extract_ms;
    post_sum += s.post_process_ms;
    node_cluster_sum += s.node_clusters;
    edge_cluster_sum += s.edge_clusters;
  }

  // The hive's cumulative stats are the per-batch sums: overlap must not
  // double-count a stage or attribute one batch's time to another.
  const core::PipelineStats& total = hive.total_stats();
  EXPECT_NEAR(total.preprocess_ms, preprocess_sum, 1e-9);
  EXPECT_NEAR(total.cluster_ms, cluster_sum, 1e-9);
  EXPECT_NEAR(total.extract_ms, extract_sum, 1e-9);
  EXPECT_NEAR(total.post_process_ms, post_sum, 1e-9);
  EXPECT_EQ(total.node_clusters, node_cluster_sum);
  EXPECT_EQ(total.edge_clusters, edge_cluster_sum);

  // last_stats() is the final batch's snapshot.
  EXPECT_DOUBLE_EQ(hive.last_stats().preprocess_ms,
                   stats.back().preprocess_ms);
  EXPECT_EQ(hive.last_stats().node_clusters, stats.back().node_clusters);

  // The pipeline measured a positive wall clock, and on overlapped runs the
  // per-stage sum may legitimately exceed it (that is the speedup).
  EXPECT_GT(executor.wall_ms(), 0.0);
}

TEST(PipelineStatsTest, PerBatchPostProcessingRefreshesEveryBatch) {
  datasets::Dataset dataset =
      datasets::Generate(datasets::LdbcSpec(), 0.15, 22);
  core::PgHive hive(&dataset.graph, OverlapOptions(true));
  core::BatchPipeline executor(&hive);
  auto batches = pg::SplitIntoBatches(dataset.graph, 4, 9);
  ASSERT_TRUE(executor.Run(batches).ok());

  // Every batch ran the post stage (constraints + datatypes +
  // cardinalities), so the schema is already fully post-processed without
  // Finish(): every property the schema knows carries an inferred datatype.
  ASSERT_EQ(executor.batch_stats().size(), batches.size());
  size_t properties_seen = 0;
  for (const auto& type : hive.schema().node_types()) {
    for (const auto& [key, info] : type.properties) {
      if (info.count == 0) continue;  // Never observed with a value.
      ++properties_seen;
      EXPECT_NE(info.data_type, pg::DataType::kNull)
          << "node property " << key << " missing a datatype";
    }
  }
  EXPECT_GT(properties_seen, 0u);
}

TEST(PipelineStatsTest, SequentialAndOverlappedStatsCountSameClusters) {
  // Stage *times* differ run to run, but the structural tallies (clusters
  // per batch) are part of the determinism contract.
  auto run = [](size_t threads, size_t depth) {
    datasets::Dataset dataset =
        datasets::Generate(datasets::Mb6Spec(), 0.2, 23);
    core::PgHiveOptions options;
    options.num_threads = threads;
    options.pipeline_depth = depth;
    core::PgHive hive(&dataset.graph, options);
    core::BatchPipeline executor(&hive);
    auto batches = pg::SplitIntoBatches(dataset.graph, 4, 13);
    EXPECT_TRUE(executor.Run(batches).ok());
    std::vector<std::pair<size_t, size_t>> clusters;
    for (const auto& s : executor.batch_stats()) {
      clusters.emplace_back(s.node_clusters, s.edge_clusters);
    }
    return clusters;
  };
  EXPECT_EQ(run(1, 1), run(4, 3));
  EXPECT_EQ(run(2, 2), run(8, 4));
}

}  // namespace
}  // namespace pghive
