// The columnar data plane's determinism guarantee: discovery over the
// struct-of-arrays columns must produce a schema byte-identical to the
// row-at-a-time loops, for every zoo dataset, at every (thread count x
// pipeline depth) combination — the column stores are a layout change, never
// a semantic one. Runs under the `threaded` label so the TSan CI job races
// the column builds in the pipelined preprocess against the extract stage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/pghive.h"
#include "core/serialize.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/batch.h"

namespace pghive {
namespace {

struct Discovery {
  std::string pgs;
  std::string xsd;
  std::vector<uint32_t> node_assignment;
  std::vector<uint32_t> edge_assignment;
};

Discovery Discover(const datasets::DatasetSpec& spec,
                   core::ClusterMethod method, bool columnar, size_t threads,
                   size_t depth) {
  // Regenerate per run so vocabularies never leak across configurations.
  datasets::Dataset dataset = datasets::Generate(spec, /*scale=*/0.04,
                                                 /*seed=*/99);
  core::PgHiveOptions options;
  options.method = method;
  options.columnar = columnar;
  options.num_threads = threads;
  options.pipeline_depth = depth;
  core::PgHive pipeline(&dataset.graph, options);
  core::BatchPipeline executor(&pipeline);
  auto batches = pg::SplitIntoBatches(dataset.graph, /*num_batches=*/3,
                                      /*seed=*/5);
  EXPECT_TRUE(executor.Run(batches).ok());
  EXPECT_TRUE(pipeline.Finish().ok());
  Discovery out;
  out.pgs = core::SerializePgSchema(pipeline.schema(), dataset.graph.vocab(),
                                    core::SchemaMode::kStrict);
  out.xsd = core::SerializeXsd(pipeline.schema(), dataset.graph.vocab());
  out.node_assignment = pipeline.NodeAssignment();
  out.edge_assignment = pipeline.EdgeAssignment();
  return out;
}

void ExpectColumnarMatchesRow(const datasets::DatasetSpec& spec,
                              core::ClusterMethod method) {
  // Ground truth: the row path, single-threaded, sequential ingest.
  Discovery row = Discover(spec, method, /*columnar=*/false, 1, 1);
  ASSERT_FALSE(row.pgs.empty()) << spec.name;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t depth : {size_t{1}, size_t{4}}) {
      Discovery col = Discover(spec, method, /*columnar=*/true, threads,
                               depth);
      EXPECT_EQ(col.pgs, row.pgs)
          << spec.name << " threads=" << threads << " depth=" << depth;
      EXPECT_EQ(col.xsd, row.xsd)
          << spec.name << " threads=" << threads << " depth=" << depth;
      EXPECT_EQ(col.node_assignment, row.node_assignment)
          << spec.name << " threads=" << threads << " depth=" << depth;
      EXPECT_EQ(col.edge_assignment, row.edge_assignment)
          << spec.name << " threads=" << threads << " depth=" << depth;
    }
  }
}

TEST(ColumnarDeterminismTest, ElshIdenticalOnAllZooDatasets) {
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    ExpectColumnarMatchesRow(spec, core::ClusterMethod::kElsh);
  }
}

// MinHash exercises the CSR set spans instead of the feature matrices.
TEST(ColumnarDeterminismTest, MinHashIdenticalOnAllZooDatasets) {
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    ExpectColumnarMatchesRow(spec, core::ClusterMethod::kMinHash);
  }
}

// The row plane must also stay deterministic across thread counts — the
// --data-plane=row escape hatch is only useful if it is as pinned as the
// default.
TEST(ColumnarDeterminismTest, RowPlaneStableAcrossThreads) {
  Discovery base = Discover(datasets::PoleSpec(), core::ClusterMethod::kElsh,
                            /*columnar=*/false, 1, 1);
  Discovery threaded = Discover(datasets::PoleSpec(),
                                core::ClusterMethod::kElsh,
                                /*columnar=*/false, 8, 4);
  EXPECT_EQ(threaded.pgs, base.pgs);
  EXPECT_EQ(threaded.node_assignment, base.node_assignment);
}

}  // namespace
}  // namespace pghive
