// The sharded-discovery determinism guarantee: partitioning every batch
// into N consistent-hash shards and running the per-shard data plane on
// per-shard pools must produce a schema byte-identical to num_shards == 1,
// for every zoo dataset, at shards {1, 2, 4} x threads {1, 2, 8}. This is
// the paper-style equivalence check against a reference execution — the
// shard merge is correct iff the bytes match. Runs under the `threaded`
// label so the TSan CI job races the per-shard column builds, hashing
// passes, and candidate scans against each other.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/pghive.h"
#include "core/serialize.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/batch.h"

namespace pghive {
namespace {

struct Discovery {
  std::string pgs;
  std::string xsd;
  std::vector<uint32_t> node_assignment;
  std::vector<uint32_t> edge_assignment;
};

Discovery Discover(const datasets::DatasetSpec& spec,
                   core::ClusterMethod method, core::EmbedderKind embedder,
                   size_t num_shards, size_t threads, size_t depth) {
  // Regenerate per run so vocabularies never leak across configurations.
  datasets::Dataset dataset = datasets::Generate(spec, /*scale=*/0.04,
                                                 /*seed=*/99);
  core::PgHiveOptions options;
  options.method = method;
  options.embedder = embedder;
  options.num_shards = num_shards;
  options.num_threads = threads;
  options.pipeline_depth = depth;
  core::PgHive pipeline(&dataset.graph, options);
  core::BatchPipeline executor(&pipeline);
  auto batches = pg::SplitIntoBatches(dataset.graph, /*num_batches=*/3,
                                      /*seed=*/5);
  EXPECT_TRUE(executor.Run(batches).ok());
  EXPECT_TRUE(pipeline.Finish().ok());
  Discovery out;
  out.pgs = core::SerializePgSchema(pipeline.schema(), dataset.graph.vocab(),
                                    core::SchemaMode::kStrict);
  out.xsd = core::SerializeXsd(pipeline.schema(), dataset.graph.vocab());
  out.node_assignment = pipeline.NodeAssignment();
  out.edge_assignment = pipeline.EdgeAssignment();
  return out;
}

void ExpectShardedMatchesUnsharded(const datasets::DatasetSpec& spec,
                                   core::ClusterMethod method,
                                   core::EmbedderKind embedder) {
  // Ground truth: unsharded, single-threaded, sequential ingest.
  Discovery base = Discover(spec, method, embedder, 1, 1, 1);
  ASSERT_FALSE(base.pgs.empty()) << spec.name;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      if (shards == 1 && threads == 1) continue;  // The baseline itself.
      Discovery sharded = Discover(spec, method, embedder, shards, threads, 1);
      EXPECT_EQ(sharded.pgs, base.pgs)
          << spec.name << " shards=" << shards << " threads=" << threads;
      EXPECT_EQ(sharded.xsd, base.xsd)
          << spec.name << " shards=" << shards << " threads=" << threads;
      EXPECT_EQ(sharded.node_assignment, base.node_assignment)
          << spec.name << " shards=" << shards << " threads=" << threads;
      EXPECT_EQ(sharded.edge_assignment, base.edge_assignment)
          << spec.name << " shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardDeterminismTest, ElshIdenticalOnAllZooDatasets) {
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    ExpectShardedMatchesUnsharded(spec, core::ClusterMethod::kElsh,
                                  core::EmbedderKind::kWord2Vec);
  }
}

// MinHash exercises the per-shard CSR set spans and the promoted
// ClusterFromSignatures grouping entry point.
TEST(ShardDeterminismTest, MinHashIdenticalOnAllZooDatasets) {
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    ExpectShardedMatchesUnsharded(spec, core::ClusterMethod::kMinHash,
                                  core::EmbedderKind::kWord2Vec);
  }
}

// The hash embedder takes the explicit warm-sweep path in PreprocessSharded
// (no corpus build interns for it), so pin it separately on a couple of
// structurally different datasets.
TEST(ShardDeterminismTest, HashEmbedderIdentical) {
  ExpectShardedMatchesUnsharded(datasets::PoleSpec(),
                                core::ClusterMethod::kElsh,
                                core::EmbedderKind::kHash);
  ExpectShardedMatchesUnsharded(datasets::PoleSpec(),
                                core::ClusterMethod::kMinHash,
                                core::EmbedderKind::kHash);
}

// Sharding composes with pipelined ingest: the shard fan-out lives inside
// PreprocessBatch / ProcessPrepared, so depth > 1 overlap must not change a
// byte either.
TEST(ShardDeterminismTest, ComposesWithPipelineDepth) {
  Discovery base = Discover(datasets::PoleSpec(), core::ClusterMethod::kElsh,
                            core::EmbedderKind::kWord2Vec, 1, 1, 1);
  Discovery sharded = Discover(datasets::PoleSpec(), core::ClusterMethod::kElsh,
                               core::EmbedderKind::kWord2Vec, 4, 8, 3);
  EXPECT_EQ(sharded.pgs, base.pgs);
  EXPECT_EQ(sharded.node_assignment, base.node_assignment);
  EXPECT_EQ(sharded.edge_assignment, base.edge_assignment);
}

// The row data plane must stay shardable too — per-shard vectorizers run
// the row loops when --data-plane=row is selected.
TEST(ShardDeterminismTest, RowPlaneShardedIdentical) {
  datasets::Dataset a = datasets::Generate(datasets::PoleSpec(), 0.04, 99);
  datasets::Dataset b = datasets::Generate(datasets::PoleSpec(), 0.04, 99);
  core::PgHiveOptions options;
  options.columnar = false;
  core::PgHive unsharded(&a.graph, options);
  EXPECT_TRUE(unsharded.Run().ok());
  options.num_shards = 4;
  options.num_threads = 8;
  core::PgHive sharded(&b.graph, options);
  EXPECT_TRUE(sharded.Run().ok());
  EXPECT_EQ(core::SerializePgSchema(sharded.schema(), b.graph.vocab(),
                                    core::SchemaMode::kStrict),
            core::SerializePgSchema(unsharded.schema(), a.graph.vocab(),
                                    core::SchemaMode::kStrict));
}

}  // namespace
}  // namespace pghive
