// The embed stage's determinism guarantee: Word2Vec::Train is minibatch SGD
// whose batch contents, negative-sample RNG streams, and gradient staleness
// are derived only from (epoch, batch index) — never from thread identity —
// so the trained embeddings are byte-identical for every pool size. This is
// what keeps `pghive discover` output stable across --threads now that the
// pipeline trains the label model on the pool.

#include <gtest/gtest.h>

#include <vector>

#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "embed/corpus.h"
#include "embed/word2vec.h"
#include "pg/batch.h"
#include "util/thread_pool.h"

namespace pghive {
namespace {

std::vector<std::vector<float>> AllEmbeddings(const embed::Word2Vec& model,
                                              size_t vocab_size) {
  std::vector<std::vector<float>> out;
  out.reserve(vocab_size);
  for (size_t t = 0; t < vocab_size; ++t) {
    out.push_back(model.EmbedVec(static_cast<pg::LabelSetToken>(t)));
  }
  return out;
}

std::vector<std::vector<float>> TrainWithThreads(
    const pg::PropertyGraph& graph, const embed::LabelCorpus& corpus,
    const embed::Word2VecOptions& options, size_t num_threads) {
  embed::Word2Vec model(&graph.vocab(), options);
  if (num_threads == 0) {
    model.Train(corpus);  // The no-pool serial path.
  } else {
    util::ThreadPool pool(num_threads);
    model.Train(corpus, &pool);
  }
  return AllEmbeddings(model, corpus.vocab_size);
}

TEST(EmbedDeterminismTest, TrainIdenticalAcrossThreadCountsOnAllZooDatasets) {
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    datasets::Dataset dataset = datasets::Generate(spec, /*scale=*/0.05,
                                                   /*seed=*/99);
    embed::LabelCorpus corpus = embed::BuildLabelCorpus(dataset.graph);
    embed::Word2VecOptions options;
    auto serial = TrainWithThreads(dataset.graph, corpus, options, 0);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      EXPECT_EQ(TrainWithThreads(dataset.graph, corpus, options, threads),
                serial)
          << spec.name << " threads=" << threads;
    }
  }
}

TEST(EmbedDeterminismTest, TinyBatchesExerciseWaveBoundaries) {
  // batch_size = 3 forces many partial batches and multiple waves even on a
  // small corpus, so wave-boundary bookkeeping (partial last batch, scratch
  // reuse across waves) is what this pins down.
  datasets::Dataset dataset =
      datasets::Generate(datasets::PoleSpec(), /*scale=*/0.05, /*seed=*/7);
  embed::LabelCorpus corpus = embed::BuildLabelCorpus(dataset.graph);
  embed::Word2VecOptions options;
  options.batch_size = 3;
  options.epochs = 2;
  auto serial = TrainWithThreads(dataset.graph, corpus, options, 0);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    EXPECT_EQ(TrainWithThreads(dataset.graph, corpus, options, threads),
              serial)
        << "threads=" << threads;
  }
}

TEST(EmbedDeterminismTest, IncrementalTrainIdenticalAcrossThreadCounts) {
  // Incremental mode trains the same model repeatedly on per-batch corpora,
  // growing the vocabulary as new tokens appear; the parallel schedule must
  // keep every intermediate state identical too.
  auto train_incremental = [](size_t num_threads) {
    datasets::Dataset dataset =
        datasets::Generate(datasets::LdbcSpec(), /*scale=*/0.1, /*seed=*/99);
    embed::Word2Vec model(&dataset.graph.vocab(), embed::Word2VecOptions{});
    util::ThreadPool pool(num_threads == 0 ? 1 : num_threads);
    for (const auto& batch :
         pg::SplitIntoBatches(dataset.graph, /*num_batches=*/4, /*seed=*/5)) {
      embed::LabelCorpus corpus =
          embed::BuildLabelCorpus(dataset.graph, batch);
      model.Train(corpus, num_threads == 0 ? nullptr : &pool);
    }
    return AllEmbeddings(model, dataset.graph.vocab().num_tokens());
  };
  auto serial = train_incremental(0);
  EXPECT_FALSE(serial.empty());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    EXPECT_EQ(train_incremental(threads), serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace pghive
