// util::BoundedChannel unit tests: FIFO order, bounded blocking, close
// semantics (drain-then-nullopt, unblock pending Push), and a
// producer/consumer stress handoff. Lives in the threading suite so the
// TSan CI job races the blocking paths.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "util/channel.h"

namespace pghive::util {
namespace {

TEST(BoundedChannelTest, FifoWithinCapacity) {
  BoundedChannel<int> channel(4);
  EXPECT_EQ(channel.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(channel.Push(i));
  for (int i = 0; i < 4; ++i) {
    auto v = channel.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedChannelTest, ZeroCapacityIsClampedToOne) {
  BoundedChannel<int> channel(0);
  EXPECT_EQ(channel.capacity(), 1u);
  EXPECT_TRUE(channel.Push(7));
  EXPECT_EQ(channel.Pop().value(), 7);
}

TEST(BoundedChannelTest, PushBlocksUntilPopMakesRoom) {
  BoundedChannel<int> channel(1);
  ASSERT_TRUE(channel.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(channel.Push(2));  // Blocks: channel is full.
    second_pushed = true;
  });
  // The producer cannot complete until we pop. (A sleep cannot prove
  // blocking, but TSan + the final ordering assertions make a non-blocking
  // bug visible as a lost or reordered item.)
  EXPECT_EQ(channel.Pop().value(), 1);
  EXPECT_EQ(channel.Pop().value(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed);
}

TEST(BoundedChannelTest, CloseDrainsBufferedItemsThenSignalsEnd) {
  BoundedChannel<int> channel(3);
  EXPECT_TRUE(channel.Push(1));
  EXPECT_TRUE(channel.Push(2));
  channel.Close();
  EXPECT_EQ(channel.Pop().value(), 1);
  EXPECT_EQ(channel.Pop().value(), 2);
  EXPECT_FALSE(channel.Pop().has_value());
  EXPECT_FALSE(channel.Pop().has_value());  // Stays closed.
  EXPECT_FALSE(channel.Push(3));            // Push after close refuses.
}

TEST(BoundedChannelTest, CloseUnblocksPendingPush) {
  BoundedChannel<int> channel(1);
  ASSERT_TRUE(channel.Push(1));
  std::atomic<bool> push_returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(channel.Push(2));  // Blocked on full, then closed.
    push_returned = true;
  });
  // Give the producer a moment to park in Push, then close underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.Close();
  producer.join();
  EXPECT_TRUE(push_returned);
  // The buffered item still drains.
  EXPECT_EQ(channel.Pop().value(), 1);
  EXPECT_FALSE(channel.Pop().has_value());
}

TEST(BoundedChannelTest, CloseUnblocksPendingPop) {
  BoundedChannel<int> channel(1);
  std::thread consumer([&] { EXPECT_FALSE(channel.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.Close();
  consumer.join();
}

TEST(BoundedChannelTest, WaitNotFullBlocksAtCapacityAndSeesClose) {
  BoundedChannel<int> channel(1);
  EXPECT_TRUE(channel.WaitNotFull());  // Empty: room exists.
  ASSERT_TRUE(channel.Push(1));
  std::atomic<bool> reserved{false};
  std::thread producer([&] {
    EXPECT_TRUE(channel.WaitNotFull());  // Blocks: channel is full.
    reserved = true;
    EXPECT_TRUE(channel.Push(2));  // Reserved slot: must not block.
  });
  EXPECT_EQ(channel.Pop().value(), 1);
  EXPECT_EQ(channel.Pop().value(), 2);
  producer.join();
  EXPECT_TRUE(reserved);
  channel.Close();
  EXPECT_FALSE(channel.WaitNotFull());  // Closed wins even with room.
}

// The pipeline's memory-bound contract: with a single producer that
// reserves via WaitNotFull before "building", at most `capacity` items
// exist outside the consumer at any instant.
TEST(BoundedChannelTest, ReserveBeforeBuildBoundsItemsInFlight) {
  constexpr int kItems = 200;
  for (size_t capacity : {size_t{1}, size_t{3}}) {
    BoundedChannel<int> channel(capacity);
    std::atomic<int> built{0};
    std::atomic<int> consumed{0};
    std::atomic<int> max_outstanding{0};
    std::thread producer([&] {
      for (int i = 0; i < kItems; ++i) {
        ASSERT_TRUE(channel.WaitNotFull());
        int outstanding = ++built - consumed.load();
        int seen = max_outstanding.load();
        while (outstanding > seen &&
               !max_outstanding.compare_exchange_weak(seen, outstanding)) {
        }
        ASSERT_TRUE(channel.Push(i));
      }
      channel.Close();
    });
    while (channel.Pop().has_value()) ++consumed;
    producer.join();
    EXPECT_EQ(consumed.load(), kItems);
    // "Outstanding" counts the item being built plus everything buffered —
    // consumed may lag reality, so allow the consumer's one in-flight item.
    EXPECT_LE(max_outstanding.load(), static_cast<int>(capacity) + 1)
        << "capacity=" << capacity;
  }
}

TEST(BoundedChannelTest, MoveOnlyPayloadsFlowThrough) {
  BoundedChannel<std::unique_ptr<int>> channel(2);
  EXPECT_TRUE(channel.Push(std::make_unique<int>(42)));
  auto v = channel.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(BoundedChannelTest, ProducerConsumerStressKeepsOrderAndCount) {
  constexpr int kItems = 5000;
  for (size_t capacity : {size_t{1}, size_t{2}, size_t{7}}) {
    BoundedChannel<int> channel(capacity);
    std::thread producer([&] {
      for (int i = 0; i < kItems; ++i) ASSERT_TRUE(channel.Push(i));
      channel.Close();
    });
    int expected = 0;
    while (true) {
      auto v = channel.Pop();
      if (!v.has_value()) break;
      ASSERT_EQ(*v, expected) << "capacity=" << capacity;
      ++expected;
    }
    producer.join();
    EXPECT_EQ(expected, kItems) << "capacity=" << capacity;
  }
}

}  // namespace
}  // namespace pghive::util
