// The parallel engine's determinism guarantee: discovery produces a
// byte-identical schema no matter how many threads run the pipeline
// (ParallelFor shards by index, RNG seeds are pre-split per shard, and the
// node/edge tracks merge in fixed order).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pghive.h"
#include "core/serialize.h"
#include "datasets/generator.h"
#include "datasets/zoo.h"
#include "pg/batch.h"

namespace pghive {
namespace {

struct Discovery {
  std::string pgs;
  std::string xsd;
  std::vector<uint32_t> node_assignment;
  std::vector<uint32_t> edge_assignment;
};

Discovery Discover(const datasets::DatasetSpec& spec, double scale,
                   core::ClusterMethod method, size_t num_threads,
                   size_t batches = 1) {
  // Each run regenerates the dataset so vocabularies never leak across runs.
  datasets::Dataset dataset = datasets::Generate(spec, scale, /*seed=*/99);
  core::PgHiveOptions options;
  options.method = method;
  options.num_threads = num_threads;
  options.datatype_options.sample = true;
  options.datatype_options.min_sample = 50;  // Force the sampling path.
  core::PgHive pipeline(&dataset.graph, options);
  if (batches <= 1) {
    EXPECT_TRUE(pipeline.Run().ok());
  } else {
    for (const auto& batch :
         pg::SplitIntoBatches(dataset.graph, batches, /*seed=*/5)) {
      EXPECT_TRUE(pipeline.ProcessBatch(batch).ok());
    }
    EXPECT_TRUE(pipeline.Finish().ok());
  }
  Discovery out;
  out.pgs = core::SerializePgSchema(pipeline.schema(), dataset.graph.vocab(),
                                    core::SchemaMode::kStrict);
  out.xsd = core::SerializeXsd(pipeline.schema(), dataset.graph.vocab());
  out.node_assignment = pipeline.NodeAssignment();
  out.edge_assignment = pipeline.EdgeAssignment();
  return out;
}

void ExpectIdenticalAcrossThreadCounts(const datasets::DatasetSpec& spec,
                                       double scale,
                                       core::ClusterMethod method,
                                       size_t batches = 1) {
  Discovery serial = Discover(spec, scale, method, /*num_threads=*/1, batches);
  EXPECT_FALSE(serial.pgs.empty());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    Discovery parallel = Discover(spec, scale, method, threads, batches);
    EXPECT_EQ(parallel.pgs, serial.pgs)
        << spec.name << " threads=" << threads;
    EXPECT_EQ(parallel.xsd, serial.xsd)
        << spec.name << " threads=" << threads;
    EXPECT_EQ(parallel.node_assignment, serial.node_assignment)
        << spec.name << " threads=" << threads;
    EXPECT_EQ(parallel.edge_assignment, serial.edge_assignment)
        << spec.name << " threads=" << threads;
  }
}

TEST(DeterminismTest, ElshIdenticalAcrossThreadCountsOnAllZooDatasets) {
  for (const datasets::DatasetSpec& spec : datasets::Zoo()) {
    ExpectIdenticalAcrossThreadCounts(spec, /*scale=*/0.05,
                                      core::ClusterMethod::kElsh);
  }
}

TEST(DeterminismTest, MinHashIdenticalAcrossThreadCounts) {
  ExpectIdenticalAcrossThreadCounts(datasets::PoleSpec(), /*scale=*/0.1,
                                    core::ClusterMethod::kMinHash);
  ExpectIdenticalAcrossThreadCounts(datasets::IcijSpec(), /*scale=*/0.1,
                                    core::ClusterMethod::kMinHash);
}

TEST(DeterminismTest, IncrementalBatchesIdenticalAcrossThreadCounts) {
  ExpectIdenticalAcrossThreadCounts(datasets::LdbcSpec(), /*scale=*/0.1,
                                    core::ClusterMethod::kElsh,
                                    /*batches=*/4);
}

TEST(DeterminismTest, HardwareDefaultMatchesSerial) {
  // num_threads = 0 resolves to the hardware concurrency; whatever that is
  // on the host, the schema must match the serial run.
  Discovery serial = Discover(datasets::Mb6Spec(), 0.1,
                              core::ClusterMethod::kElsh, /*num_threads=*/1);
  Discovery hw = Discover(datasets::Mb6Spec(), 0.1,
                          core::ClusterMethod::kElsh, /*num_threads=*/0);
  EXPECT_EQ(hw.pgs, serial.pgs);
  EXPECT_EQ(hw.node_assignment, serial.node_assignment);
}

}  // namespace
}  // namespace pghive
