// DotF32's contract is stronger than "approximately the dot product": it
// promises the exact 4-lane double-accumulation result — lane (i & 3)
// accumulates element i, lanes combine as (l0 + l1) + (l2 + l3) — so the
// AVX2 and scalar builds produce bit-identical LSH hashes. The reference
// below re-derives that scheme independently; equality must be exact.

#include "util/simd.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace pghive::util {
namespace {

double FourLaneReference(const float* a, const float* b, size_t n) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    lanes[i & 3] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

TEST(DotF32Test, BitIdenticalToFourLaneReferenceAtEveryLength) {
  Rng rng(41);
  // Lengths around the 8-wide vector boundary, plus typical feature dims.
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                   size_t{8}, size_t{9}, size_t{15}, size_t{16}, size_t{17},
                   size_t{31}, size_t{64}, size_t{77}, size_t{128}}) {
    std::vector<float> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextGaussian());
      b[i] = static_cast<float>(rng.NextGaussian());
    }
    const double got = DotF32(a.data(), b.data(), n);
    const double want = FourLaneReference(a.data(), b.data(), n);
    // Exact: both sides perform the same additions in the same order.
    EXPECT_EQ(got, want) << "n = " << n;
  }
}

TEST(DotF32Test, ZeroLengthIsZero) {
  EXPECT_EQ(DotF32(nullptr, nullptr, 0), 0.0);
}

}  // namespace
}  // namespace pghive::util
