#include "util/status.h"

#include <gtest/gtest.h>

namespace pghive::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad theta");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad theta");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "PARSE_ERROR");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nothing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r.value().push_back(2);
  EXPECT_EQ(r.value().size(), 2u);
}

}  // namespace
}  // namespace pghive::util
