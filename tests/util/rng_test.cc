#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pghive::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  Rng rng2(14);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(rng2.NextBool(0.0));
}

TEST(RngTest, PoissonMeanSmallLambda) {
  Rng rng(15);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextPoisson(2.5);
  EXPECT_NEAR(sum / 20000, 2.5, 0.1);
}

TEST(RngTest, PoissonMeanLargeLambda) {
  Rng rng(16);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) sum += rng.NextPoisson(50.0);
  EXPECT_NEAR(sum / 5000, 50.0, 1.0);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(17);
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(100, 40);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(21);
  auto perm = rng.Permutation(50);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child diverges from parent's subsequent output.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Mix64Test, InjectiveOnSmallRange) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

class PermutationPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, uint64_t>> {};

TEST_P(PermutationPropertyTest, EveryElementExactlyOnce) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  auto perm = rng.Permutation(n);
  ASSERT_EQ(perm.size(), n);
  std::vector<bool> seen(n, false);
  for (size_t p : perm) {
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PermutationPropertyTest,
    ::testing::Values(std::make_pair<size_t, uint64_t>(0, 1),
                      std::make_pair<size_t, uint64_t>(1, 2),
                      std::make_pair<size_t, uint64_t>(10, 3),
                      std::make_pair<size_t, uint64_t>(1000, 4)));

}  // namespace
}  // namespace pghive::util
